//! Randomized tests of the strided datatype machinery: decompositions tile
//! the described bytes exactly, coalescing preserves them, and paired chunk
//! lists re-split consistently. Driven by the deterministic [`SimRng`].

use armci::Strided;
use desim::SimRng;

/// Well-formed random descriptor: strides at least the extent below them,
/// so chunks never overlap.
fn arb_strided(rng: &mut SimRng) -> Strided {
    let chunk = rng.range(1, 64) as usize;
    let offset = rng.next_below(512) as usize;
    let nlevels = rng.next_below(3) as usize;
    let mut counts = Vec::new();
    let mut strides = Vec::new();
    let mut extent = chunk;
    for _ in 0..nlevels {
        let count = rng.range(1, 5) as usize;
        let gap = rng.next_below(16) as usize;
        let stride = extent + gap;
        counts.push(count);
        strides.push(stride);
        extent = stride * count;
    }
    Strided {
        offset,
        chunk,
        counts,
        strides,
    }
}

fn byte_set(s: &Strided) -> Vec<usize> {
    let mut v: Vec<usize> = s
        .chunks()
        .into_iter()
        .flat_map(|(off, len)| off..off + len)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn chunks_cover_total_bytes_exactly() {
    let mut rng = SimRng::new(11);
    for _ in 0..128 {
        let s = arb_strided(&mut rng);
        let total: usize = s.chunks().iter().map(|&(_, l)| l).sum();
        assert_eq!(total, s.total_bytes());
        // No overlap: the byte set has no duplicates.
        let bytes = byte_set(&s);
        let mut dedup = bytes.clone();
        dedup.dedup();
        assert_eq!(bytes.len(), dedup.len(), "overlapping chunks");
    }
}

#[test]
fn normalization_preserves_byte_set() {
    let mut rng = SimRng::new(12);
    for _ in 0..128 {
        let s = arb_strided(&mut rng);
        let n = s.normalized();
        assert_eq!(byte_set(&s), byte_set(&n));
        assert_eq!(s.total_bytes(), n.total_bytes());
    }
}

#[test]
fn pair_chunks_is_a_consistent_resplit() {
    let mut rng = SimRng::new(13);
    for _ in 0..64 {
        let rows = rng.range(1, 16) as usize;
        let row = rng.range(1, 64) as usize;
        let lgap = rng.next_below(32) as usize;
        let rgap = rng.next_below(32) as usize;
        let local = Strided::patch2d(0, row, rows, row + lgap);
        let remote = Strided::patch2d(10_000, row, rows, row + rgap);
        let pairs = Strided::pair_chunks(&local, &remote);
        // Pair lengths match on both sides and sum to the total.
        let mut ltotal = 0;
        let mut rtotal = 0;
        for ((_, ll), (_, rl)) in &pairs {
            assert_eq!(ll, rl);
            ltotal += ll;
            rtotal += rl;
        }
        assert_eq!(ltotal, local.total_bytes());
        assert_eq!(rtotal, remote.total_bytes());
        // Walking the pairs visits each side's bytes in canonical order.
        let mut lbytes = Vec::new();
        let mut rbytes = Vec::new();
        for ((lo, ll), (ro, rl)) in &pairs {
            lbytes.extend(*lo..lo + ll);
            rbytes.extend(*ro..ro + rl);
        }
        let lref: Vec<usize> = local
            .chunks()
            .into_iter()
            .flat_map(|(o, l)| o..o + l)
            .collect();
        let rref: Vec<usize> = remote
            .chunks()
            .into_iter()
            .flat_map(|(o, l)| o..o + l)
            .collect();
        assert_eq!(lbytes, lref);
        assert_eq!(rbytes, rref);
    }
}

#[test]
fn dense_patch_coalesces_to_one_chunk() {
    let mut rng = SimRng::new(14);
    for _ in 0..64 {
        let rows = rng.range(1, 32) as usize;
        let row = rng.range(1, 128) as usize;
        let off = rng.next_below(256) as usize;
        let s = Strided::patch2d(off, row, rows, row); // ld == row: dense
        let chunks = s.chunks();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0], (off, rows * row));
    }
}

#[test]
fn patch2d_chunk_count() {
    let mut rng = SimRng::new(15);
    for _ in 0..64 {
        let rows = rng.range(1, 32) as usize;
        let row = rng.range(1, 64) as usize;
        let gap = rng.range(1, 32) as usize;
        let s = Strided::patch2d(0, row, rows, row + gap);
        assert_eq!(s.chunks().len(), rows);
        assert_eq!(s.nchunks(), rows);
    }
}
