//! Property-based tests of the strided datatype machinery: decompositions
//! tile the described bytes exactly, coalescing preserves them, and paired
//! chunk lists re-split consistently.

use armci::Strided;
use proptest::prelude::*;

/// Well-formed descriptor: strides at least the extent below them.
fn arb_strided() -> impl Strategy<Value = Strided> {
    (1usize..64, proptest::collection::vec((1usize..5, 0usize..16), 0..3), 0usize..512)
        .prop_map(|(chunk, levels, offset)| {
            let mut counts = Vec::new();
            let mut strides = Vec::new();
            let mut extent = chunk;
            for (count, gap) in levels {
                // Each level's stride covers the level below plus a gap, so
                // chunks never overlap.
                let stride = extent + gap;
                counts.push(count);
                strides.push(stride);
                extent = stride * count;
            }
            Strided {
                offset,
                chunk,
                counts,
                strides,
            }
        })
}

fn byte_set(s: &Strided) -> Vec<usize> {
    let mut v: Vec<usize> = s
        .chunks()
        .into_iter()
        .flat_map(|(off, len)| off..off + len)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn chunks_cover_total_bytes_exactly(s in arb_strided()) {
        let total: usize = s.chunks().iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, s.total_bytes());
        // No overlap: the byte set has no duplicates.
        let bytes = byte_set(&s);
        let mut dedup = bytes.clone();
        dedup.dedup();
        prop_assert_eq!(bytes.len(), dedup.len(), "overlapping chunks");
    }

    #[test]
    fn normalization_preserves_byte_set(s in arb_strided()) {
        let n = s.normalized();
        prop_assert_eq!(byte_set(&s), byte_set(&n));
        prop_assert_eq!(s.total_bytes(), n.total_bytes());
    }

    #[test]
    fn pair_chunks_is_a_consistent_resplit(rows in 1usize..16, row in 1usize..64, lgap in 0usize..32, rgap in 0usize..32) {
        let local = Strided::patch2d(0, row, rows, row + lgap);
        let remote = Strided::patch2d(10_000, row, rows, row + rgap);
        let pairs = Strided::pair_chunks(&local, &remote);
        // Pair lengths match on both sides and sum to the total.
        let mut ltotal = 0;
        let mut rtotal = 0;
        for ((_, ll), (_, rl)) in &pairs {
            prop_assert_eq!(ll, rl);
            ltotal += ll;
            rtotal += rl;
        }
        prop_assert_eq!(ltotal, local.total_bytes());
        prop_assert_eq!(rtotal, remote.total_bytes());
        // Walking the pairs visits each side's bytes in canonical order.
        let mut lbytes = Vec::new();
        let mut rbytes = Vec::new();
        for ((lo, ll), (ro, rl)) in &pairs {
            lbytes.extend(*lo..lo + ll);
            rbytes.extend(*ro..ro + rl);
        }
        let lref: Vec<usize> = local.chunks().into_iter().flat_map(|(o, l)| o..o + l).collect();
        let rref: Vec<usize> = remote.chunks().into_iter().flat_map(|(o, l)| o..o + l).collect();
        prop_assert_eq!(lbytes, lref);
        prop_assert_eq!(rbytes, rref);
    }

    #[test]
    fn dense_patch_coalesces_to_one_chunk(rows in 1usize..32, row in 1usize..128, off in 0usize..256) {
        let s = Strided::patch2d(off, row, rows, row); // ld == row: dense
        let chunks = s.chunks();
        prop_assert_eq!(chunks.len(), 1);
        prop_assert_eq!(chunks[0], (off, rows * row));
    }

    #[test]
    fn patch2d_chunk_count(rows in 1usize..32, row in 1usize..64, gap in 1usize..32) {
        let s = Strided::patch2d(0, row, rows, row + gap);
        prop_assert_eq!(s.chunks().len(), rows);
        prop_assert_eq!(s.nchunks(), rows);
    }
}
