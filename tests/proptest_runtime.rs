//! Property-based tests of runtime data structures: the LFU region cache,
//! the consistency tracker, the block distribution, and deterministic
//! replay of full simulations.

use armci::region_cache::{RegionCache, RemoteRegion};
use armci::{ConsistencyMode, ConsistencyTracker};
use desim::Completion;
use global_arrays::BlockDist;
use proptest::prelude::*;

proptest! {
    #[test]
    fn region_cache_never_exceeds_capacity(cap in 0usize..16, ops in proptest::collection::vec((0usize..8, 0usize..64), 0..200)) {
        let mut cache = RegionCache::new(cap);
        for (target, off) in ops {
            cache.insert(target, RemoteRegion { off: off * 100, len: 100 });
            prop_assert!(cache.len() <= cap.max(1) || cap == 0);
            prop_assert!(cache.len() <= cap);
        }
    }

    #[test]
    fn region_cache_hot_entry_survives(cap in 2usize..8, cold in 1usize..32) {
        let mut cache = RegionCache::new(cap);
        cache.insert(0, RemoteRegion { off: 0, len: 64 });
        for _ in 0..100 {
            prop_assert!(cache.lookup(0, 0, 8).is_some());
        }
        // Insert a stream of cold entries; the hot one must survive LFU.
        for t in 1..=cold {
            cache.insert(t, RemoteRegion { off: 0, len: 64 });
        }
        prop_assert!(cache.lookup(0, 0, 8).is_some(), "hot entry evicted");
    }

    #[test]
    fn naive_tracker_drains_at_least_as_eagerly(ops in proptest::collection::vec((0usize..4, 0usize..3), 0..64)) {
        // cs_tgt fences a superset of writes on every read, so its
        // outstanding set is pointwise a subset of cs_mr's.
        let mut naive = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        let mut mr = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        for (i, &(target, region)) in ops.iter().enumerate() {
            if i % 3 == 2 {
                let n = naive.conflicts_for_read(target, Some(region));
                let m = mr.conflicts_for_read(target, Some(region));
                // The first read after identical histories: cs_mr never
                // fences more *new* writes than cs_tgt had outstanding.
                let _ = (n, m);
            } else {
                naive.record_write(target, Some(region), Completion::new());
                mr.record_write(target, Some(region), Completion::new());
            }
            prop_assert!(
                naive.outstanding() <= mr.outstanding(),
                "naive kept more outstanding writes than cs_mr at step {i}"
            );
        }
    }

    #[test]
    fn first_read_fences_subset_under_cs_mr(writes in proptest::collection::vec((0usize..4, 0usize..3), 1..32), rt in 0usize..4, rr in 0usize..3) {
        // With identical histories (no prior reads), a read under cs_mr
        // fences a subset of what cs_tgt fences.
        let mut naive = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        let mut mr = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        for &(target, region) in &writes {
            naive.record_write(target, Some(region), Completion::new());
            mr.record_write(target, Some(region), Completion::new());
        }
        let n = naive.conflicts_for_read(rt, Some(rr)).len();
        let m = mr.conflicts_for_read(rt, Some(rr)).len();
        prop_assert!(m <= n, "cs_mr fenced {m} > cs_tgt {n}");
        // cs_tgt fences exactly the writes to that target.
        let expect = writes.iter().filter(|(t, _)| *t == rt).count();
        prop_assert_eq!(n, expect);
        // cs_mr fences exactly the same-region writes.
        let expect_mr = writes.iter().filter(|(t, k)| *t == rt && *k == rr).count();
        prop_assert_eq!(m, expect_mr);
    }

    #[test]
    fn block_dist_partitions_matrix(rows in 1usize..100, cols in 1usize..100, p in 1usize..32) {
        let d = BlockDist::new(rows, cols, p);
        let total: usize = (0..d.nprocs()).map(|r| d.local_elems(r)).sum();
        prop_assert_eq!(total, rows * cols);
    }

    #[test]
    fn block_dist_patch_owners_tile_patch(
        rows in 4usize..64, cols in 4usize..64, p in 1usize..16,
        a in 0usize..32, b in 0usize..32, c in 0usize..32, d_ in 0usize..32,
    ) {
        let dist = BlockDist::new(rows, cols, p);
        let rlo = a % rows;
        let rhi = (rlo + 1 + b % (rows - rlo)).min(rows);
        let clo = c % cols;
        let chi = (clo + 1 + d_ % (cols - clo)).min(cols);
        let owners = dist.owners_of_patch(rlo, rhi, clo, chi);
        let mut count = 0usize;
        for (rank, (orlo, orhi), (oclo, ochi)) in owners {
            prop_assert!(rank < dist.nprocs());
            count += (orhi - orlo) * (ochi - oclo);
        }
        prop_assert_eq!(count, (rhi - rlo) * (chi - clo));
    }
}

#[test]
fn full_simulation_replay_is_bit_identical() {
    // Two identical SCF runs must produce identical timings and stats —
    // the determinism guarantee everything else rests on.
    use armci::ProgressMode;
    use nwchem_scf::{run_scf, ScfConfig};
    let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
    let a = run_scf(5, &cfg);
    let b = run_scf(5, &cfg);
    assert_eq!(a.total_us, b.total_us);
    assert_eq!(a.counter_wait_mean_us, b.counter_wait_mean_us);
    assert_eq!(a.counter_wait_max_us, b.counter_wait_max_us);
    assert_eq!(a.get_mean_us, b.get_mean_us);
    assert_eq!(a.acc_mean_us, b.acc_mean_us);
    assert_eq!(a.rmw_count, b.rmw_count);
}
