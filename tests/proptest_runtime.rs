//! Randomized tests of runtime data structures: the LFU region cache, the
//! consistency tracker, the block distribution, and deterministic replay of
//! full simulations. Driven by the deterministic [`SimRng`].

use armci::region_cache::{RegionCache, RemoteRegion};
use armci::{ConsistencyMode, ConsistencyTracker};
use desim::{Completion, SimRng};
use global_arrays::BlockDist;

#[test]
fn region_cache_never_exceeds_capacity() {
    let mut rng = SimRng::new(41);
    for _ in 0..32 {
        let cap = rng.next_below(16) as usize;
        let nops = rng.next_below(200) as usize;
        let mut cache = RegionCache::new(cap);
        for _ in 0..nops {
            let target = rng.next_below(8) as usize;
            let off = rng.next_below(64) as usize;
            cache.insert(
                target,
                RemoteRegion {
                    off: off * 100,
                    len: 100,
                },
            );
            assert!(cache.len() <= cap.max(1) || cap == 0);
            assert!(cache.len() <= cap);
        }
    }
}

#[test]
fn region_cache_hot_entry_survives() {
    let mut rng = SimRng::new(42);
    for _ in 0..32 {
        let cap = rng.range(2, 8) as usize;
        let cold = rng.range(1, 32) as usize;
        let mut cache = RegionCache::new(cap);
        cache.insert(0, RemoteRegion { off: 0, len: 64 });
        for _ in 0..100 {
            assert!(cache.lookup(0, 0, 8).is_some());
        }
        // Insert a stream of cold entries; the hot one must survive LFU.
        for t in 1..=cold {
            cache.insert(t, RemoteRegion { off: 0, len: 64 });
        }
        assert!(cache.lookup(0, 0, 8).is_some(), "hot entry evicted");
    }
}

#[test]
fn naive_tracker_drains_at_least_as_eagerly() {
    // cs_tgt fences a superset of writes on every read, so its outstanding
    // set is pointwise a subset of cs_mr's.
    let mut rng = SimRng::new(43);
    for _ in 0..32 {
        let nops = rng.next_below(64) as usize;
        let mut naive = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        let mut mr = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        for i in 0..nops {
            let target = rng.next_below(4) as usize;
            let region = rng.next_below(3) as usize;
            if i % 3 == 2 {
                let n = naive.conflicts_for_read(target, Some(region));
                let m = mr.conflicts_for_read(target, Some(region));
                // The first read after identical histories: cs_mr never
                // fences more *new* writes than cs_tgt had outstanding.
                let _ = (n, m);
            } else {
                naive.record_write(target, Some(region), Completion::new());
                mr.record_write(target, Some(region), Completion::new());
            }
            assert!(
                naive.outstanding() <= mr.outstanding(),
                "naive kept more outstanding writes than cs_mr at step {i}"
            );
        }
    }
}

#[test]
fn first_read_fences_subset_under_cs_mr() {
    // With identical histories (no prior reads), a read under cs_mr fences
    // a subset of what cs_tgt fences.
    let mut rng = SimRng::new(44);
    for _ in 0..32 {
        let nwrites = rng.range(1, 32) as usize;
        let writes: Vec<(usize, usize)> = (0..nwrites)
            .map(|_| (rng.next_below(4) as usize, rng.next_below(3) as usize))
            .collect();
        let rt = rng.next_below(4) as usize;
        let rr = rng.next_below(3) as usize;
        let mut naive = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        let mut mr = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        for &(target, region) in &writes {
            naive.record_write(target, Some(region), Completion::new());
            mr.record_write(target, Some(region), Completion::new());
        }
        let n = naive.conflicts_for_read(rt, Some(rr)).len();
        let m = mr.conflicts_for_read(rt, Some(rr)).len();
        assert!(m <= n, "cs_mr fenced {m} > cs_tgt {n}");
        // cs_tgt fences exactly the writes to that target.
        let expect = writes.iter().filter(|(t, _)| *t == rt).count();
        assert_eq!(n, expect);
        // cs_mr fences exactly the same-region writes.
        let expect_mr = writes.iter().filter(|(t, k)| *t == rt && *k == rr).count();
        assert_eq!(m, expect_mr);
    }
}

#[test]
fn block_dist_partitions_matrix() {
    let mut rng = SimRng::new(45);
    for _ in 0..64 {
        let rows = rng.range(1, 100) as usize;
        let cols = rng.range(1, 100) as usize;
        let p = rng.range(1, 32) as usize;
        let d = BlockDist::new(rows, cols, p);
        let total: usize = (0..d.nprocs()).map(|r| d.local_elems(r)).sum();
        assert_eq!(total, rows * cols);
    }
}

#[test]
fn block_dist_patch_owners_tile_patch() {
    let mut rng = SimRng::new(46);
    for _ in 0..64 {
        let rows = rng.range(4, 64) as usize;
        let cols = rng.range(4, 64) as usize;
        let p = rng.range(1, 16) as usize;
        let dist = BlockDist::new(rows, cols, p);
        let rlo = rng.next_below(32) as usize % rows;
        let rhi = (rlo + 1 + rng.next_below(32) as usize % (rows - rlo)).min(rows);
        let clo = rng.next_below(32) as usize % cols;
        let chi = (clo + 1 + rng.next_below(32) as usize % (cols - clo)).min(cols);
        let owners = dist.owners_of_patch(rlo, rhi, clo, chi);
        let mut count = 0usize;
        for (rank, (orlo, orhi), (oclo, ochi)) in owners {
            assert!(rank < dist.nprocs());
            count += (orhi - orlo) * (ochi - oclo);
        }
        assert_eq!(count, (rhi - rlo) * (chi - clo));
    }
}

#[test]
fn full_simulation_replay_is_bit_identical() {
    // Two identical SCF runs must produce identical timings and stats —
    // the determinism guarantee everything else rests on.
    use armci::ProgressMode;
    use nwchem_scf::{run_scf, ScfConfig};
    let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
    let a = run_scf(5, &cfg);
    let b = run_scf(5, &cfg);
    assert_eq!(a.total_us, b.total_us);
    assert_eq!(a.counter_wait_mean_us, b.counter_wait_mean_us);
    assert_eq!(a.counter_wait_max_us, b.counter_wait_max_us);
    assert_eq!(a.get_mean_us, b.get_mean_us);
    assert_eq!(a.acc_mean_us, b.acc_mean_us);
    assert_eq!(a.rmw_count, b.rmw_count);
}
