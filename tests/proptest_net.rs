//! Randomized tests of the network model's global invariants: bandwidth
//! conservation, pairwise ordering, and control-traffic non-starvation —
//! for arbitrary interleaved traffic. Driven by the deterministic
//! [`SimRng`].

use desim::{SimDuration, SimRng, SimTime};
use torus5d::{BgqParams, MsgClass, NetState, Topology};

#[derive(Debug, Clone)]
struct Msg {
    inject_ns: u64,
    src: usize,
    dst: usize,
    bytes: usize,
    class: u8, // 0 ordered, 1 control, 2 unordered
}

/// 1..64 random messages on an 8-rank machine, sorted by injection time.
fn arb_traffic(rng: &mut SimRng) -> Vec<Msg> {
    let n = rng.range(1, 64) as usize;
    let mut traffic: Vec<Msg> = (0..n)
        .map(|_| {
            let src = rng.next_below(8) as usize;
            let dst = rng.next_below(8) as usize;
            Msg {
                inject_ns: rng.next_below(10_000),
                src,
                dst: if src == dst { (dst + 1) % 8 } else { dst },
                bytes: rng.range(1, 65536) as usize,
                class: rng.next_below(3) as u8,
            }
        })
        .collect();
    traffic.sort_by_key(|m| m.inject_ns);
    traffic
}

fn class_of(c: u8) -> MsgClass {
    match c {
        0 => MsgClass::Ordered,
        1 => MsgClass::Control,
        _ => MsgClass::Unordered,
    }
}

#[test]
fn ordered_bandwidth_is_conserved_per_source() {
    // The total wire time of Ordered messages from one source fits in the
    // [first injection, last arrival] window: no source exceeds link
    // bandwidth.
    let mut rng = SimRng::new(21);
    for _ in 0..32 {
        let traffic = arb_traffic(&mut rng);
        let topo = Topology::for_procs(8, 1);
        let params = BgqParams::default();
        let mut net = NetState::new(topo, params.clone(), false);
        let mut per_src: std::collections::HashMap<usize, (SimTime, SimTime, u64)> =
            Default::default();
        for m in &traffic {
            let inject = SimTime::ZERO + SimDuration::from_ns(m.inject_ns);
            let arrival = net.deliver(inject, m.src, m.dst, m.bytes, class_of(m.class));
            assert!(arrival > inject);
            if m.class == 0 {
                let e = per_src.entry(m.src).or_insert((inject, arrival, 0));
                e.0 = e.0.min(inject);
                e.1 = e.1.max(arrival);
                e.2 += params.wire_time(m.bytes).as_ps();
            }
        }
        for (src, (first, last, wire_total)) in per_src {
            let window = last.since(first).as_ps();
            assert!(
                wire_total <= window,
                "src {src}: {wire_total} ps of wire in a {window} ps window"
            );
        }
    }
}

#[test]
fn pair_arrivals_are_monotone_for_ordered_classes() {
    let mut rng = SimRng::new(22);
    for _ in 0..32 {
        let traffic = arb_traffic(&mut rng);
        let topo = Topology::for_procs(8, 1);
        let mut net = NetState::new(topo, BgqParams::default(), false);
        let mut last_pair: std::collections::HashMap<(usize, usize), SimTime> = Default::default();
        for m in &traffic {
            let inject = SimTime::ZERO + SimDuration::from_ns(m.inject_ns);
            let arrival = net.deliver(inject, m.src, m.dst, m.bytes, class_of(m.class));
            if m.class != 2 {
                if let Some(&prev) = last_pair.get(&(m.src, m.dst)) {
                    assert!(
                        arrival >= prev,
                        "pair ({},{}) reordered: {arrival:?} < {prev:?}",
                        m.src,
                        m.dst
                    );
                }
                last_pair.insert((m.src, m.dst), arrival);
            }
        }
    }
}

#[test]
fn unordered_latency_is_load_independent() {
    // An AMO's latency equals the analytic reference no matter what
    // traffic preceded it on fresh pairs.
    let mut rng = SimRng::new(23);
    for _ in 0..32 {
        let traffic = arb_traffic(&mut rng);
        let probe_bytes = rng.range(1, 64) as usize;
        let topo = Topology::for_procs(8, 1);
        let mut net = NetState::new(topo, BgqParams::default(), false);
        for m in &traffic {
            let inject = SimTime::ZERO + SimDuration::from_ns(m.inject_ns);
            // Keep probe pair (6 -> 7) out of the background traffic.
            if (m.src, m.dst) != (6, 7) {
                net.deliver(inject, m.src, m.dst, m.bytes, class_of(m.class));
            }
        }
        let t = SimTime::ZERO + SimDuration::from_ms(1);
        let arrival = net.deliver(t, 6, 7, probe_bytes, MsgClass::Unordered);
        let expect = net.analytic(6, 7, probe_bytes);
        assert_eq!(arrival, t + expect);
    }
}

#[test]
fn contended_mode_never_beats_analytic() {
    let mut rng = SimRng::new(24);
    for _ in 0..32 {
        let traffic = arb_traffic(&mut rng);
        let topo = Topology::for_procs(8, 1);
        let mut analytic = NetState::new(topo.clone(), BgqParams::default(), false);
        let mut contended = NetState::new(topo, BgqParams::default(), true);
        for m in &traffic {
            let inject = SimTime::ZERO + SimDuration::from_ns(m.inject_ns);
            let a = analytic.deliver(inject, m.src, m.dst, m.bytes, class_of(m.class));
            let c = contended.deliver(inject, m.src, m.dst, m.bytes, class_of(m.class));
            assert!(c >= a, "contended {c:?} earlier than analytic {a:?}");
        }
    }
}
