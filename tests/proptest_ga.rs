//! End-to-end randomized test: arbitrary patches of a block-distributed
//! global array round-trip through the full ARMCI/PAMI/network stack.
//! Driven by the deterministic [`SimRng`].

use armci::{Armci, ArmciConfig};
use desim::{Sim, SimDuration, SimRng, SimTime};
use global_arrays::Ga;
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

#[allow(clippy::too_many_arguments)]
fn patch_round_trip(
    rows: usize,
    cols: usize,
    p: usize,
    rlo: usize,
    rhi: usize,
    clo: usize,
    chi: usize,
    caller: usize,
) -> (Vec<f64>, Vec<f64>) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(2),
    );
    let armci = Armci::new(machine, ArmciConfig::default());
    let ga = Ga::create(&armci, "t", rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            ga.set_direct(i, j, (i * cols + j) as f64);
        }
    }
    let rk = armci.rank(caller);
    let elems = (rhi - rlo) * (chi - clo);
    let got: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let ga2 = ga.clone();
    sim.spawn(async move {
        let buf = rk.malloc(elems * 8).await;
        // Read the patch, double it, write it back, read again.
        ga2.get_patch(&rk, rlo, rhi, clo, chi, buf).await;
        let v = rk.pami().read_f64s(buf, elems);
        let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
        rk.pami().write_f64s(buf, &doubled);
        ga2.put_patch(&rk, rlo, rhi, clo, chi, buf).await;
        rk.fence_all().await;
        let buf2 = rk.malloc(elems * 8).await;
        ga2.get_patch(&rk, rlo, rhi, clo, chi, buf2).await;
        *got2.borrow_mut() = rk.pami().read_f64s(buf2, elems);
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    armci.finalize();
    sim.shutdown();
    let expect: Vec<f64> = (rlo..rhi)
        .flat_map(|i| (clo..chi).map(move |j| 2.0 * (i * cols + j) as f64))
        .collect();
    let got = got.borrow().clone();
    (got, expect)
}

#[test]
fn arbitrary_patches_round_trip() {
    let mut rng = SimRng::new(31);
    for case in 0..12 {
        let rows = rng.range(4, 24) as usize;
        let cols = rng.range(4, 24) as usize;
        let p = rng.range(1, 7) as usize;
        let rlo = rng.next_below(rows as u64) as usize;
        let rhi = (rlo + 1 + rng.next_below(24) as usize % (rows - rlo)).min(rows);
        let clo = rng.next_below(cols as u64) as usize;
        let chi = (clo + 1 + rng.next_below(24) as usize % (cols - clo)).min(cols);
        let caller = rng.next_below(p as u64) as usize;
        let (got, expect) = patch_round_trip(rows, cols, p, rlo, rhi, clo, chi, caller);
        assert_eq!(
            got, expect,
            "case {case}: {rows}x{cols} p={p} patch [{rlo},{rhi})x[{clo},{chi}) caller {caller}"
        );
    }
}

#[test]
fn full_matrix_patch_from_every_rank() {
    for caller in 0..4 {
        let (got, expect) = patch_round_trip(12, 9, 4, 0, 12, 0, 9, caller);
        assert_eq!(got, expect, "caller {caller}");
    }
}

#[test]
fn single_element_patches() {
    let (got, expect) = patch_round_trip(8, 8, 4, 3, 4, 5, 6, 1);
    assert_eq!(got, expect);
}
