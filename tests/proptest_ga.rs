//! End-to-end property test: arbitrary patches of a block-distributed
//! global array round-trip through the full ARMCI/PAMI/network stack.

use armci::{Armci, ArmciConfig};
use desim::{Sim, SimDuration, SimTime};
use global_arrays::Ga;
use pami_sim::{Machine, MachineConfig};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn patch_round_trip(
    rows: usize,
    cols: usize,
    p: usize,
    rlo: usize,
    rhi: usize,
    clo: usize,
    chi: usize,
    caller: usize,
) -> (Vec<f64>, Vec<f64>) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(2),
    );
    let armci = Armci::new(machine, ArmciConfig::default());
    let ga = Ga::create(&armci, "t", rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            ga.set_direct(i, j, (i * cols + j) as f64);
        }
    }
    let rk = armci.rank(caller);
    let elems = (rhi - rlo) * (chi - clo);
    let got: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    let got2 = Rc::clone(&got);
    let ga2 = ga.clone();
    sim.spawn(async move {
        let buf = rk.malloc(elems * 8).await;
        // Read the patch, double it, write it back, read again.
        ga2.get_patch(&rk, rlo, rhi, clo, chi, buf).await;
        let v = rk.pami().read_f64s(buf, elems);
        let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
        rk.pami().write_f64s(buf, &doubled);
        ga2.put_patch(&rk, rlo, rhi, clo, chi, buf).await;
        rk.fence_all().await;
        let buf2 = rk.malloc(elems * 8).await;
        ga2.get_patch(&rk, rlo, rhi, clo, chi, buf2).await;
        *got2.borrow_mut() = rk.pami().read_f64s(buf2, elems);
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    armci.finalize();
    sim.shutdown();
    let expect: Vec<f64> = (rlo..rhi)
        .flat_map(|i| (clo..chi).map(move |j| 2.0 * (i * cols + j) as f64))
        .collect();
    let got = got.borrow().clone();
    (got, expect)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn arbitrary_patches_round_trip(
        rows in 4usize..24,
        cols in 4usize..24,
        p in 1usize..7,
        a in 0usize..24, b in 1usize..24,
        c in 0usize..24, d in 1usize..24,
        caller_sel in 0usize..8,
    ) {
        let rlo = a % rows;
        let rhi = (rlo + 1 + b % (rows - rlo)).min(rows);
        let clo = c % cols;
        let chi = (clo + 1 + d % (cols - clo)).min(cols);
        let caller = caller_sel % p;
        let (got, expect) = patch_round_trip(rows, cols, p, rlo, rhi, clo, chi, caller);
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn full_matrix_patch_from_every_rank() {
    for caller in 0..4 {
        let (got, expect) = patch_round_trip(12, 9, 4, 0, 12, 0, 9, caller);
        assert_eq!(got, expect, "caller {caller}");
    }
}

#[test]
fn single_element_patches() {
    let (got, expect) = patch_round_trip(8, 8, 4, 3, 4, 5, 6, 1);
    assert_eq!(got, expect);
}
