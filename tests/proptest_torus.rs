//! Randomized tests of the interconnect model's invariants, driven by the
//! deterministic [`SimRng`] (fixed seeds — every run checks the same cases).

use desim::SimRng;
use torus5d::{coords, routing, Mapping, Topology, TorusShape};

/// A random well-formed torus shape: dims in 1..=6, E in 1..=2.
fn arb_shape(rng: &mut SimRng) -> TorusShape {
    TorusShape::new([
        rng.range(1, 7) as u16,
        rng.range(1, 7) as u16,
        rng.range(1, 7) as u16,
        rng.range(1, 7) as u16,
        rng.range(1, 3) as u16,
    ])
}

#[test]
fn route_length_equals_wraparound_manhattan() {
    let mut rng = SimRng::new(1);
    for _ in 0..64 {
        let shape = arb_shape(&mut rng);
        let n = shape.num_nodes() as u64;
        let a = shape.node_coord(rng.next_below(n) as usize);
        let b = shape.node_coord(rng.next_below(n) as usize);
        let r = routing::route(&shape, a, b);
        assert_eq!(r.len() as u32, shape.torus_distance(a, b));
    }
}

#[test]
fn route_is_minimal_and_within_diameter() {
    let mut rng = SimRng::new(2);
    for _ in 0..64 {
        let shape = arb_shape(&mut rng);
        let n = shape.num_nodes() as u64;
        let a = shape.node_coord(0);
        let b = shape.node_coord(rng.next_below(n) as usize);
        assert!(shape.torus_distance(a, b) <= shape.diameter());
    }
}

#[test]
fn distance_is_a_metric() {
    let mut rng = SimRng::new(3);
    for _ in 0..64 {
        let shape = arb_shape(&mut rng);
        let n = shape.num_nodes() as u64;
        let a = shape.node_coord(rng.next_below(n) as usize);
        let b = shape.node_coord(rng.next_below(n) as usize);
        let c = shape.node_coord(rng.next_below(n) as usize);
        let dab = shape.torus_distance(a, b);
        let dba = shape.torus_distance(b, a);
        assert_eq!(dab, dba);
        assert_eq!(shape.torus_distance(a, a), 0);
        // Triangle inequality.
        assert!(shape.torus_distance(a, c) <= dab + shape.torus_distance(b, c));
    }
}

#[test]
fn node_index_bijection() {
    let mut rng = SimRng::new(4);
    for _ in 0..16 {
        let shape = arb_shape(&mut rng);
        let n = shape.num_nodes();
        let mut seen = vec![false; n];
        for c in shape.iter_coords() {
            let idx = shape.node_index(c);
            assert!(!seen[idx]);
            seen[idx] = true;
            assert_eq!(shape.node_coord(idx), c);
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn abcdet_mapping_is_a_bijection() {
    let mut rng = SimRng::new(5);
    for _ in 0..16 {
        let shape = arb_shape(&mut rng);
        let c = rng.range(1, 17) as usize;
        let m = Mapping::abcdet();
        let cap = shape.num_nodes() * c;
        let mut seen = std::collections::HashSet::new();
        for r in 0..cap.min(4096) {
            let (coord, slot) = m.rank_to_coord(r, &shape, c);
            assert!(seen.insert((coord, slot)), "duplicate placement");
            assert_eq!(m.coord_to_rank(coord, slot, &shape, c), r);
        }
    }
}

#[test]
fn wrap_delta_magnitude_is_min_distance() {
    let mut rng = SimRng::new(6);
    for _ in 0..256 {
        let size = rng.range(1, 32) as u16;
        let a = (rng.next_below(32) as u16) % size;
        let b = (rng.next_below(32) as u16) % size;
        let d = coords::wrap_delta(a, b, size);
        let fwd = (b as i32 - a as i32).rem_euclid(size as i32) as u32;
        let bwd = (a as i32 - b as i32).rem_euclid(size as i32) as u32;
        assert_eq!(d.unsigned_abs(), fwd.min(bwd));
    }
}

#[test]
fn topology_hops_zero_iff_same_node() {
    let mut rng = SimRng::new(7);
    for _ in 0..16 {
        let p = rng.range(2, 128) as usize;
        let c = rng.range(1, 8) as usize;
        let topo = Topology::for_procs(p, c);
        for a in 0..p.min(64) {
            for b in 0..p.min(64) {
                let same = topo.same_node(a, b);
                assert_eq!(topo.hops(a, b) == 0, same, "ranks {a} {b}");
            }
        }
    }
}
