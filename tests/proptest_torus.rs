//! Property-based tests of the interconnect model's invariants.

use proptest::prelude::*;
use torus5d::{coords, routing, Mapping, Topology, TorusShape};

fn arb_shape() -> impl Strategy<Value = TorusShape> {
    (1u16..=6, 1u16..=6, 1u16..=6, 1u16..=6, 1u16..=2)
        .prop_map(|(a, b, c, d, e)| TorusShape::new([a, b, c, d, e]))
}

proptest! {
    #[test]
    fn route_length_equals_wraparound_manhattan(shape in arb_shape(), i in 0usize..1000, j in 0usize..1000) {
        let n = shape.num_nodes();
        let a = shape.node_coord(i % n);
        let b = shape.node_coord(j % n);
        let r = routing::route(&shape, a, b);
        prop_assert_eq!(r.len() as u32, shape.torus_distance(a, b));
    }

    #[test]
    fn route_is_minimal_and_within_diameter(shape in arb_shape(), i in 0usize..1000) {
        let n = shape.num_nodes();
        let a = shape.node_coord(0);
        let b = shape.node_coord(i % n);
        prop_assert!(shape.torus_distance(a, b) <= shape.diameter());
    }

    #[test]
    fn distance_is_a_metric(shape in arb_shape(), i in 0usize..1000, j in 0usize..1000, k in 0usize..1000) {
        let n = shape.num_nodes();
        let a = shape.node_coord(i % n);
        let b = shape.node_coord(j % n);
        let c = shape.node_coord(k % n);
        let dab = shape.torus_distance(a, b);
        let dba = shape.torus_distance(b, a);
        prop_assert_eq!(dab, dba);
        prop_assert_eq!(shape.torus_distance(a, a), 0);
        // Triangle inequality.
        prop_assert!(shape.torus_distance(a, c) <= dab + shape.torus_distance(b, c));
    }

    #[test]
    fn node_index_bijection(shape in arb_shape()) {
        let n = shape.num_nodes();
        let mut seen = vec![false; n];
        for c in shape.iter_coords() {
            let idx = shape.node_index(c);
            prop_assert!(!seen[idx]);
            seen[idx] = true;
            prop_assert_eq!(shape.node_coord(idx), c);
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn abcdet_mapping_is_a_bijection(shape in arb_shape(), c in 1usize..=16) {
        let m = Mapping::abcdet();
        let cap = shape.num_nodes() * c;
        let mut seen = std::collections::HashSet::new();
        for r in 0..cap.min(4096) {
            let (coord, slot) = m.rank_to_coord(r, &shape, c);
            prop_assert!(seen.insert((coord, slot)), "duplicate placement");
            prop_assert_eq!(m.coord_to_rank(coord, slot, &shape, c), r);
        }
    }

    #[test]
    fn wrap_delta_magnitude_is_min_distance(size in 1u16..32, a in 0u16..32, b in 0u16..32) {
        let a = a % size;
        let b = b % size;
        let d = coords::wrap_delta(a, b, size);
        let fwd = (b as i32 - a as i32).rem_euclid(size as i32) as u32;
        let bwd = (a as i32 - b as i32).rem_euclid(size as i32) as u32;
        prop_assert_eq!(d.unsigned_abs(), fwd.min(bwd));
    }

    #[test]
    fn topology_hops_zero_iff_same_node(p in 2usize..128, c in 1usize..8) {
        let topo = Topology::for_procs(p, c);
        for a in 0..p.min(64) {
            for b in 0..p.min(64) {
                let same = topo.same_node(a, b);
                prop_assert_eq!(topo.hops(a, b) == 0, same, "ranks {} {}", a, b);
            }
        }
    }
}
