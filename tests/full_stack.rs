//! Cross-crate integration tests: the full desim → torus5d → pami-sim →
//! armci → global-arrays → nwchem-scf stack, asserting the paper's
//! qualitative results as invariants.

use armci::{Armci, ArmciConfig, ConsistencyMode, ProgressMode};
use desim::{Sim, SimDuration, SimTime};
use global_arrays::{Ga, SharedCounter};
use nwchem_scf::{run_scf, ScfConfig};
use pami_sim::{Machine, MachineConfig};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn fixture(p: usize, contexts: usize, mode: ProgressMode) -> (Sim, Armci) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(contexts),
    );
    let armci = Armci::new(machine, ArmciConfig::default().progress(mode));
    (sim, armci)
}

fn finish(sim: &Sim, armci: &Armci) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    armci.finalize();
    sim.shutdown();
}

#[test]
fn paper_headline_get_latency_holds_through_full_stack() {
    let (sim, armci) = fixture(2, 2, ProgressMode::AsyncThread);
    let r0 = armci.rank(0);
    let r1 = armci.rank(1);
    let lat = Rc::new(Cell::new(0.0));
    let lat2 = Rc::clone(&lat);
    let s = sim.clone();
    sim.spawn(async move {
        let remote = r1.malloc(64).await;
        let local = r0.malloc(64).await;
        r0.get(1, local, remote, 16).await;
        let t0 = s.now();
        for _ in 0..20 {
            r0.get(1, local, remote, 16).await;
        }
        lat2.set((s.now() - t0).as_us() / 20.0);
    });
    finish(&sim, &armci);
    assert!((lat.get() - 2.89).abs() < 0.05, "16B get = {}", lat.get());
}

#[test]
fn ga_over_armci_over_pami_moves_bits_correctly() {
    // A torture mix: strided puts, gets, accumulates and counter draws from
    // every rank concurrently, then global verification.
    let p = 9;
    let (sim, armci) = fixture(p, 2, ProgressMode::AsyncThread);
    let ga = Ga::create(&armci, "t", 30, 30);
    ga.fill(1.0);
    let counter = SharedCounter::create(&armci, 0);
    for r in 0..p {
        let rk = armci.rank(r);
        let ga = ga.clone();
        let counter = counter.clone();
        sim.spawn(async move {
            let buf = rk.malloc(30 * 30 * 8).await;
            loop {
                let t = counter.next(&rk, 1).await;
                if t >= 30 {
                    break;
                }
                // Each task accumulates +1 into one row.
                let row = t as usize;
                rk.pami().write_f64s(buf, &[1.0; 30]);
                ga.acc_patch(&rk, row, row + 1, 0, 30, buf, 1.0).await;
            }
            rk.barrier().await;
        });
    }
    finish(&sim, &armci);
    // Every row got exactly one +1 on top of the initial 1.0.
    for i in 0..30 {
        for j in 0..30 {
            assert_eq!(ga.get_direct(i, j), 2.0, "({i},{j})");
        }
    }
    assert_eq!(ga.checksum(), 2.0 * 900.0);
}

#[test]
fn at_never_loses_to_default_on_counter_heavy_workload() {
    for p in [4usize, 8, 12] {
        let d = run_scf(p, &ScfConfig::tiny(ProgressMode::Default));
        let at = run_scf(p, &ScfConfig::tiny(ProgressMode::AsyncThread));
        assert!(
            at.total_us <= d.total_us * 1.01,
            "p={p}: AT {} > D {}",
            at.total_us,
            d.total_us
        );
        assert!(
            at.counter_wait_mean_us <= d.counter_wait_mean_us,
            "p={p}: AT counter wait not better"
        );
    }
}

#[test]
fn consistency_modes_agree_on_results_differ_on_fences() {
    // Same random-ish workload under both trackers must produce identical
    // final data; only the induced-fence count may differ.
    let mut checksums = Vec::new();
    let mut fences = Vec::new();
    for mode in [ConsistencyMode::PerTarget, ConsistencyMode::PerRegion] {
        let p = 4;
        let sim = Sim::new();
        let machine = Machine::new(
            sim.clone(),
            MachineConfig::new(p).procs_per_node(1).contexts(2),
        );
        let armci = Armci::new(
            machine,
            ArmciConfig::default()
                .progress(ProgressMode::AsyncThread)
                .consistency(mode),
        );
        let a = Ga::create(&armci, "A", 16, 16);
        let c = Ga::create(&armci, "C", 16, 16);
        a.fill(3.0);
        c.fill(0.0);
        for r in 0..p {
            let rk = armci.rank(r);
            let (a, c) = (a.clone(), c.clone());
            sim.spawn(async move {
                let buf = rk.malloc(16 * 16 * 8).await;
                let contrib = rk.malloc(16 * 16 * 8).await;
                rk.pami().write_f64s(contrib, &[1.0; 256]);
                for _ in 0..5 {
                    c.acc_patch(&rk, 0, 16, 0, 16, contrib, 1.0).await;
                    a.get_patch(&rk, 0, 16, 0, 16, buf).await; // disjoint read
                                                               // The read must see pristine A regardless of mode.
                    assert_eq!(rk.pami().read_f64s(buf, 1)[0], 3.0);
                }
                rk.barrier().await;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        armci.finalize();
        sim.shutdown();
        checksums.push(c.checksum());
        fences.push(armci.induced_fences());
    }
    assert_eq!(checksums[0], checksums[1]);
    assert_eq!(checksums[0], (4 * 5 * 256) as f64);
    assert!(
        fences[1] < fences[0],
        "cs_mr ({}) must fence less than cs_tgt ({})",
        fences[1],
        fences[0]
    );
}

#[test]
fn fallback_and_rdma_paths_agree_on_data() {
    // The same program with regions enabled/disabled must move identical
    // bytes; only the timing and protocol counters differ.
    let mut sums = Vec::new();
    for limit in [None, Some(0)] {
        let sim = Sim::new();
        let machine = Machine::new(
            sim.clone(),
            MachineConfig::new(3)
                .procs_per_node(1)
                .contexts(2)
                .memregion_limit(limit),
        );
        let armci = Armci::new(machine, ArmciConfig::default());
        let done = Rc::new(Cell::new(0.0f64));
        let done2 = Rc::clone(&done);
        let r0 = armci.rank(0);
        let r1 = armci.rank(1);
        sim.spawn(async move {
            let src = r0.malloc(1024).await;
            let dst = r1.malloc(1024).await;
            let back = r0.malloc(1024).await;
            let data: Vec<f64> = (0..128).map(|x| x as f64 * 0.5).collect();
            r0.pami().write_f64s(src, &data);
            r0.put(1, src, dst, 1024).await;
            r0.fence(1).await;
            r0.get(1, back, dst, 1024).await;
            done2.set(r0.pami().read_f64s(back, 128).iter().sum());
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
        armci.finalize();
        sim.shutdown();
        sums.push(done.get());
    }
    assert_eq!(sums[0], sums[1]);
    assert_eq!(sums[0], (0..128).map(|x| x as f64 * 0.5).sum::<f64>());
}

#[test]
fn scf_scales_down_total_time_with_more_ranks() {
    // Strong scaling sanity: 8 ranks finish faster than 2 on the same work.
    let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
    let small = run_scf(2, &cfg);
    let large = run_scf(8, &cfg);
    assert!(
        large.total_us < small.total_us,
        "8 ranks ({}) not faster than 2 ({})",
        large.total_us,
        small.total_us
    );
}

/// One traced rmw workload (a miniature fig9 configuration): returns the
/// Chrome trace JSON and the metrics-snapshot JSON.
fn traced_rmw_run(mode: ProgressMode) -> (String, String) {
    let p = 6;
    let contexts = if mode == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let (sim, armci) = fixture(p, contexts, mode);
    let tracer = sim.tracer();
    tracer.enable(1 << 16);
    let owner = armci.machine().rank(0);
    let counter = owner.alloc(8);
    owner.write_i64(counter, 0);
    for r in 1..p {
        let rk = armci.rank(r);
        sim.spawn(async move {
            for _ in 0..4 {
                rk.rmw_fetch_add(0, counter, 1).await;
            }
            rk.barrier().await;
        });
    }
    {
        let rk = armci.rank(0);
        sim.spawn(async move {
            rk.barrier().await;
        });
    }
    finish(&sim, &armci);
    armci.machine().flush_net_stats();
    let mut ct = desim::ChromeTrace::new();
    ct.add_process(1, "rmw", &tracer);
    (ct.finish(), armci.machine().stats().snapshot().to_json())
}

#[test]
fn trace_and_snapshot_are_byte_identical_across_runs() {
    // The determinism guarantee, end to end: two identical simulations must
    // serialize to byte-identical Chrome traces and metrics snapshots.
    for mode in [ProgressMode::Default, ProgressMode::AsyncThread] {
        let (trace_a, snap_a) = traced_rmw_run(mode);
        let (trace_b, snap_b) = traced_rmw_run(mode);
        assert_eq!(trace_a, trace_b, "{mode:?}: trace JSON differs");
        assert_eq!(snap_a, snap_b, "{mode:?}: snapshot JSON differs");
        // The trace is non-trivial: it has rmw service spans and per-rank
        // tracks, and the snapshot carries the rmw wait histogram.
        assert!(trace_a.contains("\"pami.service.rmw\""), "no rmw spans");
        assert!(trace_a.contains("\"armci.rmw\""), "no armci rmw spans");
        assert!(snap_a.contains("\"armci.wait.rmw\""), "no rmw histogram");
        if mode == ProgressMode::AsyncThread {
            assert!(
                trace_a.contains("(at)"),
                "AT mode: no async-thread track in trace"
            );
        }
    }
}

#[test]
fn rank_latency_oscillates_with_torus_distance() {
    // Miniature Fig 7: on a multi-node partition, per-rank get latency is a
    // monotone function of hop count.
    let p = 64;
    let (sim, armci) = fixture(p, 2, ProgressMode::AsyncThread);
    let topo = armci.machine().topology().clone();
    let r0 = armci.rank(0);
    let lat: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p]));
    let lat2 = Rc::clone(&lat);
    let s = sim.clone();
    let armci2 = armci.clone();
    sim.spawn(async move {
        let local = r0.malloc(64).await;
        for t in 1..p {
            let pr = armci2.machine().rank(t);
            let off = pr.alloc(64);
            let _ = pr.register_region_untimed(off, 64);
            r0.get(t, local, off, 16).await; // warm
            let t0 = s.now();
            r0.get(t, local, off, 16).await;
            lat2.borrow_mut()[t] = (s.now() - t0).as_us();
        }
    });
    finish(&sim, &armci);
    let lat = lat.borrow();
    // Group by hops: means must be strictly increasing in hop count.
    let mut by_hops: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
    for t in 1..p {
        by_hops.entry(topo.hops(0, t)).or_default().push(lat[t]);
    }
    let means: Vec<(u32, f64)> = by_hops
        .iter()
        .map(|(h, v)| (*h, v.iter().sum::<f64>() / v.len() as f64))
        .collect();
    for w in means.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "latency not increasing with hops: {means:?}"
        );
    }
    // Each extra hop adds ~2*35ns.
    if means.len() >= 2 {
        let (h0, l0) = means[1]; // skip intra-node entry if present
        let (h1, l1) = *means.last().unwrap();
        if h1 > h0 && h0 >= 1 {
            let per_hop = (l1 - l0) * 1000.0 / ((h1 - h0) as f64 * 2.0);
            assert!(
                (per_hop - 35.0).abs() < 5.0,
                "per-hop {per_hop} ns != 35 ns"
            );
        }
    }
}
