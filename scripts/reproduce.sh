#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the design ablations.
# Results land in results/*.txt, plus machine-readable JSON snapshots
# (results/*.json), a Chrome trace (results/fig9_rmw.trace.json), and
# critical-path breakdowns (results/*.breakdown.json) for the
# observability-instrumented figures. Full-scale fig9/fig11 take a few
# minutes. Finishes with the perf-regression gate: quick-config reruns
# diffed against the committed results/BENCH_*.json goldens via perfdiff.
#
# Usage: reproduce.sh [--jobs N]
#   --jobs N   forward to every bench binary: run sweep points on N threads.
#              Results are byte-identical for any N (collected by input index).
#
# The orthogonal `--workers N` flag (conservative parallel engine *inside*
# one simulation, DESIGN.md §16) is not forwarded here: outputs are
# byte-identical at any worker count, so the goldens regenerate the same
# either way, and the speedup curve is measured by simbench/fig_scale
# themselves (par_churn and netstorm rows).
set -euo pipefail
cd "$(dirname "$0")/.."
JOBS=""
if [[ "${1-}" == "--jobs" ]]; then
  [[ -n "${2-}" ]] || { echo "error: --jobs needs a value" >&2; exit 2; }
  JOBS="--jobs $2"
fi
cargo build --release -p bgq-bench --bins
mkdir -p results
# Binary stdout goes to the results file; stderr stays on the console so
# failures are visible instead of buried in the result file.
run() { echo "== $1"; ./target/release/"$1" ${2-} $JOBS > "results/$1.txt"; }
# Any machine-readable artifact a binary was asked to write must exist and
# be non-empty, or the reproduction is broken — fail loudly.
check_json() {
  for f in "$@"; do
    [[ -s "$f" ]] || { echo "error: expected JSON output $f is missing or empty" >&2; exit 1; }
  done
}
run table2_attributes
run fig3_latency
run fig4_bandwidth
run fig5_latency_per_byte
run fig6_efficiency
run fig7_rank_latency
run fig8_strided
run fig9_rmw "--json results/fig9_rmw.json --trace results/fig9_rmw.trace.json --breakdown results/fig9_rmw.breakdown.json --timeline results/fig9_rmw.timeline.json"
check_json results/fig9_rmw.json results/fig9_rmw.trace.json results/fig9_rmw.breakdown.json results/fig9_rmw.timeline.json
run fig11_nwchem_scf "--json results/fig11_nwchem_scf.json --breakdown results/fig11_nwchem_scf.breakdown.json --timeline results/fig11_nwchem_scf.timeline.json"
check_json results/fig11_nwchem_scf.json results/fig11_nwchem_scf.breakdown.json results/fig11_nwchem_scf.timeline.json
run abl_fallback
run abl_contexts
run abl_consistency
run abl_region_cache
run abl_strided_pack
run abl_contention
run abl_mapping
run fig_fault "--json results/fig_fault.json --timeline results/fig_fault.timeline.json"
check_json results/fig_fault.json results/fig_fault.timeline.json
run fig_am "--json results/fig_am.json --timeline results/fig_am.timeline.json"
check_json results/fig_am.json results/fig_am.timeline.json
echo "== simulator self-benchmark (simbench; wall-clock, host-dependent)"
./target/release/simbench --quick $JOBS --json results/simbench.json \
  > results/simbench.txt
check_json results/simbench.json
# Loose self-benchmark gate: catches gross regressions (and schema drift)
# against the committed golden while the generous tolerance absorbs the
# host-dependent wall-clock/speedup fields. The strict determinism check on
# events/sim_time_ps lives in crates/bench/tests/determinism.rs.
./target/release/perfdiff results/BENCH_simbench.json results/simbench.json --tol 20
echo "== perf-regression gate (quick configs vs results/BENCH_* goldens)"
./target/release/fig9_rmw --procs 2,8,32 --ops 5 $JOBS \
  --json results/gate_fig9_rmw.json \
  --breakdown results/gate_fig9_rmw.breakdown.json \
  --timeline results/gate_fig9_rmw.timeline.json > /dev/null
./target/release/fig11_nwchem_scf --quick --procs 32 $JOBS \
  --json results/gate_fig11_nwchem_scf.json \
  --breakdown results/gate_fig11_nwchem_scf.breakdown.json > /dev/null
check_json results/gate_fig9_rmw.json results/gate_fig9_rmw.breakdown.json \
  results/gate_fig9_rmw.timeline.json \
  results/gate_fig11_nwchem_scf.json results/gate_fig11_nwchem_scf.breakdown.json
./target/release/perfdiff results/BENCH_fig9_rmw.json results/gate_fig9_rmw.json --check
./target/release/perfdiff results/BENCH_fig9_rmw.breakdown.json results/gate_fig9_rmw.breakdown.json --check
# Timeline artifacts are pure virtual-time telemetry — every window index
# and counter delta is deterministic, so this gate runs at zero tolerance.
./target/release/perfdiff results/BENCH_fig9_rmw.timeline.json results/gate_fig9_rmw.timeline.json --tol 0 --check
# Non-gating human report over the same artifact (sparklines + health rules).
./target/release/simstat results/gate_fig9_rmw.timeline.json > results/simstat.txt || true
./target/release/perfdiff results/BENCH_fig11_nwchem_scf.json results/gate_fig11_nwchem_scf.json --check
./target/release/perfdiff results/BENCH_fig11_nwchem_scf.breakdown.json results/gate_fig11_nwchem_scf.breakdown.json --check
# Fault-injection sweep: every fault-v1 field is deterministic, so this
# gate runs at zero tolerance — any sim_time_ps or counter drift is real.
./target/release/fig_fault --procs 32 --msgs 8 --sizes 4096,65536 --fault-rate 0,5000 $JOBS \
  --json results/gate_fig_fault.json > /dev/null
check_json results/gate_fig_fault.json
./target/release/perfdiff results/BENCH_fig_fault.json results/gate_fig_fault.json --tol 0 --check
# Active-message aggregation sweep: every am-v1 leaf is virtual-time
# deterministic (peak_rss_kb is candidate-only and never gates), so the
# default sweep diffs at zero tolerance against its committed golden.
./target/release/perfdiff results/BENCH_fig_am.json results/fig_am.json --tol 0 --check
# Memory-scaling sweep (fig_mem): per-subsystem peak/live bytes per rank
# across a p-sweep, plus the memstat report. Split gate: schema, tag set and
# growth classes are keys/strings and compare exactly at any tolerance;
# absolute byte counts may drift across compiler/std versions, so they get a
# loose relative band plus per-leaf absolute slack.
./target/release/fig_mem $JOBS --json results/fig_mem.json \
  --timeline results/fig_mem.timeline.json > results/fig_mem.txt
check_json results/fig_mem.json results/fig_mem.timeline.json
./target/release/perfdiff results/BENCH_memscale.json results/fig_mem.json --tol 0.35 --abs 8192 --check
./target/release/memstat results/fig_mem.json > results/memstat.txt
# Million-rank scaling (fig_scale): the small-p deterministic signature
# (virtual times, event counts, materialized ranks, task-table size, and
# the netstorm batch-engine delivery signature) gates at zero tolerance;
# the full curves to p=1M are regenerated with the default sweep
# (`fig_scale --json results/BENCH_scale.json`) when the rank-lifecycle
# model changes intentionally. Serial by design — no $JOBS.
./target/release/fig_scale --procs 32,1024,32768 \
  --gate-json results/gate_fig_scale.json > results/fig_scale.txt
check_json results/gate_fig_scale.json
./target/release/perfdiff results/BENCH_scale_gate.json results/gate_fig_scale.json --tol 0 --check
echo "perf gate passed; all results in results/"
