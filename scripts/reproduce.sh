#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the design ablations.
# Results land in results/*.txt, plus machine-readable JSON snapshots
# (results/*.json) and a Chrome trace (results/fig9_rmw.trace.json) for the
# observability-instrumented figures. Full-scale fig9/fig11 take a few minutes.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p bgq-bench --bins
mkdir -p results
run() { echo "== $1"; ./target/release/"$1" ${2-} > "results/$1.txt" 2>&1; }
run table2_attributes
run fig3_latency
run fig4_bandwidth
run fig5_latency_per_byte
run fig6_efficiency
run fig7_rank_latency
run fig8_strided
run fig9_rmw "--json results/fig9_rmw.json --trace results/fig9_rmw.trace.json"
run fig11_nwchem_scf "--json results/fig11_nwchem_scf.json"
run abl_fallback
run abl_contexts
run abl_consistency
run abl_region_cache
run abl_strided_pack
run abl_contention
run abl_mapping
echo "all results in results/"
