//! Benches of the interconnect model: routing, mapping and delivery-time
//! computation (the per-message cost of the network layer).
//! Plain `Instant`-based harness; run with `cargo bench -p bgq-bench`.

use desim::SimTime;
use std::time::Instant;
use torus5d::{routing, BgqParams, Mapping, MsgClass, NetState, Topology, TorusShape};

fn time<F: FnMut() -> u64>(name: &str, iters: usize, mut f: F) {
    let mut sink = f();
    let t0 = Instant::now();
    for _ in 0..iters {
        sink = sink.wrapping_add(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.3} us/iter (sink {sink})", per * 1e6);
}

fn bench_routing() {
    let shape = TorusShape::for_nodes(512);
    let a = shape.node_coord(0);
    let b = shape.node_coord(377);
    time("interconnect/route_512n", 10_000, || {
        routing::route(&shape, a, b).len() as u64
    });
    time("interconnect/distance_512n", 10_000, || {
        shape.torus_distance(a, b) as u64
    });
}

fn bench_mapping() {
    let shape = TorusShape::for_nodes(256);
    let m = Mapping::abcdet();
    time("interconnect/rank_to_coord_4096", 100, || {
        let mut acc = 0usize;
        for r in 0..4096 {
            acc += m.rank_to_coord(r, &shape, 16).1;
        }
        acc as u64
    });
}

fn bench_delivery() {
    for contention in [false, true] {
        let label = if contention { "contended" } else { "analytic" };
        let topo = Topology::for_procs(4096, 16);
        let mut net = NetState::new(topo, BgqParams::default(), contention);
        let mut t = SimTime::ZERO;
        let mut src = 0usize;
        time(&format!("interconnect/deliver/{label}"), 10_000, || {
            src = (src + 997) % 4096;
            let dst = (src + 2048) % 4096;
            t = net.deliver(t, src, dst, 4096, MsgClass::Ordered);
            t.as_ps()
        });
    }
}

fn main() {
    bench_routing();
    bench_mapping();
    bench_delivery();
}
