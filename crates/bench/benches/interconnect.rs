//! Criterion benches of the interconnect model: routing, mapping and
//! delivery-time computation (the per-message cost of the network layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use desim::SimTime;
use torus5d::{routing, BgqParams, Mapping, MsgClass, NetState, Topology, TorusShape};

fn bench_routing(c: &mut Criterion) {
    let shape = TorusShape::for_nodes(512);
    let a = shape.node_coord(0);
    let b = shape.node_coord(377);
    c.bench_function("interconnect/route_512n", |bch| {
        bch.iter(|| routing::route(&shape, a, b).len());
    });
    c.bench_function("interconnect/distance_512n", |bch| {
        bch.iter(|| shape.torus_distance(a, b));
    });
}

fn bench_mapping(c: &mut Criterion) {
    let shape = TorusShape::for_nodes(256);
    let m = Mapping::abcdet();
    c.bench_function("interconnect/rank_to_coord_4096", |bch| {
        bch.iter(|| {
            let mut acc = 0usize;
            for r in 0..4096 {
                acc += m.rank_to_coord(r, &shape, 16).1;
            }
            acc
        });
    });
}

fn bench_delivery(c: &mut Criterion) {
    let mut g = c.benchmark_group("interconnect/deliver");
    for contention in [false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if contention { "contended" } else { "analytic" }),
            &contention,
            |bch, &contention| {
                let topo = Topology::for_procs(4096, 16);
                let mut net = NetState::new(topo, BgqParams::default(), contention);
                let mut t = SimTime::ZERO;
                let mut src = 0usize;
                bch.iter(|| {
                    src = (src + 997) % 4096;
                    let dst = (src + 2048) % 4096;
                    t = net.deliver(t, src, dst, 4096, MsgClass::Ordered);
                    t
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_routing, bench_mapping, bench_delivery
}
criterion_main!(benches);
