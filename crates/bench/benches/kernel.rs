//! Benches of the discrete-event kernel: how much host time one simulated
//! event costs (the figure harness's throughput is bounded by this).
//! Plain `Instant`-based harness; run with `cargo bench -p bgq-bench`.

use desim::{Completion, Sim, SimDuration};
use std::time::Instant;

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    // One warm-up iteration, then the timed batch.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.1} us/iter", per * 1e6);
}

fn bench_timer_wheel() {
    for n in [100usize, 1000, 10_000] {
        time(&format!("kernel/timers/{n}"), 20, || {
            let sim = Sim::new();
            for i in 0..n {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(SimDuration::from_ns(i as u64 % 977)).await;
                    s.sleep(SimDuration::from_ns(i as u64 % 331)).await;
                });
            }
            sim.run();
        });
    }
}

fn bench_completion_fanout() {
    time("kernel/completion_fanout_1000", 20, || {
        let sim = Sim::new();
        let done: Completion<u64> = Completion::new();
        for _ in 0..1000 {
            let d = done.clone();
            sim.spawn(async move { d.wait().await });
        }
        let d = done.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            d.complete(42);
        });
        sim.run();
    });
}

fn bench_mutex_convoy() {
    time("kernel/mutex_convoy_100x10", 20, || {
        let sim = Sim::new();
        let m = desim::sync::SimMutex::new();
        for _ in 0..100 {
            let m = m.clone();
            let s = sim.clone();
            sim.spawn(async move {
                for _ in 0..10 {
                    let _g = m.lock().await;
                    s.sleep(SimDuration::from_ns(50)).await;
                }
            });
        }
        sim.run();
    });
}

fn main() {
    bench_timer_wheel();
    bench_completion_fanout();
    bench_mutex_convoy();
}
