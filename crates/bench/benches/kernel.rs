//! Criterion benches of the discrete-event kernel: how much host time one
//! simulated event costs (the figure harness's throughput is bounded by
//! this).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use desim::{Completion, Sim, SimDuration};

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/timers");
    for n in [100usize, 1000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let sim = Sim::new();
                for i in 0..n {
                    let s = sim.clone();
                    sim.spawn(async move {
                        s.sleep(SimDuration::from_ns(i as u64 % 977)).await;
                        s.sleep(SimDuration::from_ns(i as u64 % 331)).await;
                    });
                }
                sim.run()
            });
        });
    }
    g.finish();
}

fn bench_completion_fanout(c: &mut Criterion) {
    c.bench_function("kernel/completion_fanout_1000", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let done: Completion<u64> = Completion::new();
            for _ in 0..1000 {
                let d = done.clone();
                sim.spawn(async move { d.wait().await });
            }
            let d = done.clone();
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(1)).await;
                d.complete(42);
            });
            sim.run()
        });
    });
}

fn bench_mutex_convoy(c: &mut Criterion) {
    c.bench_function("kernel/mutex_convoy_100x10", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let m = desim::sync::SimMutex::new();
            for _ in 0..100 {
                let m = m.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    for _ in 0..10 {
                        let _g = m.lock().await;
                        s.sleep(SimDuration::from_ns(50)).await;
                    }
                });
            }
            sim.run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_timer_wheel, bench_completion_fanout, bench_mutex_convoy
}
criterion_main!(benches);
