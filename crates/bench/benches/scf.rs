//! Criterion bench of the SCF mini-app: host cost of simulating one small
//! Fock-build sweep in each progress mode.

use armci::ProgressMode;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use nwchem_scf::{run_scf, ScfConfig};

fn bench_scf(c: &mut Criterion) {
    let mut g = c.benchmark_group("scf/tiny_8ranks");
    g.sample_size(10);
    for (label, mode) in [
        ("default", ProgressMode::Default),
        ("async_thread", ProgressMode::AsyncThread),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            let cfg = ScfConfig::tiny(mode);
            b.iter(|| run_scf(8, &cfg));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_scf
}
criterion_main!(benches);
