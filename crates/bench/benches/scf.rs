//! Bench of the SCF mini-app: host cost of simulating one small Fock-build
//! sweep in each progress mode.
//! Plain `Instant`-based harness; run with `cargo bench -p bgq-bench`.

use armci::ProgressMode;
use nwchem_scf::{run_scf, ScfConfig};
use std::time::Instant;

fn main() {
    for (label, mode) in [
        ("default", ProgressMode::Default),
        ("async_thread", ProgressMode::AsyncThread),
    ] {
        let cfg = ScfConfig::tiny(mode);
        run_scf(8, &cfg); // warm-up
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            run_scf(8, &cfg);
        }
        let per = t0.elapsed().as_secs_f64() / iters as f64;
        println!("scf/tiny_8ranks/{label:<28} {:>12.1} us/iter", per * 1e6);
    }
}
