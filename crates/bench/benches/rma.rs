//! Criterion benches of end-to-end simulated RMA operations: host cost of
//! one simulated blocking get/put/rmw and strided transfers through the
//! full ARMCI → PAMI → network stack.

use armci::{ArmciConfig, ProgressMode, Strided};
use bgq_bench::Fixture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use pami_sim::MachineConfig;

fn sim_get(bytes: usize, reps: usize) {
    let f = Fixture::new(2, 1, ArmciConfig::default());
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    f.sim.spawn(async move {
        let remote = r1.malloc(bytes.max(64)).await;
        let local = r0.malloc(bytes.max(64)).await;
        for _ in 0..reps {
            r0.get(1, local, remote, bytes).await;
        }
    });
    f.finish();
}

fn bench_blocking_get(c: &mut Criterion) {
    let mut g = c.benchmark_group("rma/blocking_get_x100");
    for bytes in [16usize, 4096, 1 << 20] {
        g.bench_with_input(BenchmarkId::from_parameter(bytes), &bytes, |b, &bytes| {
            b.iter(|| sim_get(bytes, 100));
        });
    }
    g.finish();
}

fn bench_rmw_contended(c: &mut Criterion) {
    c.bench_function("rma/rmw_16ranks_x10", |b| {
        b.iter(|| {
            let f = Fixture::with_machine(
                MachineConfig::new(16).procs_per_node(16).contexts(2),
                ArmciConfig::default().progress(ProgressMode::AsyncThread),
            );
            let counter = f.armci.machine().rank(0).alloc(8);
            for r in 1..16 {
                let rk = f.rank(r);
                f.sim.spawn(async move {
                    for _ in 0..10 {
                        rk.rmw_fetch_add(0, counter, 1).await;
                    }
                });
            }
            f.finish();
        });
    });
}

fn bench_strided(c: &mut Criterion) {
    let mut g = c.benchmark_group("rma/strided_get_64x4k");
    for (label, pack) in [("zero_copy", 0usize), ("packed", usize::MAX)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &pack, |b, &pack| {
            b.iter(|| {
                let f = Fixture::new(2, 1, ArmciConfig::default().pack_threshold(pack));
                let r0 = f.rank(0);
                let r1 = f.rank(1);
                f.sim.spawn(async move {
                    let remote_base = r1.malloc(64 * 8192).await;
                    let local_base = r0.malloc(64 * 4096).await;
                    let remote = Strided::patch2d(remote_base, 4096, 64, 8192);
                    let local = Strided::patch2d(local_base, 4096, 64, 4096);
                    r0.get_strided(1, &local, &remote).await;
                });
                f.finish();
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_blocking_get, bench_rmw_contended, bench_strided
}
criterion_main!(benches);
