//! Benches of end-to-end simulated RMA operations: host cost of one
//! simulated blocking get/put/rmw and strided transfers through the full
//! ARMCI → PAMI → network stack.
//! Plain `Instant`-based harness; run with `cargo bench -p bgq-bench`.

use armci::{ArmciConfig, ProgressMode, Strided};
use bgq_bench::Fixture;
use pami_sim::MachineConfig;
use std::time::Instant;

fn time<F: FnMut()>(name: &str, iters: usize, mut f: F) {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("{name:<40} {:>12.1} us/iter", per * 1e6);
}

fn sim_get(bytes: usize, reps: usize) {
    let f = Fixture::new(2, 1, ArmciConfig::default());
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    f.sim.spawn(async move {
        let remote = r1.malloc(bytes.max(64)).await;
        let local = r0.malloc(bytes.max(64)).await;
        for _ in 0..reps {
            r0.get(1, local, remote, bytes).await;
        }
    });
    f.finish();
}

fn bench_blocking_get() {
    for bytes in [16usize, 4096, 1 << 20] {
        time(&format!("rma/blocking_get_x100/{bytes}"), 20, || {
            sim_get(bytes, 100)
        });
    }
}

fn bench_rmw_contended() {
    time("rma/rmw_16ranks_x10", 20, || {
        let f = Fixture::with_machine(
            MachineConfig::new(16).procs_per_node(16).contexts(2),
            ArmciConfig::default().progress(ProgressMode::AsyncThread),
        );
        let counter = f.armci.machine().rank(0).alloc(8);
        for r in 1..16 {
            let rk = f.rank(r);
            f.sim.spawn(async move {
                for _ in 0..10 {
                    rk.rmw_fetch_add(0, counter, 1).await;
                }
            });
        }
        f.finish();
    });
}

fn bench_strided() {
    for (label, pack) in [("zero_copy", 0usize), ("packed", usize::MAX)] {
        time(&format!("rma/strided_get_64x4k/{label}"), 20, || {
            let f = Fixture::new(2, 1, ArmciConfig::default().pack_threshold(pack));
            let r0 = f.rank(0);
            let r1 = f.rank(1);
            f.sim.spawn(async move {
                let remote_base = r1.malloc(64 * 8192).await;
                let local_base = r0.malloc(64 * 4096).await;
                let remote = Strided::patch2d(remote_base, 4096, 64, 8192);
                let local = Strided::patch2d(local_base, 4096, 64, 4096);
                r0.get_strided(1, &local, &remote).await;
            });
            f.finish();
        });
    }
}

fn main() {
    bench_blocking_get();
    bench_rmw_contended();
    bench_strided();
}
