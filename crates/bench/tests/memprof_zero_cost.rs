//! The allocation profiler's zero-cost contract, end to end: memory
//! profiling must *observe* a run, never perturb it. With [`MemProf`]
//! installed as this binary's global allocator, every simulated result
//! (virtual times, latencies, metrics counters) must be byte-identical
//! whether the profiler is disabled (the production default — one relaxed
//! atomic load per allocation) or fully enabled with scope attribution and
//! side-table accounting on every allocation. This is what keeps the
//! committed goldens valid while `fig_mem` profiles the same workloads.

use armci::ProgressMode;
use bgq_bench::fig9::run;
use bgq_bench::simbench::net_churn;
use desim::memprof::{self, MemProf};

#[global_allocator]
static ALLOC: MemProf = MemProf;

/// One test body (not two `#[test]`s): enable/disable is process-global, so
/// the phases must be strictly ordered.
#[test]
fn results_are_identical_with_profiling_off_and_on() {
    // Phase 1: profiler disabled — the baseline.
    assert!(!memprof::enabled());
    let churn_off = net_churn(64, 2000);
    let fig9_off = run(
        16,
        ProgressMode::AsyncThread,
        false,
        4,
        None,
        false,
        None,
        None,
        1,
    );

    // Phase 2: profiler fully on — worst case, every allocation attributed.
    memprof::enable();
    let churn_on = net_churn(64, 2000);
    let fig9_on = run(
        16,
        ProgressMode::AsyncThread,
        false,
        4,
        None,
        false,
        None,
        None,
        1,
    );
    memprof::disable();

    assert_eq!(churn_off.events, churn_on.events);
    assert_eq!(
        churn_off.sim_time_ps, churn_on.sim_time_ps,
        "profiling must not move a single delivery time"
    );
    assert_eq!(
        fig9_off.latency_us, fig9_on.latency_us,
        "fetch-and-add latency must not move when profiling is on"
    );
    assert_eq!(
        fig9_off.snapshot.to_json(),
        fig9_on.snapshot.to_json(),
        "metrics snapshot must be byte-identical"
    );

    // And the enabled phase really was observing: the workload's subsystem
    // tags accumulated activity in the global plane.
    let snap = memprof::global_snapshot();
    for tag in ["pami.queues", "armci.handles", "torus5d.links"] {
        assert!(
            snap.get(tag).is_some_and(|t| t.allocs > 0),
            "expected allocations under {tag} while enabled"
        );
    }

    // Phase 3: disabled again — results still match the baseline, so an
    // enable/disable cycle leaves no residue in the simulation.
    let churn_after = net_churn(64, 2000);
    assert_eq!(churn_off.events, churn_after.events);
    assert_eq!(churn_off.sim_time_ps, churn_after.sim_time_ps);
}
