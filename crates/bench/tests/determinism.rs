//! End-to-end determinism gate for the parallel sweep harness.
//!
//! Every bench binary must produce byte-identical stdout and JSON artifacts
//! regardless of `--jobs`: the harness parallelizes across *whole*
//! simulations and reassembles results by input index, so worker count can
//! never leak into the output. These tests run real binaries (quick
//! configurations) at `--jobs 1` and `--jobs 4` and diff everything.
//!
//! `--workers` (the in-simulation conservative parallel engine, DESIGN.md
//! §16) carries the same contract one level deeper: sharding a *single*
//! simulation must leave every output byte unchanged. The `*_workers_*`
//! tests diff `--workers 1` against `--workers 4` with zero tolerance.

use std::path::PathBuf;
use std::process::Command;

/// Run `bin` with `args` plus `--jobs <jobs>`, capturing stdout. When
/// `json` is set, a `--json <tmp>` flag is appended and the file contents
/// are returned alongside stdout.
fn run(bin: &str, args: &[&str], jobs: usize, json: Option<&str>) -> (String, Option<String>) {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    cmd.arg("--jobs").arg(jobs.to_string());
    let json_path = json.map(|tag| {
        let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
        p.push(format!("det_{tag}_j{jobs}.json"));
        p
    });
    if let Some(p) = &json_path {
        cmd.arg("--json").arg(p);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let json_body = json_path.map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    });
    (stdout, json_body)
}

/// Like [`run`], but varying `--workers` (the conservative parallel engine
/// shard count) instead of `--jobs` (the sweep-harness worker pool).
fn run_workers(
    bin: &str,
    args: &[&str],
    workers: usize,
    json: Option<&str>,
) -> (String, Option<String>) {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    cmd.arg("--workers").arg(workers.to_string());
    let json_path = json.map(|tag| {
        let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
        p.push(format!("det_{tag}_w{workers}.json"));
        p
    });
    if let Some(p) = &json_path {
        cmd.arg("--json").arg(p);
    }
    let out = cmd.output().unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let json_body = json_path.map(|p| {
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    });
    (stdout, json_body)
}

/// Strip lines that legitimately differ between invocations (the `wrote
/// <path>` echo names the per-jobs temp file).
fn stable_stdout(s: &str) -> String {
    s.lines()
        .filter(|l| !l.starts_with("wrote "))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Drop the `peak_rss_kb` splice from a JSON artifact. The field is host
/// context by design — ungated in perfdiff (candidate-only leaf) and
/// excluded from the byte-identity contract here, because the OS high-water
/// mark legitimately varies with worker count and allocator timing.
fn stable_json(s: &str) -> String {
    match s.find(",\"peak_rss_kb\":") {
        Some(i) => {
            let tail = &s[i + ",\"peak_rss_kb\":".len()..];
            let digits = tail.bytes().take_while(u8::is_ascii_digit).count();
            format!("{}{}", &s[..i], &tail[digits..])
        }
        None => s.to_string(),
    }
}

#[test]
fn fig4_bandwidth_is_jobs_invariant() {
    let bin = env!("CARGO_BIN_EXE_fig4_bandwidth");
    let args = ["--window", "1", "--reps", "1"];
    let (out1, json1) = run(bin, &args, 1, Some("fig4"));
    let (out4, json4) = run(bin, &args, 4, Some("fig4"));
    assert_eq!(
        stable_stdout(&out1),
        stable_stdout(&out4),
        "fig4 stdout must not depend on --jobs"
    );
    assert_eq!(json1, json4, "fig4 --json must not depend on --jobs");
    assert!(
        json1
            .expect("json written")
            .contains("\"schema\":\"fig4-v1\""),
        "fig4 JSON schema tag missing"
    );
}

#[test]
fn fig9_rmw_is_jobs_invariant() {
    let bin = env!("CARGO_BIN_EXE_fig9_rmw");
    let args = ["--procs", "2,8", "--ops", "3"];
    let (out1, json1) = run(bin, &args, 1, Some("fig9"));
    let (out4, json4) = run(bin, &args, 4, Some("fig9"));
    assert_eq!(
        stable_stdout(&out1),
        stable_stdout(&out4),
        "fig9 stdout must not depend on --jobs"
    );
    let (json1, json4) = (json1.expect("json written"), json4.expect("json written"));
    assert!(
        json1.contains("\"peak_rss_kb\":"),
        "host-context RSS field missing from fig9 JSON"
    );
    assert_eq!(
        stable_json(&json1),
        stable_json(&json4),
        "fig9 --json must not depend on --jobs (peak_rss_kb excepted)"
    );
}

#[test]
fn fig9_rmw_timeline_is_jobs_invariant_and_repeatable() {
    // The timeline-v1 artifact must be byte-identical across worker counts
    // and across repeated invocations — it feeds a zero-tolerance perfdiff
    // gate in CI.
    let bin = env!("CARGO_BIN_EXE_fig9_rmw");
    let run_tl = |jobs: &str, tag: &str| -> String {
        let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
        p.push(format!("det_fig9_tl_{tag}.json"));
        let out = Command::new(bin)
            .args(["--procs", "2,8", "--ops", "3", "--jobs", jobs, "--timeline"])
            .arg(&p)
            .output()
            .expect("spawn fig9_rmw");
        assert!(
            out.status.success(),
            "fig9_rmw --timeline failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    };
    let j1 = run_tl("1", "j1");
    let j4 = run_tl("4", "j4");
    let j4_again = run_tl("4", "j4_again");
    assert_eq!(j1, j4, "timeline JSON must not depend on --jobs");
    assert_eq!(j4, j4_again, "timeline JSON must be repeatable");
    assert!(j1.contains("\"schema\":\"timeline-v1\""));
    // All four configurations recorded at the smallest p.
    for run_name in ["\"D\"", "\"AT\"", "\"D+compute\"", "\"AT+compute\""] {
        assert!(j1.contains(run_name), "missing run {run_name}");
    }
    assert!(j1.contains("\"pami.queue_depth\""), "gauge series missing");
    assert!(j1.contains("\"net.msgs\""), "counter series missing");
}

#[test]
fn simbench_event_counts_are_deterministic() {
    // Two runs of the same workload must count the same events and reach
    // the same simulated time — wall-clock varies, virtual time never does.
    let bin = env!("CARGO_BIN_EXE_simbench");
    let args = [
        "--tasks",
        "32",
        "--steps",
        "100",
        "--pairs",
        "16",
        "--rounds",
        "100",
        "--churn-procs",
        "64",
        "--churn-msgs",
        "5000",
    ];
    let (_, json_a) = run(bin, &args, 2, Some("simbench_a"));
    let (_, json_b) = run(bin, &args, 2, Some("simbench_b"));
    let pick = |body: &str| -> Vec<String> {
        body.split(',')
            .filter(|f| f.contains("\"events\"") || f.contains("\"sim_time_ps\""))
            .map(str::to_owned)
            .collect()
    };
    let a = pick(&json_a.expect("json written"));
    let b = pick(&json_b.expect("json written"));
    assert!(
        !a.is_empty(),
        "no deterministic fields found in simbench JSON"
    );
    assert_eq!(a, b, "simbench event counts / sim times must be stable");
}

#[test]
fn simbench_net_churn_is_jobs_invariant() {
    // The net_churn delivery storm must reach the same message count and
    // final virtual time whether the binary runs its sweep serially or with
    // 4 workers (only wall-clock fields may differ between invocations).
    let bin = env!("CARGO_BIN_EXE_simbench");
    let args = [
        "--tasks",
        "8",
        "--steps",
        "20",
        "--pairs",
        "4",
        "--rounds",
        "20",
        "--churn-procs",
        "128",
        "--churn-msgs",
        "20000",
    ];
    let (_, json_1) = run(bin, &args, 1, Some("simbench_churn_j1"));
    let (_, json_4) = run(bin, &args, 4, Some("simbench_churn_j4"));
    let churn_fields = |body: &str| -> Vec<String> {
        let start = body
            .find("\"net_churn\"")
            .expect("net_churn section present");
        body[start..]
            .split(',')
            .filter(|f| f.contains("\"events\"") || f.contains("\"sim_time_ps\""))
            .take(2)
            .map(str::to_owned)
            .collect()
    };
    let a = churn_fields(&json_1.expect("json written"));
    let b = churn_fields(&json_4.expect("json written"));
    assert_eq!(a.len(), 2, "net_churn events + sim_time_ps present");
    assert_eq!(a, b, "net_churn results must not depend on --jobs");
}

#[test]
fn fig9_rmw_is_workers_invariant() {
    // Sharding the PAMI machine itself (--workers, not the sweep harness)
    // must leave stdout and the fig9-v2 JSON byte-identical: the
    // conservative engine's merge path reserves the exact sequence numbers
    // the serial run would assign.
    let bin = env!("CARGO_BIN_EXE_fig9_rmw");
    let args = ["--procs", "2,8", "--ops", "3"];
    let (out1, json1) = run_workers(bin, &args, 1, Some("fig9w"));
    let (out4, json4) = run_workers(bin, &args, 4, Some("fig9w"));
    assert_eq!(
        stable_stdout(&out1),
        stable_stdout(&out4),
        "fig9 stdout must not depend on --workers"
    );
    let (json1, json4) = (json1.expect("json written"), json4.expect("json written"));
    assert_eq!(
        stable_json(&json1),
        stable_json(&json4),
        "fig9 --json must not depend on --workers (peak_rss_kb excepted)"
    );
}

#[test]
fn simbench_net_churn_is_workers_invariant() {
    // At --workers > 1 the churn storm executes through the parallel batch
    // engine (`torus5d::deliver_batch`); its delivery count and final
    // arrival time must match the serial engine exactly.
    let bin = env!("CARGO_BIN_EXE_simbench");
    let args = [
        "--quick",
        "--tasks",
        "8",
        "--steps",
        "20",
        "--pairs",
        "4",
        "--rounds",
        "20",
        "--churn-procs",
        "128",
        "--churn-msgs",
        "20000",
    ];
    let (_, json_1) = run_workers(bin, &args, 1, Some("simbench_churn_w"));
    let (_, json_4) = run_workers(bin, &args, 4, Some("simbench_churn_w"));
    let churn_fields = |body: &str| -> Vec<String> {
        let start = body
            .find("\"net_churn\"")
            .expect("net_churn section present");
        body[start..]
            .split(',')
            .filter(|f| f.contains("\"events\"") || f.contains("\"sim_time_ps\""))
            .take(2)
            .map(str::to_owned)
            .collect()
    };
    let a = churn_fields(&json_1.expect("json written"));
    let b = churn_fields(&json_4.expect("json written"));
    assert_eq!(a.len(), 2, "net_churn events + sim_time_ps present");
    assert_eq!(a, b, "net_churn results must not depend on --workers");
}

#[test]
fn fig_am_is_jobs_invariant() {
    // Every am-v1 field — AM rates, wire counts, flight attribution — must
    // be byte-identical whether the sweep runs serially or on 4 harness
    // workers.
    let bin = env!("CARGO_BIN_EXE_fig_am");
    let args = ["--procs", "32", "--msgs", "16", "--sizes", "8,64"];
    let (out1, json1) = run(bin, &args, 1, Some("fig_am"));
    let (out4, json4) = run(bin, &args, 4, Some("fig_am"));
    assert_eq!(
        stable_stdout(&out1),
        stable_stdout(&out4),
        "fig_am stdout must not depend on --jobs"
    );
    let (json1, json4) = (json1.expect("json written"), json4.expect("json written"));
    assert!(json1.contains("\"schema\":\"am-v1\""));
    assert!(json1.contains("\"best_speedup\""));
    assert!(
        json1.contains("\"am_aggr_wait_ps\""),
        "flight attribution missing from am-v1 JSON"
    );
    assert_eq!(
        stable_json(&json1),
        stable_json(&json4),
        "fig_am --json must not depend on --jobs (peak_rss_kb excepted)"
    );
}

#[test]
fn fig_am_is_workers_invariant() {
    // Batched flushes cross shard boundaries through the reserved-sequence
    // mailbox: sharding the machine must leave the am-v1 document
    // byte-identical.
    let bin = env!("CARGO_BIN_EXE_fig_am");
    let args = ["--procs", "32", "--msgs", "16", "--sizes", "8,64"];
    let (out1, json1) = run_workers(bin, &args, 1, Some("fig_am_w"));
    let (out4, json4) = run_workers(bin, &args, 4, Some("fig_am_w"));
    assert_eq!(
        stable_stdout(&out1),
        stable_stdout(&out4),
        "fig_am stdout must not depend on --workers"
    );
    let (json1, json4) = (json1.expect("json written"), json4.expect("json written"));
    assert_eq!(
        stable_json(&json1),
        stable_json(&json4),
        "fig_am --json must not depend on --workers (peak_rss_kb excepted)"
    );
}

#[test]
fn fig_scale_gate_is_workers_invariant() {
    // The scale-gate-v2 document feeds the zero-tolerance CI gate; the
    // netstorm leaves in it come from the parallel batch engine, so the
    // whole artifact must be byte-identical at any --workers list.
    let bin = env!("CARGO_BIN_EXE_fig_scale");
    let run_gate = |workers: &str, tag: &str| -> String {
        let mut p = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
        p.push(format!("det_scale_gate_{tag}.json"));
        let out = Command::new(bin)
            .args([
                "--procs",
                "32",
                "--storm-msgs",
                "2000",
                "--workers",
                workers,
            ])
            .arg("--gate-json")
            .arg(&p)
            .output()
            .expect("spawn fig_scale");
        assert!(
            out.status.success(),
            "fig_scale --gate-json failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
    };
    let w1 = run_gate("1", "w1");
    let w4 = run_gate("4", "w4");
    assert_eq!(w1, w4, "scale gate JSON must not depend on --workers");
    assert!(w1.contains("\"schema\":\"scale-gate-v2\""));
    assert!(w1.contains("\"netstorm\""), "netstorm workload missing");
}
