//! The AM layer's zero-cost contract, end to end: with no
//! [`pami_sim::MachineConfig::am_batching`] configured, a machine carries no
//! batcher, emits no `am.*` telemetry, and — decisively — reproduces the
//! committed pre-AM goldens byte-for-byte. The fig_fault golden predates the
//! AM layer entirely, so matching its virtual times and counters exactly
//! proves the refactored delivery path (`enqueue_at_target`, the
//! `send_am`/batcher hooks) changed nothing on the hot path.

use bgq_bench::fault_bench::run_cell;
use bgq_bench::perfdiff::{flatten, Leaf};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};

fn golden_num(flat: &[(String, Leaf)], key: &str) -> f64 {
    match flat.iter().find(|(k, _)| k == key) {
        Some((_, Leaf::Num(n))) => *n,
        other => panic!("golden missing numeric {key}: {other:?}"),
    }
}

/// The production fault workload, fault-free and faulty columns, against
/// the committed golden values (written before the AM layer existed).
#[test]
fn am_disabled_runs_match_the_pre_am_fault_golden() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_fig_fault.json"
    );
    let golden = std::fs::read_to_string(path).expect("committed golden");
    let doc = desim::json::parse(&golden).expect("valid golden JSON");
    let flat = flatten(&doc);
    assert_eq!(golden_num(&flat, "cells[0].rate_ppm"), 0.0);
    assert_eq!(golden_num(&flat, "cells[0].size"), 4096.0);
    let clean = run_cell(32, 4096, 8, 0, 42);
    assert_eq!(
        clean.sim_time_ps as f64,
        golden_num(&flat, "cells[0].sim_time_ps"),
        "fault-free virtual time drifted from the pre-AM golden"
    );
    assert_eq!(
        clean.messages as f64,
        golden_num(&flat, "cells[0].messages")
    );

    // The faulty column exercises drops, timeouts and retransmits — the
    // paths the AM batcher now also rides — and must be untouched too.
    assert_eq!(golden_num(&flat, "cells[2].size"), 4096.0);
    let rate = golden_num(&flat, "cells[2].rate_ppm") as u64;
    let faulty = run_cell(32, 4096, 8, rate, 42);
    assert_eq!(
        faulty.sim_time_ps as f64,
        golden_num(&flat, "cells[2].sim_time_ps"),
        "faulty-column virtual time drifted from the pre-AM golden"
    );
    assert_eq!(faulty.retries as f64, golden_num(&flat, "cells[2].retries"));
    assert_eq!(
        faulty.timeouts as f64,
        golden_num(&flat, "cells[2].timeouts")
    );
}

/// Without `am_batching` there is no batcher, no `am.*` stats and no `am.*`
/// timeline series — the AM machinery is structurally absent, not merely
/// idle.
#[test]
fn no_batcher_means_no_am_surface() {
    let sim = Sim::new();
    let m = Machine::new(
        sim.clone(),
        MachineConfig::new(32).procs_per_node(16).contention(true),
    );
    m.enable_timeline(100_000_000, 512);
    assert!(m.batcher().is_none(), "no config, no batcher");
    for r in 0..32usize {
        let rk = m.rank(r);
        let src = rk.alloc(256);
        let dst = m.rank((r + 16) % 32).alloc(256);
        sim.spawn(async move {
            let h = rk.rdma_put((r + 16) % 32, src, dst, 256).await;
            h.remote.wait().await;
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    m.flush_net_stats();
    let snap = m.stats().snapshot();
    let json = snap.to_json();
    assert!(
        !json.contains("\"am."),
        "am.* stats leaked into an AM-free run: {json}"
    );
    let tl = m.sim().timeline().snapshot();
    assert!(
        tl.series.iter().all(|s| !s.name.starts_with("am.")),
        "am.* series interned without a batcher"
    );
}
