//! The timeline layer's zero-cost contract, end to end: telemetry must
//! *observe* a run, never perturb it. Enabling a timeline may not move any
//! simulated result (virtual times, latencies, metrics counters), and
//! leaving it disabled must leave workloads byte-identical to builds that
//! predate the timeline layer entirely — which keeps every committed
//! fault-free golden valid. (The allocation-freedom half of the contract is
//! pinned by `torus5d/tests/alloc_free.rs` with a counting allocator.)

use armci::ProgressMode;
use bgq_bench::fig9::run;
use bgq_bench::simbench::{net_churn, net_churn_timeline};
use bgq_bench::TIMELINE_WINDOW_PS;

/// fig9_rmw through the full ARMCI + PAMI + network stack: same latency and
/// same metrics snapshot with and without an active timeline, and the
/// enabled run actually captured series.
#[test]
fn fig9_timeline_observes_without_perturbing() {
    for mode in [ProgressMode::Default, ProgressMode::AsyncThread] {
        let bare = run(32, mode, true, 4, None, false, None, None, 1);
        let tl = run(
            32,
            mode,
            true,
            4,
            None,
            false,
            None,
            Some(TIMELINE_WINDOW_PS),
            1,
        );
        assert_eq!(
            bare.latency_us, tl.latency_us,
            "{mode:?}: latency must not move when telemetry is on"
        );
        assert_eq!(
            bare.snapshot.to_json(),
            tl.snapshot.to_json(),
            "{mode:?}: metrics snapshot must be byte-identical"
        );
        assert!(bare.timeline.is_none());
        let snap = tl.timeline.expect("timeline requested");
        assert!(
            snap.series("net.msgs").is_some(),
            "{mode:?}: network counters missing from timeline"
        );
        assert!(
            snap.series("pami.queue_depth").is_some(),
            "{mode:?}: queue-depth gauge missing from timeline"
        );
        assert!(
            snap.series("armci.inflight").is_some(),
            "{mode:?}: in-flight gauge missing from timeline"
        );
    }
}

/// The raw network hot path: the delivery storm yields identical results
/// with no timeline, with a *disabled* timeline attached (the production
/// default — one branch, no allocation), and with telemetry fully on.
#[test]
fn net_churn_results_are_timeline_invariant() {
    let bare = net_churn(128, 3000);
    let (disabled, no_snap) = net_churn_timeline(128, 3000, None, None);
    let (enabled, snap) = net_churn_timeline(128, 3000, None, Some(TIMELINE_WINDOW_PS / 100));
    assert_eq!(bare.events, disabled.events);
    assert_eq!(bare.sim_time_ps, disabled.sim_time_ps);
    assert_eq!(bare.events, enabled.events);
    assert_eq!(bare.sim_time_ps, enabled.sim_time_ps);
    assert!(no_snap.is_none());
    let snap = snap.expect("timeline requested");
    let msgs = snap.series("net.msgs").expect("message counter recorded");
    let total: u64 = msgs.windows.iter().map(|w| w.sum).sum();
    assert_eq!(total, bare.events, "every delivery lands in some window");
    assert!(
        snap.series("net.link_busy_ps").is_some(),
        "link occupancy missing"
    );
}
