//! Allocation attribution for the AM aggregation layer: with the profiler
//! on, a batched run charges its buffers, pending entries and timer
//! closures to the `pami.am` tag; an unbatched run charges the tag nothing
//! (so the tag is omitted from memprof-v1 documents and the committed
//! memory goldens stay untouched).

use bgq_bench::am_bench::run_cell;
use desim::memprof::{self, MemProf};

#[global_allocator]
static ALLOC: MemProf = MemProf;

/// One test body: enable/disable is process-global, so the unbatched phase
/// must run under the same enabled profiler as the batched one.
#[test]
fn batched_runs_charge_the_pami_am_tag_and_unbatched_charge_nothing() {
    memprof::enable();

    let m0 = memprof::mark();
    run_cell(32, 8, 16, 0, 1, 1); // window 0: no batcher at all
    let unbatched = memprof::since(&m0);
    let un_allocs = unbatched.get("pami.am").map_or(0, |t| t.allocs);
    assert_eq!(
        un_allocs, 0,
        "unbatched run must not allocate under pami.am"
    );

    let m1 = memprof::mark();
    run_cell(32, 8, 16, 1, 1, 1); // 1 µs window: batcher active
    let batched = memprof::since(&m1);
    let tag = batched.get("pami.am").expect("pami.am tag recorded");
    assert!(
        tag.allocs > 0,
        "batched run must attribute allocations to pami.am"
    );
    assert!(tag.peak_bytes > 0, "aggregation buffers have a peak");
}
