//! The fault layer's zero-cost contract, end to end: installing an **empty**
//! [`desim::FaultPlan`] must leave real workloads byte-identical to runs
//! with no plan at all. This pins the fast-path guarantee — every
//! fault-aware branch in the machine, rank and network layers collapses to
//! the exact pre-fault code path when the plan has nothing to inject — so
//! the committed fault-free goldens stay valid forever.

use armci::ProgressMode;
use bgq_bench::fig9::run;
use bgq_bench::simbench::{net_churn, net_churn_with_faults};
use desim::FaultPlan;

/// fig9_rmw (the full ARMCI + PAMI + network stack, both progress modes,
/// with rank-0 compute) produces the same latency and the same metrics
/// snapshot with no plan and with an empty plan.
#[test]
fn fig9_with_empty_plan_is_byte_identical_to_no_plan() {
    for mode in [ProgressMode::Default, ProgressMode::AsyncThread] {
        let bare = run(32, mode, true, 4, None, false, None, None, 1);
        let empty = run(
            32,
            mode,
            true,
            4,
            None,
            false,
            Some(FaultPlan::new(99)),
            None,
            1,
        );
        assert_eq!(
            bare.latency_us, empty.latency_us,
            "{mode:?}: latency must not move"
        );
        assert_eq!(
            bare.snapshot.to_json(),
            empty.snapshot.to_json(),
            "{mode:?}: metrics snapshot must be byte-identical"
        );
    }
}

/// The raw network hot path: the contended all-to-all delivery storm yields
/// the same delivery count and final arrival time under an empty plan.
#[test]
fn net_churn_with_empty_plan_is_byte_identical() {
    let bare = net_churn(128, 3000);
    let empty = net_churn_with_faults(128, 3000, Some(FaultPlan::new(7)));
    assert_eq!(bare.events, empty.events);
    assert_eq!(bare.sim_time_ps, empty.sim_time_ps);
}
