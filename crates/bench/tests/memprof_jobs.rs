//! `--jobs` invariance of the memory-scaling sweep: per-run accounting is
//! taken with thread-local [`memprof::mark`]/[`since`] brackets *inside*
//! each worker closure, so the per-point snapshots — and the serialized
//! `memscale-v1` document — must be byte-identical whether the sweep runs
//! inline on one thread or fans out across four workers (which the harness
//! also reuses across points, the harder case).

use bgq_bench::memscale;
use desim::memprof::{self, MemProf};

#[global_allocator]
static ALLOC: MemProf = MemProf;

#[test]
fn per_run_accounting_is_jobs_invariant() {
    memprof::enable();
    let procs = [8, 16];
    let serial = memscale::run_sweep(&procs, 2, 16, 1, false);
    let parallel = memscale::run_sweep(&procs, 2, 16, 4, false);

    for (s, p) in serial.fig9.iter().zip(&parallel.fig9) {
        assert_eq!(s.procs, p.procs);
        assert_eq!(s.snap, p.snap, "fig9_rmw p={} snapshot moved", s.procs);
    }
    for (s, p) in serial.churn.iter().zip(&parallel.churn) {
        assert_eq!(s.snap, p.snap, "net_churn p={} snapshot moved", s.procs);
    }
    // Timing fields are host wall time, the one intentionally ungated,
    // non-deterministic part — compare the document without them.
    assert_eq!(
        memscale::scale_json(&serial.fig9, &serial.churn, 2, 16, false),
        memscale::scale_json(&parallel.fig9, &parallel.churn, 2, 16, false),
        "memscale-v1 document must be byte-identical across --jobs"
    );

    // The sweep actually profiled something: a representative tag from each
    // layer shows activity at every point.
    for pt in &serial.fig9 {
        for tag in ["pami.queues", "armci.handles", "desim.kernel"] {
            assert!(
                pt.snap.get(tag).is_some_and(|t| t.allocs > 0),
                "fig9_rmw p={} missing {tag}",
                pt.procs
            );
        }
    }
}
