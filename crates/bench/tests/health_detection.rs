//! The health rules catch real pathologies in real workloads — and do so
//! deterministically. `net_churn`'s staggered all-to-all storm must trip
//! the congestion-onset rule (injection outruns link capacity); `fig_fault`
//! at a stormy corruption rate must trip the retry-storm rule around the
//! fault plan's link-down window. Running the same workload twice must
//! produce byte-identical findings (they feed trace instants and `simstat`
//! reports that CI compares).

use bgq_bench::fault_bench::run_cell_timeline;
use bgq_bench::simbench::net_churn_timeline;
use bgq_bench::TIMELINE_WINDOW_PS;
use desim::health::analyze;
use desim::HealthConfig;

fn render(findings: &[desim::Finding]) -> String {
    findings
        .iter()
        .map(|f| {
            format!(
                "[{}] w{} {}: {}\n",
                f.severity.as_str(),
                f.window,
                f.rule,
                f.evidence
            )
        })
        .collect()
}

#[test]
fn net_churn_trips_congestion_onset_deterministically() {
    let cfg = HealthConfig::default();
    let run = || {
        let (_, snap) = net_churn_timeline(128, 20_000, None, Some(TIMELINE_WINDOW_PS / 100));
        analyze(&snap.expect("timeline on"), &cfg)
    };
    let a = run();
    assert!(
        a.iter().any(|f| f.rule == "congestion-onset"),
        "the delivery storm must saturate links: {}",
        render(&a)
    );
    assert_eq!(render(&a), render(&run()), "findings must be reproducible");
}

#[test]
fn fig_fault_storm_trips_retry_storm_deterministically() {
    let cfg = HealthConfig::default();
    // 5% per-traversal corruption + the plan's mid-run link-down window:
    // the same designated cell `fig_fault --fault-rate 0,50000 --msgs 32
    // --timeline` records.
    let run = || {
        let (_, snap) = run_cell_timeline(32, 4096, 32, 50_000, 42, Some(TIMELINE_WINDOW_PS), 1);
        analyze(&snap.expect("timeline on"), &cfg)
    };
    let a = run();
    assert!(
        a.iter().any(|f| f.rule == "retry-storm"),
        "sustained corruption must register as a retry storm: {}",
        render(&a)
    );
    assert_eq!(render(&a), render(&run()), "findings must be reproducible");
}
