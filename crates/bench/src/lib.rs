//! # bgq-bench — benchmark harness regenerating the paper's tables & figures
//!
//! One binary per table/figure (see `src/bin/`), each printing the same
//! rows/series the paper reports, plus ablation binaries for the design
//! choices of §III. Shared measurement helpers live here.
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table2_attributes` | Table II — empirical time/space attribute values |
//! | `fig3_latency` | Fig 3 — contiguous get/put latency vs message size |
//! | `fig4_bandwidth` | Fig 4 — get/put bandwidth vs message size |
//! | `fig5_latency_per_byte` | Fig 5 — effective latency/byte |
//! | `fig6_efficiency` | Fig 6 — bandwidth efficiency, N½ |
//! | `fig7_rank_latency` | Fig 7 — get latency vs process rank (ABCDET) |
//! | `fig8_strided` | Fig 8 — strided bandwidth vs contiguous chunk size |
//! | `fig9_rmw` | Fig 9 — fetch-and-add latency vs process count |
//! | `fig11_nwchem_scf` | Fig 11 — NWChem SCF, D vs AT |
//! | `fig_scale` | Million-rank scaling of lazily materialized rank state |
//! | `abl_*` | §III design-choice ablations |

use armci::{Armci, ArmciConfig, ArmciRank};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};

pub mod am_bench;
pub mod fault_bench;
pub mod fig9;
pub mod memscale;
pub mod perfdiff;
pub mod scale;
pub mod simbench;
pub mod simstat;
pub mod sweep;

/// The `--jobs` CLI option shared by every bench binary: parallel sweep
/// workers. Sweep points are whole independent simulations, so worker count
/// never changes results (see [`sweep::run_parallel`]).
pub const JOBS_FLAG: FlagSpec = (
    "--jobs",
    true,
    "parallel sweep workers (default: available cores)",
);

/// Sample width for `--timeline` windowed telemetry: 100 µs windows keep
/// even the large sweeps under the series cap without coarsening.
pub const TIMELINE_WINDOW_PS: u64 = 100_000_000;

/// The `--timeline` CLI option shared by the timeline-capable binaries.
pub const TIMELINE_FLAG: FlagSpec = (
    "--timeline",
    true,
    "write windowed-telemetry JSON (timeline-v1)",
);

/// Parse the `--jobs` option (default: available parallelism).
pub fn arg_jobs() -> usize {
    arg_usize("--jobs", sweep::default_jobs()).max(1)
}

/// The `--workers` CLI option shared by the parallel-engine-capable
/// binaries. Unlike `--jobs` (independent sweep points run concurrently),
/// `--workers` splits **one simulation** across conservative time-windowed
/// shards; every output stays byte-identical for any value (DESIGN.md §16).
pub const WORKERS_FLAG: FlagSpec = (
    "--workers",
    true,
    "in-simulation engine shards (default 1; outputs identical)",
);

/// Parse the `--workers` option (default 1 — the untouched serial hot path).
pub fn arg_workers() -> usize {
    arg_usize("--workers", 1).max(1)
}

/// One CLI option specification: `(name, takes_value, help)`.
pub type FlagSpec = (&'static str, bool, &'static str);

/// Render the `--help` text for a benchmark binary.
pub fn usage_text(bin: &str, about: &str, flags: &[FlagSpec]) -> String {
    let mut s = format!("{bin} — {about}\n\nusage: {bin}");
    for (name, takes, _) in flags {
        s.push_str(&format!(" [{name}{}]", if *takes { " <v>" } else { "" }));
    }
    s.push_str("\n\noptions:\n");
    for (name, takes, help) in flags {
        let lhs = format!("{name}{}", if *takes { " <v>" } else { "" });
        s.push_str(&format!("  {lhs:<18} {help}\n"));
    }
    s.push_str("  -h, --help         print this help\n");
    s
}

/// Scan an argument slice (program name excluded) against a flag table:
/// `Ok(true)` when help was requested, `Err(token)` on the first unknown
/// option. Value tokens following a value-taking flag are skipped, so
/// negative numbers and file paths never trip the check (testable core).
pub fn scan_args(args: &[String], flags: &[FlagSpec]) -> Result<bool, String> {
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            return Ok(true);
        }
        match flags.iter().find(|(n, _, _)| n == a) {
            Some((_, true, _)) => i += 1, // skip the flag's value token
            Some(_) => {}
            None if a.starts_with('-') => return Err(a.clone()),
            None => {}
        }
        i += 1;
    }
    Ok(false)
}

/// Enforce the CLI contract shared by every bench binary: `--help`/`-h`
/// prints the usage text and exits 0; an unknown option prints an error plus
/// the usage text to stderr and exits 2.
pub fn check_args(bin: &str, about: &str, flags: &[FlagSpec]) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match scan_args(&args, flags) {
        Ok(false) => {}
        Ok(true) => {
            print!("{}", usage_text(bin, about, flags));
            std::process::exit(0);
        }
        Err(tok) => {
            eprintln!("{bin}: unknown option '{tok}'");
            eprint!("{}", usage_text(bin, about, flags));
            std::process::exit(2);
        }
    }
}

/// A microbenchmark fixture: a simulated machine with an ARMCI runtime.
pub struct Fixture {
    /// The simulation.
    pub sim: Sim,
    /// The ARMCI runtime.
    pub armci: Armci,
}

impl Fixture {
    /// Build a fixture with `nprocs` ranks, `c` per node.
    pub fn new(nprocs: usize, c: usize, acfg: ArmciConfig) -> Fixture {
        Self::with_machine(MachineConfig::new(nprocs).procs_per_node(c), acfg)
    }

    /// Build a fixture from an explicit machine configuration.
    pub fn with_machine(mcfg: MachineConfig, acfg: ArmciConfig) -> Fixture {
        let sim = Sim::new();
        let machine = Machine::new(sim.clone(), mcfg);
        let armci = Armci::new(machine, acfg);
        Fixture { sim, armci }
    }

    /// Rank handle.
    pub fn rank(&self, r: usize) -> ArmciRank {
        self.armci.rank(r)
    }

    /// Run the simulation to completion (bounded) and tear down daemons.
    pub fn finish(&self) {
        self.sim
            .run_until(SimTime::ZERO + SimDuration::from_secs(600));
        self.armci.finalize();
        self.sim.shutdown();
    }
}

/// Measure mean blocking **get** latency from rank 0 to rank `target` for
/// `bytes`, over `reps` repetitions (caches warmed first).
pub fn get_latency(nprocs: usize, c: usize, target: usize, bytes: usize, reps: usize) -> f64 {
    let f = Fixture::new(nprocs, c, ArmciConfig::default());
    let r0 = f.rank(0);
    let rt = f.rank(target);
    let s = f.sim.clone();
    let out = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
    let out2 = out.clone();
    f.sim.spawn(async move {
        let remote = rt.malloc(bytes.max(64)).await;
        let local = r0.malloc(bytes.max(64)).await;
        r0.get(target, local, remote, bytes).await; // warm caches
        let t0 = s.now();
        for _ in 0..reps {
            r0.get(target, local, remote, bytes).await;
        }
        out2.set((s.now() - t0).as_us() / reps as f64);
    });
    f.finish();
    out.get()
}

/// Measure mean blocking **put** latency (local completion) rank 0→`target`.
pub fn put_latency(nprocs: usize, c: usize, target: usize, bytes: usize, reps: usize) -> f64 {
    let f = Fixture::new(nprocs, c, ArmciConfig::default());
    let r0 = f.rank(0);
    let rt = f.rank(target);
    let s = f.sim.clone();
    let out = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
    let out2 = out.clone();
    f.sim.spawn(async move {
        let remote = rt.malloc(bytes.max(64)).await;
        let local = r0.malloc(bytes.max(64)).await;
        r0.put(target, local, remote, bytes).await;
        let t0 = s.now();
        for _ in 0..reps {
            r0.put(target, local, remote, bytes).await;
        }
        out2.set((s.now() - t0).as_us() / reps as f64);
    });
    f.finish();
    out.get()
}

/// Windowed bandwidth (MB/s) with `window` outstanding operations of
/// `bytes` each, `reps` messages total. `is_get` selects get vs put.
pub fn bandwidth(nprocs: usize, bytes: usize, window: usize, reps: usize, is_get: bool) -> f64 {
    let f = Fixture::new(nprocs, 1, ArmciConfig::default());
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    let s = f.sim.clone();
    let out = std::rc::Rc::new(std::cell::Cell::new(0.0f64));
    let out2 = out.clone();
    f.sim.spawn(async move {
        let remote = r1.malloc(bytes * window).await;
        let local = r0.malloc(bytes * window).await;
        // Warm endpoint + region caches.
        r0.get(1, local, remote, bytes.min(64)).await;
        let t0 = s.now();
        let mut inflight = std::collections::VecDeque::new();
        for i in 0..reps {
            if inflight.len() == window {
                let h: armci::NbHandle = inflight.pop_front().unwrap();
                r0.wait(&h).await;
            }
            let slot = (i % window) * bytes;
            let h = if is_get {
                r0.nbget(1, local + slot, remote + slot, bytes).await
            } else {
                r0.nbput(1, local + slot, remote + slot, bytes).await
            };
            inflight.push_back(h);
        }
        while let Some(h) = inflight.pop_front() {
            r0.wait(&h).await;
        }
        let elapsed = s.now() - t0;
        out2.set((bytes * reps) as f64 / elapsed.as_secs() / 1.0e6);
    });
    f.finish();
    out.get()
}

/// Standard message-size sweep used by Figs 3–6 (powers of two).
pub fn size_sweep(lo: usize, hi: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut m = lo;
    while m <= hi {
        sizes.push(m);
        m *= 2;
    }
    sizes
}

/// Parse `--key value` from an argument slice (testable core).
pub fn parse_usize(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parse `--key a,b,c` from an argument slice (testable core).
pub fn parse_list(args: &[String], name: &str, default: &[usize]) -> Vec<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

/// Parse `--key value` style CLI options with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    parse_usize(&args, name, default)
}

/// Parse a `--key a,b,c` list option with a default.
pub fn arg_list(name: &str, default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    parse_list(&args, name, default)
}

/// Parse `--key value` for a string-valued option (testable core).
pub fn parse_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a `--key value` string option (e.g. `--json out.json`).
pub fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    parse_str(&args, name)
}

/// True when `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Write a text artifact (JSON snapshot, Chrome trace) to `path`, creating
/// parent directories as needed, and report it on stdout.
pub fn write_text(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    match std::fs::write(path, contents) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// Peak resident-set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); 0 when the platform does not expose it. Reported
/// by the bench binaries as an *ungated* context field — it varies by host
/// and allocator, so CI never compares it.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Splice an extra numeric field into the top level of a JSON document:
/// `,"key":value` is inserted immediately before the document's final `}`
/// (trailing whitespace preserved). Used to attach ungated context fields
/// like `peak_rss_kb` to snapshots whose schema is otherwise fixed —
/// `perfdiff` ignores candidate-only leaves, so goldens stay untouched.
pub fn append_json_field(doc: &str, key: &str, value: u64) -> String {
    match doc.rfind('}') {
        Some(i) => format!("{},\"{}\":{}{}", &doc[..i], key, value, &doc[i..]),
        None => doc.to_string(),
    }
}

/// Human-friendly byte-size label.
pub fn fmt_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{}K", bytes >> 10)
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_latency_16b_adjacent_matches_fig3() {
        // 2 procs, 1/node -> adjacent nodes; 16 bytes -> 2.89 us.
        let lat = get_latency(2, 1, 1, 16, 10);
        assert!((lat - 2.89).abs() < 0.05, "{lat}");
    }

    #[test]
    fn put_latency_16b_adjacent_matches_fig3() {
        let lat = put_latency(2, 1, 1, 16, 10);
        assert!((lat - 2.70).abs() < 0.05, "{lat}");
    }

    #[test]
    fn bandwidth_reaches_peak_at_1mb() {
        let bw = bandwidth(2, 1 << 20, 2, 8, false);
        assert!(bw > 1700.0, "peak put bandwidth {bw}");
        let bw = bandwidth(2, 1 << 20, 2, 8, true);
        assert!(bw > 1700.0, "peak get bandwidth {bw}");
    }

    #[test]
    fn cli_parsing() {
        let args: Vec<String> = ["prog", "--procs", "64", "--list", "1,2,3", "--bad", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_usize(&args, "--procs", 8), 64);
        assert_eq!(parse_usize(&args, "--missing", 8), 8);
        assert_eq!(parse_usize(&args, "--bad", 8), 8); // unparsable -> default
        assert_eq!(parse_list(&args, "--list", &[9]), vec![1, 2, 3]);
        assert_eq!(parse_list(&args, "--missing", &[9]), vec![9]);
        assert_eq!(parse_str(&args, "--bad").as_deref(), Some("x"));
        assert_eq!(parse_str(&args, "--missing"), None);
        // value missing after the flag -> default
        let tail: Vec<String> = ["prog", "--procs"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_usize(&tail, "--procs", 7), 7);
    }

    #[test]
    fn arg_scanning_accepts_known_rejects_unknown() {
        let flags: &[FlagSpec] = &[("--procs", true, "process counts"), ("--quick", false, "")];
        let ok: Vec<String> = ["--procs", "2,8", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(scan_args(&ok, flags), Ok(false));
        // A value token that looks like a flag is skipped, not rejected.
        let neg: Vec<String> = ["--procs", "-3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(scan_args(&neg, flags), Ok(false));
        let help: Vec<String> = ["--quick", "-h"].iter().map(|s| s.to_string()).collect();
        assert_eq!(scan_args(&help, flags), Ok(true));
        let bad: Vec<String> = ["--procz", "2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(scan_args(&bad, flags), Err("--procz".to_string()));
        let usage = usage_text("demo", "a demo", flags);
        assert!(usage.contains("usage: demo [--procs <v>] [--quick]"));
        assert!(usage.contains("--help"));
    }

    #[test]
    fn sweep_and_fmt() {
        assert_eq!(size_sweep(16, 128), vec![16, 32, 64, 128]);
        assert_eq!(fmt_size(16), "16");
        assert_eq!(fmt_size(2048), "2K");
        assert_eq!(fmt_size(1 << 20), "1M");
    }

    #[test]
    fn append_json_field_splices_before_final_brace() {
        assert_eq!(
            append_json_field("{\"a\":1}\n", "rss", 42),
            "{\"a\":1,\"rss\":42}\n"
        );
        // Nested closing braces: only the *last* one is the document end.
        assert_eq!(
            append_json_field("{\"a\":{\"b\":2}\n}\n", "rss", 7),
            "{\"a\":{\"b\":2}\n,\"rss\":7}\n"
        );
        // No brace at all: document returned unchanged.
        assert_eq!(append_json_field("[]", "rss", 1), "[]");
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
