//! Core of the `fig_fault` benchmark: bandwidth and tail latency under
//! deterministic fault injection.
//!
//! Every rank streams `msgs_per_rank` blocking RDMA puts of `size` bytes to
//! the rank 16 positions away (with 16 ranks/node that is always a
//! cross-node pair), while a [`FaultPlan`] corrupts each link traversal
//! with probability `rate_ppm / 1e6` and takes one mid-run link down. Drops
//! surface as timeouts; the PAMI retry layer backs off and retransmits
//! (best-effort, so pathological rates degrade instead of aborting).
//! Everything except host wall-clock is deterministic: same seed + same
//! rate ⇒ identical `sim_time_ps`, retry counts and latency percentiles.
//! `rate_ppm == 0` installs **no plan at all**, so the zero-rate column is
//! byte-identical to a fault-free build.

use std::cell::RefCell;
use std::rc::Rc;

use desim::{FaultPlan, Sim, SimDuration, SimTime};
use pami_sim::{FailureMode, Machine, MachineConfig, RetryPolicy};

/// One measured `(fault rate, message size)` sweep cell. All fields except
/// none are deterministic; the JSON schema (`fault-v1`) emits them all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCell {
    /// Per-link-traversal corruption probability, parts per million.
    pub rate_ppm: u64,
    /// Payload bytes per put.
    pub size: usize,
    /// Final virtual time (ps) — deterministic.
    pub sim_time_ps: u64,
    /// Aggregate goodput: delivered payload bytes over the full run (MB/s).
    pub mb_s: f64,
    /// 99th-percentile blocking put latency (µs).
    pub p99_us: f64,
    /// Retransmits performed by the PAMI retry layer.
    pub retries: u64,
    /// Attempts declared lost (drops noticed by the sender).
    pub timeouts: u64,
    /// Operations abandoned by the best-effort policy.
    pub gave_up: u64,
    /// Aggregate link downtime from the plan's link windows (ps).
    pub link_down_ps: u64,
    /// Messages the network actually delivered.
    pub messages: u64,
}

impl FaultCell {
    /// The cell as a `fault-v1` JSON object (fixed field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rate_ppm\":{},\"size\":{},\"sim_time_ps\":{},\"mb_s\":{:.3},\
             \"p99_us\":{:.3},\"retries\":{},\"timeouts\":{},\"gave_up\":{},\
             \"link_down_ps\":{},\"messages\":{}}}",
            self.rate_ppm,
            self.size,
            self.sim_time_ps,
            self.mb_s,
            self.p99_us,
            self.retries,
            self.timeouts,
            self.gave_up,
            self.link_down_ps,
            self.messages
        )
    }
}

/// The fault plan for one nonzero-rate cell: background corruption at
/// `rate_ppm`, plus one deterministic link-down window in the middle of the
/// expected run so rerouting and downtime accounting are exercised too.
fn plan_for(rate_ppm: u64, seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .route_update_delay(SimDuration::from_us(10))
        .corruption(rate_ppm as f64 / 1e6)
        // Kill one link of node 0 for a fixed window; dimension-ordered
        // traffic from rank 0's node reroutes once detection fires.
        .link_down(
            1,
            SimTime::ZERO + SimDuration::from_us(50),
            SimTime::ZERO + SimDuration::from_us(150),
        )
}

/// Run one sweep cell: `procs` ranks (16/node), each streaming
/// `msgs_per_rank` blocking puts of `size` bytes to `(r + 16) % procs`.
pub fn run_cell(
    procs: usize,
    size: usize,
    msgs_per_rank: usize,
    rate_ppm: u64,
    seed: u64,
) -> FaultCell {
    run_cell_timeline(procs, size, msgs_per_rank, rate_ppm, seed, None, 1).0
}

/// Like [`run_cell`], but with windowed telemetry at `timeline_window_ps`
/// when set: link occupancy, retry/timeout rates, retry backlog and
/// links-down get a time axis, so `simstat` can pinpoint the retry storm
/// around the link-down window. `workers` shards the machine across the
/// conservative parallel engine; any cell with a fault plan installed
/// (`rate_ppm > 0`) pins itself back to the serial path, so only the
/// zero-rate column actually shards — either way every [`FaultCell`] field
/// is byte-identical for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_timeline(
    procs: usize,
    size: usize,
    msgs_per_rank: usize,
    rate_ppm: u64,
    seed: u64,
    timeline_window_ps: Option<u64>,
    workers: usize,
) -> (FaultCell, Option<desim::TimelineSnapshot>) {
    assert!(
        procs > 16 && procs.is_multiple_of(16),
        "need >=2 nodes of 16 ranks"
    );
    let mut mcfg = MachineConfig::new(procs)
        .procs_per_node(16)
        .contention(true)
        .workers(workers)
        .retry(RetryPolicy {
            failure: FailureMode::BestEffort,
            ..RetryPolicy::default()
        });
    if rate_ppm > 0 {
        mcfg = mcfg.faults(plan_for(rate_ppm, seed));
    }
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), mcfg);
    if let Some(w) = timeline_window_ps {
        m.enable_timeline(w, 512);
    }
    let lat_ps: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    for r in 0..procs {
        let target = (r + 16) % procs;
        let rk = m.rank(r);
        let tk = m.rank(target);
        let src = rk.alloc(size);
        let dst = tk.alloc(size);
        let s = sim.clone();
        let lat = Rc::clone(&lat_ps);
        sim.spawn(async move {
            for _ in 0..msgs_per_rank {
                let t0 = s.now();
                let h = rk.rdma_put(target, src, dst, size).await;
                h.remote.wait().await;
                lat.borrow_mut().push((s.now() - t0).as_ps());
            }
        });
    }
    let end = sim.run();
    m.flush_net_stats();
    let timeline = timeline_window_ps.map(|_| m.timeline().snapshot());
    let stats = m.stats();
    let mut lats = Rc::try_unwrap(lat_ps).expect("all tasks done").into_inner();
    lats.sort_unstable();
    // Nearest-rank p99 (deterministic integer indexing).
    let p99 = lats[((lats.len() * 99) / 100).min(lats.len() - 1)];
    let delivered_msgs = stats.counter("net.messages");
    let total_bytes = (procs * msgs_per_rank * size) as f64;
    let secs = (end.as_ps() as f64 / 1e12).max(1e-12);
    let cell = FaultCell {
        rate_ppm,
        size,
        sim_time_ps: end.as_ps(),
        mb_s: total_bytes / secs / 1e6,
        p99_us: p99 as f64 / 1e6,
        retries: stats.counter("pami.retries"),
        timeouts: stats.counter("pami.timeouts"),
        gave_up: stats.counter("pami.gave_up"),
        link_down_ps: stats.counter("fault.link_down_ps"),
        messages: delivered_msgs,
    };
    (cell, timeline)
}

/// Render a full sweep as the fixed-schema `fault-v1` JSON document.
pub fn sweep_json(procs: usize, msgs_per_rank: usize, seed: u64, cells: &[FaultCell]) -> String {
    let mut s = format!(
        "{{\"schema\":\"fault-v1\",\"bench\":\"fig_fault\",\"procs\":{procs},\
         \"msgs_per_rank\":{msgs_per_rank},\"seed\":{seed},\"cells\":["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&c.to_json());
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_cell_is_deterministic_and_fault_free() {
        let a = run_cell(32, 4096, 4, 0, 42);
        let b = run_cell(32, 4096, 4, 0, 42);
        assert_eq!(a, b);
        assert_eq!(a.retries, 0);
        assert_eq!(a.timeouts, 0);
        assert_eq!(a.link_down_ps, 0);
        assert_eq!(a.messages, (32 * 4) as u64);
    }

    #[test]
    fn faulty_cell_is_seed_deterministic_and_degrades() {
        let clean = run_cell(32, 4096, 4, 0, 42);
        let a = run_cell(32, 4096, 4, 50_000, 42);
        let b = run_cell(32, 4096, 4, 50_000, 42);
        assert_eq!(a, b, "same seed+rate must be byte-identical");
        assert!(a.timeouts > 0, "5% corruption must drop something");
        assert!(a.retries > 0);
        assert!(a.link_down_ps > 0);
        assert!(
            a.sim_time_ps > clean.sim_time_ps,
            "faults must cost time: {} vs {}",
            a.sim_time_ps,
            clean.sim_time_ps
        );
        assert!(a.p99_us >= clean.p99_us);
        assert!(a.mb_s <= clean.mb_s);
    }

    #[test]
    fn sweep_json_has_fixed_schema() {
        let c = run_cell(32, 4096, 2, 0, 7);
        let doc = sweep_json(32, 2, 7, &[c]);
        let parsed = desim::json::parse(&doc).expect("valid JSON");
        let flat = crate::perfdiff::flatten(&parsed);
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        for want in [
            "schema",
            "cells[0].rate_ppm",
            "cells[0].sim_time_ps",
            "cells[0].mb_s",
            "cells[0].p99_us",
            "cells[0].retries",
            "cells[0].link_down_ps",
        ] {
            assert!(keys.contains(&want), "missing {want} in {keys:?}");
        }
    }
}
