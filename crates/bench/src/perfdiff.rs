//! Numeric diffing of two JSON metric documents — the perf-regression gate.
//!
//! The `perfdiff` binary (and the CI job wired to it) compares a freshly
//! generated `MetricsSnapshot` / critical-path breakdown against a committed
//! golden baseline. Because the simulator is deterministic, goldens normally
//! match bit-for-bit; the tolerances exist so that *intentional* model
//! retuning can be landed by regenerating the baseline, while accidental
//! drift (a changed counter, a shifted latency) fails loudly.
//!
//! Semantics: both documents are flattened to dotted leaf paths
//! (`"histo.wait[3].mean_us"`). Every leaf of the **baseline** must exist in
//! the candidate with the same type; numeric leaves must satisfy
//! `|new - old| <= abs + rel * |old|`. Leaves that appear only in the
//! candidate are reported but do not fail the gate — new metrics are not
//! regressions.

use desim::json::JsonValue;

/// A scalar leaf of a flattened JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    /// A number (all JSON numbers compare as `f64`).
    Num(f64),
    /// A string (compared for equality).
    Str(String),
    /// A boolean (compared for equality).
    Bool(bool),
    /// A JSON `null`.
    Null,
}

/// Flatten a JSON document into `(dotted.path, leaf)` pairs, arrays indexed
/// as `path[i]`. Every array additionally contributes a `path.len` pseudo-
/// leaf with its element count: without it an array *growing* only surfaces
/// as candidate-extra leaves, which never fail the gate — with it, any
/// length change is a hard numeric violation (essential for the timeline
/// goldens, where a series quietly gaining windows is drift). Order follows
/// the document; callers sort as needed.
pub fn flatten(v: &JsonValue) -> Vec<(String, Leaf)> {
    let mut out = Vec::new();
    walk(v, String::new(), &mut out);
    out
}

fn walk(v: &JsonValue, path: String, out: &mut Vec<(String, Leaf)>) {
    match v {
        JsonValue::Obj(fields) => {
            for (k, val) in fields {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(val, p, out);
            }
        }
        JsonValue::Arr(items) => {
            out.push((format!("{path}.len"), Leaf::Num(items.len() as f64)));
            for (i, val) in items.iter().enumerate() {
                walk(val, format!("{path}[{i}]"), out);
            }
        }
        JsonValue::Num(n) => out.push((path, Leaf::Num(*n))),
        JsonValue::Str(s) => out.push((path, Leaf::Str(s.clone()))),
        JsonValue::Bool(b) => out.push((path, Leaf::Bool(*b))),
        JsonValue::Null => out.push((path, Leaf::Null)),
    }
}

/// Comparison slack: a numeric leaf passes when
/// `|new - old| <= abs + rel * |old|`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance as a fraction of the baseline value.
    pub rel: f64,
    /// Absolute slack added to every comparison.
    pub abs: f64,
}

/// Outcome of diffing a candidate document against a baseline.
#[derive(Debug)]
pub struct DiffResult {
    /// Baseline leaves found in the candidate and compared.
    pub checked: usize,
    /// Human-readable violations: drift past tolerance, leaves missing from
    /// the candidate, and type changes. Empty ⇒ the gate passes.
    pub violations: Vec<String>,
    /// Leaves present only in the candidate (informational, never fail).
    pub extra: Vec<String>,
}

impl DiffResult {
    /// True when the candidate is within tolerance of the baseline.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compare `candidate` against `baseline` leaf-by-leaf under `tol`.
pub fn diff(baseline: &JsonValue, candidate: &JsonValue, tol: Tolerance) -> DiffResult {
    use std::collections::BTreeMap;
    let base: BTreeMap<String, Leaf> = flatten(baseline).into_iter().collect();
    let cand: BTreeMap<String, Leaf> = flatten(candidate).into_iter().collect();
    let mut violations = Vec::new();
    let mut checked = 0usize;
    for (k, b) in &base {
        let Some(c) = cand.get(k) else {
            violations.push(format!("{k}: missing from candidate"));
            continue;
        };
        checked += 1;
        match (b, c) {
            (Leaf::Num(x), Leaf::Num(y)) => {
                let slack = tol.abs + tol.rel * x.abs();
                if (y - x).abs() > slack {
                    let pct = if *x != 0.0 {
                        format!("{:+.2}%", 100.0 * (y - x) / x)
                    } else {
                        "from zero".to_string()
                    };
                    violations.push(format!("{k}: {x} -> {y} ({pct}, allowed ±{slack})"));
                }
            }
            _ if b == c => {}
            _ => violations.push(format!("{k}: changed {b:?} -> {c:?}")),
        }
    }
    let extra = cand
        .keys()
        .filter(|k| !base.contains_key(*k))
        .cloned()
        .collect();
    DiffResult {
        checked,
        violations,
        extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::json::parse;

    const TOL: Tolerance = Tolerance {
        rel: 0.05,
        abs: 1e-9,
    };

    fn v(src: &str) -> JsonValue {
        parse(src).expect("test JSON")
    }

    #[test]
    fn flatten_produces_dotted_paths() {
        let doc = v(r#"{"a":{"b":1.5,"c":[true,"x"]},"d":null}"#);
        let flat = flatten(&doc);
        assert_eq!(
            flat,
            vec![
                ("a.b".to_string(), Leaf::Num(1.5)),
                ("a.c.len".to_string(), Leaf::Num(2.0)),
                ("a.c[0]".to_string(), Leaf::Bool(true)),
                ("a.c[1]".to_string(), Leaf::Str("x".to_string())),
                ("d".to_string(), Leaf::Null),
            ]
        );
    }

    #[test]
    fn array_len_pseudo_leaf_gates_length_changes() {
        let base = v(r#"{"w":[1,2]}"#);
        let grown = v(r#"{"w":[1,2,3]}"#);
        let shrunk = v(r#"{"w":[1]}"#);
        // Growth used to pass (new indices are candidate-extra); the `.len`
        // pseudo-leaf turns it into a numeric violation.
        let r = diff(&base, &grown, TOL);
        assert!(!r.ok());
        assert!(
            r.violations.iter().any(|s| s.contains("w.len")),
            "{:?}",
            r.violations
        );
        assert!(!diff(&base, &shrunk, TOL).ok());
        assert!(diff(&base, &base, TOL).ok());
    }

    #[test]
    fn identical_documents_pass() {
        let a = v(r#"{"x":1,"y":{"z":[2,3]}}"#);
        let r = diff(&a, &a, TOL);
        assert!(r.ok());
        assert_eq!(r.checked, 4); // x, y.z.len, y.z[0], y.z[1]
        assert!(r.extra.is_empty());
    }

    #[test]
    fn drift_within_relative_tolerance_passes() {
        let a = v(r#"{"lat_us":100.0}"#);
        let b = v(r#"{"lat_us":104.9}"#);
        assert!(diff(&a, &b, TOL).ok());
        let c = v(r#"{"lat_us":105.2}"#);
        let r = diff(&a, &c, TOL);
        assert!(!r.ok());
        assert!(r.violations[0].contains("lat_us"), "{:?}", r.violations);
    }

    #[test]
    fn absolute_slack_covers_near_zero_values() {
        let a = v(r#"{"n":0.0}"#);
        let b = v(r#"{"n":0.5}"#);
        assert!(!diff(&a, &b, TOL).ok());
        assert!(diff(
            &a,
            &b,
            Tolerance {
                rel: 0.05,
                abs: 1.0
            }
        )
        .ok());
    }

    #[test]
    fn missing_and_type_changed_leaves_fail_extra_leaves_do_not() {
        let base = v(r#"{"gone":1,"typed":2}"#);
        let cand = v(r#"{"typed":"two","fresh":3}"#);
        let r = diff(&base, &cand, TOL);
        assert_eq!(r.violations.len(), 2, "{:?}", r.violations);
        assert!(r.violations.iter().any(|s| s.contains("gone")));
        assert!(r.violations.iter().any(|s| s.contains("typed")));
        assert_eq!(r.extra, vec!["fresh".to_string()]);
    }

    #[test]
    fn string_equality_is_exact() {
        let a = v(r#"{"mode":"AT"}"#);
        let b = v(r#"{"mode":"D"}"#);
        assert!(!diff(&a, &b, TOL).ok());
        assert!(diff(&a, &a, TOL).ok());
    }
}
