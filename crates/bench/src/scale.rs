//! Shared core of the `fig_scale` million-rank scaling benchmark (see
//! `src/bin/fig_scale.rs` for the CLI).
//!
//! The paper's headline is weak scaling to the full Blue Gene/Q partition
//! (§IV runs to 32k nodes / 512k ranks); the simulator must therefore hold
//! **p = 1,000,000 ranks in one address space**. That only works because
//! idle ranks cost (near-)zero bytes: rank state machines are event-driven
//! and materialize lazily on first touch (DESIGN.md §15). This module
//! measures exactly that contract with two workloads over a sweep of p:
//!
//! * `fig9_rmw` — the Fig 9 fetch-and-add storm, **all ranks active**: the
//!   dense upper bound, exercising mass task spawn/retire and per-rank
//!   state for every rank;
//! * `alltoall` — a synthetic all-to-all among a fixed-size *active set*
//!   spread evenly across the rank space: the sparse case, where the other
//!   `p - active` ranks must never materialize and the footprint must stay
//!   (near-)constant as p grows.
//!
//! Each point records two kinds of fields. **Deterministic** (virtual end
//! time, kernel events, materialized-rank count, task-table high-water
//! mark): byte-stable for a given binary, gated at zero tolerance in CI via
//! the `scale-gate-v1` document at small p. **Ungated context** (tagged
//! peak bytes, peak RSS, wall time, events/s): the scaling curves
//! themselves, committed for the record but host/compiler-dependent, so CI
//! never compares them exactly — growth *classes* fitted from the tagged
//! bytes are the stable summary, exactly as in `memscale` (§14).

use std::rc::Rc;

use armci::{ArmciConfig, ProgressMode};
use desim::memprof;

use crate::memscale::{self, MemPoint};
use crate::{fig9, peak_rss_kb, Fixture};

/// Default process counts for the scale sweep (ascending, to one million).
pub const DEFAULT_PROCS: [usize; 5] = [32, 1024, 32_768, 262_144, 1_000_000];

/// Default size of the `alltoall` active set.
pub const DEFAULT_ACTIVE: usize = 256;

/// Default fetch-and-adds per requester (`fig9_rmw`) / all-to-all rounds.
pub const DEFAULT_OPS: usize = 1;

/// One measured point of the scale sweep.
pub struct ScalePoint {
    /// Memory accounting plus wall time and event count (see [`MemPoint`]).
    pub mem: MemPoint,
    /// Virtual completion time of the workload (ps) — deterministic.
    pub sim_time_ps: u64,
    /// Ranks whose state materialized — deterministic (`p` for `fig9_rmw`,
    /// the active-set size for `alltoall`).
    pub materialized: usize,
    /// Kernel task-table high-water mark — deterministic.
    pub task_slots: usize,
    /// Process-wide peak RSS (kB) after the run. Points run serially in
    /// ascending p, so this is a running maximum dominated by the largest
    /// point so far; ungated.
    pub peak_rss_kb: u64,
}

/// The deterministically spread active set: `n` ranks at even stride over
/// `0..p` (all of them when `n >= p`), always including rank 0.
pub fn active_set(p: usize, n: usize) -> Vec<usize> {
    if n >= p {
        return (0..p).collect();
    }
    let stride = p / n;
    (0..n).map(|i| i * stride).collect()
}

/// Run the dense workload: Fig 9's fetch-and-add storm with every rank
/// active (`ops` fetch-and-adds per requester, AsyncThread progress).
pub fn run_rmw(p: usize, ops: usize) -> ScalePoint {
    let m = memprof::mark();
    let t0 = std::time::Instant::now();
    let out = fig9::run(
        p,
        ProgressMode::AsyncThread,
        false,
        ops,
        None,
        false,
        None,
        None,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        mem: MemPoint {
            procs: p,
            snap: memprof::since(&m),
            wall_ms,
            events: out.events,
        },
        sim_time_ps: out.sim_time_ps,
        materialized: out.materialized,
        task_slots: out.task_slots,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Run the sparse workload: `rounds` of all-to-all fetch-and-adds among
/// [`active_set`]`(p, active)`, leaving every other rank untouched. No
/// barrier and no collectives — those involve all p ranks by definition and
/// would materialize the idle ones. The counter lives at offset 0 of each
/// active rank (inside the runtime's unused notification region) rather
/// than at `alloc()`'s first free offset, which sits past the `p * 8`
/// notification cells and would drag a p-proportional dense memory vector
/// into every active rank.
pub fn run_alltoall(p: usize, active: usize, rounds: usize) -> ScalePoint {
    let m = memprof::mark();
    let t0 = std::time::Instant::now();
    let f = Fixture::with_machine(
        pami_sim::MachineConfig::new(p)
            .procs_per_node(16)
            .contexts(2),
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let ids = Rc::new(active_set(p, active));
    for &r in ids.iter() {
        f.armci.machine().rank(r).write_i64(0, 0);
    }
    for &r in ids.iter() {
        let rk = f.rank(r);
        let ids = Rc::clone(&ids);
        f.sim.spawn(async move {
            for _ in 0..rounds {
                for &t in ids.iter() {
                    if t != r {
                        rk.rmw_fetch_add(t, 0, 1).await;
                    }
                }
            }
        });
    }
    f.finish();
    let sim_time_ps = f.sim.now().as_ps();
    let events = f.sim.events_processed();
    let materialized = f.armci.machine().materialized_count();
    let task_slots = f.sim.task_slots();
    drop(f);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        mem: MemPoint {
            procs: p,
            snap: memprof::since(&m),
            wall_ms,
            events,
        },
        sim_time_ps,
        materialized,
        task_slots,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Run the full sweep **serially in ascending p** (so peak-RSS readings are
/// a running maximum and the largest point never competes for memory with a
/// concurrent sibling), calling `progress` after each finished point.
pub fn run_sweep(
    procs: &[usize],
    ops: usize,
    active: usize,
    mut progress: impl FnMut(&str, &ScalePoint),
) -> (Vec<ScalePoint>, Vec<ScalePoint>) {
    let mut rmw = Vec::with_capacity(procs.len());
    let mut a2a = Vec::with_capacity(procs.len());
    for &p in procs {
        let pt = run_rmw(p, ops);
        progress("fig9_rmw", &pt);
        rmw.push(pt);
        let pt = run_alltoall(p, active, ops);
        progress("alltoall", &pt);
        a2a.push(pt);
    }
    (rmw, a2a)
}

fn point_json(pt: &ScalePoint, deterministic_only: bool) -> String {
    let mut o = format!(
        "{{\"procs\":{},\"sim_time_ps\":{},\"events\":{},\"materialized\":{},\
         \"task_slots\":{}",
        pt.mem.procs, pt.sim_time_ps, pt.mem.events, pt.materialized, pt.task_slots
    );
    if !deterministic_only {
        o.push_str(",\"tags\":{");
        for (j, t) in pt.mem.snap.tags.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{}\":{{\"peak_bytes\":{},\"allocs\":{},\"bytes_per_rank\":{:.1}}}",
                t.name,
                t.peak_bytes,
                t.allocs,
                t.peak_bytes as f64 / pt.mem.procs as f64
            ));
        }
        let eps = if pt.mem.wall_ms > 0.0 {
            pt.mem.events as f64 / (pt.mem.wall_ms / 1e3)
        } else {
            0.0
        };
        o.push_str(&format!(
            "}},\"peak_rss_kb\":{},\"wall_ms\":{:.1},\"events_per_sec\":{:.0}",
            pt.peak_rss_kb, pt.mem.wall_ms, eps
        ));
    }
    o.push('}');
    o
}

fn workload_json(points: &[ScalePoint], deterministic_only: bool) -> String {
    let mut o = String::from("{\"points\":{");
    for (i, pt) in points.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\"p{}\":{}",
            pt.mem.procs,
            point_json(pt, deterministic_only)
        ));
    }
    o.push_str("},\"slopes\":{");
    if !deterministic_only {
        let mem: Vec<MemPoint> = points
            .iter()
            .map(|pt| MemPoint {
                procs: pt.mem.procs,
                snap: pt.mem.snap.clone(),
                wall_ms: pt.mem.wall_ms,
                events: pt.mem.events,
            })
            .collect();
        for (i, (tag, exp, class)) in memscale::slopes(&mem).iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{tag}\":{{\"class\":\"{class}\",\"exp\":{exp:.2}}}"
            ));
        }
    }
    o.push_str("}}");
    o
}

/// Serialize the sweep as a `scale-v1` JSON document: both workloads, all
/// fields, plus per-tag growth classes fitted across the sweep.
pub fn scale_json(rmw: &[ScalePoint], a2a: &[ScalePoint], ops: usize, active: usize) -> String {
    format!(
        "{{\"schema\":\"scale-v1\",\"bench\":\"fig_scale\",\"ops\":{ops},\
         \"active\":{active},\"workloads\":{{\"fig9_rmw\":{},\"alltoall\":{}}}}}\n",
        workload_json(rmw, false),
        workload_json(a2a, false)
    )
}

/// Serialize only the deterministic per-point fields as a `scale-gate-v1`
/// document. Every leaf is byte-stable for a given source tree (virtual
/// times, event counts, materialization counts, task-table size — never
/// bytes or wall time), so CI gates it with `perfdiff --tol 0` at small p.
pub fn gate_json(rmw: &[ScalePoint], a2a: &[ScalePoint], ops: usize, active: usize) -> String {
    format!(
        "{{\"schema\":\"scale-gate-v1\",\"bench\":\"fig_scale\",\"ops\":{ops},\
         \"active\":{active},\"workloads\":{{\"fig9_rmw\":{},\"alltoall\":{}}}}}\n",
        workload_json(rmw, true),
        workload_json(a2a, true)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::json::{self, JsonValue};

    #[test]
    fn active_set_spreads_evenly() {
        assert_eq!(active_set(1024, 4), vec![0, 256, 512, 768]);
        assert_eq!(active_set(8, 8), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(active_set(4, 100), vec![0, 1, 2, 3]);
        assert_eq!(active_set(1_000_000, 2), vec![0, 500_000]);
    }

    #[test]
    fn alltoall_materializes_only_the_active_set() {
        let p = 4096;
        let active = 8;
        let pt = run_alltoall(p, active, 2);
        assert_eq!(pt.materialized, active, "idle ranks must never be touched");
        assert!(pt.sim_time_ps > 0 && pt.mem.events > 0);
    }

    #[test]
    fn alltoall_counters_add_up() {
        // Re-run the workload inline to check the arithmetic end-to-end:
        // `rounds * active * (active - 1)` increments land across counters.
        let (p, active, rounds) = (256, 4, 3);
        let f = Fixture::with_machine(
            pami_sim::MachineConfig::new(p)
                .procs_per_node(16)
                .contexts(2),
            ArmciConfig::default().progress(ProgressMode::AsyncThread),
        );
        let ids = Rc::new(active_set(p, active));
        for &r in ids.iter() {
            f.armci.machine().rank(r).write_i64(0, 0);
        }
        for &r in ids.iter() {
            let rk = f.rank(r);
            let ids = Rc::clone(&ids);
            f.sim.spawn(async move {
                for _ in 0..rounds {
                    for &t in ids.iter() {
                        if t != r {
                            rk.rmw_fetch_add(t, 0, 1).await;
                        }
                    }
                }
            });
        }
        f.finish();
        let total: i64 = ids
            .iter()
            .map(|&r| f.armci.machine().rank(r).read_i64(0))
            .sum();
        assert_eq!(total as usize, rounds * active * (active - 1));
        assert_eq!(f.armci.machine().materialized_count(), active);
    }

    #[test]
    fn rmw_point_matches_fig9_shape() {
        let pt = run_rmw(32, 1);
        assert_eq!(pt.mem.procs, 32);
        assert_eq!(pt.materialized, 32, "fig9 touches every rank");
        assert!(pt.task_slots >= 32, "one task per rank plus daemons");
        assert!(pt.sim_time_ps > 0 && pt.mem.events > 0);
    }

    #[test]
    fn scale_and_gate_docs_parse() {
        let mk = |p: usize, peak: i64| ScalePoint {
            mem: MemPoint {
                procs: p,
                snap: desim::memprof::MemSnapshot {
                    tags: vec![desim::memprof::TagStats {
                        name: "pami.rankmem",
                        live_bytes: peak,
                        peak_bytes: peak,
                        allocs: 4,
                        frees: 0,
                        reallocs: 0,
                    }],
                },
                wall_ms: 5.0,
                events: 2000,
            },
            sim_time_ps: 777,
            materialized: 8,
            task_slots: 11,
            peak_rss_kb: 12345,
        };
        let rmw = vec![mk(32, 3200), mk(1024, 102_400)];
        let a2a = vec![mk(32, 800), mk(1024, 800)];
        let full = scale_json(&rmw, &a2a, 1, 8);
        let v = json::parse(&full).expect("scale-v1 parses");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("scale-v1")
        );
        let w = v.get("workloads").unwrap();
        let p32 = w
            .get("fig9_rmw")
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p32"))
            .expect("p32 point");
        assert_eq!(
            p32.get("sim_time_ps").and_then(JsonValue::as_f64),
            Some(777.0)
        );
        assert!(p32.get("wall_ms").is_some() && p32.get("tags").is_some());
        // Growth classes: rmw rankmem is linear, alltoall constant.
        let class = |wl: &str| {
            w.get(wl)
                .and_then(|x| x.get("slopes"))
                .and_then(|x| x.get("pami.rankmem"))
                .and_then(|x| x.get("class"))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        assert_eq!(class("fig9_rmw").as_deref(), Some("linear"));
        assert_eq!(class("alltoall").as_deref(), Some("constant"));

        let gate = gate_json(&rmw, &a2a, 1, 8);
        let g = json::parse(&gate).expect("scale-gate-v1 parses");
        assert_eq!(
            g.get("schema").and_then(JsonValue::as_str),
            Some("scale-gate-v1")
        );
        let gp = g
            .get("workloads")
            .and_then(|x| x.get("alltoall"))
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p1024"))
            .expect("gate point");
        assert!(gp.get("events").is_some() && gp.get("materialized").is_some());
        assert!(
            !gate.contains("wall_ms") && !gate.contains("peak_bytes"),
            "gate doc holds deterministic leaves only"
        );
    }
}
