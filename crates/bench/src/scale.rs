//! Shared core of the `fig_scale` million-rank scaling benchmark (see
//! `src/bin/fig_scale.rs` for the CLI).
//!
//! The paper's headline is weak scaling to the full Blue Gene/Q partition
//! (§IV runs to 32k nodes / 512k ranks); the simulator must therefore hold
//! **p = 1,000,000 ranks in one address space**. That only works because
//! idle ranks cost (near-)zero bytes: rank state machines are event-driven
//! and materialize lazily on first touch (DESIGN.md §15). This module
//! measures exactly that contract with two workloads over a sweep of p:
//!
//! * `fig9_rmw` — the Fig 9 fetch-and-add storm, **all ranks active**: the
//!   dense upper bound, exercising mass task spawn/retire and per-rank
//!   state for every rank;
//! * `alltoall` — a synthetic all-to-all among a fixed-size *active set*
//!   spread evenly across the rank space: the sparse case, where the other
//!   `p - active` ranks must never materialize and the footprint must stay
//!   (near-)constant as p grows;
//! * `netstorm` — a fixed seeded delivery schedule pushed through
//!   [`torus5d::deliver_batch`] at each `--workers` count: the parallel
//!   engine's speedup curve per p, with worker-count-invariant
//!   deterministic leaves (deliveries, last arrival).
//!
//! Each point records two kinds of fields. **Deterministic** (virtual end
//! time, kernel events, materialized-rank count, task-table high-water
//! mark): byte-stable for a given binary, gated at zero tolerance in CI via
//! the `scale-gate-v2` document at small p. **Ungated context** (tagged
//! peak bytes, peak RSS, wall time, events/s): the scaling curves
//! themselves, committed for the record but host/compiler-dependent, so CI
//! never compares them exactly — growth *classes* fitted from the tagged
//! bytes are the stable summary, exactly as in `memscale` (§14).

use std::rc::Rc;

use armci::{ArmciConfig, ProgressMode};
use desim::memprof;

use crate::memscale::{self, MemPoint};
use crate::{fig9, peak_rss_kb, Fixture};

/// Default process counts for the scale sweep (ascending, to one million).
pub const DEFAULT_PROCS: [usize; 5] = [32, 1024, 32_768, 262_144, 1_000_000];

/// Default size of the `alltoall` active set.
pub const DEFAULT_ACTIVE: usize = 256;

/// Default fetch-and-adds per requester (`fig9_rmw`) / all-to-all rounds.
pub const DEFAULT_OPS: usize = 1;

/// Default worker counts for the `netstorm` parallel-engine curve.
pub const DEFAULT_WORKERS: [usize; 3] = [1, 2, 4];

/// Default messages in the `netstorm` delivery schedule.
pub const DEFAULT_STORM_MSGS: usize = 100_000;

/// One measured point of the scale sweep.
pub struct ScalePoint {
    /// Memory accounting plus wall time and event count (see [`MemPoint`]).
    pub mem: MemPoint,
    /// Virtual completion time of the workload (ps) — deterministic.
    pub sim_time_ps: u64,
    /// Ranks whose state materialized — deterministic (`p` for `fig9_rmw`,
    /// the active-set size for `alltoall`).
    pub materialized: usize,
    /// Kernel task-table high-water mark — deterministic.
    pub task_slots: usize,
    /// Process-wide peak RSS (kB) after the run. Points run serially in
    /// ascending p, so this is a running maximum dominated by the largest
    /// point so far; ungated.
    pub peak_rss_kb: u64,
}

/// One measured point of the `netstorm` workload: a fixed seeded delivery
/// schedule executed by [`torus5d::deliver_batch`] at each worker count.
/// `events` and `sim_time_ps` are worker-count-invariant (asserted at run
/// time) and gate at zero tolerance; the per-worker timings are the
/// parallel engine's speedup curve and are never gated.
pub struct StormPoint {
    /// Process count.
    pub procs: usize,
    /// Messages delivered — deterministic, worker-count-invariant.
    pub events: u64,
    /// Latest arrival time (ps) — deterministic, worker-count-invariant.
    pub sim_time_ps: u64,
    /// `(workers, wall_ms)` per configured worker count — host context.
    pub per_workers: Vec<(usize, f64)>,
}

/// Run the `netstorm` workload at `p`: deliver the seeded `msgs`-message
/// churn schedule through a fresh [`torus5d::NetState`] once per entry of
/// `workers`, asserting that the deterministic outputs never move.
pub fn run_netstorm(p: usize, msgs: usize, workers: &[usize]) -> StormPoint {
    use torus5d::{BgqParams, NetState, Topology};
    let sched = crate::simbench::churn_schedule(p, msgs);
    let mut point: Option<StormPoint> = None;
    for &w in workers {
        let mut net = NetState::new(Topology::for_procs(p, 16), BgqParams::default(), true);
        let t0 = std::time::Instant::now();
        let out = torus5d::deliver_batch(&mut net, &sched, w);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let (events, sim_time_ps) = (net.messages(), out.last_arrival.as_ps());
        match &mut point {
            None => {
                point = Some(StormPoint {
                    procs: p,
                    events,
                    sim_time_ps,
                    per_workers: vec![(w, wall_ms)],
                })
            }
            Some(pt) => {
                assert_eq!(pt.events, events, "netstorm p={p} w={w}: events moved");
                assert_eq!(
                    pt.sim_time_ps, sim_time_ps,
                    "netstorm p={p} w={w}: arrival time moved"
                );
                pt.per_workers.push((w, wall_ms));
            }
        }
    }
    point.expect("at least one worker count")
}

/// The deterministically spread active set: `n` ranks at even stride over
/// `0..p` (all of them when `n >= p`), always including rank 0.
pub fn active_set(p: usize, n: usize) -> Vec<usize> {
    if n >= p {
        return (0..p).collect();
    }
    let stride = p / n;
    (0..n).map(|i| i * stride).collect()
}

/// Run the dense workload: Fig 9's fetch-and-add storm with every rank
/// active (`ops` fetch-and-adds per requester, AsyncThread progress).
pub fn run_rmw(p: usize, ops: usize) -> ScalePoint {
    let m = memprof::mark();
    let t0 = std::time::Instant::now();
    // workers pinned to 1: `RunOut::events` is a zero-tolerance gate leaf
    // and the parallel engine's pump timers would inflate it.
    let out = fig9::run(
        p,
        ProgressMode::AsyncThread,
        false,
        ops,
        None,
        false,
        None,
        None,
        1,
    );
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        mem: MemPoint {
            procs: p,
            snap: memprof::since(&m),
            wall_ms,
            events: out.events,
        },
        sim_time_ps: out.sim_time_ps,
        materialized: out.materialized,
        task_slots: out.task_slots,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Run the sparse workload: `rounds` of all-to-all fetch-and-adds among
/// [`active_set`]`(p, active)`, leaving every other rank untouched. No
/// barrier and no collectives — those involve all p ranks by definition and
/// would materialize the idle ones. The counter lives at offset 0 of each
/// active rank (inside the runtime's unused notification region) rather
/// than at `alloc()`'s first free offset, which sits past the `p * 8`
/// notification cells and would drag a p-proportional dense memory vector
/// into every active rank.
pub fn run_alltoall(p: usize, active: usize, rounds: usize) -> ScalePoint {
    let m = memprof::mark();
    let t0 = std::time::Instant::now();
    let f = Fixture::with_machine(
        pami_sim::MachineConfig::new(p)
            .procs_per_node(16)
            .contexts(2),
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let ids = Rc::new(active_set(p, active));
    for &r in ids.iter() {
        f.armci.machine().rank(r).write_i64(0, 0);
    }
    for &r in ids.iter() {
        let rk = f.rank(r);
        let ids = Rc::clone(&ids);
        f.sim.spawn(async move {
            for _ in 0..rounds {
                for &t in ids.iter() {
                    if t != r {
                        rk.rmw_fetch_add(t, 0, 1).await;
                    }
                }
            }
        });
    }
    f.finish();
    let sim_time_ps = f.sim.now().as_ps();
    let events = f.sim.events_processed();
    let materialized = f.armci.machine().materialized_count();
    let task_slots = f.sim.task_slots();
    drop(f);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    ScalePoint {
        mem: MemPoint {
            procs: p,
            snap: memprof::since(&m),
            wall_ms,
            events,
        },
        sim_time_ps,
        materialized,
        task_slots,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Run the full sweep **serially in ascending p** (so peak-RSS readings are
/// a running maximum and the largest point never competes for memory with a
/// concurrent sibling), calling `progress` after each finished point.
pub fn run_sweep(
    procs: &[usize],
    ops: usize,
    active: usize,
    mut progress: impl FnMut(&str, &ScalePoint),
) -> (Vec<ScalePoint>, Vec<ScalePoint>) {
    let mut rmw = Vec::with_capacity(procs.len());
    let mut a2a = Vec::with_capacity(procs.len());
    for &p in procs {
        let pt = run_rmw(p, ops);
        progress("fig9_rmw", &pt);
        rmw.push(pt);
        let pt = run_alltoall(p, active, ops);
        progress("alltoall", &pt);
        a2a.push(pt);
    }
    (rmw, a2a)
}

fn point_json(pt: &ScalePoint, deterministic_only: bool) -> String {
    let mut o = format!(
        "{{\"procs\":{},\"sim_time_ps\":{},\"events\":{},\"materialized\":{},\
         \"task_slots\":{}",
        pt.mem.procs, pt.sim_time_ps, pt.mem.events, pt.materialized, pt.task_slots
    );
    if !deterministic_only {
        o.push_str(",\"tags\":{");
        for (j, t) in pt.mem.snap.tags.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{}\":{{\"peak_bytes\":{},\"allocs\":{},\"bytes_per_rank\":{:.1}}}",
                t.name,
                t.peak_bytes,
                t.allocs,
                t.peak_bytes as f64 / pt.mem.procs as f64
            ));
        }
        let eps = if pt.mem.wall_ms > 0.0 {
            pt.mem.events as f64 / (pt.mem.wall_ms / 1e3)
        } else {
            0.0
        };
        o.push_str(&format!(
            "}},\"peak_rss_kb\":{},\"wall_ms\":{:.1},\"events_per_sec\":{:.0}",
            pt.peak_rss_kb, pt.mem.wall_ms, eps
        ));
    }
    o.push('}');
    o
}

fn workload_json(points: &[ScalePoint], deterministic_only: bool) -> String {
    let mut o = String::from("{\"points\":{");
    for (i, pt) in points.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\"p{}\":{}",
            pt.mem.procs,
            point_json(pt, deterministic_only)
        ));
    }
    o.push_str("},\"slopes\":{");
    if !deterministic_only {
        let mem: Vec<MemPoint> = points
            .iter()
            .map(|pt| MemPoint {
                procs: pt.mem.procs,
                snap: pt.mem.snap.clone(),
                wall_ms: pt.mem.wall_ms,
                events: pt.mem.events,
            })
            .collect();
        for (i, (tag, exp, class)) in memscale::slopes(&mem).iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str(&format!(
                "\"{tag}\":{{\"class\":\"{class}\",\"exp\":{exp:.2}}}"
            ));
        }
    }
    o.push_str("}}");
    o
}

fn storm_json(storm: &[StormPoint], msgs: usize, deterministic_only: bool) -> String {
    let mut o = format!("{{\"msgs\":{msgs},\"points\":{{");
    for (i, pt) in storm.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\"p{}\":{{\"procs\":{},\"events\":{},\"sim_time_ps\":{}",
            pt.procs, pt.procs, pt.events, pt.sim_time_ps
        ));
        if !deterministic_only {
            o.push_str(",\"workers\":{");
            for (j, (w, wall_ms)) in pt.per_workers.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let eps = if *wall_ms > 0.0 {
                    pt.events as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                o.push_str(&format!(
                    "\"w{w}\":{{\"wall_ms\":{wall_ms:.1},\"events_per_sec\":{eps:.0}}}"
                ));
            }
            o.push('}');
        }
        o.push('}');
    }
    o.push_str("}}");
    o
}

/// Serialize the sweep as a `scale-v2` JSON document: all three workloads,
/// all fields, plus per-tag growth classes fitted across the sweep and the
/// `netstorm` per-worker timing curves (ungated).
pub fn scale_json(
    rmw: &[ScalePoint],
    a2a: &[ScalePoint],
    storm: &[StormPoint],
    ops: usize,
    active: usize,
    storm_msgs: usize,
) -> String {
    format!(
        "{{\"schema\":\"scale-v2\",\"bench\":\"fig_scale\",\"ops\":{ops},\
         \"active\":{active},\"workloads\":{{\"fig9_rmw\":{},\"alltoall\":{},\
         \"netstorm\":{}}}}}\n",
        workload_json(rmw, false),
        workload_json(a2a, false),
        storm_json(storm, storm_msgs, false)
    )
}

/// Serialize only the deterministic per-point fields as a `scale-gate-v2`
/// document. Every leaf is byte-stable for a given source tree (virtual
/// times, event counts, materialization counts, task-table size — never
/// bytes or wall time; `netstorm` leaves are additionally worker-count-
/// invariant), so CI gates it with `perfdiff --tol 0` at small p.
pub fn gate_json(
    rmw: &[ScalePoint],
    a2a: &[ScalePoint],
    storm: &[StormPoint],
    ops: usize,
    active: usize,
    storm_msgs: usize,
) -> String {
    format!(
        "{{\"schema\":\"scale-gate-v2\",\"bench\":\"fig_scale\",\"ops\":{ops},\
         \"active\":{active},\"workloads\":{{\"fig9_rmw\":{},\"alltoall\":{},\
         \"netstorm\":{}}}}}\n",
        workload_json(rmw, true),
        workload_json(a2a, true),
        storm_json(storm, storm_msgs, true)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::json::{self, JsonValue};

    #[test]
    fn active_set_spreads_evenly() {
        assert_eq!(active_set(1024, 4), vec![0, 256, 512, 768]);
        assert_eq!(active_set(8, 8), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(active_set(4, 100), vec![0, 1, 2, 3]);
        assert_eq!(active_set(1_000_000, 2), vec![0, 500_000]);
    }

    #[test]
    fn alltoall_materializes_only_the_active_set() {
        let p = 4096;
        let active = 8;
        let pt = run_alltoall(p, active, 2);
        assert_eq!(pt.materialized, active, "idle ranks must never be touched");
        assert!(pt.sim_time_ps > 0 && pt.mem.events > 0);
    }

    #[test]
    fn alltoall_counters_add_up() {
        // Re-run the workload inline to check the arithmetic end-to-end:
        // `rounds * active * (active - 1)` increments land across counters.
        let (p, active, rounds) = (256, 4, 3);
        let f = Fixture::with_machine(
            pami_sim::MachineConfig::new(p)
                .procs_per_node(16)
                .contexts(2),
            ArmciConfig::default().progress(ProgressMode::AsyncThread),
        );
        let ids = Rc::new(active_set(p, active));
        for &r in ids.iter() {
            f.armci.machine().rank(r).write_i64(0, 0);
        }
        for &r in ids.iter() {
            let rk = f.rank(r);
            let ids = Rc::clone(&ids);
            f.sim.spawn(async move {
                for _ in 0..rounds {
                    for &t in ids.iter() {
                        if t != r {
                            rk.rmw_fetch_add(t, 0, 1).await;
                        }
                    }
                }
            });
        }
        f.finish();
        let total: i64 = ids
            .iter()
            .map(|&r| f.armci.machine().rank(r).read_i64(0))
            .sum();
        assert_eq!(total as usize, rounds * active * (active - 1));
        assert_eq!(f.armci.machine().materialized_count(), active);
    }

    #[test]
    fn rmw_point_matches_fig9_shape() {
        let pt = run_rmw(32, 1);
        assert_eq!(pt.mem.procs, 32);
        assert_eq!(pt.materialized, 32, "fig9 touches every rank");
        assert!(pt.task_slots >= 32, "one task per rank plus daemons");
        assert!(pt.sim_time_ps > 0 && pt.mem.events > 0);
    }

    #[test]
    fn scale_and_gate_docs_parse() {
        let mk = |p: usize, peak: i64| ScalePoint {
            mem: MemPoint {
                procs: p,
                snap: desim::memprof::MemSnapshot {
                    tags: vec![desim::memprof::TagStats {
                        name: "pami.rankmem",
                        live_bytes: peak,
                        peak_bytes: peak,
                        allocs: 4,
                        frees: 0,
                        reallocs: 0,
                    }],
                },
                wall_ms: 5.0,
                events: 2000,
            },
            sim_time_ps: 777,
            materialized: 8,
            task_slots: 11,
            peak_rss_kb: 12345,
        };
        let rmw = vec![mk(32, 3200), mk(1024, 102_400)];
        let a2a = vec![mk(32, 800), mk(1024, 800)];
        let storm = vec![
            StormPoint {
                procs: 32,
                events: 5000,
                sim_time_ps: 999,
                per_workers: vec![(1, 3.0), (2, 2.0), (4, 1.5)],
            },
            StormPoint {
                procs: 1024,
                events: 5000,
                sim_time_ps: 1999,
                per_workers: vec![(1, 4.0), (2, 3.0), (4, 2.5)],
            },
        ];
        let full = scale_json(&rmw, &a2a, &storm, 1, 8, 5000);
        let v = json::parse(&full).expect("scale-v2 parses");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("scale-v2")
        );
        let w = v.get("workloads").unwrap();
        let p32 = w
            .get("fig9_rmw")
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p32"))
            .expect("p32 point");
        assert_eq!(
            p32.get("sim_time_ps").and_then(JsonValue::as_f64),
            Some(777.0)
        );
        assert!(p32.get("wall_ms").is_some() && p32.get("tags").is_some());
        // Growth classes: rmw rankmem is linear, alltoall constant.
        let class = |wl: &str| {
            w.get(wl)
                .and_then(|x| x.get("slopes"))
                .and_then(|x| x.get("pami.rankmem"))
                .and_then(|x| x.get("class"))
                .and_then(JsonValue::as_str)
                .map(str::to_string)
        };
        assert_eq!(class("fig9_rmw").as_deref(), Some("linear"));
        assert_eq!(class("alltoall").as_deref(), Some("constant"));
        // netstorm: per-worker timing curve present in the full doc.
        let storm_p32 = w
            .get("netstorm")
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p32"))
            .expect("netstorm p32 point");
        assert!(storm_p32
            .get("workers")
            .and_then(|x| x.get("w4"))
            .and_then(|x| x.get("wall_ms"))
            .is_some());

        let gate = gate_json(&rmw, &a2a, &storm, 1, 8, 5000);
        let g = json::parse(&gate).expect("scale-gate-v2 parses");
        assert_eq!(
            g.get("schema").and_then(JsonValue::as_str),
            Some("scale-gate-v2")
        );
        let gp = g
            .get("workloads")
            .and_then(|x| x.get("alltoall"))
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p1024"))
            .expect("gate point");
        assert!(gp.get("events").is_some() && gp.get("materialized").is_some());
        let sp = g
            .get("workloads")
            .and_then(|x| x.get("netstorm"))
            .and_then(|x| x.get("points"))
            .and_then(|x| x.get("p32"))
            .expect("netstorm gate point");
        assert!(sp.get("events").is_some() && sp.get("sim_time_ps").is_some());
        assert!(
            !gate.contains("wall_ms") && !gate.contains("peak_bytes"),
            "gate doc holds deterministic leaves only"
        );
    }

    #[test]
    fn netstorm_point_is_worker_invariant() {
        // run_netstorm itself asserts the deterministic leaves agree across
        // worker counts; this exercises that assertion on a real schedule.
        let pt = run_netstorm(64, 2000, &[1, 2, 4]);
        assert_eq!(pt.events, 2000);
        assert!(pt.sim_time_ps > 0);
        assert_eq!(pt.per_workers.len(), 3);
    }
}
