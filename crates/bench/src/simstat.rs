//! Core of the `simstat` binary: human reports over `timeline-v1` JSON
//! artifacts — text sparklines per series, health findings per run, and a
//! window-aligned A/B diff when two documents are given.
//!
//! Everything here is a pure function of the parsed documents, so the
//! report is deterministic: same input bytes, same output bytes.

use desim::health::analyze;
use desim::timeline::{SeriesKind, SeriesSnapshot, TimelineDoc};
use desim::HealthConfig;

use crate::memscale::fmt_bytes;

/// Memory-profiler series (`mem.live_bytes.<tag>` gauges emitted by
/// `desim::memprof`) get humanized byte units and their own diff section.
fn is_mem_series(name: &str) -> bool {
    name.starts_with("mem.")
}

/// Sparkline glyphs, lowest to highest.
const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Dense headline values of a series over windows `0..=last recorded`,
/// zero-filled at the gaps (a missing window means nothing happened in it).
fn dense(s: &SeriesSnapshot) -> Vec<f64> {
    let span = s.windows.last().map_or(0, |w| w.idx + 1) as usize;
    let mut vals = vec![0.0; span];
    for w in &s.windows {
        vals[w.idx as usize] = s.headline(w);
    }
    vals
}

/// Render values as a text sparkline at most `width` chars wide, merging
/// adjacent windows when necessary (counters sum, gauges take the max —
/// the same folds the timeline's own coarsening uses). Zero renders as `.`
/// so quiet stretches stay visually distinct from low activity.
pub fn sparkline(vals: &[f64], kind: SeriesKind, width: usize) -> String {
    if vals.is_empty() {
        return String::new();
    }
    let bucket = vals.len().div_ceil(width.max(1));
    let merged: Vec<f64> = vals
        .chunks(bucket)
        .map(|c| match kind {
            SeriesKind::Counter => c.iter().sum(),
            SeriesKind::Gauge => c.iter().copied().fold(f64::MIN, f64::max),
        })
        .collect();
    let peak = merged.iter().copied().fold(0.0f64, f64::max);
    merged
        .iter()
        .map(|&v| {
            if v <= 0.0 || peak <= 0.0 {
                '.'
            } else {
                let lvl = ((v / peak) * 8.0).ceil() as usize;
                BARS[lvl.clamp(1, 8) - 1]
            }
        })
        .collect()
}

/// One-line numeric summary of a series: total+peak for counters,
/// min/max/final for gauges.
fn series_stats(s: &SeriesSnapshot) -> String {
    match s.kind {
        SeriesKind::Counter => {
            let total: u64 = s.windows.iter().map(|w| w.sum).sum();
            let peak = s.windows.iter().map(|w| w.sum).max().unwrap_or(0);
            format!("counter, total {total}, peak {peak}/win")
        }
        SeriesKind::Gauge => {
            let lo = s.windows.iter().map(|w| w.min).min().unwrap_or(0);
            let hi = s.windows.iter().map(|w| w.max).max().unwrap_or(0);
            let last = s.windows.last().map_or(0, |w| w.last);
            if is_mem_series(&s.name) {
                format!(
                    "gauge, min {}, max {}, final {}",
                    fmt_bytes(lo),
                    fmt_bytes(hi),
                    fmt_bytes(last)
                )
            } else {
                format!("gauge, min {lo}, max {hi}, final {last}")
            }
        }
    }
}

/// Comparable scalar for the A/B diff: counter total or gauge overall max.
fn series_total(s: &SeriesSnapshot) -> f64 {
    match s.kind {
        SeriesKind::Counter => s.windows.iter().map(|w| w.sum).sum::<u64>() as f64,
        SeriesKind::Gauge => s.windows.iter().map(|w| w.max).max().unwrap_or(0) as f64,
    }
}

fn fmt_window(ps: u64) -> String {
    if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        format!("{}ns", ps / 1_000)
    } else {
        format!("{ps}ps")
    }
}

/// Render the single-document report: per-run sparklines and health
/// findings. `label` names the document in the header (usually its path).
pub fn report(label: &str, doc: &TimelineDoc, cfg: &HealthConfig, width: usize) -> String {
    let mut out = format!(
        "== {label} — bench {}, {} run(s) ==\n",
        doc.bench,
        doc.runs.len()
    );
    for (name, snap) in &doc.runs {
        out.push_str(&format!(
            "\n-- run {name:?} (window {}, {} series) --\n",
            fmt_window(snap.window_ps),
            snap.series.len()
        ));
        let name_w = snap
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for s in &snap.series {
            out.push_str(&format!(
                "  {:<name_w$}  {}  ({})\n",
                s.name,
                sparkline(&dense(s), s.kind, width),
                series_stats(s),
            ));
        }
        let findings = analyze(snap, cfg);
        if findings.is_empty() {
            out.push_str("  health: no findings\n");
        } else {
            out.push_str(&format!("  health: {} finding(s)\n", findings.len()));
            for f in &findings {
                out.push_str(&format!(
                    "    [{:<8}] w{:<5} {:<18} {}\n",
                    f.severity.as_str(),
                    f.window,
                    f.rule,
                    f.evidence
                ));
            }
        }
    }
    out
}

/// One diff line for a series pair: totals, percentage change, and (when
/// window-aligned) a differing-window count with a |B-A| delta sparkline.
/// `humanize` formats the totals as byte sizes (memory gauges).
fn diff_series_line(
    s: &SeriesSnapshot,
    t: &SeriesSnapshot,
    name_w: usize,
    aligned: bool,
    width: usize,
    humanize: bool,
) -> String {
    let (ta, tb) = (series_total(s), series_total(t));
    let pct = if ta != 0.0 {
        format!("{:+.1}%", 100.0 * (tb - ta) / ta)
    } else if tb == 0.0 {
        "+0.0%".to_string()
    } else {
        "new".to_string()
    };
    let mut line = if humanize {
        format!(
            "  {:<name_w$}  {} -> {} ({pct})",
            s.name,
            fmt_bytes(ta as i64),
            fmt_bytes(tb as i64)
        )
    } else {
        format!("  {:<name_w$}  {ta} -> {tb} ({pct})", s.name)
    };
    if aligned {
        let (da, db) = (dense(s), dense(t));
        let span = da.len().max(db.len());
        let differing = (0..span)
            .filter(|&i| da.get(i).copied().unwrap_or(0.0) != db.get(i).copied().unwrap_or(0.0))
            .count();
        line.push_str(&format!("  {differing}/{span} windows differ"));
        if differing > 0 {
            let delta: Vec<f64> = (0..span)
                .map(|i| {
                    (db.get(i).copied().unwrap_or(0.0) - da.get(i).copied().unwrap_or(0.0)).abs()
                })
                .collect();
            line.push_str(&format!(
                "\n  {:<name_w$}  {}  (|B-A| per window)",
                "",
                sparkline(&delta, SeriesKind::Gauge, width)
            ));
        }
    }
    line.push('\n');
    line
}

/// Render the window-aligned A/B diff of two documents: for each run name
/// present in both, compare every series by total (counter sum / gauge max)
/// and count the windows whose headline values differ. Series present on
/// one side only are listed as such. Memory-profiler series (`mem.*`) get
/// their own section per run, with totals in humanized byte units.
pub fn diff_report(a: &TimelineDoc, b: &TimelineDoc, width: usize) -> String {
    let mut out = String::from("\n== A/B diff (window-aligned) ==\n");
    if a.bench != b.bench {
        out.push_str(&format!(
            "  note: different benches (A {:?}, B {:?})\n",
            a.bench, b.bench
        ));
    }
    for (name, sa) in &a.runs {
        let Some((_, sb)) = b.runs.iter().find(|(n, _)| n == name) else {
            out.push_str(&format!("\n-- run {name:?}: only in A --\n"));
            continue;
        };
        out.push_str(&format!("\n-- run {name:?} --\n"));
        let aligned = sa.window_ps == sb.window_ps;
        if !aligned {
            out.push_str(&format!(
                "  note: window widths differ (A {}, B {}): totals only\n",
                fmt_window(sa.window_ps),
                fmt_window(sb.window_ps)
            ));
        }
        let name_w = sa
            .series
            .iter()
            .chain(sb.series.iter())
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max(8);
        // Two passes over the same machinery: ordinary series first, then
        // the memory section (peak live bytes per tag, humanized).
        for mem_pass in [false, true] {
            if mem_pass {
                let any_mem = sa
                    .series
                    .iter()
                    .chain(sb.series.iter())
                    .any(|s| is_mem_series(&s.name));
                if !any_mem {
                    break;
                }
                out.push_str("  -- memory (peak live bytes per window) --\n");
            }
            for s in sa
                .series
                .iter()
                .filter(|s| is_mem_series(&s.name) == mem_pass)
            {
                match sb.series(&s.name) {
                    Some(t) => {
                        out.push_str(&diff_series_line(s, t, name_w, aligned, width, mem_pass))
                    }
                    None => out.push_str(&format!("  {:<name_w$}  only in A\n", s.name)),
                }
            }
            for t in sb
                .series
                .iter()
                .filter(|t| is_mem_series(&t.name) == mem_pass)
            {
                if sa.series(&t.name).is_none() {
                    out.push_str(&format!("  {:<name_w$}  only in B\n", t.name));
                }
            }
        }
    }
    for (name, _) in &b.runs {
        if !a.runs.iter().any(|(n, _)| n == name) {
            out.push_str(&format!("\n-- run {name:?}: only in B --\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::timeline::{SeriesSnapshot, TimelineSnapshot, WindowSample};

    fn cwin(idx: u64, sum: u64) -> WindowSample {
        WindowSample {
            idx,
            sum,
            min: 0,
            max: 0,
            last: 0,
        }
    }

    fn counter(name: &str, wins: &[(u64, u64)]) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            kind: SeriesKind::Counter,
            windows: wins.iter().map(|&(i, s)| cwin(i, s)).collect(),
        }
    }

    fn doc(runs: Vec<(&str, TimelineSnapshot)>) -> TimelineDoc {
        TimelineDoc {
            bench: "demo".to_string(),
            runs: runs.into_iter().map(|(n, s)| (n.to_string(), s)).collect(),
        }
    }

    #[test]
    fn sparkline_normalizes_and_marks_zeros() {
        let line = sparkline(&[0.0, 1.0, 4.0, 8.0], SeriesKind::Counter, 16);
        assert_eq!(line, ".▁▄█");
        // Merging: 8 values into 4 buckets, counters sum pairwise.
        let line = sparkline(
            &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0, 4.0, 4.0],
            SeriesKind::Counter,
            4,
        );
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('█'));
        assert_eq!(line.chars().nth(1), Some('.'));
    }

    #[test]
    fn report_and_diff_are_deterministic_and_complete() {
        let snap_a = TimelineSnapshot {
            window_ps: 1_000_000,
            series: vec![counter("net.msgs", &[(0, 10), (2, 5)])],
        };
        let snap_b = TimelineSnapshot {
            window_ps: 1_000_000,
            series: vec![
                counter("net.msgs", &[(0, 10), (2, 9)]),
                counter("net.bytes", &[(1, 64)]),
            ],
        };
        let a = doc(vec![("run", snap_a)]);
        let b = doc(vec![("run", snap_b)]);
        let cfg = HealthConfig::default();
        let r = report("a.json", &a, &cfg, 64);
        assert_eq!(r, report("a.json", &a, &cfg, 64));
        assert!(r.contains("bench demo"));
        assert!(r.contains("net.msgs"));
        assert!(r.contains("total 15, peak 10/win"));
        assert!(r.contains("health: no findings"));
        let d = diff_report(&a, &b, 64);
        assert_eq!(d, diff_report(&a, &b, 64));
        assert!(d.contains("15 -> 19"));
        assert!(d.contains("1/3 windows differ"));
        assert!(d.contains("only in B"));
    }

    fn mem_gauge(name: &str, wins: &[(u64, i64)]) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_string(),
            kind: SeriesKind::Gauge,
            windows: wins
                .iter()
                .map(|&(idx, v)| WindowSample {
                    idx,
                    sum: 0,
                    min: v,
                    max: v,
                    last: v,
                })
                .collect(),
        }
    }

    #[test]
    fn mem_series_are_humanized_and_get_their_own_diff_section() {
        let snap_a = TimelineSnapshot {
            window_ps: 1_000_000,
            series: vec![
                counter("net.msgs", &[(0, 10)]),
                mem_gauge("mem.live_bytes.pami.queues", &[(0, 4096), (1, 6144)]),
            ],
        };
        let snap_b = TimelineSnapshot {
            window_ps: 1_000_000,
            series: vec![
                counter("net.msgs", &[(0, 10)]),
                mem_gauge("mem.live_bytes.pami.queues", &[(0, 4096), (1, 8192)]),
            ],
        };
        let a = doc(vec![("run", snap_a)]);
        let b = doc(vec![("run", snap_b)]);
        let cfg = HealthConfig::default();
        let r = report("a.json", &a, &cfg, 64);
        // Gauge headline uses byte units for mem.* series only.
        assert!(r.contains("min 4.0KiB, max 6.0KiB, final 6.0KiB"));
        assert!(r.contains("total 10"));
        let d = diff_report(&a, &b, 64);
        assert!(d.contains("-- memory (peak live bytes per window) --"));
        assert!(d.contains("6.0KiB -> 8.0KiB"));
        // The ordinary section still lists the non-memory series first.
        let net = d.find("net.msgs").unwrap();
        let mem = d.find("-- memory").unwrap();
        assert!(net < mem);
    }
}
