//! Simulator self-benchmark workloads (the `simbench` binary).
//!
//! Synthetic kernel workloads that measure how fast the `desim` kernel
//! itself runs on the host — wall-clock events/second — independent of any
//! model fidelity question. Three workloads cover the kernel's hot paths:
//!
//! * [`timer_churn`] — many tasks sleeping pseudo-random durations: stresses
//!   the timer wheel (insert/fire) across near and far deadlines.
//! * [`ping_pong`] — channel ping-pong pairs with no sleeps: stresses the
//!   ready queue and waker path exclusively (everything at t = 0).
//! * [`fig4_sweep`] — a real bandwidth sweep (Fig 4 shape) run serially and
//!   with the parallel harness: measures end-to-end sweep speedup.
//!
//! Event counts and simulated times are fully deterministic; only wall-clock
//! readings vary between hosts. The `simbench` binary reports both in a
//! fixed-schema JSON so CI can gate on schema/determinism strictly and on
//! timings loosely (see `scripts/reproduce.sh` and the CI workflow).

use std::time::{Duration, Instant};

use desim::{Sim, SimDuration, SimRng};

use crate::sweep;

/// Outcome of one kernel workload: deterministic event/time totals plus the
/// host wall-clock spent running it.
pub struct KernelLoad {
    /// Kernel events processed (task polls + timer firings) — deterministic.
    pub events: u64,
    /// Final virtual time in picoseconds — deterministic.
    pub sim_time_ps: u64,
    /// Host wall-clock elapsed.
    pub wall: Duration,
}

impl KernelLoad {
    /// Millions of kernel events per wall-clock second.
    pub fn mevents_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }
}

/// Timer-churn workload: `tasks` tasks each perform `steps` sleeps of
/// seeded pseudo-random length (1 ns – ~1 µs, with an occasional ~300 µs
/// far-future sleep mimicking compute grains), so deadlines land across
/// every level of the timer wheel.
pub fn timer_churn(tasks: usize, steps: usize) -> KernelLoad {
    let sim = Sim::new();
    let root = SimRng::new(0xB9C4_5EED);
    for t in 0..tasks {
        let s = sim.clone();
        let mut rng = root.derive(t as u64);
        sim.spawn(async move {
            for step in 0..steps {
                let d = if step % 64 == 63 {
                    SimDuration::from_us(300) // far-future: falls past the near wheel
                } else {
                    SimDuration::from_ns(1 + rng.next_below(1000))
                };
                s.sleep(d).await;
            }
        });
    }
    let t0 = Instant::now();
    let end = sim.run();
    let wall = t0.elapsed();
    KernelLoad {
        events: sim.events_processed(),
        sim_time_ps: end.as_ps(),
        wall,
    }
}

/// Channel ping-pong workload: `pairs` pairs of tasks bounce a token
/// `rounds` times with no sleeps, so the whole workload executes at t = 0
/// through the ready queue and waker path alone.
pub fn ping_pong(pairs: usize, rounds: usize) -> KernelLoad {
    let sim = Sim::new();
    for p in 0..pairs {
        let (to_b, from_a) = desim::channel::channel::<u64>();
        let (to_a, from_b) = desim::channel::channel::<u64>();
        sim.spawn(async move {
            let mut token = p as u64;
            for _ in 0..rounds {
                to_b.send(token);
                token = from_b.recv().await.expect("peer hung up");
            }
        });
        sim.spawn(async move {
            for _ in 0..rounds {
                let v = from_a.recv().await.expect("peer hung up");
                to_a.send(v.wrapping_add(1));
            }
        });
    }
    let t0 = Instant::now();
    let end = sim.run();
    let wall = t0.elapsed();
    KernelLoad {
        events: sim.events_processed(),
        sim_time_ps: end.as_ps(),
        wall,
    }
}

/// Fig 4-style bandwidth sweep (get+put per size), run through the parallel
/// harness with `jobs` workers. Returns the per-size bandwidth sums (MB/s,
/// deterministic) and the wall-clock for the whole sweep.
pub fn fig4_sweep(
    sizes: &[usize],
    window: usize,
    reps: usize,
    jobs: usize,
) -> (Vec<f64>, Duration) {
    let t0 = Instant::now();
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        let m = sizes[i];
        crate::bandwidth(2, m, window, reps, true) + crate::bandwidth(2, m, window, reps, false)
    });
    (rows, t0.elapsed())
}

/// Peak resident-set size of this process in kilobytes (`VmHWM` from
/// `/proc/self/status`); 0 when the platform does not expose it.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_churn_is_deterministic() {
        let a = timer_churn(16, 32);
        let b = timer_churn(16, 32);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_time_ps, b.sim_time_ps);
        assert!(a.events > (16 * 32) as u64); // at least one event per sleep
    }

    #[test]
    fn ping_pong_is_deterministic_and_timeless() {
        let a = ping_pong(8, 50);
        let b = ping_pong(8, 50);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_time_ps, 0, "no sleeps: everything happens at t=0");
        assert_eq!(b.sim_time_ps, 0);
    }

    #[test]
    fn fig4_sweep_matches_serial_across_jobs() {
        let sizes = [1024usize, 4096, 16384];
        let (serial, _) = fig4_sweep(&sizes, 2, 4, 1);
        let (parallel, _) = fig4_sweep(&sizes, 2, 4, 4);
        assert_eq!(serial, parallel);
    }
}
