//! Simulator self-benchmark workloads (the `simbench` binary).
//!
//! Synthetic kernel workloads that measure how fast the `desim` kernel
//! itself runs on the host — wall-clock events/second — independent of any
//! model fidelity question. Three workloads cover the kernel's hot paths:
//!
//! * [`timer_churn`] — many tasks sleeping pseudo-random durations: stresses
//!   the timer wheel (insert/fire) across near and far deadlines.
//! * [`ping_pong`] — channel ping-pong pairs with no sleeps: stresses the
//!   ready queue and waker path exclusively (everything at t = 0).
//! * [`net_churn`] — a contended all-to-all delivery storm pushed straight
//!   through `torus5d::NetState`: stresses the network hot path (route
//!   lookup, per-link reservation, pair ordering) and reports deliveries/sec.
//! * [`fig4_sweep`] — a real bandwidth sweep (Fig 4 shape) run serially and
//!   with the parallel harness: measures end-to-end sweep speedup.
//! * [`par_churn`] — a token-relay storm through the conservative
//!   time-windowed parallel driver ([`desim::ParSim`]): measures the
//!   window/barrier machinery at 1..N worker shards with byte-identical
//!   delivery logs.
//!
//! Event counts and simulated times are fully deterministic; only wall-clock
//! readings vary between hosts. The `simbench` binary reports both in a
//! fixed-schema JSON so CI can gate on schema/determinism strictly and on
//! timings loosely (see `scripts/reproduce.sh` and the CI workflow).

use std::time::{Duration, Instant};

use desim::{FaultPlan, Sim, SimDuration, SimRng, SimTime};
use torus5d::{BgqParams, Delivery, MsgClass, NetMsg, NetState, Topology};

use crate::sweep;

/// Outcome of one kernel workload: deterministic event/time totals plus the
/// host wall-clock spent running it.
pub struct KernelLoad {
    /// Kernel events processed (task polls + timer firings) — deterministic.
    pub events: u64,
    /// Final virtual time in picoseconds — deterministic.
    pub sim_time_ps: u64,
    /// Host wall-clock elapsed.
    pub wall: Duration,
}

impl KernelLoad {
    /// Millions of kernel events per wall-clock second.
    pub fn mevents_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }
}

/// Timer-churn workload: `tasks` tasks each perform `steps` sleeps of
/// seeded pseudo-random length (1 ns – ~1 µs, with an occasional ~300 µs
/// far-future sleep mimicking compute grains), so deadlines land across
/// every level of the timer wheel.
pub fn timer_churn(tasks: usize, steps: usize) -> KernelLoad {
    let sim = Sim::new();
    let root = SimRng::new(0xB9C4_5EED);
    for t in 0..tasks {
        let s = sim.clone();
        let mut rng = root.derive(t as u64);
        sim.spawn(async move {
            for step in 0..steps {
                let d = if step % 64 == 63 {
                    SimDuration::from_us(300) // far-future: falls past the near wheel
                } else {
                    SimDuration::from_ns(1 + rng.next_below(1000))
                };
                s.sleep(d).await;
            }
        });
    }
    let t0 = Instant::now();
    let end = sim.run();
    let wall = t0.elapsed();
    KernelLoad {
        events: sim.events_processed(),
        sim_time_ps: end.as_ps(),
        wall,
    }
}

/// Channel ping-pong workload: `pairs` pairs of tasks bounce a token
/// `rounds` times with no sleeps, so the whole workload executes at t = 0
/// through the ready queue and waker path alone.
pub fn ping_pong(pairs: usize, rounds: usize) -> KernelLoad {
    let sim = Sim::new();
    for p in 0..pairs {
        let (to_b, from_a) = desim::channel::channel::<u64>();
        let (to_a, from_b) = desim::channel::channel::<u64>();
        sim.spawn(async move {
            let mut token = p as u64;
            for _ in 0..rounds {
                to_b.send(token);
                token = from_b.recv().await.expect("peer hung up");
            }
        });
        sim.spawn(async move {
            for _ in 0..rounds {
                let v = from_a.recv().await.expect("peer hung up");
                to_a.send(v.wrapping_add(1));
            }
        });
    }
    let t0 = Instant::now();
    let end = sim.run();
    let wall = t0.elapsed();
    KernelLoad {
        events: sim.events_processed(),
        sim_time_ps: end.as_ps(),
        wall,
    }
}

/// Network-churn workload: a contended all-to-all delivery storm driven
/// straight through [`NetState`] — no kernel, no tasks, just the network
/// hot path. `procs` ranks (16/node) fire `msgs` seeded pseudo-random
/// messages (mixed sizes and ordering classes, slightly staggered injection
/// times) at random peers with contention modelling on. For this workload
/// [`KernelLoad::events`] counts *deliveries* and
/// [`KernelLoad::sim_time_ps`] is the latest arrival time — both fully
/// deterministic; only the wall-clock varies by host.
pub fn net_churn(procs: usize, msgs: usize) -> KernelLoad {
    net_churn_with_faults(procs, msgs, None)
}

/// [`net_churn`] with an optional [`FaultPlan`] installed on the network.
/// Messages the plan drops are simply lost (no retry layer down here — this
/// benchmarks raw `NetState` throughput); `events` still counts only actual
/// deliveries. With `None` **or an empty plan** the delivery stream is
/// byte-identical to [`net_churn`] — asserted by
/// `tests/fault_zero_cost.rs`.
pub fn net_churn_with_faults(procs: usize, msgs: usize, plan: Option<FaultPlan>) -> KernelLoad {
    net_churn_timeline(procs, msgs, plan, None).0
}

/// [`net_churn_with_faults`] with optional windowed telemetry: a standalone
/// [`desim::Timeline`] (no kernel needed) attached straight to the
/// [`NetState`], sampling per-window message/byte counts, link busy/wait
/// time and detours so `simstat` can spot the congestion onset as the
/// staggered injection schedule outruns link capacity.
pub fn net_churn_timeline(
    procs: usize,
    msgs: usize,
    plan: Option<FaultPlan>,
    timeline_window_ps: Option<u64>,
) -> (KernelLoad, Option<desim::TimelineSnapshot>) {
    let topo = Topology::for_procs(procs, 16);
    let mut net = NetState::new(topo, BgqParams::default(), true);
    if let Some(plan) = plan {
        net.install_faults(plan);
    }
    let tl = desim::Timeline::new();
    if let Some(w) = timeline_window_ps {
        tl.enable(w, 512);
    }
    net.set_timeline(&tl);
    // Pre-generate the schedule so the timed loop measures delivery alone.
    let sched = churn_schedule(procs, msgs);
    let t0 = Instant::now();
    let mut last = SimTime::ZERO;
    // With the allocation profiler on, sample per-tag live-bytes gauges at
    // most once per timeline window (there is no kernel here to do it).
    let sample_mem = desim::memprof::enabled() && tl.on();
    let mem_window = tl.window_ps().max(1);
    let mut mem_next = 0u64;
    let mut mem_ids = Vec::new();
    for m in &sched {
        let (at, src, dst, len, class) = (
            m.inject,
            m.src as usize,
            m.dst as usize,
            m.payload as usize,
            m.class,
        );
        match net.try_deliver_op(at, src, dst, len, class, None) {
            Delivery::Delivered(arrival) => {
                if arrival > last {
                    last = arrival;
                }
            }
            Delivery::Dropped { .. } => {} // lost to the fault plan
        }
        if sample_mem && at.as_ps() >= mem_next {
            mem_next = (at.as_ps() / mem_window + 1) * mem_window;
            desim::memprof::record_live_gauges(&tl, at, &mut mem_ids);
        }
    }
    let wall = t0.elapsed();
    let snap = timeline_window_ps.map(|_| tl.snapshot());
    let load = KernelLoad {
        events: net.messages(),
        sim_time_ps: last.as_ps(),
        wall,
    };
    (load, snap)
}

/// The seeded pseudo-random all-to-all schedule every `net_churn` variant
/// delivers. Shared between the serial timed loop and the parallel batch
/// engine, so `--workers` can never change the workload itself — only who
/// executes it.
pub fn churn_schedule(procs: usize, msgs: usize) -> Vec<NetMsg> {
    let mut rng = SimRng::new(0x4E45_7443);
    let mut sched = Vec::with_capacity(msgs);
    let mut inject = SimTime::ZERO;
    for i in 0..msgs {
        let src = rng.next_below(procs as u64) as usize;
        let mut dst = rng.next_below(procs as u64) as usize;
        if dst == src {
            dst = (dst + 1) % procs;
        }
        let payload = 1usize << (4 + rng.next_below(12)); // 16 B .. 32 KB
        let class = match i % 8 {
            0 => MsgClass::Unordered,
            1 | 2 => MsgClass::Control,
            _ => MsgClass::Ordered,
        };
        inject += SimDuration::from_ns(rng.next_below(200));
        sched.push(NetMsg {
            inject,
            src: src as u32,
            dst: dst as u32,
            payload: payload as u32,
            class,
        });
    }
    sched
}

/// [`net_churn`] executed by the parallel batch engine
/// ([`torus5d::deliver_batch`]) at `workers` shards. `workers <= 1` takes
/// the untouched serial hot path; either way `events` and `sim_time_ps` are
/// byte-identical — only `wall` may move.
pub fn net_churn_workers(procs: usize, msgs: usize, workers: usize) -> KernelLoad {
    if workers <= 1 {
        return net_churn(procs, msgs);
    }
    let topo = Topology::for_procs(procs, 16);
    let mut net = NetState::new(topo, BgqParams::default(), true);
    let sched = churn_schedule(procs, msgs);
    let t0 = Instant::now();
    let out = torus5d::deliver_batch(&mut net, &sched, workers);
    let wall = t0.elapsed();
    KernelLoad {
        events: net.messages(),
        sim_time_ps: out.last_arrival.as_ps(),
        wall,
    }
}

/// Token-relay storm through the conservative time-windowed driver
/// ([`desim::ParSim`]): `nodes` logical nodes block-partitioned across
/// `workers` shards, each seeding one token that relays for `ttl` hops.
/// Every hop is announced at least one full lookahead window ahead (the
/// window width is the BG/Q minimum internode header, base + one 35 ns hop)
/// and keyed `origin << 32 | origin_seq`, so the merged delivery log — and
/// therefore `events` (deliveries) and `sim_time_ps` (last delivery) — is
/// invariant in the worker count. This is the kernel-level benchmark of the
/// window/barrier machinery itself, complementing `net_churn`'s
/// network-level batch engine.
pub fn par_churn(nodes: usize, ttl: u32, workers: usize) -> KernelLoad {
    use desim::{Envelope, Outbox, ParSim, ShardApp};

    fn owner(node: u64, n: u64, workers: usize) -> usize {
        ((node * workers as u64) / n) as usize
    }

    struct Relay {
        workers: usize,
        n: u64,
        ttl: u32,
        lookahead_ps: u64,
        seq: Vec<u64>,
        delivered: u64,
        last_ps: u64,
    }

    impl ShardApp for Relay {
        type Msg = (u64, u64, u32); // (node, token, remaining hops)
        type Out = (u64, u64); // (deliveries, last delivery ps)

        fn start(&mut self, shard: usize, _sim: &Sim, out: &Outbox<Self::Msg>) {
            for node in 0..self.n {
                if owner(node, self.n, self.workers) != shard {
                    continue;
                }
                out.send(Envelope {
                    at: SimTime((node + 1) * 10_000),
                    to_shard: shard,
                    key: node << 32,
                    msg: (node, node + 1, self.ttl),
                });
                self.seq[node as usize] = 1;
            }
        }

        fn deliver(&mut self, sim: &Sim, env: Envelope<Self::Msg>, out: &Outbox<Self::Msg>) {
            // Advance the shard clock to the delivery instant, then relay.
            sim.schedule(env.at, || {});
            let (node, token, ttl) = env.msg;
            self.delivered += 1;
            self.last_ps = self.last_ps.max(env.at.as_ps());
            if ttl == 0 {
                return;
            }
            let next = (node + token) % self.n;
            let jitter = (token * 37_000) % 500_000 + 1_000;
            let seq = &mut self.seq[node as usize];
            let key = (node << 32) | *seq;
            *seq += 1;
            out.send(Envelope {
                at: env.at + SimDuration(self.lookahead_ps + jitter),
                to_shard: owner(next, self.n, self.workers),
                key,
                msg: (next, (token * 31 + 7) % 1009 + 1, ttl - 1),
            });
        }

        fn finish(&mut self, _sim: &Sim) -> Self::Out {
            (self.delivered, self.last_ps)
        }
    }

    let workers = workers.max(1);
    let params = BgqParams::default();
    let lookahead = params.base_latency + params.hop_latency;
    let par = ParSim::new(workers, lookahead);
    let apps: Vec<Relay> = (0..workers)
        .map(|_| Relay {
            workers,
            n: nodes as u64,
            ttl,
            lookahead_ps: lookahead.as_ps(),
            seq: vec![0; nodes],
            delivered: 0,
            last_ps: 0,
        })
        .collect();
    let t0 = Instant::now();
    let outs = par.run(apps);
    let wall = t0.elapsed();
    KernelLoad {
        events: outs.iter().map(|o| o.0).sum(),
        sim_time_ps: outs.iter().map(|o| o.1).max().unwrap_or(0),
        wall,
    }
}

/// Fig 4-style bandwidth sweep (get+put per size), run through the parallel
/// harness with `jobs` workers. Returns the per-size bandwidth sums (MB/s,
/// deterministic) and the wall-clock for the whole sweep.
pub fn fig4_sweep(
    sizes: &[usize],
    window: usize,
    reps: usize,
    jobs: usize,
) -> (Vec<f64>, Duration) {
    let t0 = Instant::now();
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        let m = sizes[i];
        crate::bandwidth(2, m, window, reps, true) + crate::bandwidth(2, m, window, reps, false)
    });
    (rows, t0.elapsed())
}

pub use crate::peak_rss_kb;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_churn_is_deterministic() {
        let a = timer_churn(16, 32);
        let b = timer_churn(16, 32);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_time_ps, b.sim_time_ps);
        assert!(a.events > (16 * 32) as u64); // at least one event per sleep
    }

    #[test]
    fn ping_pong_is_deterministic_and_timeless() {
        let a = ping_pong(8, 50);
        let b = ping_pong(8, 50);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_time_ps, 0, "no sleeps: everything happens at t=0");
        assert_eq!(b.sim_time_ps, 0);
    }

    #[test]
    fn net_churn_is_deterministic() {
        let a = net_churn(128, 2000);
        let b = net_churn(128, 2000);
        assert_eq!(a.events, 2000);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_time_ps, b.sim_time_ps);
        assert!(a.sim_time_ps > 0, "messages must take time to arrive");
    }

    #[test]
    fn fig4_sweep_matches_serial_across_jobs() {
        let sizes = [1024usize, 4096, 16384];
        let (serial, _) = fig4_sweep(&sizes, 2, 4, 1);
        let (parallel, _) = fig4_sweep(&sizes, 2, 4, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn net_churn_workers_matches_serial() {
        let serial = net_churn(128, 3000);
        for workers in [2usize, 4] {
            let par = net_churn_workers(128, 3000, workers);
            assert_eq!(par.events, serial.events, "workers={workers}");
            assert_eq!(par.sim_time_ps, serial.sim_time_ps, "workers={workers}");
        }
    }

    #[test]
    fn par_churn_is_worker_count_invariant() {
        let serial = par_churn(24, 40, 1);
        assert_eq!(serial.events, 24 * 41, "one delivery per seed + hop");
        assert!(serial.sim_time_ps > 0);
        for workers in [2usize, 4] {
            let par = par_churn(24, 40, workers);
            assert_eq!(par.events, serial.events, "workers={workers}");
            assert_eq!(par.sim_time_ps, serial.sim_time_ps, "workers={workers}");
        }
    }
}
