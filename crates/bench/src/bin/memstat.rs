//! memstat — human report over `memscale-v1` memory-scaling artifacts.
//!
//! Loads a JSON document written by `fig_mem --json` (by default the
//! committed `results/BENCH_memscale.json`) and prints, per workload, the
//! top allocator sites grouped by subsystem at the largest swept process
//! count: peak bytes, bytes-per-rank and the fitted growth class per
//! allocation tag. Output is a pure function of the input bytes.
//!
//! Exit status: 0 = report printed, 2 = usage or I/O error.

use bgq_bench::memscale::memstat_report;
use bgq_bench::{usage_text, FlagSpec};

const BIN: &str = "memstat [memscale.json]";
const ABOUT: &str = "report per-subsystem memory scaling from fig_mem output";
const FLAGS: &[FlagSpec] = &[];
const DEFAULT_PATH: &str = "results/BENCH_memscale.json";

fn fail_usage(msg: &str) -> ! {
    eprintln!("memstat: {msg}");
    eprint!("{}", usage_text(BIN, ABOUT, FLAGS));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--help" | "-h" => {
                print!("{}", usage_text(BIN, ABOUT, FLAGS));
                return;
            }
            a if a.starts_with('-') => fail_usage(&format!("unknown option '{a}'")),
            a => files.push(a.to_string()),
        }
    }
    if files.len() > 1 {
        fail_usage("expected at most one memscale-v1 JSON file");
    }
    let path = files.pop().unwrap_or_else(|| DEFAULT_PATH.to_string());
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("memstat: cannot read {path}: {e}");
        std::process::exit(2);
    });
    match memstat_report(&src) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("memstat: {path}: {e}");
            std::process::exit(2);
        }
    }
}
