//! Fig 9 — read-modify-write (fetch-and-add) latency vs process count.
//!
//! Ranks 1..p repeatedly fetch-and-add a load-balance counter hosted at
//! rank 0, in four configurations: {Default, AsyncThread} × {rank 0 idle,
//! rank 0 computing ≈300 µs chunks}. Paper findings: with compute, the
//! default design's latency is dominated by rank 0's compute grain; the
//! asynchronous thread removes that dependence but latency still grows
//! linearly with p (software AMO serialization — no NIC support).

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_list, arg_usize, Fixture};
use desim::SimDuration;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn run(p: usize, progress: ProgressMode, rank0_computes: bool, k: usize) -> f64 {
    let contexts = if progress == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let f = Fixture::with_machine(
        pami_sim::MachineConfig::new(p).procs_per_node(16).contexts(contexts),
        ArmciConfig::default().progress(progress),
    );
    let owner = f.armci.machine().rank(0);
    let counter = owner.alloc(8);
    owner.write_i64(counter, 0);
    let total_wait = Rc::new(Cell::new(SimDuration::ZERO));
    let finished = Rc::new(Cell::new(0usize));
    let ops = (p - 1) * k;

    for r in 1..p {
        let rk = f.rank(r);
        let s = f.sim.clone();
        let total_wait = Rc::clone(&total_wait);
        let finished = Rc::clone(&finished);
        f.sim.spawn(async move {
            for _ in 0..k {
                let t0 = s.now();
                rk.rmw_fetch_add(0, counter, 1).await;
                total_wait.set(total_wait.get() + (s.now() - t0));
            }
            finished.set(finished.get() + 1);
            rk.barrier().await;
        });
    }
    // Rank 0's program.
    {
        let rk = f.rank(0);
        let s = f.sim.clone();
        let finished = Rc::clone(&finished);
        let nreq = p - 1;
        f.sim.spawn(async move {
            if rank0_computes {
                // SCF-like: compute 300 us, then touch the counter (the only
                // point where the default progress engine runs).
                while finished.get() < nreq {
                    s.sleep(SimDuration::from_us(300)).await;
                    rk.rmw_fetch_add(0, counter, 0).await;
                }
            }
            rk.barrier().await;
        });
    }
    f.finish();
    total_wait.get().as_us() / ops as f64
}

fn main() {
    let procs = arg_list("--procs", &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]);
    let k = arg_usize("--ops", 10);
    println!("== Fig 9: fetch-and-add latency on a counter at rank 0 (us/op) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "p", "D", "AT", "D+compute", "AT+compute"
    );
    type Rows = Vec<(usize, [f64; 4])>;
    let results: Rc<RefCell<Rows>> = Rc::new(RefCell::new(Vec::new()));
    for &p in &procs {
        let d = run(p, ProgressMode::Default, false, k);
        let at = run(p, ProgressMode::AsyncThread, false, k);
        let dc = run(p, ProgressMode::Default, true, k);
        let atc = run(p, ProgressMode::AsyncThread, true, k);
        println!("{p:>6} {d:>14.2} {at:>14.2} {dc:>14.2} {atc:>14.2}");
        results.borrow_mut().push((p, [d, at, dc, atc]));
    }
    println!("paper: D+compute >> others (grain ~300us); AT immune to rank-0 compute;");
    println!("       AT latency grows ~linearly with p (software AMOs, no NIC support)");
}
