//! Fig 9 — read-modify-write (fetch-and-add) latency vs process count.
//!
//! Ranks 1..p repeatedly fetch-and-add a load-balance counter hosted at
//! rank 0, in four configurations: {Default, AsyncThread} × {rank 0 idle,
//! rank 0 computing ≈300 µs chunks}. Paper findings: with compute, the
//! default design's latency is dominated by rank 0's compute grain; the
//! asynchronous thread removes that dependence but latency still grows
//! linearly with p (software AMO serialization — no NIC support).
//!
//! Observability: `--json <path>` writes a merged [`desim::MetricsSnapshot`]
//! (protocol-path counters, wait-time histograms) over the whole sweep;
//! `--trace <path>` writes a Chrome trace-event file (one process per
//! configuration, traced at the smallest process count) loadable in
//! Perfetto / `chrome://tracing`; `--breakdown <path>` enables the
//! message-lifecycle flight recorder at the smallest process count, prints
//! the critical-path decomposition of each configuration (compute /
//! queueing / wire / contention / progress-starvation, tiling the whole
//! run), and writes the machine-readable form as JSON.

use armci::ProgressMode;
use bgq_bench::fig9::run;
use bgq_bench::{
    append_json_field, arg_jobs, arg_list, arg_str, arg_usize, arg_workers, check_args,
    peak_rss_kb, sweep, write_text, JOBS_FLAG, TIMELINE_FLAG, TIMELINE_WINDOW_PS, WORKERS_FLAG,
};
use desim::{ChromeTrace, Stats, TimelineDoc};

fn main() {
    check_args(
        "fig9_rmw",
        "Fig 9 — fetch-and-add latency vs process count (D/AT × idle/compute)",
        &[
            ("--procs", true, "comma-separated process counts"),
            ("--ops", true, "fetch-and-adds per requester (default 10)"),
            ("--json", true, "write the merged metrics snapshot JSON"),
            (
                "--trace",
                true,
                "write a Chrome trace of the smallest-p runs",
            ),
            (
                "--breakdown",
                true,
                "write critical-path breakdown JSON (smallest p)",
            ),
            TIMELINE_FLAG,
            JOBS_FLAG,
            WORKERS_FLAG,
        ],
    );
    let procs = arg_list(
        "--procs",
        &[2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
    );
    let k = arg_usize("--ops", 10);
    let jobs = arg_jobs();
    let workers = arg_workers();
    let json_path = arg_str("--json");
    let trace_path = arg_str("--trace");
    let breakdown_path = arg_str("--breakdown");
    let timeline_path = arg_str("--timeline");
    let mut chrome = trace_path.as_ref().map(|_| ChromeTrace::new());
    // Merge vehicle for the sweep-wide metrics snapshot.
    let merged = Stats::new();
    // (config key, critical-path report, critical-path JSON) triples from
    // the flight-recorded runs at the smallest process count.
    let mut crits: Vec<(&str, String, String)> = Vec::new();

    println!("== Fig 9: fetch-and-add latency on a counter at rank 0 (us/op) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14}",
        "p", "D", "AT", "D+compute", "AT+compute"
    );
    const CONFIGS: [(ProgressMode, bool, &str); 4] = [
        (ProgressMode::Default, false, "fig9 D"),
        (ProgressMode::AsyncThread, false, "fig9 AT"),
        (ProgressMode::Default, true, "fig9 D+compute"),
        (ProgressMode::AsyncThread, true, "fig9 AT+compute"),
    ];
    // One sweep point per (process count, configuration) pair; results are
    // collected by input index, so the merge below runs in the same order as
    // the old serial loop regardless of worker count.
    let wants_trace = chrome.is_some();
    let wants_breakdown = breakdown_path.is_some();
    let wants_timeline = timeline_path.is_some();
    let outs = sweep::run_parallel(procs.len() * CONFIGS.len(), jobs, |idx| {
        let (pi, ci) = (idx / CONFIGS.len(), idx % CONFIGS.len());
        let (mode, compute, name) = CONFIGS[ci];
        // Trace/record only the smallest process count: one pid per config.
        let trace = (wants_trace && pi == 0).then_some((ci as u64 + 1, name));
        let breakdown = wants_breakdown && pi == 0;
        let tl = (wants_timeline && pi == 0).then_some(TIMELINE_WINDOW_PS);
        run(
            procs[pi], mode, compute, k, trace, breakdown, None, tl, workers,
        )
    });
    // Timeline doc: one run per configuration, recorded at the smallest p.
    let mut timelines: Vec<(String, desim::TimelineSnapshot)> = Vec::new();
    for (pi, &p) in procs.iter().enumerate() {
        let mut lat = [0.0f64; 4];
        for (ci, &(_, _, name)) in CONFIGS.iter().enumerate() {
            let out = &outs[pi * CONFIGS.len() + ci];
            lat[ci] = out.latency_us;
            merged.absorb(&out.snapshot);
            if let Some(cp) = &out.crit {
                let key = name.trim_start_matches("fig9 ");
                crits.push((key, cp.report(), cp.to_json()));
            }
            if let Some(tl) = &out.timeline {
                let key = name.trim_start_matches("fig9 ");
                timelines.push((key.to_string(), tl.clone()));
            }
        }
        println!(
            "{p:>6} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            lat[0], lat[1], lat[2], lat[3]
        );
    }
    if let Some(ct) = &mut chrome {
        for out in outs {
            if let Some(fragment) = out.chrome {
                ct.absorb(fragment);
            }
        }
    }
    println!("paper: D+compute >> others (grain ~300us); AT immune to rank-0 compute;");
    println!("       AT latency grows ~linearly with p (software AMOs, no NIC support)");
    if !crits.is_empty() {
        let p0 = procs.first().copied().unwrap_or(0);
        println!("\n== message-lifecycle critical path at p={p0} ==");
        for (key, report, _) in &crits {
            println!("[{key}]");
            print!("{report}");
        }
    }
    if let Some(path) = breakdown_path {
        let p0 = procs.first().copied().unwrap_or(0);
        let mut body = format!("{{\"bench\":\"fig9_rmw\",\"p\":{p0},\"configs\":{{");
        for (i, (key, _, json)) in crits.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{key}\":{json}"));
        }
        body.push_str("}}\n");
        write_text(&path, &body);
    }
    if let Some(path) = timeline_path {
        let doc = TimelineDoc {
            bench: "fig9_rmw".to_string(),
            runs: timelines,
        };
        write_text(&path, &doc.to_json());
    }
    if let Some(path) = json_path {
        // peak_rss_kb is host context, not a gated metric: candidate-only
        // leaves never fail perfdiff, so the committed golden stays as-is.
        let doc = append_json_field(&merged.snapshot().to_json(), "peak_rss_kb", peak_rss_kb());
        write_text(&path, &doc);
    }
    if let (Some(path), Some(ct)) = (trace_path, chrome) {
        write_text(&path, &ct.finish());
    }
}
