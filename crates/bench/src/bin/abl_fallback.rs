//! Ablation — RDMA protocol (Eq. 7) vs active-message fall-back (Eq. 8).
//!
//! Forces the fall-back by disallowing memory-region registration
//! (`memregion_limit = 0`) and compares blocking-get latency, with the
//! target (a) driving progress promptly (AT) and (b) computing in 300 µs
//! chunks — exposing the fall-back's dependence on remote progress.

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, fmt_size, sweep, Fixture, JOBS_FLAG};
use desim::SimDuration;
use pami_sim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;

fn run(bytes: usize, rdma: bool, target_computes: bool, reps: usize) -> f64 {
    // Busy-target case runs in Default progress mode (one context, no AT):
    // remote requests are only serviced between rank 1's compute chunks.
    let (contexts, progress) = if target_computes {
        (1, ProgressMode::Default)
    } else {
        (2, ProgressMode::AsyncThread)
    };
    let mcfg = MachineConfig::new(2)
        .procs_per_node(1)
        .contexts(contexts)
        .memregion_limit(if rdma { None } else { Some(0) });
    let f = Fixture::with_machine(mcfg, ArmciConfig::default().progress(progress));
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    let s = f.sim.clone();
    let out = Rc::new(Cell::new(0.0));
    let out2 = Rc::clone(&out);
    if target_computes {
        let s2 = f.sim.clone();
        let r1b = f.armci.machine().rank(1);
        f.sim.spawn(async move {
            for _ in 0..10_000 {
                s2.sleep(SimDuration::from_us(300)).await;
                r1b.advance(0, usize::MAX).await;
                if s2.pending_tasks() <= 1 {
                    break;
                }
            }
        });
    }
    f.sim.spawn(async move {
        let remote = r1.malloc(bytes.max(64)).await;
        let local = r0.malloc(bytes.max(64)).await;
        r0.get(1, local, remote, bytes).await; // warm
        let t0 = s.now();
        for _ in 0..reps {
            r0.get(1, local, remote, bytes).await;
        }
        out2.set((s.now() - t0).as_us() / reps as f64);
    });
    f.finish();
    out.get()
}

fn main() {
    check_args(
        "abl_fallback",
        "ablation — RDMA protocol vs active-message fall-back latency",
        &[
            ("--reps", true, "repetitions per size (default 20)"),
            JOBS_FLAG,
        ],
    );
    let reps = arg_usize("--reps", 20);
    let jobs = arg_jobs();
    println!("== Ablation: RDMA (Eq.7) vs AM fall-back (Eq.8) blocking get latency (us) ==");
    println!(
        "{:>8} {:>10} {:>12} {:>22}",
        "size", "RDMA", "fallback", "fallback+busy-target"
    );
    let sizes = [16usize, 256, 1024, 8192, 65536];
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        let m = sizes[i];
        (
            run(m, true, false, reps),
            run(m, false, false, reps),
            run(m, false, true, 3),
        )
    });
    for (m, (rdma, fb, fb_busy)) in sizes.iter().zip(&rows) {
        println!(
            "{:>8} {:>10.2} {:>12.2} {:>22.2}",
            fmt_size(*m),
            rdma,
            fb,
            fb_busy
        );
    }
    println!("Eq.8 adds one dispatch 'o'; a busy target adds its compute grain (~300us)");
}
