//! Ablation — process→torus mapping: `ABCDET` (paper default, node-filling)
//! vs `TABCDE` (node-spreading).
//!
//! The mapping shapes Fig 7's latency-vs-rank curve: with ABCDET, the first
//! `c` ranks are intra-node and distance grows slowly; with TABCDE,
//! consecutive ranks land on different nodes immediately. It also changes
//! how much nearest-neighbour traffic stays on-node.

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::RefCell;
use std::rc::Rc;
use torus5d::Mapping;

fn rank_latencies(p: usize, c: usize, mapping: Mapping) -> Vec<f64> {
    let mut mcfg = MachineConfig::new(p).procs_per_node(c).contexts(2);
    mcfg.mapping = mapping;
    let f = Fixture::with_machine(
        mcfg,
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let r0 = f.rank(0);
    let lat: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p]));
    let lat2 = Rc::clone(&lat);
    let s = f.sim.clone();
    let armci = f.armci.clone();
    f.sim.spawn(async move {
        let local = r0.malloc(64).await;
        for t in 1..p {
            let pr = armci.machine().rank(t);
            let off = pr.alloc(64);
            let _ = pr.register_region_untimed(off, 64);
            r0.get(t, local, off, 16).await; // warm
            let t0 = s.now();
            r0.get(t, local, off, 16).await;
            lat2.borrow_mut()[t] = (s.now() - t0).as_us();
        }
    });
    f.finish();
    Rc::try_unwrap(lat)
        .map(RefCell::into_inner)
        .unwrap_or_default()
}

fn neighbour_exchange_time(p: usize, c: usize, mapping: Mapping) -> f64 {
    // All ranks put 64KB to rank+1 simultaneously (halo-style traffic).
    let mut mcfg = MachineConfig::new(p).procs_per_node(c).contexts(2);
    mcfg.mapping = mapping;
    let f = Fixture::with_machine(
        mcfg,
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let out = Rc::new(RefCell::new(0.0f64));
    let bytes = 64 * 1024;
    let mut remotes = Vec::new();
    for r in 0..p {
        let pr = f.armci.machine().rank(r);
        let off = pr.alloc(bytes);
        let _ = pr.register_region_untimed(off, bytes);
        remotes.push(off);
    }
    for r in 0..p {
        let rk = f.rank(r);
        let s = f.sim.clone();
        let out = Rc::clone(&out);
        let target = (r + 1) % p;
        let dst = remotes[target];
        f.sim.spawn(async move {
            let src = rk.malloc(bytes).await;
            rk.put(target, src, dst, 64).await; // warm
            rk.barrier().await;
            let t0 = s.now();
            rk.put(target, src, dst, bytes).await;
            rk.fence(target).await;
            if rk.id() == 0 {
                *out.borrow_mut() = (s.now() - t0).as_us();
            }
            rk.barrier().await;
        });
    }
    f.finish();
    let v = *out.borrow();
    v
}

fn main() {
    check_args(
        "abl_mapping",
        "ablation — ABCDET vs TABCDE process-to-torus mapping",
        &[
            ("--procs", true, "processes (default 256)"),
            ("--ppn", true, "processes per node (default 16)"),
            JOBS_FLAG,
        ],
    );
    let p = arg_usize("--procs", 256);
    let c = arg_usize("--ppn", 16);
    let jobs = arg_jobs();
    println!("== Ablation: ABCDET vs TABCDE mapping (p={p}, c={c}) ==");
    let mappings = [("ABCDET", Mapping::abcdet()), ("TABCDE", Mapping::tabcde())];
    let rows = sweep::run_parallel(mappings.len(), jobs, |i| {
        let mapping = &mappings[i].1;
        (
            rank_latencies(p, c, mapping.clone()),
            neighbour_exchange_time(p, c, mapping.clone()),
        )
    });
    for ((label, _), (lat, halo)) in mappings.iter().zip(&rows) {
        let inter: Vec<f64> = lat[1..].iter().copied().filter(|&l| l > 0.0).collect();
        let min = inter.iter().copied().fold(f64::MAX, f64::min);
        let max = inter.iter().copied().fold(0.0f64, f64::max);
        // How many of the first c-1 peers are intra-node (cheap)?
        // Intra-node gets are ~2.15 us vs >=2.89 us inter-node.
        let near = lat[1..c.min(p)].iter().filter(|&&l| l < 2.5).count();
        println!(
            "  {label}: rank-latency min {min:.3} / max {max:.3} us; \
             {near}/{} nearest peers on-node; halo put+fence {halo:.1} us",
            c.min(p) - 1
        );
    }
    println!("ABCDET keeps consecutive ranks on one node (fast nearest-neighbour traffic);");
    println!("TABCDE spreads them, trading neighbour locality for distribution");
}
