//! fig_fault — bandwidth and p99 latency under deterministic fault injection.
//!
//! Sweeps fault rate × message size over a blocking RDMA-put streaming
//! workload (every rank → the rank 16 away, always cross-node) with the
//! `desim::fault` scheduler injecting link corruption plus one mid-run
//! link-down window. Shows goodput and tail latency degrading gracefully as
//! the PAMI timeout/backoff/retry layer rides out the faults. With
//! `--fault-rate 0` no plan is installed at all, so that column is
//! byte-identical to a fault-free build (the zero-cost contract).
//!
//! `--json <path>` writes the fixed-schema `fault-v1` document; every field
//! in it is deterministic (virtual time, counters, percentiles derived from
//! virtual time), so CI diffs it against `results/BENCH_fig_fault.json`
//! with zero tolerance.

use bgq_bench::fault_bench::{run_cell_timeline, sweep_json, FaultCell};
use bgq_bench::{
    append_json_field, arg_jobs, arg_list, arg_str, arg_usize, arg_workers, check_args, fmt_size,
    peak_rss_kb, sweep, write_text, JOBS_FLAG, TIMELINE_FLAG, TIMELINE_WINDOW_PS, WORKERS_FLAG,
};

fn main() {
    check_args(
        "fig_fault",
        "bandwidth and p99 latency under deterministic fault injection",
        &[
            (
                "--procs",
                true,
                "process count, multiple of 16 (default 32)",
            ),
            ("--msgs", true, "puts per rank (default 8)"),
            ("--sizes", true, "comma-separated payload sizes (bytes)"),
            (
                "--fault-rate",
                true,
                "comma-separated corruption rates, parts per million",
            ),
            ("--seed", true, "fault-plan seed (default 42)"),
            ("--json", true, "write the fault-v1 sweep JSON"),
            TIMELINE_FLAG,
            JOBS_FLAG,
            WORKERS_FLAG,
        ],
    );
    let procs = arg_usize("--procs", 32);
    let msgs = arg_usize("--msgs", 8);
    let sizes = arg_list("--sizes", &[4096, 65536]);
    let rates = arg_list("--fault-rate", &[0, 1000, 10000]);
    let seed = arg_usize("--seed", 42) as u64;
    let jobs = arg_jobs();
    let workers = arg_workers();
    let json_path = arg_str("--json");
    let timeline_path = arg_str("--timeline");

    println!("== fig_fault: {procs} ranks, {msgs} puts/rank, seed {seed} ==");
    println!(
        "{:>10} {:>8} {:>12} {:>10} {:>9} {:>9} {:>8} {:>12}",
        "rate(ppm)", "size", "MB/s", "p99(us)", "retries", "timeouts", "gave_up", "sim_time(ms)"
    );
    // Timeline (when requested) records the stormiest designated cell:
    // largest corruption rate at the first payload size.
    let tl_ri = rates
        .iter()
        .enumerate()
        .max_by_key(|&(_, &r)| r)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let wants_timeline = timeline_path.is_some();
    // One independent simulation per (rate, size) cell; collected by input
    // index so output order never depends on worker count.
    let outs = sweep::run_parallel(rates.len() * sizes.len(), jobs, |idx| {
        let (ri, si) = (idx / sizes.len(), idx % sizes.len());
        let tl = (wants_timeline && ri == tl_ri && si == 0).then_some(TIMELINE_WINDOW_PS);
        run_cell_timeline(procs, sizes[si], msgs, rates[ri] as u64, seed, tl, workers)
    });
    let cells: Vec<FaultCell> = outs.iter().map(|(c, _)| c.clone()).collect();
    for c in &cells {
        println!(
            "{:>10} {:>8} {:>12.1} {:>10.2} {:>9} {:>9} {:>8} {:>12.3}",
            c.rate_ppm,
            fmt_size(c.size),
            c.mb_s,
            c.p99_us,
            c.retries,
            c.timeouts,
            c.gave_up,
            c.sim_time_ps as f64 / 1e9,
        );
    }
    println!("expected: MB/s falls and p99 rises smoothly with rate; rate 0 == fault-free");
    if let Some(path) = json_path {
        // Host context, never gated: the fault-v1 golden diffs at tol 0 but
        // candidate-only leaves are ignored by perfdiff.
        let doc = append_json_field(
            &sweep_json(procs, msgs, seed, &cells),
            "peak_rss_kb",
            peak_rss_kb(),
        );
        write_text(&path, &doc);
    }
    if let Some(path) = timeline_path {
        let runs = outs
            .into_iter()
            .filter_map(|(c, tl)| tl.map(|tl| (format!("rate{}_size{}", c.rate_ppm, c.size), tl)))
            .collect();
        let doc = desim::TimelineDoc {
            bench: "fig_fault".to_string(),
            runs,
        };
        write_text(&path, &doc.to_json());
    }
}
