//! fig_scale — million-rank scaling of the event-driven rank runtime.
//!
//! Sweeps the Fig 9 fetch-and-add storm (all ranks active) and a synthetic
//! all-to-all over a fixed active set (everyone else idle) up to
//! p = 1,000,000 ranks in a single process, measuring what scaling to a
//! full Blue Gene/Q partition costs in host memory: tagged peak bytes and
//! bytes/rank (via the [`desim::memprof`] allocator), peak RSS, wall time
//! and kernel events/s, plus the deterministic run signature (virtual end
//! time, event count, materialized ranks, task-table high-water mark).
//!
//! Points run **serially in ascending p** — the 1M-rank point needs the
//! whole address space to itself and serial order makes the running
//! peak-RSS column meaningful.
//!
//! A `netstorm` workload additionally drives a fixed seeded delivery
//! schedule through the conservative parallel batch engine at each
//! `--workers` count, reporting per-worker wall time and events/s (the
//! engine's speedup curve; honest caveat: on a single-core host it is ~1x).
//!
//! `--json` writes the full `scale-v2` document (committed as
//! `results/BENCH_scale.json`, curves ungated); `--gate-json` writes the
//! deterministic-leaves-only `scale-gate-v2` subset that CI compares with
//! `perfdiff --tol 0` at small p against `results/BENCH_scale_gate.json`.

use bgq_bench::scale::{
    self, DEFAULT_ACTIVE, DEFAULT_OPS, DEFAULT_PROCS, DEFAULT_STORM_MSGS, DEFAULT_WORKERS,
};
use bgq_bench::{arg_list, arg_str, arg_usize, check_args, write_text};
use desim::memprof;

#[global_allocator]
static ALLOC: memprof::MemProf = memprof::MemProf;

fn main() {
    check_args(
        "fig_scale",
        "memory and throughput scaling of lazily materialized rank state to p=1M",
        &[
            (
                "--procs",
                true,
                "comma-separated process counts (default up to 1,000,000)",
            ),
            (
                "--active",
                true,
                "alltoall active-set size (default 256; capped at p)",
            ),
            (
                "--ops",
                true,
                "fetch-and-adds per requester / all-to-all rounds (default 1)",
            ),
            (
                "--workers",
                true,
                "netstorm parallel-engine shard counts, comma-separated (default 1,2,4)",
            ),
            (
                "--storm-msgs",
                true,
                "netstorm schedule length (default 100,000)",
            ),
            ("--json", true, "write the full scale-v2 JSON document"),
            (
                "--gate-json",
                true,
                "write the deterministic scale-gate-v2 JSON document",
            ),
        ],
    );
    let mut procs = arg_list("--procs", &DEFAULT_PROCS);
    procs.sort_unstable();
    procs.dedup();
    let ops = arg_usize("--ops", DEFAULT_OPS).max(1);
    let active = arg_usize("--active", DEFAULT_ACTIVE).max(2);
    let workers = arg_list("--workers", &DEFAULT_WORKERS);
    let storm_msgs = arg_usize("--storm-msgs", DEFAULT_STORM_MSGS).max(1);
    let json_path = arg_str("--json");
    let gate_path = arg_str("--gate-json");

    memprof::enable();
    println!(
        "fig_scale: p = {procs:?}, ops = {ops}, active = {active} (serial sweep)\n\
         {:<9} {:>9} {:>12} {:>12} {:>11} {:>10} {:>11} {:>12}",
        "workload", "p", "sim_ms", "events", "materialized", "tasks", "rss_mb", "events/s"
    );
    let (rmw, a2a) = scale::run_sweep(&procs, ops, active, |name, pt| {
        let eps = if pt.mem.wall_ms > 0.0 {
            pt.mem.events as f64 / (pt.mem.wall_ms / 1e3)
        } else {
            0.0
        };
        println!(
            "{:<9} {:>9} {:>12.3} {:>12} {:>11} {:>10} {:>11.1} {:>12.0}",
            name,
            pt.mem.procs,
            pt.sim_time_ps as f64 / 1e9,
            pt.mem.events,
            pt.materialized,
            pt.task_slots,
            pt.peak_rss_kb as f64 / 1024.0,
            eps
        );
    });
    // netstorm: the parallel batch engine's speedup curve per p. Points run
    // serially after the memory sweep; deterministic leaves are asserted
    // worker-count-invariant inside run_netstorm.
    println!(
        "netstorm: msgs = {storm_msgs}, workers = {workers:?}\n\
         {:<9} {:>9} {:>12} {:>12} {:>4} {:>11} {:>12}",
        "workload", "p", "sim_ms", "events", "w", "wall_ms", "events/s"
    );
    let storm: Vec<scale::StormPoint> = procs
        .iter()
        .map(|&p| {
            let pt = scale::run_netstorm(p, storm_msgs, &workers);
            for (w, wall_ms) in &pt.per_workers {
                let eps = if *wall_ms > 0.0 {
                    pt.events as f64 / (wall_ms / 1e3)
                } else {
                    0.0
                };
                println!(
                    "{:<9} {:>9} {:>12.3} {:>12} {:>4} {:>11.1} {:>12.0}",
                    "netstorm",
                    pt.procs,
                    pt.sim_time_ps as f64 / 1e9,
                    pt.events,
                    w,
                    wall_ms,
                    eps
                );
            }
            pt
        })
        .collect();
    if let Some(path) = json_path {
        write_text(
            &path,
            &scale::scale_json(&rmw, &a2a, &storm, ops, active, storm_msgs),
        );
    }
    if let Some(path) = gate_path {
        write_text(
            &path,
            &scale::gate_json(&rmw, &a2a, &storm, ops, active, storm_msgs),
        );
    }
}
