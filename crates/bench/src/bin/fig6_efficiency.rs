//! Fig 6 — bandwidth efficiency (ratio to the 1.8 GB/s available) and N½.
//!
//! Paper: N½ ≈ 2 KB, efficiency ≥ 90 % beyond 16 KB.

use bgq_bench::{
    arg_jobs, arg_usize, bandwidth, check_args, fmt_size, size_sweep, sweep, JOBS_FLAG,
};

fn main() {
    check_args(
        "fig6_efficiency",
        "Fig 6 — bandwidth efficiency and N-half",
        &[
            ("--window", true, "outstanding operations (default 2)"),
            ("--reps", true, "messages per size (default 32)"),
            JOBS_FLAG,
        ],
    );
    let window = arg_usize("--window", 2);
    let reps = arg_usize("--reps", 32);
    let jobs = arg_jobs();
    let peak = 1800.0;
    println!("== Fig 6: bandwidth efficiency (put, window = {window}) ==");
    println!("{:>8} {:>14} {:>12}", "size", "bw (MB/s)", "efficiency");
    let sizes = size_sweep(16, 1 << 20);
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        bandwidth(2, sizes[i], window, reps, false)
    });
    let mut n_half: Option<usize> = None;
    let mut eff90: Option<usize> = None;
    for (m, bw) in sizes.iter().zip(&rows) {
        let eff = bw / peak;
        if n_half.is_none() && eff >= 0.5 {
            n_half = Some(*m);
        }
        if eff90.is_none() && eff >= 0.9 {
            eff90 = Some(*m);
        }
        println!("{:>8} {:>14.1} {:>11.1}%", fmt_size(*m), bw, eff * 100.0);
    }
    println!(
        "measured: N1/2 = {} ; >=90% efficiency from {}",
        n_half.map(fmt_size).unwrap_or_else(|| "-".into()),
        eff90.map(fmt_size).unwrap_or_else(|| "-".into()),
    );
    println!("paper: N1/2 = 2K ; >=90% efficiency beyond 16K");
}
