//! Ablation — one shared PAMI context (ρ=1) vs two (ρ=2) for the
//! asynchronous-thread design (§III-D).
//!
//! With ρ=1 the main thread's blocking waits and the progress thread share
//! one progress-engine lock; servicing a stream of incoming accumulates
//! while the main thread waits on its own gets exposes the contention. With
//! ρ=2 each context progresses independently.

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;

/// Rank 0 runs a get-heavy loop while ranks 1..p bombard it with large
/// accumulates (long lock-holding service batches); returns rank 0's loop
/// completion time (us).
fn run(contexts: usize, p: usize, rounds: usize) -> f64 {
    let mcfg = MachineConfig::new(p).procs_per_node(1).contexts(contexts);
    let f = Fixture::with_machine(
        mcfg,
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let out = Rc::new(Cell::new(0.0));
    let out2 = Rc::clone(&out);
    let s = f.sim.clone();
    let r0 = f.rank(0);
    let armci = f.armci.clone();
    // Victim buffer at rank 0 that everyone accumulates into. Large accs
    // make each service hold the context lock for ~8 us.
    let elems = 32 * 1024;
    let victim = f.armci.machine().rank(0).alloc(elems * 8);
    f.sim.spawn(async move {
        let remote = armci.rank(1).pami().alloc(1 << 16);
        let _ = armci
            .machine()
            .rank(1)
            .register_region_untimed(remote, 1 << 16);
        let local = r0.malloc(1 << 16).await;
        let t0 = s.now();
        for _ in 0..rounds {
            r0.get(1, local, remote, 8192).await;
        }
        out2.set((s.now() - t0).as_us());
        r0.barrier().await;
    });
    for r in 1..p {
        let rk = f.rank(r);
        let done = out.clone();
        f.sim.spawn(async move {
            let src = rk.malloc(elems * 8).await;
            // Keep the stream flowing until rank 0 finishes its loop.
            while done.get() == 0.0 {
                let h = rk.nbacc(0, src, victim, elems, 1.0).await;
                rk.wait(&h).await;
                rk.fence(0).await;
            }
            rk.barrier().await;
        });
    }
    f.finish();
    out.get()
}

fn main() {
    check_args(
        "abl_contexts",
        "ablation — 1 vs 2 PAMI contexts under the async-thread design",
        &[
            ("--rounds", true, "get-loop rounds (default 200)"),
            JOBS_FLAG,
        ],
    );
    let rounds = arg_usize("--rounds", 200);
    let jobs = arg_jobs();
    println!("== Ablation: rho=1 vs rho=2 contexts under AT (rank-0 get loop, us) ==");
    println!(
        "{:>4} {:>14} {:>14} {:>10}",
        "p", "rho=1", "rho=2", "speedup"
    );
    let procs = [2usize, 4, 8, 16];
    let rows = sweep::run_parallel(procs.len(), jobs, |i| {
        (run(1, procs[i], rounds), run(2, procs[i], rounds))
    });
    for (p, (one, two)) in procs.iter().zip(&rows) {
        println!("{:>4} {:>14.1} {:>14.1} {:>9.2}x", p, one, two, one / two);
    }
    println!("paper: multiple contexts improve the progress schedule of each thread");
}
