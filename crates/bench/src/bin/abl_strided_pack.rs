//! Ablation — strided protocol crossover: zero-copy chunk-list RDMA
//! (Eq. 9) vs the packed typed-datatype path, as a function of the
//! contiguous chunk size l₀ (§III-C2, "tall-skinny" transfers).

use armci::{ArmciConfig, ProgressMode, Strided};
use bgq_bench::{arg_jobs, arg_usize, check_args, fmt_size, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;

fn run(total: usize, l0: usize, force_packed: bool, reps: usize) -> f64 {
    // pack_threshold selects the protocol: 0 forces zero-copy for every l0;
    // usize::MAX forces packed.
    let threshold = if force_packed { usize::MAX } else { 0 };
    let f = Fixture::with_machine(
        MachineConfig::new(2).procs_per_node(1).contexts(2),
        ArmciConfig::default()
            .progress(ProgressMode::AsyncThread)
            .pack_threshold(threshold),
    );
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    let s = f.sim.clone();
    let out = Rc::new(Cell::new(0.0));
    let out2 = Rc::clone(&out);
    let rows = total / l0;
    f.sim.spawn(async move {
        let remote_base = r1.malloc(rows * l0 * 2).await;
        let local_base = r0.malloc(total).await;
        let remote = Strided::patch2d(remote_base, l0, rows, l0 * 2);
        let local = Strided::patch2d(local_base, l0, rows, l0);
        r0.get(1, local_base, remote_base, 64.min(l0)).await; // warm
        let t0 = s.now();
        for _ in 0..reps {
            r0.get_strided(1, &local, &remote).await;
        }
        out2.set((s.now() - t0).as_us() / reps as f64);
    });
    f.finish();
    out.get()
}

fn main() {
    check_args(
        "abl_strided_pack",
        "ablation — chunk-list RDMA vs packed strided protocol crossover",
        &[
            ("--total", true, "total transfer bytes (default 256K)"),
            ("--reps", true, "repetitions (default 4)"),
            JOBS_FLAG,
        ],
    );
    let total = arg_usize("--total", 1 << 18); // 256 KB
    let reps = arg_usize("--reps", 4);
    let jobs = arg_jobs();
    println!(
        "== Ablation: strided get, zero-copy vs packed (total {}) ==",
        fmt_size(total)
    );
    println!(
        "{:>8} {:>8} {:>16} {:>16} {:>8}",
        "l0", "chunks", "zero-copy (us)", "packed (us)", "winner"
    );
    let mut chunk_sizes = Vec::new();
    let mut l0 = 16usize;
    while l0 <= total {
        chunk_sizes.push(l0);
        l0 *= 4;
    }
    let rows = sweep::run_parallel(chunk_sizes.len(), jobs, |i| {
        (
            run(total, chunk_sizes[i], false, reps),
            run(total, chunk_sizes[i], true, reps),
        )
    });
    for (l0, (zc, pk)) in chunk_sizes.iter().zip(&rows) {
        println!(
            "{:>8} {:>8} {:>16.1} {:>16.1} {:>8}",
            fmt_size(*l0),
            total / l0,
            zc,
            pk,
            if zc <= pk { "zc" } else { "packed" }
        );
    }
    println!("tall-skinny (small l0): per-chunk 'o' dominates Eq.9 -> packed path wins;");
    println!("large l0: zero-copy avoids the pack/unpack copies and target CPU");
}
