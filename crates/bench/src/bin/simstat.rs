//! simstat — human report over `timeline-v1` telemetry artifacts.
//!
//! Loads one or two timeline JSONs (written by the `--timeline` option of
//! `fig9_rmw`, `fig11_nwchem_scf`, `simbench`, `fig_fault`) and prints, per
//! run: a text sparkline per series, numeric headlines, and the health
//! findings of `desim::health` (congestion onset, retry storms, queue
//! runaway, progress starvation). With two files it appends a
//! window-aligned A/B diff. Output is a pure function of the input bytes,
//! so reports are byte-identical across runs and hosts.
//!
//! Exit status: 0 = report printed (findings are informational), 2 = usage
//! or I/O error.

use bgq_bench::simstat::{diff_report, report};
use bgq_bench::{usage_text, FlagSpec};
use desim::{HealthConfig, TimelineDoc};

const BIN: &str = "simstat <a.json> [b.json]";
const ABOUT: &str = "report + health-check timeline-v1 telemetry (A/B diff with two files)";
const FLAGS: &[FlagSpec] = &[("--width", true, "max sparkline width in chars (default 64)")];

fn fail_usage(msg: &str) -> ! {
    eprintln!("simstat: {msg}");
    eprint!("{}", usage_text(BIN, ABOUT, FLAGS));
    std::process::exit(2);
}

fn load(path: &str) -> TimelineDoc {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("simstat: cannot read {path}: {e}");
        std::process::exit(2);
    });
    TimelineDoc::parse(&src).unwrap_or_else(|e| {
        eprintln!("simstat: {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut width = 64usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{}", usage_text(BIN, ABOUT, FLAGS));
                return;
            }
            "--width" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) else {
                    fail_usage("--width needs a numeric value");
                };
                width = v.max(1);
                i += 1;
            }
            a if a.starts_with('-') => fail_usage(&format!("unknown option '{a}'")),
            a => files.push(a.to_string()),
        }
        i += 1;
    }
    if files.is_empty() || files.len() > 2 {
        fail_usage("expected one or two timeline-v1 JSON files");
    }

    let cfg = HealthConfig::default();
    let a = load(&files[0]);
    print!("{}", report(&files[0], &a, &cfg, width));
    if let Some(bp) = files.get(1) {
        let b = load(bp);
        print!("\n{}", report(bp, &b, &cfg, width));
        print!("{}", diff_report(&a, &b, width));
    }
}
