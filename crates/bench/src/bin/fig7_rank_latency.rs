//! Fig 7 — get latency as a function of process rank (ABCDET mapping).
//!
//! 2048 processes = 128 nodes = 2×2×4×4×2 (paper Eq. 10): the latency curve
//! oscillates with the torus distance from rank 0; the min/max spread gives
//! ≈ 35 ns per hop.

use armci::ArmciConfig;
use bgq_bench::{arg_jobs, arg_usize, check_args, Fixture, JOBS_FLAG};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    check_args(
        "fig7_rank_latency",
        "Fig 7 — get latency vs process rank under ABCDET",
        &[
            ("--procs", true, "processes (default 2048)"),
            ("--ppn", true, "processes per node (default 16)"),
            ("--reps", true, "repetitions per rank (default 3)"),
            JOBS_FLAG,
        ],
    );
    // This figure is one big simulation (all ranks share a machine), so the
    // sweep harness has nothing to fan out; the flag is accepted for CLI
    // uniformity across the bench binaries.
    let _jobs = arg_jobs();
    let p = arg_usize("--procs", 2048);
    let c = arg_usize("--ppn", 16);
    let reps = arg_usize("--reps", 3);
    let bytes = 16usize;
    let f = Fixture::new(p, c, ArmciConfig::default());
    let topo = f.armci.machine().topology().clone();
    let r0 = f.rank(0);
    let s = f.sim.clone();
    let lat: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p]));
    let lat2 = Rc::clone(&lat);
    let armci = f.armci.clone();
    f.sim.spawn(async move {
        let local = r0.malloc(64).await;
        for target in 1..p {
            let remote = armci.rank(target).alloc_unregistered(0); // probe owner memory
            let remote = {
                // allocate a real remote buffer (registered, setup-time)
                let pr = armci.machine().rank(target);
                let off = pr.alloc(64);
                let _ = pr.register_region_untimed(off, 64);
                let _ = remote;
                off
            };
            r0.get(target, local, remote, bytes).await; // warm
            let t0 = s.now();
            for _ in 0..reps {
                r0.get(target, local, remote, bytes).await;
            }
            lat2.borrow_mut()[target] = (s.now() - t0).as_us() / reps as f64;
        }
    });
    f.finish();

    let lat = lat.borrow();
    println!(
        "== Fig 7: 16B get latency vs rank, p={p}, c={c}, shape {} ==",
        topo.shape
    );
    println!("{:>6} {:>6} {:>10}", "rank", "hops", "get (us)");
    let stride = (p / 64).max(1);
    for r in (1..p).step_by(stride) {
        println!("{:>6} {:>6} {:>10.3}", r, topo.hops(0, r), lat[r]);
    }
    // Inter-node statistics.
    let mut min = f64::MAX;
    let mut max: f64 = 0.0;
    let (mut minh, mut maxh) = (u32::MAX, 0);
    for r in 1..p {
        let h = topo.hops(0, r);
        if h == 0 {
            continue; // intra-node
        }
        if lat[r] < min {
            min = lat[r];
            minh = h;
        }
        if lat[r] > max {
            max = lat[r];
            maxh = h;
        }
    }
    let per_hop = if maxh > minh {
        (max - min) * 1000.0 / (2.0 * (maxh - minh) as f64)
    } else {
        0.0
    };
    println!("inter-node min = {min:.3} us (hops {minh}), max = {max:.3} us (hops {maxh})");
    println!("latency increment per hop (round trip counted) = {per_hop:.1} ns");
    println!("paper: min 2.89 us, max 3.38 us, ~35 ns/hop, diameter 7");
}
