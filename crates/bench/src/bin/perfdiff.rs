//! perfdiff — the perf-regression gate: diff two metrics / breakdown JSONs.
//!
//! Compares every leaf of a baseline JSON document (committed golden) against
//! a freshly generated candidate, within a relative + absolute tolerance
//! (see [`bgq_bench::perfdiff`] for the exact semantics). Used by
//! `scripts/reproduce.sh` and CI against the `results/BENCH_*.json` goldens.
//!
//! Exit status: 0 = within tolerance, 1 = drift / missing leaves / type
//! changes, 2 = usage or I/O error.

use bgq_bench::perfdiff::{diff, Tolerance};
use bgq_bench::{usage_text, FlagSpec};

const BIN: &str = "perfdiff <baseline.json> <candidate.json>";
const ABOUT: &str = "compare two metrics JSON documents within tolerances";
const FLAGS: &[FlagSpec] = &[
    ("--tol", true, "relative tolerance, fraction (default 0.05)"),
    (
        "--abs",
        true,
        "absolute slack per comparison (default 1e-9)",
    ),
    ("--check", false, "quiet gate mode: print violations only"),
];

fn fail_usage(msg: &str) -> ! {
    eprintln!("perfdiff: {msg}");
    eprint!("{}", usage_text(BIN, ABOUT, FLAGS));
    std::process::exit(2);
}

fn load(path: &str) -> desim::json::JsonValue {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("perfdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    if src.trim().is_empty() {
        eprintln!("perfdiff: {path} is empty");
        std::process::exit(2);
    }
    desim::json::parse(&src).unwrap_or_else(|e| {
        eprintln!("perfdiff: {path}: invalid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut tol = 0.05f64;
    let mut abs = 1e-9f64;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{}", usage_text(BIN, ABOUT, FLAGS));
                println!();
                println!("exit status:");
                println!("  0  every baseline leaf present in the candidate and within tolerance");
                println!("  1  regression: drift beyond tolerance, missing leaf, or type change");
                println!("  2  usage or I/O error (bad flags, unreadable file, invalid JSON)");
                println!();
                println!("candidate-only leaves are reported as notes and never fail the gate,");
                println!("so goldens stay forward-compatible when new counters appear.");
                return;
            }
            "--check" => check = true,
            name @ ("--tol" | "--abs") => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    fail_usage(&format!("{name} needs a numeric value"));
                };
                if name == "--tol" {
                    tol = v;
                } else {
                    abs = v;
                }
                i += 1;
            }
            a if a.starts_with('-') => fail_usage(&format!("unknown option '{a}'")),
            a => files.push(a.to_string()),
        }
        i += 1;
    }
    let [baseline, candidate] = files.as_slice() else {
        fail_usage("expected exactly two JSON files");
    };

    let res = diff(
        &load(baseline),
        &load(candidate),
        Tolerance { rel: tol, abs },
    );
    if !check {
        println!(
            "perfdiff: {baseline} vs {candidate}: {} leaves compared (tol {tol}, abs {abs})",
            res.checked
        );
        for k in &res.extra {
            println!("  note: candidate-only leaf {k}");
        }
    }
    for v in &res.violations {
        eprintln!("  DRIFT {v}");
    }
    if res.ok() {
        if !check {
            println!("OK: {candidate} within tolerance of {baseline}");
        }
    } else {
        eprintln!(
            "perfdiff: {candidate} drifted from {baseline}: {} violation(s)",
            res.violations.len()
        );
        std::process::exit(1);
    }
}
