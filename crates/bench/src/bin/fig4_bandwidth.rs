//! Fig 4 — contiguous get/put bandwidth vs message size (≤ 1 MB).
//!
//! Paper: peak ≈ 1775 MB/s of the 1.8 GB/s available; the get curve trails
//! the put curve until ≈ 8 KB because of the request round trip.

use bgq_bench::{arg_usize, bandwidth, check_args, fmt_size, size_sweep};

fn main() {
    check_args(
        "fig4_bandwidth",
        "Fig 4 — contiguous get/put bandwidth vs message size",
        &[
            ("--window", true, "outstanding operations (default 2)"),
            ("--reps", true, "messages per size (default 32)"),
        ],
    );
    let window = arg_usize("--window", 2);
    let reps = arg_usize("--reps", 32);
    println!("== Fig 4: get/put bandwidth, 2 procs, window = {window} ==");
    println!("{:>8} {:>14} {:>14}", "size", "get (MB/s)", "put (MB/s)");
    for m in size_sweep(16, 1 << 20) {
        let g = bandwidth(2, m, window, reps, true);
        let p = bandwidth(2, m, window, reps, false);
        println!("{:>8} {:>14.1} {:>14.1}", fmt_size(m), g, p);
    }
    println!("paper: peak 1775 MB/s; get round-trip overhead visible till 8K");
}
