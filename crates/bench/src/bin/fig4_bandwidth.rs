//! Fig 4 — contiguous get/put bandwidth vs message size (≤ 1 MB).
//!
//! Paper: peak ≈ 1775 MB/s of the 1.8 GB/s available; the get curve trails
//! the put curve until ≈ 8 KB because of the request round trip.

use bgq_bench::{
    arg_jobs, arg_str, arg_usize, bandwidth, check_args, fmt_size, size_sweep, sweep, write_text,
    JOBS_FLAG,
};
use desim::json::{push_f64, push_u64};

fn main() {
    check_args(
        "fig4_bandwidth",
        "Fig 4 — contiguous get/put bandwidth vs message size",
        &[
            ("--window", true, "outstanding operations (default 2)"),
            ("--reps", true, "messages per size (default 32)"),
            ("--json", true, "write bandwidth rows as JSON"),
            JOBS_FLAG,
        ],
    );
    let window = arg_usize("--window", 2);
    let reps = arg_usize("--reps", 32);
    let jobs = arg_jobs();
    let sizes = size_sweep(16, 1 << 20);
    println!("== Fig 4: get/put bandwidth, 2 procs, window = {window} ==");
    println!("{:>8} {:>14} {:>14}", "size", "get (MB/s)", "put (MB/s)");
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        let m = sizes[i];
        (
            bandwidth(2, m, window, reps, true),
            bandwidth(2, m, window, reps, false),
        )
    });
    for (m, (g, p)) in sizes.iter().zip(&rows) {
        println!("{:>8} {:>14.1} {:>14.1}", fmt_size(*m), g, p);
    }
    println!("paper: peak 1775 MB/s; get round-trip overhead visible till 8K");

    if let Some(path) = arg_str("--json") {
        let mut o = String::from("{\"schema\":\"fig4-v1\",\"window\":");
        push_u64(&mut o, window as u64);
        o.push_str(",\"reps\":");
        push_u64(&mut o, reps as u64);
        o.push_str(",\"rows\":[");
        for (i, (m, (g, p))) in sizes.iter().zip(&rows).enumerate() {
            if i > 0 {
                o.push(',');
            }
            o.push_str("{\"bytes\":");
            push_u64(&mut o, *m as u64);
            o.push_str(",\"get_mbs\":");
            push_f64(&mut o, *g);
            o.push_str(",\"put_mbs\":");
            push_f64(&mut o, *p);
            o.push('}');
        }
        o.push_str("]}\n");
        write_text(&path, &o);
    }
}
