//! Ablation — analytic LogGP network vs per-link contention modelling.
//!
//! Shift-permutation traffic on a 1D ring (shape p×1×1×1×1): every rank
//! simultaneously puts a large message to `(rank + p/2) % p`, so each
//! directed A-link carries ~p/2 concurrent payloads. The contention model
//! queues them; the analytic model only serializes per-NIC and predicts no
//! slowdown. This quantifies what the simpler model misses.

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::RefCell;
use std::rc::Rc;

fn run(p: usize, contention: bool, bytes: usize) -> (f64, f64) {
    let f = Fixture::with_machine(
        MachineConfig::new(p)
            .procs_per_node(1)
            .contexts(2)
            .shape([p as u16, 1, 1, 1, 1])
            .contention(contention),
        ArmciConfig::default().progress(ProgressMode::AsyncThread),
    );
    let s = f.sim.clone();
    let lat: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(Vec::new()));
    // Symmetric buffers.
    let mut remotes = Vec::new();
    for r in 0..p {
        let pr = f.armci.machine().rank(r);
        let off = pr.alloc(bytes);
        let _ = pr.register_region_untimed(off, bytes);
        remotes.push(off);
    }
    for r in 0..p {
        let rk = f.rank(r);
        let s2 = s.clone();
        let lat2 = Rc::clone(&lat);
        let target = (r + p / 2) % p;
        let dst = remotes[target];
        f.sim.spawn(async move {
            let local = rk.malloc(bytes).await;
            rk.put(target, local, dst, 64).await; // warm endpoint/region
            rk.barrier().await;
            let t0 = s2.now();
            rk.put(target, local, dst, bytes).await;
            rk.fence(target).await;
            lat2.borrow_mut().push((s2.now() - t0).as_us());
            rk.barrier().await;
        });
    }
    f.finish();
    let lat = lat.borrow();
    let mean = lat.iter().sum::<f64>() / lat.len() as f64;
    let max = lat.iter().copied().fold(0.0, f64::max);
    (mean, max)
}

fn main() {
    check_args(
        "abl_contention",
        "ablation — analytic LogGP network vs per-link contention modelling",
        &[
            ("--bytes", true, "message size in bytes (default 256K)"),
            JOBS_FLAG,
        ],
    );
    let bytes = arg_usize("--bytes", 1 << 18);
    let jobs = arg_jobs();
    println!("== Ablation: shift-permutation put+fence, analytic vs link contention ==");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>8}",
        "p", "analytic mean", "analytic max", "contended mean", "contended max", "slowdown"
    );
    let procs = [4usize, 8, 16, 32, 64, 128];
    let rows = sweep::run_parallel(procs.len(), jobs, |i| {
        (run(procs[i], false, bytes), run(procs[i], true, bytes))
    });
    for (p, ((am, ax), (cm, cx))) in procs.iter().zip(&rows) {
        println!(
            "{p:>6} {am:>14.1} {ax:>14.1} {cm:>14.1} {cx:>14.1} {:>7.2}x",
            cm / am
        );
        let _ = (ax, cx);
    }
    println!("dimension-ordered shift traffic shares wrap-around links;");
    println!("the analytic model undercounts that queueing");
}
