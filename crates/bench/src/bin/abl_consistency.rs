//! Ablation — naive per-target conflict tracking (`cs_tgt`) vs the paper's
//! per-memory-region tracking (`cs_mr`, §III-E).
//!
//! The dgemm-style workload: non-blocking gets from structures A and B
//! overlapped with accumulates into structure C, all hosted by the same
//! targets. The naive scheme fences every get behind the outstanding
//! accumulates; `cs_mr` recognizes the structures as disjoint.

use armci::{ArmciConfig, ConsistencyMode, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;

fn run(mode: ConsistencyMode, p: usize, rounds: usize) -> (f64, u64) {
    let f = Fixture::with_machine(
        MachineConfig::new(p).procs_per_node(1).contexts(2),
        ArmciConfig::default()
            .progress(ProgressMode::AsyncThread)
            .consistency(mode),
    );
    let s = f.sim.clone();
    let out = Rc::new(Cell::new(0.0));
    // Structures A, B (read-only) and C (accumulate-only) on every rank.
    let elems = 2048usize;
    let mut a_bases = Vec::new();
    let mut c_bases = Vec::new();
    for r in 0..p {
        let pr = f.armci.machine().rank(r);
        let a = pr.alloc(elems * 8);
        let _ = pr.register_region_untimed(a, elems * 8);
        let c = pr.alloc(elems * 8);
        let _ = pr.register_region_untimed(c, elems * 8);
        a_bases.push(a);
        c_bases.push(c);
        for other in 0..p {
            if other != r {
                f.armci.seed_region(other, r, a, elems * 8);
                f.armci.seed_region(other, r, c, elems * 8);
            }
        }
    }
    for r in 0..p {
        let rk = f.rank(r);
        let s2 = s.clone();
        let out2 = Rc::clone(&out);
        let a_bases = a_bases.clone();
        let c_bases = c_bases.clone();
        f.sim.spawn(async move {
            let buf = rk.malloc(elems * 8).await;
            let contrib = rk.malloc(elems * 8).await;
            let t0 = s2.now();
            for i in 0..rounds {
                let target = (r + 1 + i % (p - 1)) % p;
                // Accumulate into C, then immediately get from A (the
                // dgemm overlap pattern).
                rk.nbacc(target, contrib, c_bases[target], elems, 1.0).await;
                rk.get(target, buf, a_bases[target], elems * 8).await;
            }
            rk.fence_all().await;
            if r == 0 {
                out2.set((s2.now() - t0).as_us());
            }
            rk.barrier().await;
        });
    }
    f.finish();
    (out.get(), f.armci.induced_fences())
}

fn main() {
    check_args(
        "abl_consistency",
        "ablation — per-target vs per-memory-region consistency tracking",
        &[
            ("--rounds", true, "conflict rounds (default 100)"),
            ("--procs", true, "processes (default 8)"),
            JOBS_FLAG,
        ],
    );
    let rounds = arg_usize("--rounds", 100);
    let p = arg_usize("--procs", 8);
    let jobs = arg_jobs();
    println!("== Ablation: location-consistency tracking granularity (p={p}) ==");
    println!(
        "{:>10} {:>16} {:>16}",
        "mode", "rank0 time (us)", "induced fences"
    );
    let modes = [ConsistencyMode::PerTarget, ConsistencyMode::PerRegion];
    let rows = sweep::run_parallel(modes.len(), jobs, |i| run(modes[i], p, rounds));
    let (t_naive, f_naive) = rows[0];
    println!("{:>10} {:>16.1} {:>16}", "cs_tgt", t_naive, f_naive);
    let (t_mr, f_mr) = rows[1];
    println!("{:>10} {:>16.1} {:>16}", "cs_mr", t_mr, f_mr);
    println!(
        "cs_mr removes {} false-positive fences ({:.1}% faster) at Theta(sigma*zeta) space",
        f_naive - f_mr,
        100.0 * (t_naive - t_mr) / t_naive
    );
}
