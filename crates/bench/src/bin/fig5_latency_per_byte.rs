//! Fig 5 — effective latency per byte vs message size.
//!
//! Used to find the message-aggregation inflection point: beyond 4 KB the
//! latency/byte settles to ≈ 1 ns.

use bgq_bench::{
    arg_jobs, arg_usize, check_args, fmt_size, get_latency, size_sweep, sweep, JOBS_FLAG,
};

fn main() {
    check_args(
        "fig5_latency_per_byte",
        "Fig 5 — effective get latency per byte vs message size",
        &[
            ("--reps", true, "repetitions per size (default 50)"),
            JOBS_FLAG,
        ],
    );
    let reps = arg_usize("--reps", 50);
    let jobs = arg_jobs();
    println!("== Fig 5: effective get latency per byte (2 procs) ==");
    println!(
        "{:>8} {:>12} {:>16}",
        "size", "get (us)", "latency/byte (ns)"
    );
    let sizes = size_sweep(16, 1 << 20);
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| get_latency(2, 1, 1, sizes[i], reps));
    for (m, g) in sizes.iter().zip(&rows) {
        println!(
            "{:>8} {:>12.3} {:>16.3}",
            fmt_size(*m),
            g,
            g * 1000.0 / *m as f64
        );
    }
    println!("paper: latency/byte ~ 1 ns beyond 4 KB");
}
