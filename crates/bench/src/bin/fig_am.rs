//! fig_am — small-message active-message throughput with and without
//! per-destination aggregation.
//!
//! Sweeps payload size × flush window × destination fan-out over an AM
//! accumulate storm (`acc_am` + `am_fence`). Window 0 configures no batcher
//! at all — the untouched unbatched hot path — so that column doubles as
//! the zero-cost baseline; nonzero windows coalesce queued AMs into one
//! wire message per destination and the small-size columns show the
//! aggregation win (wire messages collapse, AM rate multiplies).
//!
//! `--json <path>` writes the fixed-schema `am-v1` document, including the
//! flight-recorder attribution (six critical-path categories plus the
//! summed `pami.am_aggr` buffer wait) for the designated batched and
//! unbatched cells. Every field is deterministic, so CI diffs it against
//! `results/BENCH_fig_am.json` with zero tolerance.

use bgq_bench::am_bench::{best_speedup, run_cell_full, AmCell, AmCrit};
use bgq_bench::{
    append_json_field, arg_jobs, arg_list, arg_str, arg_usize, arg_workers, check_args, fmt_size,
    peak_rss_kb, sweep, write_text, JOBS_FLAG, TIMELINE_FLAG, TIMELINE_WINDOW_PS, WORKERS_FLAG,
};

fn main() {
    check_args(
        "fig_am",
        "active-message throughput with and without aggregation",
        &[
            ("--procs", true, "process count, > 16 (default 64)"),
            ("--msgs", true, "AM accumulates per rank (default 128)"),
            ("--sizes", true, "comma-separated payload sizes (bytes)"),
            (
                "--windows",
                true,
                "comma-separated flush windows (us); 0 = unbatched",
            ),
            ("--fanout", true, "comma-separated destination fan-outs"),
            ("--json", true, "write the am-v1 sweep JSON"),
            TIMELINE_FLAG,
            JOBS_FLAG,
            WORKERS_FLAG,
        ],
    );
    let procs = arg_usize("--procs", 64);
    let msgs = arg_usize("--msgs", 128);
    let sizes = arg_list("--sizes", &[8, 64, 512]);
    let windows = arg_list("--windows", &[0, 1, 4]);
    let fanouts = arg_list("--fanout", &[1, 4]);
    let jobs = arg_jobs();
    let workers = arg_workers();
    let json_path = arg_str("--json");
    let timeline_path = arg_str("--timeline");

    println!("== fig_am: {procs} ranks, {msgs} AMs/rank ==");
    println!(
        "{:>8} {:>10} {:>7} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "size", "window(us)", "fanout", "AMs/s", "MB/s", "wire_msgs", "avg_batch", "time(us)"
    );
    // Flight attribution runs on the two designated cells: smallest size,
    // fanout 1, unbatched and largest window. Timeline (when requested)
    // records the batched one.
    let smallest_si = sizes
        .iter()
        .enumerate()
        .min_by_key(|&(_, &s)| s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let biggest_wi = windows
        .iter()
        .enumerate()
        .max_by_key(|&(_, &w)| w)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let wants_timeline = timeline_path.is_some();
    let n_cells = sizes.len() * windows.len() * fanouts.len();
    // One independent simulation per cell; collected by input index so
    // output order never depends on the job count.
    let outs = sweep::run_parallel(n_cells, jobs, |idx| {
        let si = idx / (windows.len() * fanouts.len());
        let wi = (idx / fanouts.len()) % windows.len();
        let fi = idx % fanouts.len();
        let designated = si == smallest_si && fi == 0 && (windows[wi] == 0 || wi == biggest_wi);
        let tl = (wants_timeline && si == smallest_si && wi == biggest_wi && fi == 0)
            .then_some(TIMELINE_WINDOW_PS);
        run_cell_full(
            procs,
            sizes[si],
            msgs,
            windows[wi] as u64,
            fanouts[fi],
            workers,
            tl,
            designated,
        )
    });
    let cells: Vec<AmCell> = outs.iter().map(|(c, _, _)| c.clone()).collect();
    for c in &cells {
        println!(
            "{:>8} {:>10} {:>7} {:>14.0} {:>10.2} {:>10} {:>10.2} {:>10.3}",
            fmt_size(c.size),
            c.window_us,
            c.fanout,
            c.am_per_s,
            c.mb_s,
            c.wire_msgs,
            c.avg_batch,
            c.sim_time_ps as f64 / 1e6,
        );
    }
    if let Some((w, f, ratio)) = best_speedup(&cells) {
        println!(
            "best aggregation speedup at {}: {ratio:.2}x (window {w} us, fanout {f})",
            fmt_size(cells.iter().map(|c| c.size).min().unwrap_or(0)),
        );
    }
    println!("expected: small sizes batch hard (avg_batch >> 1) and the AM rate multiplies;");
    println!("large payloads amortize the post cost on their own, so the win shrinks");
    let crits: Vec<(String, AmCrit)> = outs
        .iter()
        .zip(cells.iter())
        .filter_map(|((_, _, crit), c)| {
            crit.as_ref().map(|cr| {
                let key = if c.window_us == 0 {
                    "unbatched".to_string()
                } else {
                    "batched".to_string()
                };
                (
                    key,
                    AmCrit {
                        crit: cr.crit.clone(),
                        aggr_wait_ps: cr.aggr_wait_ps,
                    },
                )
            })
        })
        .collect();
    for (key, c) in &crits {
        println!(
            "\n== critical path, {key} (size {}, fanout 1) ==",
            fmt_size(cells.iter().map(|c| c.size).min().unwrap_or(0))
        );
        println!("am_aggr wait: {:.3} us total", c.aggr_wait_ps as f64 / 1e6);
        print!("{}", c.crit.report());
    }
    if let Some(path) = json_path {
        // Host context, never gated: the am-v1 golden diffs at tol 0 but
        // candidate-only leaves are ignored by perfdiff.
        let doc = append_json_field(
            &bgq_bench::am_bench::sweep_json(procs, msgs, &cells, &crits),
            "peak_rss_kb",
            peak_rss_kb(),
        );
        write_text(&path, &doc);
    }
    if let Some(path) = timeline_path {
        let runs = outs
            .into_iter()
            .filter_map(|(c, tl, _)| {
                tl.map(|tl| (format!("size{}_win{}us", c.size, c.window_us), tl))
            })
            .collect();
        let doc = desim::TimelineDoc {
            bench: "fig_am".to_string(),
            runs,
        };
        write_text(&path, &doc.to_json());
    }
}
