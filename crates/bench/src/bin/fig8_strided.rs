//! Fig 8 — strided get/put bandwidth vs contiguous chunk size (l₀),
//! 1 MB total transfer.
//!
//! Paper: the curve tracks Fig 4 as l₀ grows — per-chunk overhead `o·m/l₀`
//! (Eq. 9) dominates for small chunks, the wire for large ones.

use armci::{ArmciConfig, Strided};
use bgq_bench::{arg_jobs, arg_usize, check_args, fmt_size, sweep, Fixture, JOBS_FLAG};
use std::cell::Cell;
use std::rc::Rc;

fn run(total: usize, l0: usize, is_get: bool, reps: usize) -> f64 {
    let f = Fixture::new(2, 1, ArmciConfig::default());
    let r0 = f.rank(0);
    let r1 = f.rank(1);
    let s = f.sim.clone();
    let out = Rc::new(Cell::new(0.0));
    let out2 = Rc::clone(&out);
    let rows = total / l0;
    f.sim.spawn(async move {
        // Remote side: rows of l0 bytes with a 2*l0 leading dimension
        // (genuinely strided); local side dense.
        let remote_base = r1.malloc(rows * l0 * 2).await;
        let local_base = r0.malloc(total).await;
        let remote = Strided::patch2d(remote_base, l0, rows, l0 * 2);
        let local = Strided::patch2d(local_base, l0, rows, l0);
        // Warm caches.
        r0.get(1, local_base, remote_base, 64.min(l0)).await;
        let t0 = s.now();
        for _ in 0..reps {
            if is_get {
                r0.get_strided(1, &local, &remote).await;
            } else {
                r0.put_strided(1, &local, &remote).await;
            }
        }
        let elapsed = s.now() - t0;
        out2.set((total * reps) as f64 / elapsed.as_secs() / 1.0e6);
    });
    f.finish();
    out.get()
}

fn main() {
    check_args(
        "fig8_strided",
        "Fig 8 — strided get/put bandwidth vs contiguous chunk size",
        &[
            ("--total", true, "total transfer bytes (default 1M)"),
            ("--reps", true, "repetitions (default 4)"),
            JOBS_FLAG,
        ],
    );
    let total = arg_usize("--total", 1 << 20);
    let reps = arg_usize("--reps", 4);
    let jobs = arg_jobs();
    println!(
        "== Fig 8: strided bandwidth vs l0 (total {} transfer) ==",
        fmt_size(total)
    );
    println!(
        "{:>8} {:>8} {:>14} {:>14}",
        "l0", "chunks", "get (MB/s)", "put (MB/s)"
    );
    let mut chunk_sizes = Vec::new();
    let mut l0 = 128usize;
    while l0 <= total {
        chunk_sizes.push(l0);
        l0 *= 4;
    }
    let rows = sweep::run_parallel(chunk_sizes.len(), jobs, |i| {
        let l0 = chunk_sizes[i];
        (run(total, l0, true, reps), run(total, l0, false, reps))
    });
    for (l0, (g, p)) in chunk_sizes.iter().zip(&rows) {
        println!(
            "{:>8} {:>8} {:>14.1} {:>14.1}",
            fmt_size(*l0),
            total / l0,
            g,
            p
        );
    }
    println!("paper: approaches the Fig 4 contiguous curve as l0 grows");
}
