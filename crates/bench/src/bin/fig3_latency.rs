//! Fig 3 — inter-node contiguous get/put latency vs message size.
//!
//! Paper headline numbers: 2.89 µs get @ 16 B, 2.70 µs put @ 16 B, and a
//! latency drop at the 256 B cache-alignment boundary.

use bgq_bench::{arg_usize, check_args, fmt_size, get_latency, put_latency, size_sweep};

fn main() {
    check_args(
        "fig3_latency",
        "Fig 3 — contiguous get/put latency vs message size",
        &[("--reps", true, "repetitions per size (default 50)")],
    );
    let reps = arg_usize("--reps", 50);
    println!("== Fig 3: contiguous get/put latency (2 procs, adjacent nodes) ==");
    println!("{:>8} {:>12} {:>12}", "size", "get (us)", "put (us)");
    for m in size_sweep(16, 8192) {
        let g = get_latency(2, 1, 1, m, reps);
        let p = put_latency(2, 1, 1, m, reps);
        println!("{:>8} {:>12.3} {:>12.3}", fmt_size(m), g, p);
    }
    // Extra resolution around the 256 B alignment boundary.
    println!("-- alignment boundary detail --");
    for m in [192usize, 224, 240, 256, 288, 320] {
        let g = get_latency(2, 1, 1, m, reps);
        println!("{:>8} {:>12.3}", fmt_size(m), g);
    }
    println!("paper: get(16B) = 2.89 us, put(16B) = 2.7 us, drop at 256 B");
}
