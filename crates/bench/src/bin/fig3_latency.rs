//! Fig 3 — inter-node contiguous get/put latency vs message size.
//!
//! Paper headline numbers: 2.89 µs get @ 16 B, 2.70 µs put @ 16 B, and a
//! latency drop at the 256 B cache-alignment boundary.

use bgq_bench::{
    arg_jobs, arg_usize, check_args, fmt_size, get_latency, put_latency, size_sweep, sweep,
    JOBS_FLAG,
};

fn main() {
    check_args(
        "fig3_latency",
        "Fig 3 — contiguous get/put latency vs message size",
        &[
            ("--reps", true, "repetitions per size (default 50)"),
            JOBS_FLAG,
        ],
    );
    let reps = arg_usize("--reps", 50);
    let jobs = arg_jobs();
    println!("== Fig 3: contiguous get/put latency (2 procs, adjacent nodes) ==");
    println!("{:>8} {:>12} {:>12}", "size", "get (us)", "put (us)");
    let sizes = size_sweep(16, 8192);
    let rows = sweep::run_parallel(sizes.len(), jobs, |i| {
        let m = sizes[i];
        (get_latency(2, 1, 1, m, reps), put_latency(2, 1, 1, m, reps))
    });
    for (m, (g, p)) in sizes.iter().zip(&rows) {
        println!("{:>8} {:>12.3} {:>12.3}", fmt_size(*m), g, p);
    }
    // Extra resolution around the 256 B alignment boundary.
    println!("-- alignment boundary detail --");
    let detail = [192usize, 224, 240, 256, 288, 320];
    let rows = sweep::run_parallel(detail.len(), jobs, |i| {
        get_latency(2, 1, 1, detail[i], reps)
    });
    for (m, g) in detail.iter().zip(&rows) {
        println!("{:>8} {:>12.3}", fmt_size(*m), g);
    }
    println!("paper: get(16B) = 2.89 us, put(16B) = 2.7 us, drop at 256 B");
}
