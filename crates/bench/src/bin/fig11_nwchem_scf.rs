//! Fig 11 — NWChem SCF (6 H₂O, 644 basis functions), Default vs
//! Asynchronous-Thread runtime, on 1024/2048/4096 processes.
//!
//! Paper: AT reduces total execution time by up to 30 %; the time spent in
//! the load-balance counter collapses under AT.
//!
//! `--breakdown <path>` enables the message-lifecycle flight recorder at the
//! smallest process count, prints the critical-path decomposition of the D
//! and AT runs, and writes the machine-readable form as JSON.

use armci::ProgressMode;
use bgq_bench::{
    append_json_field, arg_flag, arg_jobs, arg_list, arg_str, arg_usize, arg_workers, check_args,
    peak_rss_kb, sweep, write_text, JOBS_FLAG, TIMELINE_FLAG, TIMELINE_WINDOW_PS, WORKERS_FLAG,
};
use nwchem_scf::{run_scf_timeline, ScfConfig};

fn main() {
    check_args(
        "fig11_nwchem_scf",
        "Fig 11 — NWChem SCF mini-app, Default vs AsyncThread progress",
        &[
            ("--quick", false, "small CI-sized workload"),
            ("--procs", true, "comma-separated process counts"),
            ("--iters", true, "SCF iterations (default 3, quick 2)"),
            ("--json", true, "write per-run report rows as JSON"),
            (
                "--breakdown",
                true,
                "write critical-path breakdown JSON (smallest p)",
            ),
            TIMELINE_FLAG,
            JOBS_FLAG,
            WORKERS_FLAG,
        ],
    );
    let quick = arg_flag("--quick");
    let procs = arg_list(
        "--procs",
        if quick {
            &[64, 128]
        } else {
            &[1024, 2048, 4096]
        },
    );
    let iters = arg_usize("--iters", if quick { 2 } else { 3 });
    let jobs = arg_jobs();
    let workers = arg_workers();
    let breakdown_path = arg_str("--breakdown");
    let wants_breakdown = breakdown_path.is_some();
    let timeline_path = arg_str("--timeline");
    let wants_timeline = timeline_path.is_some();

    println!("== Fig 11: NWChem SCF, 6 waters / 644 basis functions ==");
    const MODES: [ProgressMode; 2] = [ProgressMode::Default, ProgressMode::AsyncThread];
    // One sweep point per (process count, progress mode); results collected
    // by input index so reporting below matches the old serial loop exactly.
    let outs = sweep::run_parallel(procs.len() * MODES.len(), jobs, |idx| {
        let (pi, mi) = (idx / MODES.len(), idx % MODES.len());
        let mode = MODES[mi];
        let mut cfg = ScfConfig::paper(mode);
        cfg.iterations = iters;
        cfg.workers = workers;
        if quick {
            cfg.repeat_factor = 8; // ~1.6k tasks/iter
        }
        // Flight-record / sample timelines only at the smallest p.
        if wants_timeline && pi == 0 {
            cfg.timeline_window_ps = Some(TIMELINE_WINDOW_PS);
        }
        let cap = if wants_breakdown && pi == 0 {
            1 << 22
        } else {
            0
        };
        run_scf_timeline(procs[pi], &cfg, cap)
    });
    let mut rows = Vec::new();
    let mut crits: Vec<(&str, String, String)> = Vec::new();
    let mut timelines: Vec<(String, desim::TimelineSnapshot)> = Vec::new();
    for (pi, &p) in procs.iter().enumerate() {
        for (mi, &mode) in MODES.iter().enumerate() {
            let (report, crit, tl) = &outs[pi * MODES.len() + mi];
            let key = if mode == ProgressMode::Default {
                "D"
            } else {
                "AT"
            };
            if let Some(cp) = crit {
                crits.push((key, cp.report(), cp.to_json()));
            }
            if let Some(tl) = tl {
                timelines.push((key.to_string(), tl.clone()));
            }
            println!("{}", report.row());
            rows.push(report);
        }
        // Per-pair improvement.
        let d = &rows[rows.len() - 2];
        let at = &rows[rows.len() - 1];
        let gain = 100.0 * (d.total_us - at.total_us) / d.total_us;
        println!(
            "   p={p}: AT reduces execution time by {gain:.1}% (counter time {:.0}us -> {:.0}us)",
            d.counter_wait_mean_us, at.counter_wait_mean_us
        );
    }
    println!("paper: AT reduces execution time by up to 30%;");
    println!("       load-balance-counter time drops sharply with AT");
    if !crits.is_empty() {
        let p0 = procs.first().copied().unwrap_or(0);
        println!("\n== message-lifecycle critical path at p={p0} ==");
        for (key, report, _) in &crits {
            println!("[{key}]");
            print!("{report}");
        }
    }
    if let Some(path) = breakdown_path {
        let p0 = procs.first().copied().unwrap_or(0);
        let mut body = format!("{{\"bench\":\"fig11_nwchem_scf\",\"p\":{p0},\"configs\":{{");
        for (i, (key, _, json)) in crits.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{key}\":{json}"));
        }
        body.push_str("}}\n");
        write_text(&path, &body);
    }
    if let Some(path) = timeline_path {
        let doc = desim::TimelineDoc {
            bench: "fig11_nwchem_scf".to_string(),
            runs: timelines,
        };
        write_text(&path, &doc.to_json());
    }
    if let Some(path) = arg_str("--json") {
        let body = rows
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        // The document is a golden-locked array, so the ungated host-context
        // field rides in the final row (candidate-only leaves never gate).
        let doc = append_json_field(&format!("[\n{body}\n]\n"), "peak_rss_kb", peak_rss_kb());
        write_text(&path, &doc);
    }
}
