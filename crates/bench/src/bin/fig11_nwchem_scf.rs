//! Fig 11 — NWChem SCF (6 H₂O, 644 basis functions), Default vs
//! Asynchronous-Thread runtime, on 1024/2048/4096 processes.
//!
//! Paper: AT reduces total execution time by up to 30 %; the time spent in
//! the load-balance counter collapses under AT.

use armci::ProgressMode;
use bgq_bench::{arg_flag, arg_list, arg_str, arg_usize, write_text};
use nwchem_scf::{run_scf, ScfConfig};

fn main() {
    let quick = arg_flag("--quick");
    let procs = arg_list(
        "--procs",
        if quick {
            &[64, 128]
        } else {
            &[1024, 2048, 4096]
        },
    );
    let iters = arg_usize("--iters", if quick { 2 } else { 3 });

    println!("== Fig 11: NWChem SCF, 6 waters / 644 basis functions ==");
    let mut rows = Vec::new();
    for &p in &procs {
        for mode in [ProgressMode::Default, ProgressMode::AsyncThread] {
            let mut cfg = ScfConfig::paper(mode);
            cfg.iterations = iters;
            if quick {
                cfg.repeat_factor = 8; // ~1.6k tasks/iter
            }
            let report = run_scf(p, &cfg);
            println!("{}", report.row());
            rows.push(report);
        }
        // Per-pair improvement.
        let d = &rows[rows.len() - 2];
        let at = &rows[rows.len() - 1];
        let gain = 100.0 * (d.total_us - at.total_us) / d.total_us;
        println!(
            "   p={p}: AT reduces execution time by {gain:.1}% (counter time {:.0}us -> {:.0}us)",
            d.counter_wait_mean_us, at.counter_wait_mean_us
        );
    }
    println!("paper: AT reduces execution time by up to 30%;");
    println!("       load-balance-counter time drops sharply with AT");
    if let Some(path) = arg_str("--json") {
        let body = rows
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        write_text(&path, &format!("[\n{body}\n]\n"));
    }
}
