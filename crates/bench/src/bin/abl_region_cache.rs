//! Ablation — remote memory-region cache capacity and LFU replacement
//! (§III-B: full caching costs σ·ζ·γ; a bounded cache trades memory for
//! query round trips to the owner).

use armci::{ArmciConfig, ProgressMode};
use bgq_bench::{arg_jobs, arg_usize, check_args, sweep, Fixture, JOBS_FLAG};
use pami_sim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;

/// Rank 0 gets from `targets` ranks round-robin with a skewed (Zipf-ish)
/// popularity; returns (total time us, hits, misses, queries).
fn run(capacity: usize, p: usize, rounds: usize) -> (f64, u64, u64, u64) {
    let f = Fixture::with_machine(
        MachineConfig::new(p).procs_per_node(1).contexts(2),
        ArmciConfig::default()
            .progress(ProgressMode::AsyncThread)
            .region_cache_capacity(capacity),
    );
    let s = f.sim.clone();
    let out = Rc::new(Cell::new(0.0));
    let out2 = Rc::clone(&out);
    let r0 = f.rank(0);
    let mut remotes = Vec::new();
    for r in 1..p {
        let pr = f.armci.machine().rank(r);
        let off = pr.alloc(4096);
        let _ = pr.register_region_untimed(off, 4096);
        remotes.push(off);
    }
    f.sim.spawn(async move {
        let local = r0.malloc(4096).await;
        let mut rng = desim::SimRng::new(42);
        let t0 = s.now();
        for _ in 0..rounds {
            // Skewed popularity: half the traffic to a quarter of the peers.
            let t = if rng.next_f64() < 0.5 {
                1 + (rng.next_below(((p - 1) / 4).max(1) as u64) as usize)
            } else {
                1 + (rng.next_below((p - 1) as u64) as usize)
            };
            r0.get(t, local, remotes[t - 1], 1024).await;
        }
        out2.set((s.now() - t0).as_us());
    });
    f.finish();
    let (hits, misses, evictions) = f.armci.region_cache_totals();
    let queries = f.armci.machine().stats().counter("armci.region_query");
    let _ = evictions;
    (out.get(), hits, misses, queries)
}

fn main() {
    check_args(
        "abl_region_cache",
        "ablation — remote memory-region cache capacity / replacement",
        &[
            ("--procs", true, "processes (default 64)"),
            ("--rounds", true, "access rounds (default 1000)"),
            JOBS_FLAG,
        ],
    );
    let p = arg_usize("--procs", 64);
    let rounds = arg_usize("--rounds", 1000);
    let jobs = arg_jobs();
    println!("== Ablation: remote region cache capacity (p={p}, {rounds} gets, LFU) ==");
    println!(
        "{:>9} {:>14} {:>8} {:>8} {:>9} {:>10}",
        "capacity", "time (us)", "hits", "misses", "queries", "us/get"
    );
    let caps = [0usize, 4, 8, 16, 32, 64, 1 << 16];
    let rows = sweep::run_parallel(caps.len(), jobs, |i| run(caps[i], p, rounds));
    for (cap, (t, h, m, q)) in caps.iter().zip(&rows) {
        println!(
            "{:>9} {:>14.1} {:>8} {:>8} {:>9} {:>10.2}",
            cap,
            t,
            h,
            m,
            q,
            t / rounds as f64
        );
    }
    println!("full caching = sigma*zeta*gamma bytes; misses pay an AM round trip to the owner");
}
