//! fig_mem — communication-subsystem memory scaling vs partition size.
//!
//! The companion question to every time-scaling figure in the paper: on
//! Blue Gene/Q's 16 GB nodes, what does the PGAS communication subsystem
//! *cost in memory* as the partition grows? This binary installs the
//! tagged allocation profiler ([`desim::memprof`]) as its global allocator,
//! sweeps the Fig 9 fetch-and-add workload and the raw `net_churn` delivery
//! storm over a list of process counts, and reports per-subsystem peak
//! bytes, bytes-per-rank and a fitted growth class (constant / sublinear /
//! linear / superlinear / quadratic) per allocation tag.
//!
//! `--json <path>` writes the `memscale-v1` document consumed by `memstat`
//! and gated (schema + growth classes exactly, byte counts loosely) by CI
//! against `results/BENCH_memscale.json`; `--timeline <path>` additionally
//! records windowed telemetry at the smallest p with `mem.live_bytes.<tag>`
//! gauge tracks for `simstat`.

use bgq_bench::memscale::{self, DEFAULT_MSGS_PER_RANK, DEFAULT_OPS, DEFAULT_PROCS};
use bgq_bench::{
    arg_flag, arg_jobs, arg_list, arg_str, arg_usize, check_args, write_text, JOBS_FLAG,
    TIMELINE_FLAG,
};
use desim::memprof;
use desim::TimelineDoc;

#[global_allocator]
static ALLOC: memprof::MemProf = memprof::MemProf;

fn main() {
    check_args(
        "fig_mem",
        "memory scaling of the communication subsystem vs process count",
        &[
            ("--procs", true, "comma-separated process counts"),
            ("--ops", true, "fetch-and-adds per requester (default 4)"),
            (
                "--msgs-per-rank",
                true,
                "net_churn messages per rank (default 64)",
            ),
            ("--json", true, "write the memscale-v1 JSON document"),
            (
                "--no-timing",
                false,
                "omit ungated wall_ms/events_per_sec point fields (golden regen)",
            ),
            TIMELINE_FLAG,
            JOBS_FLAG,
        ],
    );
    let mut procs = arg_list("--procs", &DEFAULT_PROCS);
    procs.sort_unstable();
    procs.dedup();
    let ops = arg_usize("--ops", DEFAULT_OPS);
    let msgs = arg_usize("--msgs-per-rank", DEFAULT_MSGS_PER_RANK);
    let jobs = arg_jobs();
    let json_path = arg_str("--json");
    let timeline_path = arg_str("--timeline");

    memprof::enable();
    let out = memscale::run_sweep(&procs, ops, msgs, jobs, timeline_path.is_some());
    let doc = memscale::scale_json(&out.fig9, &out.churn, ops, msgs, !arg_flag("--no-timing"));
    print!(
        "{}",
        memscale::memstat_report(&doc).expect("fresh document renders")
    );
    if let Some(path) = timeline_path {
        let tdoc = TimelineDoc {
            bench: "fig_mem".to_string(),
            runs: out.timelines,
        };
        write_text(&path, &tdoc.to_json());
    }
    if let Some(path) = json_path {
        write_text(&path, &doc);
    }
}
