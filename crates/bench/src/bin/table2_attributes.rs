//! Table II — empirical values of time and space attributes.
//!
//! Measures object-creation times and space inside the simulation and prints
//! them next to the paper's reported values.

use armci::model;
use bgq_bench::{arg_jobs, check_args, Fixture, JOBS_FLAG};
use desim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    check_args(
        "table2_attributes",
        "Table II — empirical time/space attribute values",
        &[JOBS_FLAG],
    );
    // Single measurement simulation; the flag is accepted for CLI uniformity
    // across the bench binaries.
    let _jobs = arg_jobs();
    let f = Fixture::new(4, 1, armci::ArmciConfig::default());
    let r0 = f.armci.machine().rank(0);
    let params = f.armci.machine().params().clone();
    let s = f.sim.clone();
    let measured: Rc<RefCell<Vec<(String, String)>>> = Rc::new(RefCell::new(Vec::new()));
    let out = Rc::clone(&measured);
    f.sim.spawn(async move {
        // Endpoint creation time (beta).
        let t0 = s.now();
        r0.ensure_endpoint(1, 0).await;
        let beta = s.now() - t0;
        // Memory region creation time (delta).
        let off = r0.alloc(4096);
        let t0 = s.now();
        r0.register_region(off, 4096).await.expect("register");
        let delta = s.now() - t0;
        // Context creation time.
        let t0 = s.now();
        r0.create_contexts().await;
        let ctx = s.now() - t0;
        let mut m = out.borrow_mut();
        m.push(("Endpoint Creation Time (beta)".into(), format!("{beta}")));
        m.push((
            "Memory Region Creation Time (delta)".into(),
            format!("{delta}"),
        ));
        m.push(("Context Creation Time".into(), format!("{ctx}")));
    });
    f.finish();

    println!("== Table II: empirical values of time and space attributes ==");
    println!(
        "{:<45} {:>18} {:>18}",
        "Property", "paper", "measured/model"
    );
    let paper_rows = [
        (
            "Message Size for Data Transfer (m)",
            "16 B - 1 MB",
            "16 B - 1 MB",
        ),
        ("Total number of processes (p)", "2 - 4096", "2 - 4096"),
        ("Number of processes/Node (c)", "1 - 16", "1 - 16"),
        ("Communication Clique (zeta)", "1 - p", "1 - p"),
        ("Active Global Address Structures (sigma)", "1 - 7", "1 - 7"),
        ("Local Communication Buffers (tau)", "1 - 3", "1 - 3"),
    ];
    for (k, p, m) in paper_rows {
        println!("{k:<45} {p:>18} {m:>18}");
    }
    let model_rows = [
        (
            "Endpoint Space Utilization (alpha)",
            "4 Bytes",
            format!("{} Bytes", params.endpoint_bytes),
        ),
        (
            "Endpoint Creation Time (beta)",
            ".3 us",
            format!("{}", params.endpoint_create),
        ),
        (
            "Memory Region Space Utilization (gamma)",
            "8 Bytes",
            format!("{} Bytes", params.memregion_bytes),
        ),
        (
            "Memory Region Creation Time (delta)",
            "43 us",
            format!("{}", params.memregion_create),
        ),
        (
            "Context Creation Time",
            "3821-4271 us",
            format!("{}", params.context_create),
        ),
    ];
    for (k, p, m) in &model_rows {
        println!("{k:<45} {p:>18} {m:>18}");
    }
    println!("\n-- measured inside the simulation --");
    for (k, v) in measured.borrow().iter() {
        println!("{k:<45} {v:>18}");
    }

    // Space-model examples (Eqs. 1-6) for a 4096-process clique.
    println!("\n-- space models at p = zeta = 4096, rho = 1 (Eqs. 1-6) --");
    println!(
        "M_c  = eps*rho                  = {} bytes",
        model::context_space(params.context_bytes, 1)
    );
    println!(
        "M_e  = zeta*alpha*rho           = {} bytes",
        model::endpoint_space(4096, params.endpoint_bytes, 1)
    );
    println!(
        "M_r  = tau*gamma + sigma*zeta*gamma = {} bytes (tau=3, sigma=7)",
        model::region_space(3, params.memregion_bytes, 7, 4096)
    );
    println!(
        "T_e  = zeta*beta*rho            = {}",
        model::endpoint_time(4096, params.endpoint_create, 1)
    );
    println!(
        "T_r  = (tau+sigma)*delta        = {}",
        model::region_time(3, 7, params.memregion_create)
    );
    let _ = SimDuration::ZERO;
}
