//! `simbench` — simulator self-benchmark: how fast does `desim` itself run?
//!
//! Drives the synthetic workloads of [`bgq_bench::simbench`] (timer churn,
//! channel ping-pong, a network-delivery storm through `torus5d::NetState`,
//! a token-relay storm through the conservative parallel driver at 1/2/4
//! shards, and a Fig 4-style sweep through the parallel harness) and reports
//! wall-clock events/sec — for `net_churn`, deliveries/sec — deterministic
//! event totals and peak memory. `--json` writes a fixed-schema document (see
//! `results/BENCH_simbench.json` for the committed golden): event counts and
//! simulated times are deterministic and diffable strictly; `wall_ms` /
//! `mevents_per_sec` / `speedup` / `peak_rss_kb` vary by host and are gated
//! only loosely (perfdiff with a generous tolerance).

use bgq_bench::simbench::{
    fig4_sweep, net_churn_timeline, net_churn_workers, par_churn, peak_rss_kb, ping_pong,
    timer_churn, KernelLoad,
};
use bgq_bench::{
    arg_flag, arg_jobs, arg_str, arg_usize, arg_workers, check_args, write_text, JOBS_FLAG,
    TIMELINE_FLAG, TIMELINE_WINDOW_PS, WORKERS_FLAG,
};
use desim::json::{push_f64, push_str, push_u64};

fn wall_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn push_load(out: &mut String, name: &str, params: &[(&str, u64)], load: &KernelLoad) {
    push_str(out, name);
    out.push_str(":{");
    for (k, v) in params {
        push_str(out, k);
        out.push(':');
        push_u64(out, *v);
        out.push(',');
    }
    out.push_str("\"events\":");
    push_u64(out, load.events);
    out.push_str(",\"sim_time_ps\":");
    push_u64(out, load.sim_time_ps);
    out.push_str(",\"wall_ms\":");
    push_f64(out, wall_ms(load.wall));
    out.push_str(",\"mevents_per_sec\":");
    push_f64(out, load.mevents_per_sec());
    out.push('}');
}

fn main() {
    check_args(
        "simbench",
        "simulator self-benchmark — kernel events/sec and sweep speedup",
        &[
            ("--quick", false, "small CI-sized workloads"),
            ("--tasks", true, "timer-churn tasks (default 512)"),
            ("--steps", true, "sleeps per churn task (default 2000)"),
            ("--pairs", true, "ping-pong pairs (default 256)"),
            ("--rounds", true, "rounds per ping-pong pair (default 4000)"),
            ("--churn-procs", true, "net-churn ranks (default 512)"),
            ("--churn-msgs", true, "net-churn messages (default 400000)"),
            ("--json", true, "write the fixed-schema result JSON"),
            TIMELINE_FLAG,
            JOBS_FLAG,
            WORKERS_FLAG,
        ],
    );
    let quick = arg_flag("--quick");
    let tasks = arg_usize("--tasks", if quick { 128 } else { 512 });
    let steps = arg_usize("--steps", if quick { 500 } else { 2000 });
    let pairs = arg_usize("--pairs", if quick { 64 } else { 256 });
    let rounds = arg_usize("--rounds", if quick { 1000 } else { 4000 });
    let churn_procs = arg_usize("--churn-procs", if quick { 128 } else { 512 });
    let churn_msgs = arg_usize("--churn-msgs", if quick { 50_000 } else { 400_000 });
    let jobs = arg_jobs();
    let workers = arg_workers();
    let par_nodes = if quick { 96 } else { 384 };
    let par_ttl: u32 = if quick { 120 } else { 400 };
    let sweep_reps = if quick { 8 } else { 16 };
    let sizes = bgq_bench::size_sweep(16, if quick { 1 << 18 } else { 1 << 20 });

    println!("== simbench: desim kernel self-benchmark ==");
    println!(
        "{:<14} {:>14} {:>16} {:>12} {:>14}",
        "workload", "events", "sim time", "wall (ms)", "Mevents/s"
    );
    let churn = timer_churn(tasks, steps);
    println!(
        "{:<14} {:>14} {:>13.3}us {:>12.1} {:>14.2}",
        "timer_churn",
        churn.events,
        churn.sim_time_ps as f64 / 1e6,
        wall_ms(churn.wall),
        churn.mevents_per_sec()
    );
    let pp = ping_pong(pairs, rounds);
    println!(
        "{:<14} {:>14} {:>13.3}us {:>12.1} {:>14.2}",
        "ping_pong",
        pp.events,
        pp.sim_time_ps as f64 / 1e6,
        wall_ms(pp.wall),
        pp.mevents_per_sec()
    );

    // net_churn executes through the parallel batch engine at --workers > 1;
    // events and sim time are byte-identical either way (the determinism
    // suite diffs the JSON at --workers 1 vs 4).
    let churn_net = net_churn_workers(churn_procs, churn_msgs, workers);
    println!(
        "{:<14} {:>14} {:>13.3}us {:>12.1} {:>14.2}",
        "net_churn",
        churn_net.events,
        churn_net.sim_time_ps as f64 / 1e6,
        wall_ms(churn_net.wall),
        churn_net.mevents_per_sec()
    );

    // par_churn: the same relay storm at 1, 2 and 4 shards of the
    // conservative time-windowed driver. Deterministic fields must agree
    // across the row set — asserted here, and gated byte-for-byte in CI.
    let par_rows: Vec<(usize, KernelLoad)> = [1usize, 2, 4]
        .iter()
        .map(|&w| (w, par_churn(par_nodes, par_ttl, w)))
        .collect();
    for (w, load) in &par_rows {
        assert_eq!(load.events, par_rows[0].1.events, "par_churn w={w} events");
        assert_eq!(
            load.sim_time_ps, par_rows[0].1.sim_time_ps,
            "par_churn w={w} sim time"
        );
        println!(
            "{:<14} {:>14} {:>13.3}us {:>12.1} {:>14.2}",
            format!("par_churn w={w}"),
            load.events,
            load.sim_time_ps as f64 / 1e6,
            wall_ms(load.wall),
            load.mevents_per_sec()
        );
    }
    // --timeline: a separate instrumented net_churn run (leaves the timed
    // run above, and the JSON below, untouched).
    if let Some(path) = arg_str("--timeline") {
        let (_, tl) = net_churn_timeline(
            churn_procs,
            churn_msgs,
            None,
            Some(TIMELINE_WINDOW_PS / 100), // 1 µs windows: churn lasts ~tens of µs
        );
        let doc = desim::TimelineDoc {
            bench: "net_churn".to_string(),
            runs: vec![("net_churn".to_string(), tl.expect("timeline enabled"))],
        };
        write_text(&path, &doc.to_json());
    }

    let (rows_serial, wall_serial) = fig4_sweep(&sizes, 2, sweep_reps, 1);
    let (rows_jobs, wall_jobs) = fig4_sweep(&sizes, 2, sweep_reps, jobs);
    assert_eq!(
        rows_serial, rows_jobs,
        "parallel sweep must match serial bit-for-bit"
    );
    let checksum: f64 = rows_serial.iter().sum();
    let speedup = wall_serial.as_secs_f64() / wall_jobs.as_secs_f64().max(1e-9);
    println!(
        "{:<14} {} points, serial {:.1} ms, --jobs {} {:.1} ms, speedup {:.2}x",
        "fig4_sweep",
        sizes.len(),
        wall_ms(wall_serial),
        jobs,
        wall_ms(wall_jobs),
        speedup
    );
    let rss = peak_rss_kb();
    println!("peak RSS: {rss} kB");

    if let Some(path) = arg_str("--json") {
        let mut o = String::from("{\"schema\":\"simbench-v3\",\"jobs\":");
        push_u64(&mut o, jobs as u64);
        o.push_str(",\"workers\":");
        push_u64(&mut o, workers as u64);
        o.push_str(",\"workloads\":{");
        push_load(
            &mut o,
            "timer_churn",
            &[("tasks", tasks as u64), ("steps", steps as u64)],
            &churn,
        );
        o.push(',');
        push_load(
            &mut o,
            "ping_pong",
            &[("pairs", pairs as u64), ("rounds", rounds as u64)],
            &pp,
        );
        o.push(',');
        push_load(
            &mut o,
            "net_churn",
            &[("procs", churn_procs as u64), ("msgs", churn_msgs as u64)],
            &churn_net,
        );
        // par_churn rows: events/sim_time_ps are worker-count-invariant
        // (asserted above); wall_ms/mevents_per_sec are host context and
        // only ever gated loosely.
        o.push_str(",\"par_churn\":{\"nodes\":");
        push_u64(&mut o, par_nodes as u64);
        o.push_str(",\"ttl\":");
        push_u64(&mut o, par_ttl as u64);
        o.push_str(",\"rows\":{");
        for (i, (w, load)) in par_rows.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            push_load(&mut o, &format!("w{w}"), &[("workers", *w as u64)], load);
        }
        o.push_str("}},\"fig4_sweep\":{\"points\":");
        push_u64(&mut o, sizes.len() as u64);
        o.push_str(",\"reps\":");
        push_u64(&mut o, sweep_reps as u64);
        o.push_str(",\"bw_checksum_mbs\":");
        push_f64(&mut o, (checksum * 10.0).round() / 10.0);
        o.push_str(",\"wall_ms_serial\":");
        push_f64(&mut o, wall_ms(wall_serial));
        o.push_str(",\"wall_ms_jobs\":");
        push_f64(&mut o, wall_ms(wall_jobs));
        o.push_str(",\"speedup\":");
        push_f64(&mut o, speedup);
        o.push_str("}},\"peak_rss_kb\":");
        push_u64(&mut o, rss);
        o.push_str("}\n");
        write_text(&path, &o);
    }
}
