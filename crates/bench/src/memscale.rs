//! Shared core of the `fig_mem` memory-scaling benchmark and the `memstat`
//! report (see `src/bin/fig_mem.rs` and `src/bin/memstat.rs` for the CLIs).
//!
//! The paper's central scaling claim is about *time*; this module asks the
//! companion question the PAMI/ARMCI port had to answer on Blue Gene/Q's
//! 16 GB nodes: **how does communication-subsystem memory grow with the
//! partition size p?** With the tagged allocation profiler
//! ([`desim::memprof`]) enabled, two workloads are swept over p:
//!
//! * `fig9_rmw` — the Fig 9 fetch-and-add storm (AsyncThread progress),
//!   exercising the full ARMCI/PAMI/torus stack;
//! * `net_churn` — the raw `NetState` delivery storm from `simbench`,
//!   isolating the network layer (routes, link state, delivery maps).
//!
//! Each sweep point runs under a [`memprof::mark`]/[`memprof::since`]
//! bracket on its worker thread, so per-run byte accounting is exact and
//! identical for any `--jobs` value. Results serialize as `memscale-v1`
//! JSON: per-tag peak/live bytes and bytes-per-rank at every p, plus a
//! fitted **growth class** per tag (constant / sublinear / linear /
//! superlinear / quadratic) from the peak-bytes slope between the smallest
//! and largest p. CI gates the schema and growth classes exactly and the
//! absolute byte counts loosely (they may drift across compiler versions —
//! see DESIGN.md §14).

use armci::ProgressMode;
use desim::json::{self, JsonValue};
use desim::memprof::{self, MemSnapshot};
use desim::TimelineSnapshot;

use crate::{fig9, simbench, sweep};

/// Default process counts for the scale sweep (ascending).
pub const DEFAULT_PROCS: [usize; 4] = [32, 64, 128, 256];

/// Default fetch-and-adds per requester for the `fig9_rmw` workload.
pub const DEFAULT_OPS: usize = 4;

/// Default `net_churn` messages injected per rank.
pub const DEFAULT_MSGS_PER_RANK: usize = 64;

/// One measured sweep point: the per-tag allocation deltas of a single run,
/// plus the run's wall time and kernel event count so memory and throughput
/// curves come from a single sweep.
pub struct MemPoint {
    /// Process count of this run.
    pub procs: usize,
    /// Per-tag deltas over the run's `mark`/`since` bracket.
    pub snap: MemSnapshot,
    /// Host wall time of the run in milliseconds (ungated: host-dependent).
    pub wall_ms: f64,
    /// Kernel events processed by the run (task polls + timer firings).
    pub events: u64,
}

/// Everything one `fig_mem` sweep produces.
pub struct SweepOut {
    /// `fig9_rmw` points, in `procs` input order.
    pub fig9: Vec<MemPoint>,
    /// `net_churn` points, in `procs` input order.
    pub churn: Vec<MemPoint>,
    /// Windowed telemetry (with `mem.live_bytes.<tag>` gauges) recorded at
    /// the smallest p of each workload, when requested.
    pub timelines: Vec<(String, TimelineSnapshot)>,
}

/// Run the memory-scaling sweep: both workloads at every process count in
/// `procs` (ascending), `jobs` sweep workers. Requires the calling binary to
/// have installed [`memprof::MemProf`] and called [`memprof::enable`];
/// without that the snapshots come back empty. `timeline` additionally
/// records windowed telemetry at the smallest p of each workload.
pub fn run_sweep(
    procs: &[usize],
    ops: usize,
    msgs_per_rank: usize,
    jobs: usize,
    timeline: bool,
) -> SweepOut {
    let n = procs.len();
    let outs = sweep::run_parallel(n * 2, jobs, |idx| {
        let (wi, pi) = (idx / n, idx % n);
        let p = procs[pi];
        let tl = (timeline && pi == 0).then_some(crate::TIMELINE_WINDOW_PS);
        // Mark/since inside the worker closure: thread-local deltas over
        // exactly this run, so --jobs never changes the accounting.
        let m = memprof::mark();
        let t0 = std::time::Instant::now();
        let (tl_snap, events) = if wi == 0 {
            let out = fig9::run(
                p,
                ProgressMode::AsyncThread,
                false,
                ops,
                None,
                false,
                None,
                tl,
                1,
            );
            (out.timeline, out.events)
            // the rest of `out` drops here, before the snapshot
        } else {
            let (load, tl) = simbench::net_churn_timeline(p, msgs_per_rank * p, None, tl);
            (tl, load.events)
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        (memprof::since(&m), tl_snap, wall_ms, events)
    });
    let mut fig9_pts = Vec::with_capacity(n);
    let mut churn_pts = Vec::with_capacity(n);
    let mut timelines = Vec::new();
    for (idx, (snap, tl_snap, wall_ms, events)) in outs.into_iter().enumerate() {
        let (wi, pi) = (idx / n, idx % n);
        let name = if wi == 0 { "fig9_rmw" } else { "net_churn" };
        let pt = MemPoint {
            procs: procs[pi],
            snap,
            wall_ms,
            events,
        };
        if wi == 0 {
            fig9_pts.push(pt);
        } else {
            churn_pts.push(pt);
        }
        if let Some(tl) = tl_snap {
            timelines.push((name.to_string(), tl));
        }
    }
    SweepOut {
        fig9: fig9_pts,
        churn: churn_pts,
        timelines,
    }
}

/// Bin a fitted growth exponent into a named class. The bins are wide on
/// purpose: classes gate *exactly* in CI, so they must be stable against
/// the byte-count drift that the loose numeric tolerance absorbs.
pub fn growth_class(exp: f64) -> &'static str {
    if exp < 0.2 {
        "constant"
    } else if exp < 0.75 {
        "sublinear"
    } else if exp <= 1.25 {
        "linear"
    } else if exp <= 1.9 {
        "superlinear"
    } else {
        "quadratic"
    }
}

/// Fit a power-law growth exponent per tag from the peak-bytes ratio between
/// the smallest and largest p: `exp = ln(peak_hi/peak_lo) / ln(p_hi/p_lo)`.
/// Only tags with a positive peak at **every** point are classified (sorted
/// by name). `points` must be in ascending-p order; fewer than two points
/// (or a non-growing p) yields no slopes.
pub fn slopes(points: &[MemPoint]) -> Vec<(&'static str, f64, &'static str)> {
    if points.len() < 2 {
        return Vec::new();
    }
    let lo = &points[0];
    let hi = &points[points.len() - 1];
    if hi.procs <= lo.procs {
        return Vec::new();
    }
    let p_ratio = (hi.procs as f64 / lo.procs as f64).ln();
    lo.snap
        .tags
        .iter()
        .filter(|t| {
            points
                .iter()
                .all(|p| p.snap.get(t.name).is_some_and(|r| r.peak_bytes > 0))
        })
        .map(|t| {
            let a = lo.snap.get(t.name).unwrap().peak_bytes as f64;
            let b = hi.snap.get(t.name).unwrap().peak_bytes as f64;
            let exp = (b / a).ln() / p_ratio;
            (t.name, exp, growth_class(exp))
        })
        .collect()
}

fn workload_json(points: &[MemPoint], timing: bool) -> String {
    let mut o = String::from("{\"points\":{");
    for (i, pt) in points.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\"p{}\":{{\"procs\":{},\"tags\":{{",
            pt.procs, pt.procs
        ));
        for (j, t) in pt.snap.tags.iter().enumerate() {
            if j > 0 {
                o.push(',');
            }
            let bpr = t.peak_bytes as f64 / pt.procs as f64;
            o.push_str(&format!(
                "\"{}\":{{\"peak_bytes\":{},\"live_bytes\":{},\"allocs\":{},\"bytes_per_rank\":{:.1}}}",
                t.name, t.peak_bytes, t.live_bytes, t.allocs, bpr
            ));
        }
        o.push('}');
        if timing {
            // Ungated context fields (host-dependent): the committed golden
            // is written with `--no-timing`, so perfdiff never compares them
            // — candidate-only leaves pass.
            let eps = if pt.wall_ms > 0.0 {
                pt.events as f64 / (pt.wall_ms / 1e3)
            } else {
                0.0
            };
            o.push_str(&format!(
                ",\"wall_ms\":{:.1},\"events_per_sec\":{:.0}",
                pt.wall_ms, eps
            ));
        }
        o.push('}');
    }
    o.push_str("},\"slopes\":{");
    for (i, (tag, exp, class)) in slopes(points).iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "\"{tag}\":{{\"class\":\"{class}\",\"exp\":{exp:.2}}}"
        ));
    }
    o.push_str("}}");
    o
}

/// Serialize a sweep as a deterministic `memscale-v1` JSON document.
///
/// Every collection is a JSON **object** (keyed `"p<procs>"` / tag name),
/// never an array, and growth classes are strings — so a single
/// `perfdiff --tol ... --check` pass gates schema, tag set and classes
/// exactly while leaving the byte counts their loose tolerance. With
/// `timing`, every point additionally carries ungated `wall_ms` and
/// `events_per_sec` fields (host-dependent; goldens are regenerated with
/// `--no-timing` so perfdiff never sees them in the baseline).
pub fn scale_json(
    fig9: &[MemPoint],
    churn: &[MemPoint],
    ops: usize,
    msgs_per_rank: usize,
    timing: bool,
) -> String {
    format!(
        "{{\"schema\":\"memscale-v1\",\"bench\":\"fig_mem\",\"ops\":{ops},\
         \"msgs_per_rank\":{msgs_per_rank},\"workloads\":{{\"fig9_rmw\":{},\
         \"net_churn\":{}}}}}\n",
        workload_json(fig9, timing),
        workload_json(churn, timing)
    )
}

/// Human-friendly byte label with binary units (B / KiB / MiB); negative
/// values (net frees over a window) keep their sign.
pub fn fmt_bytes(b: i64) -> String {
    let sign = if b < 0 { "-" } else { "" };
    let v = b.unsigned_abs();
    if v >= 1 << 20 {
        format!("{sign}{:.1}MiB", v as f64 / (1u64 << 20) as f64)
    } else if v >= 1 << 10 {
        format!("{sign}{:.1}KiB", v as f64 / 1024.0)
    } else {
        format!("{sign}{v}B")
    }
}

/// Render the human `memstat` report from a `memscale-v1` JSON document:
/// per workload, the largest-p point grouped by subsystem (the tag prefix
/// before the first `.`), subsystems and tags ordered by peak bytes
/// descending — the top allocator sites — with bytes/rank and the fitted
/// growth class per tag.
pub fn memstat_report(doc: &str) -> Result<String, String> {
    let v = json::parse(doc)?;
    if v.get("schema").and_then(JsonValue::as_str) != Some("memscale-v1") {
        return Err("not a memscale-v1 document".to_string());
    }
    let Some(JsonValue::Obj(workloads)) = v.get("workloads") else {
        return Err("missing workloads object".to_string());
    };
    let mut out = String::new();
    for (wname, w) in workloads {
        let Some(JsonValue::Obj(points)) = w.get("points") else {
            continue;
        };
        let Some((_, last)) = points.last() else {
            continue;
        };
        let procs = last.get("procs").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let Some(JsonValue::Obj(tags)) = last.get("tags") else {
            continue;
        };
        let slopes = w.get("slopes");
        out.push_str(&format!(
            "== {wname} @ p={procs}: top allocator sites per subsystem ==\n"
        ));
        // Group rows by subsystem prefix: (tag, peak, bytes/rank, allocs).
        type Row<'a> = (&'a str, i64, i64, u64);
        let mut groups: Vec<(&str, Vec<Row>)> = Vec::new();
        for (tag, stats) in tags {
            let num = |k: &str| stats.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
            let row = (
                tag.as_str(),
                num("peak_bytes") as i64,
                num("bytes_per_rank") as i64,
                num("allocs") as u64,
            );
            let sub = tag.split('.').next().unwrap_or(tag);
            match groups.iter_mut().find(|(s, _)| *s == sub) {
                Some((_, rows)) => rows.push(row),
                None => groups.push((sub, vec![row])),
            }
        }
        groups.sort_by_key(|(_, rows)| -rows.iter().map(|r| r.1).sum::<i64>());
        for (sub, mut rows) in groups {
            let total: i64 = rows.iter().map(|r| r.1).sum();
            rows.sort_by_key(|r| -r.1);
            out.push_str(&format!("-- {sub}: peak {}\n", fmt_bytes(total)));
            for (tag, peak, bpr, allocs) in rows {
                let growth = slopes
                    .and_then(|s| s.get(tag))
                    .and_then(|t| t.get("class"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("n/a");
                out.push_str(&format!(
                    "   {tag:<18} peak {:>10}  {:>9}/rank  allocs {allocs:>8}  growth {growth}\n",
                    fmt_bytes(peak),
                    fmt_bytes(bpr),
                ));
            }
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::memprof::TagStats;

    fn pt(procs: usize, rows: &[(&'static str, i64)]) -> MemPoint {
        MemPoint {
            procs,
            snap: MemSnapshot {
                tags: rows
                    .iter()
                    .map(|&(name, peak)| TagStats {
                        name,
                        live_bytes: peak / 2,
                        peak_bytes: peak,
                        allocs: 3,
                        frees: 1,
                        reallocs: 0,
                    })
                    .collect(),
            },
            wall_ms: 2.0,
            events: 1000,
        }
    }

    #[test]
    fn growth_class_bins() {
        assert_eq!(growth_class(-0.5), "constant");
        assert_eq!(growth_class(0.0), "constant");
        assert_eq!(growth_class(0.5), "sublinear");
        assert_eq!(growth_class(1.0), "linear");
        assert_eq!(growth_class(1.25), "linear");
        assert_eq!(growth_class(1.5), "superlinear");
        assert_eq!(growth_class(2.1), "quadratic");
    }

    #[test]
    fn slopes_fit_known_exponents() {
        // flat: 4 KiB at every p; linear: 1 KiB/rank; quadratic: p^2 bytes.
        let points = vec![
            pt(32, &[("flat", 4096), ("lin", 32 * 1024), ("quad", 32 * 32)]),
            pt(
                128,
                &[("flat", 4096), ("lin", 128 * 1024), ("quad", 128 * 128)],
            ),
        ];
        let s = slopes(&points);
        let find = |n: &str| s.iter().find(|(t, _, _)| *t == n).unwrap();
        assert_eq!(find("flat").2, "constant");
        assert_eq!(find("lin").2, "linear");
        assert!((find("lin").1 - 1.0).abs() < 1e-9);
        assert_eq!(find("quad").2, "quadratic");
        // A tag missing a positive peak at any point is not classified.
        let partial = vec![
            pt(32, &[("x", 0), ("y", 100)]),
            pt(128, &[("x", 50), ("y", 400)]),
        ];
        assert!(slopes(&partial).iter().all(|(t, _, _)| *t != "x"));
        // Degenerate sweeps yield no slopes at all.
        assert!(slopes(&points[..1]).is_empty());
    }

    #[test]
    fn scale_json_parses_and_memstat_renders() {
        let fig9 = vec![
            pt(32, &[("pami.queues", 2048), ("torus5d.routes", 64 * 32)]),
            pt(64, &[("pami.queues", 4096), ("torus5d.routes", 64 * 64)]),
        ];
        let churn = vec![
            pt(32, &[("torus5d.links", 10_000)]),
            pt(64, &[("torus5d.links", 20_000)]),
        ];
        let doc = scale_json(&fig9, &churn, 4, 64, false);
        assert!(!doc.contains("wall_ms"), "timing off leaves no trace");
        let timed = scale_json(&fig9, &churn, 4, 64, true);
        let tv = json::parse(&timed).expect("valid JSON with timing");
        let p32 = tv
            .get("workloads")
            .and_then(|w| w.get("fig9_rmw"))
            .and_then(|w| w.get("points"))
            .and_then(|p| p.get("p32"))
            .expect("p32 point");
        assert_eq!(p32.get("wall_ms").and_then(JsonValue::as_f64), Some(2.0));
        assert_eq!(
            p32.get("events_per_sec").and_then(JsonValue::as_f64),
            Some(500000.0)
        );
        let v = json::parse(&doc).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("memscale-v1")
        );
        let w = v.get("workloads").unwrap();
        let p64 = w.get("fig9_rmw").unwrap().get("points").unwrap().get("p64");
        assert!(p64.is_some(), "points keyed by p<procs>");
        let class = w
            .get("fig9_rmw")
            .unwrap()
            .get("slopes")
            .unwrap()
            .get("pami.queues")
            .unwrap()
            .get("class")
            .and_then(JsonValue::as_str);
        assert_eq!(class, Some("linear"));
        let report = memstat_report(&doc).expect("report renders");
        assert!(report.contains("fig9_rmw @ p=64"));
        assert!(report.contains("pami.queues"));
        assert!(report.contains("growth linear"));
        assert!(report.contains("-- torus5d"));
        assert!(memstat_report("{\"schema\":\"other\"}").is_err());
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(-1536), "-1.5KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }
}
