//! Shared core of the Fig 9 read-modify-write benchmark (see
//! `src/bin/fig9_rmw.rs` for the CLI): ranks 1..p fetch-and-add a counter
//! hosted at rank 0 under a {Default, AsyncThread} × {idle, compute}
//! configuration matrix.
//!
//! Lives in the library (rather than the binary) so the fault-injection
//! differential tests can run the exact production workload with and
//! without a [`FaultPlan`] installed and compare outputs byte-for-byte.

use armci::{ArmciConfig, ProgressMode};
use desim::{
    analyze, ChromeTrace, CritPath, FaultPlan, HealthConfig, MetricsSnapshot, SimDuration,
    TimelineSnapshot,
};
use std::cell::Cell;
use std::rc::Rc;

use crate::Fixture;

/// Outcome of one Fig 9 configuration run.
pub struct RunOut {
    /// Mean fetch-and-add latency over all requester operations (µs).
    pub latency_us: f64,
    /// Virtual end time of the run (ps) — deterministic.
    pub sim_time_ps: u64,
    /// Kernel events processed — deterministic for a given binary.
    pub events: u64,
    /// Ranks whose state materialized (in Fig 9 every rank is active, so
    /// this equals `p`; the scale sweep asserts it).
    pub materialized: usize,
    /// Kernel task-table high-water mark (concurrently live tasks).
    pub task_slots: usize,
    /// The machine's full metrics snapshot at the end of the run.
    pub snapshot: MetricsSnapshot,
    /// Critical-path decomposition, when `breakdown` was requested.
    pub crit: Option<CritPath>,
    /// Chrome-trace fragment recorded in-run (worker thread local), merged
    /// into the sweep-wide trace afterwards in input order.
    pub chrome: Option<ChromeTrace>,
    /// Windowed-telemetry snapshot, when `timeline_window_ps` was set.
    pub timeline: Option<TimelineSnapshot>,
}

/// Run one Fig 9 configuration: `p` ranks, `k` fetch-and-adds per
/// requester. `trace` enables the tracer with the given `(pid, name)`;
/// `breakdown` turns on the flight recorder; `fault` installs a fault plan
/// on the machine (with `None` and with an *empty* plan the run is
/// byte-identical — the zero-cost-when-idle contract, asserted by
/// `tests/fault_zero_cost.rs`); `timeline_window_ps` turns on windowed
/// telemetry at the given sample width. When both tracing and a timeline
/// are active, the Chrome fragment additionally carries Perfetto counter
/// tracks and health-finding instants. `workers > 1` shards the machine
/// across the conservative parallel engine (DESIGN.md §16); every
/// [`RunOut`] field except `events` stays byte-identical — the mailbox pump
/// timers count as kernel events, so callers that gate on raw event counts
/// (the scale gate) must pass 1.
#[allow(clippy::too_many_arguments)]
pub fn run(
    p: usize,
    progress: ProgressMode,
    rank0_computes: bool,
    k: usize,
    trace: Option<(u64, &str)>,
    breakdown: bool,
    fault: Option<FaultPlan>,
    timeline_window_ps: Option<u64>,
    workers: usize,
) -> RunOut {
    let contexts = if progress == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let mut mcfg = pami_sim::MachineConfig::new(p)
        .procs_per_node(16)
        .contexts(contexts)
        .workers(workers);
    if let Some(plan) = fault {
        mcfg = mcfg.faults(plan);
    }
    let f = Fixture::with_machine(mcfg, ArmciConfig::default().progress(progress));
    let tracer = f.sim.tracer();
    if trace.is_some() {
        tracer.enable(1 << 20);
    }
    if breakdown {
        f.armci.machine().enable_flight(1 << 20);
    }
    if let Some(w) = timeline_window_ps {
        f.armci.enable_timeline(w, 512);
    }
    let owner = f.armci.machine().rank(0);
    let counter = owner.alloc(8);
    owner.write_i64(counter, 0);
    let total_wait = Rc::new(Cell::new(SimDuration::ZERO));
    let finished = Rc::new(Cell::new(0usize));
    let ops = (p - 1) * k;

    for r in 1..p {
        let rk = f.rank(r);
        let s = f.sim.clone();
        let total_wait = Rc::clone(&total_wait);
        let finished = Rc::clone(&finished);
        f.sim.spawn(async move {
            for _ in 0..k {
                let t0 = s.now();
                rk.rmw_fetch_add(0, counter, 1).await;
                total_wait.set(total_wait.get() + (s.now() - t0));
            }
            finished.set(finished.get() + 1);
            rk.barrier().await;
        });
    }
    // Rank 0's program.
    {
        let rk = f.rank(0);
        let s = f.sim.clone();
        let finished = Rc::clone(&finished);
        let nreq = p - 1;
        f.sim.spawn(async move {
            if rank0_computes {
                // SCF-like: compute 300 us, then touch the counter (the only
                // point where the default progress engine runs).
                while finished.get() < nreq {
                    s.sleep(SimDuration::from_us(300)).await;
                    rk.rmw_fetch_add(0, counter, 0).await;
                }
            }
            rk.barrier().await;
        });
    }
    f.finish();
    // `run_until` leaves the clock at the last fired event, so this is the
    // deterministic completion time of the workload (not the 600 s bound).
    let sim_time_ps = f.sim.now().as_ps();
    let events = f.sim.events_processed();
    let materialized = f.armci.machine().materialized_count();
    let task_slots = f.sim.task_slots();
    f.armci.machine().flush_net_stats();
    let snapshot = f.armci.machine().stats().snapshot();
    let timeline = timeline_window_ps.map(|_| f.armci.machine().timeline().snapshot());
    let chrome = trace.map(|(pid, name)| {
        // Health findings become instants on the traced timeline, and the
        // windowed series ride along as Perfetto counter tracks.
        if let Some(tl) = &timeline {
            let findings = desim::health::analyze(tl, &HealthConfig::default());
            desim::health::emit_instants(&tracer, &findings, tl.window_ps);
        }
        let mut ct = ChromeTrace::new();
        ct.add_process(pid, name, &tracer);
        if let Some(tl) = &timeline {
            ct.add_counters(pid, tl);
        }
        tracer.disable();
        ct
    });
    let crit = breakdown.then(|| analyze(&f.armci.machine().flight(), f.sim.now()));
    RunOut {
        latency_us: total_wait.get().as_us() / ops as f64,
        sim_time_ps,
        events,
        materialized,
        task_slots,
        snapshot,
        crit,
        chrome,
        timeline,
    }
}
