//! Core of the `fig_am` benchmark: small-message active-message throughput
//! with and without per-destination aggregation.
//!
//! Every rank fires `msgs_per_rank` value-carrying AM accumulates
//! ([`armci::ArmciRank::acc_am`]) of `size` payload bytes, round-robining
//! over `fanout` cross-node destinations (`(r + 16·(1 + k mod fanout)) mod
//! procs`), then fences each destination. `window_us == 0` runs the
//! untouched unbatched hot path (no batcher configured at all — the
//! zero-cost contract); a nonzero window configures
//! [`pami_sim::MachineConfig::am_batching`] with that flush window and a
//! fixed [`AM_BATCH_BYTES`] size threshold, so queued AMs coalesce into one
//! wire message per destination.
//!
//! Deterministic throughout: virtual completion time, AM/wire counters and
//! the flight-recorder decomposition are identical for any `--jobs` or
//! `--workers` value, so CI diffs the `am-v1` JSON at zero tolerance.

use std::rc::Rc;

use armci::{Armci, ArmciConfig};
use desim::{analyze, CritPath, Sim, SimDuration};
use pami_sim::{Machine, MachineConfig};

/// Aggregation-buffer size threshold used by every batched cell (the sweep
/// varies the flush window; the threshold stays fixed so window effects are
/// isolated).
pub const AM_BATCH_BYTES: usize = 4096;

/// One measured `(size, window, fanout)` sweep cell (`am-v1` schema).
#[derive(Debug, Clone, PartialEq)]
pub struct AmCell {
    /// Payload bytes per AM accumulate.
    pub size: usize,
    /// Flush window in µs; 0 = batching disabled (unbatched baseline).
    pub window_us: u64,
    /// Destinations each rank round-robins over.
    pub fanout: usize,
    /// Final virtual time (ps) — deterministic.
    pub sim_time_ps: u64,
    /// Delivered AM accumulates per second (the headline rate).
    pub am_per_s: f64,
    /// Payload goodput (MB/s).
    pub mb_s: f64,
    /// AMs handed to `send_am` (accumulates + fence pings).
    pub am_sent: u64,
    /// Wire messages those AMs became (< `am_sent` ⇒ coalescing won).
    pub wire_msgs: u64,
    /// Flushes that carried more than one AM.
    pub batches: u64,
    /// Mean AMs per wire message.
    pub avg_batch: f64,
}

impl AmCell {
    /// The cell as an `am-v1` JSON object (fixed field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"size\":{},\"window_us\":{},\"fanout\":{},\"sim_time_ps\":{},\
             \"am_per_s\":{:.1},\"mb_s\":{:.3},\"am_sent\":{},\"wire_msgs\":{},\
             \"batches\":{},\"avg_batch\":{:.3}}}",
            self.size,
            self.window_us,
            self.fanout,
            self.sim_time_ps,
            self.am_per_s,
            self.mb_s,
            self.am_sent,
            self.wire_msgs,
            self.batches,
            self.avg_batch
        )
    }
}

/// Critical-path attribution for one designated cell: the standard
/// six-category decomposition plus the summed per-AM aggregation-buffer
/// wait (`pami.am_aggr` queueing segments — the cost side of batching).
pub struct AmCrit {
    /// Critical-path decomposition from the flight recorder.
    pub crit: CritPath,
    /// Total time AMs spent parked in aggregation buffers (ps, summed over
    /// all AMs — zero on an unbatched run).
    pub aggr_wait_ps: u64,
}

impl AmCrit {
    /// JSON object: `{"am_aggr_wait_ps":N,"critpath":{...}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"am_aggr_wait_ps\":{},\"critpath\":{}}}",
            self.aggr_wait_ps,
            self.crit.to_json()
        )
    }
}

/// Run one sweep cell.
pub fn run_cell(
    procs: usize,
    size: usize,
    msgs_per_rank: usize,
    window_us: u64,
    fanout: usize,
    workers: usize,
) -> AmCell {
    run_cell_full(
        procs,
        size,
        msgs_per_rank,
        window_us,
        fanout,
        workers,
        None,
        false,
    )
    .0
}

/// Like [`run_cell`], with optional windowed telemetry and flight-recorder
/// attribution. Sharding (`workers > 1`) routes batched flush legs through
/// the reserved-sequence mailbox, so every field is byte-identical for any
/// worker count.
#[allow(clippy::too_many_arguments)]
pub fn run_cell_full(
    procs: usize,
    size: usize,
    msgs_per_rank: usize,
    window_us: u64,
    fanout: usize,
    workers: usize,
    timeline_window_ps: Option<u64>,
    breakdown: bool,
) -> (AmCell, Option<desim::TimelineSnapshot>, Option<AmCrit>) {
    assert!(procs > 16, "need more ranks than the fan-out stride");
    assert!(size.is_multiple_of(8), "payload is f64s");
    // One rank per node so the torus spreads pair traffic across many
    // links: the sweep then measures the per-message overhead regime
    // (NIC posts, dispatches, framing) aggregation targets, not a single
    // saturated inter-node link. Two contexts (ρ = 2) keep the async
    // progress thread off the main thread's lock.
    let mut mcfg = MachineConfig::new(procs)
        .procs_per_node(1)
        .contexts(2)
        .contention(true)
        .workers(workers);
    if window_us > 0 {
        mcfg = mcfg.am_batching(AM_BATCH_BYTES, SimDuration::from_us(window_us));
    }
    let sim = Sim::new();
    let m = Machine::new(sim.clone(), mcfg);
    if breakdown {
        m.enable_flight(1 << 20);
    }
    let a = Armci::new(m.clone(), ArmciConfig::default());
    if let Some(w) = timeline_window_ps {
        a.enable_timeline(w, 512);
    }
    // One accumulate target buffer per rank (AMs carry values, so no region
    // registration is involved — exactly the fallback the AM path is for).
    let bufs: Rc<Vec<usize>> = Rc::new((0..procs).map(|r| m.rank(r).alloc(size)).collect());
    for r in 0..procs {
        let rk = a.rank(r);
        let bufs = Rc::clone(&bufs);
        let vals = vec![1.0f64; size / 8];
        sim.spawn(async move {
            let mut touched = Vec::with_capacity(fanout);
            for k in 0..msgs_per_rank {
                let target = (r + 16 * (1 + k % fanout)) % procs;
                rk.acc_am(target, bufs[target], &vals, 1.0).await;
                if !touched.contains(&target) {
                    touched.push(target);
                }
            }
            touched.sort_unstable();
            for t in touched {
                rk.am_fence(t).await;
            }
        });
    }
    let end = sim.run();
    m.flush_net_stats();
    let timeline = timeline_window_ps.map(|_| m.timeline().snapshot());
    let stats = m.stats();
    let ams = (procs * msgs_per_rank) as u64;
    let secs = (end.as_ps() as f64 / 1e12).max(1e-12);
    let wire_msgs = stats.counter("am.wire_msgs");
    let am_sent = stats.counter("am.sent");
    let cell = AmCell {
        size,
        window_us,
        fanout,
        sim_time_ps: end.as_ps(),
        am_per_s: ams as f64 / secs,
        mb_s: (ams as usize * size) as f64 / secs / 1e6,
        am_sent,
        wire_msgs,
        batches: stats.counter("am.batches"),
        avg_batch: am_sent as f64 / wire_msgs.max(1) as f64,
    };
    let crit = breakdown.then(|| {
        let fl = m.flight();
        let aggr_wait_ps: u64 = fl
            .segments()
            .iter()
            .filter(|s| s.label == "pami.am_aggr")
            .map(|s| s.end.since(s.start).as_ps())
            .sum();
        AmCrit {
            crit: analyze(&fl, sim.now()),
            aggr_wait_ps,
        }
    });
    (cell, timeline, crit)
}

/// Aggregated-vs-unbatched speedup at the smallest size: for each batched
/// cell of the smallest swept size, the AM-rate ratio against the unbatched
/// cell with the same fanout. Returns the best `(window_us, fanout, ratio)`.
pub fn best_speedup(cells: &[AmCell]) -> Option<(u64, usize, f64)> {
    let smallest = cells.iter().map(|c| c.size).min()?;
    let mut best: Option<(u64, usize, f64)> = None;
    for c in cells
        .iter()
        .filter(|c| c.size == smallest && c.window_us > 0)
    {
        let base = cells
            .iter()
            .find(|b| b.size == smallest && b.window_us == 0 && b.fanout == c.fanout)?;
        let ratio = c.am_per_s / base.am_per_s;
        if best.map(|(_, _, r)| ratio > r).unwrap_or(true) {
            best = Some((c.window_us, c.fanout, ratio));
        }
    }
    best
}

/// Render a full sweep as the fixed-schema `am-v1` JSON document.
/// `crits` carries the flight attribution of the two designated cells
/// (smallest size, fanout 1): batched (largest window) and unbatched.
pub fn sweep_json(
    procs: usize,
    msgs_per_rank: usize,
    cells: &[AmCell],
    crits: &[(String, AmCrit)],
) -> String {
    let mut s = format!(
        "{{\"schema\":\"am-v1\",\"bench\":\"fig_am\",\"procs\":{procs},\
         \"msgs_per_rank\":{msgs_per_rank},\"batch_bytes\":{AM_BATCH_BYTES},\"cells\":["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&c.to_json());
    }
    s.push(']');
    if let Some((w, f, ratio)) = best_speedup(cells) {
        s.push_str(&format!(
            ",\"best_speedup\":{{\"window_us\":{w},\"fanout\":{f},\"ratio\":{ratio:.3}}}"
        ));
    }
    if !crits.is_empty() {
        s.push_str(",\"attribution\":{");
        for (i, (key, c)) in crits.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{key}\":{}", c.to_json()));
        }
        s.push('}');
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_deterministic() {
        let a = run_cell(32, 8, 8, 1, 1, 1);
        let b = run_cell(32, 8, 8, 1, 1, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn batching_beats_unbatched_at_small_size() {
        let un = run_cell(32, 8, 16, 0, 1, 1);
        let ba = run_cell(32, 8, 16, 1, 1, 1);
        assert_eq!(un.am_sent, ba.am_sent);
        assert!(
            ba.wire_msgs < un.wire_msgs,
            "batching must coalesce: {} vs {}",
            ba.wire_msgs,
            un.wire_msgs
        );
        assert!(
            ba.am_per_s > un.am_per_s,
            "batching must raise the AM rate: {} vs {}",
            ba.am_per_s,
            un.am_per_s
        );
    }

    #[test]
    fn breakdown_attributes_aggregation_wait() {
        let (_, _, crit) = run_cell_full(32, 8, 16, 4, 1, 1, None, true);
        let c = crit.expect("breakdown requested");
        assert!(c.aggr_wait_ps > 0, "batched AMs must accrue buffer wait");
        let (_, _, crit) = run_cell_full(32, 8, 16, 0, 1, 1, None, true);
        assert_eq!(crit.expect("breakdown").aggr_wait_ps, 0);
    }

    #[test]
    fn timeline_series_render_in_simstat_and_stay_healthy() {
        let (_, tl, _) = run_cell_full(32, 8, 16, 1, 1, 1, Some(1_000_000), false);
        let snap = tl.expect("timeline requested");
        // The am.* series reach the windowed snapshot and the simstat
        // renderer without any am-specific plumbing.
        let doc = desim::TimelineDoc {
            bench: "fig_am".into(),
            runs: vec![("cell".into(), snap.clone())],
        };
        let cfg = desim::HealthConfig {
            am_flush_window_ps: 1_000_000, // the cell's 1 µs window
            ..desim::HealthConfig::default()
        };
        let report = crate::simstat::report("fig_am", &doc, &cfg, 40);
        for s in [
            "am.sent",
            "am.flushes",
            "am.wire_msgs",
            "am.batches",
            "am.bytes",
            "am.queue_depth",
            "am.oldest_wait_ps",
        ] {
            assert!(report.contains(s), "missing {s} in simstat report");
        }
        // A healthy batched run never trips the flush-stall rule: buffers
        // drain on their windows.
        let findings = desim::health::analyze(&snap, &cfg);
        assert!(
            findings.iter().all(|f| f.rule != "am-flush-stall"),
            "healthy run tripped am-flush-stall: {findings:?}"
        );
    }

    #[test]
    fn sweep_json_has_fixed_schema() {
        let cells = vec![run_cell(32, 8, 4, 0, 1, 1), run_cell(32, 8, 4, 1, 1, 1)];
        let doc = sweep_json(32, 4, &cells, &[]);
        let parsed = desim::json::parse(&doc).expect("valid JSON");
        let flat = crate::perfdiff::flatten(&parsed);
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        for want in [
            "schema",
            "batch_bytes",
            "cells[0].size",
            "cells[0].window_us",
            "cells[0].am_per_s",
            "cells[0].wire_msgs",
            "cells[1].avg_batch",
            "best_speedup.ratio",
        ] {
            assert!(keys.contains(&want), "missing {want} in {keys:?}");
        }
    }
}
