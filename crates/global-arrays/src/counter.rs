//! Shared load-balance counters (`NXTVAL`-style dynamic load balancing).
//!
//! NWChem's Fock-matrix construction draws task indices from a shared
//! counter via fetch-and-add (paper Fig 10). On BG/Q the counter is hosted
//! in one rank's memory and every increment is a software-serviced AMO — the
//! exact primitive the asynchronous-thread design accelerates (§III-D,
//! Fig 9).

use armci::{Armci, ArmciRank};

/// A shared counter hosted on one rank, incremented with fetch-and-add.
#[derive(Clone)]
pub struct SharedCounter {
    owner: usize,
    off: usize,
}

impl SharedCounter {
    /// Create a counter hosted at `owner` (setup; starts at zero).
    pub fn create(armci: &Armci, owner: usize) -> SharedCounter {
        let pr = armci.machine().rank(owner);
        let off = pr.alloc(8);
        pr.write_i64(off, 0);
        SharedCounter { owner, off }
    }

    /// Rank hosting the counter.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// Fetch-and-add `inc`, returning the previous value (the caller's task
    /// index). Fully timed: travels the AMO path to the owner.
    pub async fn next(&self, caller: &ArmciRank, inc: i64) -> i64 {
        caller.rmw_fetch_add(self.owner, self.off, inc).await
    }

    /// Reset to zero (setup helper, untimed).
    pub fn reset(&self, armci: &Armci) {
        armci.machine().rank(self.owner).write_i64(self.off, 0);
    }

    /// Current value (verification helper, untimed).
    pub fn read_direct(&self, armci: &Armci) -> i64 {
        armci.machine().rank(self.owner).read_i64(self.off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci::ArmciConfig;
    use desim::{Sim, SimDuration, SimTime};
    use pami_sim::{Machine, MachineConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn counter_hands_out_disjoint_tasks() {
        let sim = Sim::new();
        let machine = Machine::new(sim.clone(), MachineConfig::new(8).procs_per_node(1));
        let armci = Armci::new(machine, ArmciConfig::default());
        let counter = SharedCounter::create(&armci, 0);
        let tasks: Rc<RefCell<Vec<Vec<i64>>>> = Rc::new(RefCell::new(vec![Vec::new(); 8]));
        for r in 0..8 {
            let rk = armci.rank(r);
            let c = counter.clone();
            let tasks = Rc::clone(&tasks);
            sim.spawn(async move {
                loop {
                    let t = c.next(&rk, 1).await;
                    if t >= 40 {
                        break;
                    }
                    tasks.borrow_mut()[r].push(t);
                }
                rk.barrier().await;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(5));
        sim.shutdown();
        let mut all: Vec<i64> = tasks.borrow().iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
        assert!(counter.read_direct(&armci) >= 40 + 8 - 1);
    }

    #[test]
    fn reset_and_read() {
        let sim = Sim::new();
        let machine = Machine::new(sim.clone(), MachineConfig::new(2));
        let armci = Armci::new(machine, ArmciConfig::default());
        let counter = SharedCounter::create(&armci, 1);
        assert_eq!(counter.read_direct(&armci), 0);
        assert_eq!(counter.owner(), 1);
        let rk = armci.rank(0);
        let c = counter.clone();
        sim.spawn(async move {
            assert_eq!(c.next(&rk, 5).await, 0);
            assert_eq!(c.next(&rk, 5).await, 5);
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        sim.shutdown();
        assert_eq!(counter.read_direct(&armci), 10);
        counter.reset(&armci);
        assert_eq!(counter.read_direct(&armci), 0);
    }
}
