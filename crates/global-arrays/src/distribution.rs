//! 2D block distribution of a dense matrix over a process grid.

/// A rank whose block intersects a requested patch: `(rank, (row_lo,
/// row_hi), (col_lo, col_hi))` of the intersection rectangle.
pub type PatchOwner = (usize, (usize, usize), (usize, usize));

/// Block distribution of an `rows × cols` matrix over `p` processes arranged
/// in a `pr × pc` grid (chosen as close to square as divides `p`). Process
/// `(gi, gj)` (rank `gi·pc + gj`) owns the contiguous block of rows
/// `row_range(gi)` and columns `col_range(gj)`; remainders go to the leading
/// blocks, so block sizes differ by at most one row/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDist {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid columns.
    pub pc: usize,
}

impl BlockDist {
    /// Build a distribution for `p` processes, choosing the most square
    /// `pr × pc = p` factorization.
    pub fn new(rows: usize, cols: usize, p: usize) -> BlockDist {
        assert!(rows > 0 && cols > 0 && p > 0);
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        let pr = pr.max(1);
        BlockDist {
            rows,
            cols,
            pr,
            pc: p / pr,
        }
    }

    /// Number of processes in the grid.
    pub fn nprocs(&self) -> usize {
        self.pr * self.pc
    }

    fn split(extent: usize, parts: usize, idx: usize) -> (usize, usize) {
        // Leading `extent % parts` blocks get one extra element.
        let base = extent / parts;
        let extra = extent % parts;
        let lo = idx * base + idx.min(extra);
        let size = base + usize::from(idx < extra);
        (lo, lo + size)
    }

    /// `[lo, hi)` rows owned by grid-row `gi`.
    pub fn row_range(&self, gi: usize) -> (usize, usize) {
        Self::split(self.rows, self.pr, gi)
    }

    /// `[lo, hi)` columns owned by grid-column `gj`.
    pub fn col_range(&self, gj: usize) -> (usize, usize) {
        Self::split(self.cols, self.pc, gj)
    }

    /// Rank owning element `(i, j)`.
    pub fn owner_of(&self, i: usize, j: usize) -> usize {
        assert!(i < self.rows && j < self.cols);
        let gi = Self::index_of(self.rows, self.pr, i);
        let gj = Self::index_of(self.cols, self.pc, j);
        gi * self.pc + gj
    }

    fn index_of(extent: usize, parts: usize, x: usize) -> usize {
        let base = extent / parts;
        let extra = extent % parts;
        let boundary = extra * (base + 1);
        if x < boundary {
            x / (base + 1)
        } else {
            match (x - boundary).checked_div(base) {
                Some(q) => extra + q,
                None => parts - 1, // base == 0: everything past goes last
            }
        }
    }

    /// The row/column ranges owned by `rank`: `((rlo, rhi), (clo, chi))`.
    pub fn block_of(&self, rank: usize) -> ((usize, usize), (usize, usize)) {
        assert!(rank < self.nprocs());
        let gi = rank / self.pc;
        let gj = rank % self.pc;
        (self.row_range(gi), self.col_range(gj))
    }

    /// Number of f64 elements owned by `rank`.
    pub fn local_elems(&self, rank: usize) -> usize {
        let ((rlo, rhi), (clo, chi)) = self.block_of(rank);
        (rhi - rlo) * (chi - clo)
    }

    /// Iterate over the ranks whose blocks intersect the patch
    /// `[rlo, rhi) × [clo, chi)`, with the intersection rectangle.
    pub fn owners_of_patch(
        &self,
        rlo: usize,
        rhi: usize,
        clo: usize,
        chi: usize,
    ) -> Vec<PatchOwner> {
        assert!(rlo < rhi && rhi <= self.rows, "bad row patch {rlo}..{rhi}");
        assert!(clo < chi && chi <= self.cols, "bad col patch {clo}..{chi}");
        let gi_lo = Self::index_of(self.rows, self.pr, rlo);
        let gi_hi = Self::index_of(self.rows, self.pr, rhi - 1);
        let gj_lo = Self::index_of(self.cols, self.pc, clo);
        let gj_hi = Self::index_of(self.cols, self.pc, chi - 1);
        let mut out = Vec::new();
        for gi in gi_lo..=gi_hi {
            let (brlo, brhi) = self.row_range(gi);
            for gj in gj_lo..=gj_hi {
                let (bclo, bchi) = self.col_range(gj);
                let r = (rlo.max(brlo), rhi.min(brhi));
                let c = (clo.max(bclo), chi.min(bchi));
                if r.0 < r.1 && c.0 < c.1 {
                    out.push((gi * self.pc + gj, r, c));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_near_square() {
        let d = BlockDist::new(100, 100, 16);
        assert_eq!((d.pr, d.pc), (4, 4));
        let d = BlockDist::new(100, 100, 8);
        assert_eq!(d.pr * d.pc, 8);
        assert!(d.pr == 2 && d.pc == 4);
        let d = BlockDist::new(100, 100, 7);
        assert_eq!((d.pr, d.pc), (1, 7));
    }

    #[test]
    fn ranges_partition_exactly() {
        let d = BlockDist::new(103, 57, 12);
        let mut total_rows = 0;
        for gi in 0..d.pr {
            let (lo, hi) = d.row_range(gi);
            assert_eq!(lo, total_rows);
            total_rows = hi;
        }
        assert_eq!(total_rows, 103);
        let mut total_cols = 0;
        for gj in 0..d.pc {
            let (lo, hi) = d.col_range(gj);
            assert_eq!(lo, total_cols);
            total_cols = hi;
        }
        assert_eq!(total_cols, 57);
    }

    #[test]
    fn owner_of_consistent_with_block_of() {
        let d = BlockDist::new(29, 31, 6);
        for i in 0..29 {
            for j in 0..31 {
                let r = d.owner_of(i, j);
                let ((rlo, rhi), (clo, chi)) = d.block_of(r);
                assert!((rlo..rhi).contains(&i), "i={i} j={j} rank={r}");
                assert!((clo..chi).contains(&j), "i={i} j={j} rank={r}");
            }
        }
    }

    #[test]
    fn patch_owners_cover_patch_exactly() {
        let d = BlockDist::new(64, 64, 16);
        let owners = d.owners_of_patch(10, 40, 20, 50);
        let mut covered = std::collections::HashSet::new();
        for (rank, (rlo, rhi), (clo, chi)) in owners {
            let ((brlo, brhi), (bclo, bchi)) = d.block_of(rank);
            assert!(brlo <= rlo && rhi <= brhi);
            assert!(bclo <= clo && chi <= bchi);
            for i in rlo..rhi {
                for j in clo..chi {
                    assert!(covered.insert((i, j)), "overlap at ({i},{j})");
                }
            }
        }
        for i in 0..64 {
            for j in 0..64 {
                assert_eq!(
                    covered.contains(&(i, j)),
                    (10..40).contains(&i) && (20..50).contains(&j),
                    "coverage wrong at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn single_process_owns_everything() {
        let d = BlockDist::new(10, 10, 1);
        assert_eq!(d.owner_of(9, 9), 0);
        assert_eq!(d.block_of(0), ((0, 10), (0, 10)));
        assert_eq!(d.local_elems(0), 100);
    }

    #[test]
    fn more_procs_than_rows() {
        let d = BlockDist::new(2, 2, 4);
        // 2x2 grid over a 2x2 matrix: one element each.
        for r in 0..4 {
            assert_eq!(d.local_elems(r), 1);
        }
    }
}
