//! Block-distributed dense 2D arrays with one-sided patch access.

use std::rc::Rc;

use armci::{Armci, ArmciRank, Strided};
use desim::memprof::{self, MemTag};

use crate::distribution::BlockDist;

/// Distributed-array metadata and staging buffers.
static GA_TAG: MemTag = MemTag::new("ga.arrays");

struct GaInner {
    #[allow(dead_code)]
    name: String,
    dist: BlockDist,
    /// Per-rank base offset of the local block in that rank's memory.
    bases: Vec<usize>,
    armci: Armci,
}

/// A dense, block-distributed 2D array of f64 (a "global array").
///
/// Creation is collective setup (regions are registered untimed so
/// measurement windows exclude allocation); all data movement afterwards
/// goes through ARMCI strided operations and is fully timed.
#[derive(Clone)]
pub struct Ga {
    inner: Rc<GaInner>,
}

impl Ga {
    /// Create an `rows × cols` array distributed over all ranks of `armci`.
    pub fn create(armci: &Armci, name: &str, rows: usize, cols: usize) -> Ga {
        let _mem = memprof::scope(&GA_TAG);
        let p = armci.nprocs();
        let dist = BlockDist::new(rows, cols, p);
        let mut bases = Vec::with_capacity(p);
        let mut lens = Vec::with_capacity(p);
        for r in 0..p {
            let pr = armci.machine().rank(r);
            let elems = dist.local_elems(r);
            let len = elems.max(1) * 8;
            let off = pr.alloc(len);
            // Register the block for RDMA; failures simply mean the
            // fall-back protocol will be used for this block.
            let registered = pr.register_region_untimed(off, len).is_ok();
            bases.push(off);
            lens.push(registered.then_some(len));
        }
        // Collective allocation exchanges region keys among all ranks
        // (ARMCI_Malloc semantics): seed every rank's region cache.
        for r in 0..p {
            for (owner, (&base, &len)) in bases.iter().zip(&lens).enumerate() {
                if owner != r {
                    if let Some(len) = len {
                        armci.seed_region(r, owner, base, len);
                    }
                }
            }
        }
        Ga {
            inner: Rc::new(GaInner {
                name: name.to_string(),
                dist,
                bases,
                armci: armci.clone(),
            }),
        }
    }

    /// The distribution of this array.
    pub fn dist(&self) -> &BlockDist {
        &self.inner.dist
    }

    /// Matrix dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.inner.dist.rows, self.inner.dist.cols)
    }

    /// Base offset of `rank`'s local block (for local access).
    pub fn base_of(&self, rank: usize) -> usize {
        self.inner.bases[rank]
    }

    /// Strided descriptor addressing the intersection of
    /// `[rlo,rhi)×[clo,chi)` with `rank`'s block, in that rank's memory.
    fn owner_desc(&self, rank: usize, rlo: usize, rhi: usize, clo: usize, chi: usize) -> Strided {
        let ((brlo, _), (bclo, bchi)) = self.inner.dist.block_of(rank);
        let ld = (bchi - bclo) * 8;
        let first = self.inner.bases[rank] + ((rlo - brlo) * (bchi - bclo) + (clo - bclo)) * 8;
        Strided::patch2d(first, (chi - clo) * 8, rhi - rlo, ld)
    }

    /// Strided descriptor for the caller's dense local buffer holding the
    /// sub-patch rows `[rlo,rhi)` cols `[clo,chi)` of a patch whose full
    /// extent is `[prlo,prhi)×[pclo,pchi)` laid out row-major at `buf`.
    #[allow(clippy::too_many_arguments)] // mirrors GA's NGA_Get patch signature
    fn local_desc(
        buf: usize,
        prlo: usize,
        pclo: usize,
        pchi: usize,
        rlo: usize,
        rhi: usize,
        clo: usize,
        chi: usize,
    ) -> Strided {
        let patch_ld = (pchi - pclo) * 8;
        let first = buf + ((rlo - prlo) * (pchi - pclo) + (clo - pclo)) * 8;
        Strided::patch2d(first, (chi - clo) * 8, rhi - rlo, patch_ld)
    }

    /// One-sided get of the patch `[rlo,rhi)×[clo,chi)` into the caller's
    /// dense row-major buffer at `buf` (must hold the full patch).
    pub async fn get_patch(
        &self,
        caller: &ArmciRank,
        rlo: usize,
        rhi: usize,
        clo: usize,
        chi: usize,
        buf: usize,
    ) {
        let mut handles = Vec::new();
        for (owner, (orlo, orhi), (oclo, ochi)) in
            self.inner.dist.owners_of_patch(rlo, rhi, clo, chi)
        {
            let remote = self.owner_desc(owner, orlo, orhi, oclo, ochi);
            let local = Self::local_desc(buf, rlo, clo, chi, orlo, orhi, oclo, ochi);
            handles.push(caller.nbget_strided(owner, &local, &remote).await);
        }
        for h in &handles {
            caller.wait(h).await;
        }
    }

    /// One-sided put of the caller's dense buffer into the patch.
    pub async fn put_patch(
        &self,
        caller: &ArmciRank,
        rlo: usize,
        rhi: usize,
        clo: usize,
        chi: usize,
        buf: usize,
    ) {
        let mut handles = Vec::new();
        for (owner, (orlo, orhi), (oclo, ochi)) in
            self.inner.dist.owners_of_patch(rlo, rhi, clo, chi)
        {
            let remote = self.owner_desc(owner, orlo, orhi, oclo, ochi);
            let local = Self::local_desc(buf, rlo, clo, chi, orlo, orhi, oclo, ochi);
            handles.push(caller.nbput_strided(owner, &local, &remote).await);
        }
        for h in &handles {
            caller.wait(h).await;
        }
    }

    /// One-sided accumulate (`A[patch] += scale·buf`) of the caller's dense
    /// buffer into the patch. Completes locally; fence to make it visible.
    #[allow(clippy::too_many_arguments)] // mirrors GA's NGA_Acc patch signature
    pub async fn acc_patch(
        &self,
        caller: &ArmciRank,
        rlo: usize,
        rhi: usize,
        clo: usize,
        chi: usize,
        buf: usize,
        scale: f64,
    ) {
        let mut handles = Vec::new();
        for (owner, (orlo, orhi), (oclo, ochi)) in
            self.inner.dist.owners_of_patch(rlo, rhi, clo, chi)
        {
            let remote = self.owner_desc(owner, orlo, orhi, oclo, ochi);
            let local = Self::local_desc(buf, rlo, clo, chi, orlo, orhi, oclo, ochi);
            handles.push(caller.nbacc_strided(owner, &local, &remote, scale).await);
        }
        for h in &handles {
            caller.wait(h).await;
        }
    }

    /// Scatter-accumulate of individual elements (`A[i,j] += scale·v` for
    /// each update) over the active-message path: one small value-carrying
    /// AM per element, routed to the element's owner. With AM batching
    /// enabled on the machine, updates headed to the same owner coalesce
    /// into single wire messages — the NGA_Scatter_acc pattern the
    /// aggregation layer exists for. Fenced before returning: all updates
    /// are applied at their owners when this completes.
    pub async fn scatter_acc_am(
        &self,
        caller: &ArmciRank,
        updates: &[(usize, usize, f64)],
        scale: f64,
    ) {
        let mut owners: Vec<usize> = Vec::new();
        for &(i, j, v) in updates {
            let owner = self.inner.dist.owner_of(i, j);
            let ((brlo, _), (bclo, bchi)) = self.inner.dist.block_of(owner);
            let off = self.inner.bases[owner] + ((i - brlo) * (bchi - bclo) + (j - bclo)) * 8;
            caller.acc_am(owner, off, &[v], scale).await;
            owners.push(owner);
        }
        // Fence each touched owner once, in ascending order.
        owners.sort_unstable();
        owners.dedup();
        for owner in owners {
            caller.am_fence(owner).await;
        }
    }

    // ------------------------------------------------------------------
    // Collective reductions (GA's ga_dgop family, on the collective net)
    // ------------------------------------------------------------------

    /// Collective global sum of all elements (ga_dgop-style): each rank sums
    /// its local block (modelled flop time) and the partial sums ride the
    /// collective network. Every rank must call it.
    pub async fn global_sum(&self, caller: &ArmciRank) -> f64 {
        let elems = self.inner.dist.local_elems(caller.id());
        let base = self.inner.bases[caller.id()];
        let local: f64 = caller.pami().read_f64s(base, elems).iter().sum();
        // Local reduction flops at the accumulate rate.
        let params = self.inner.armci.machine().params().clone();
        caller
            .armci()
            .sim()
            .sleep(desim::SimDuration::from_ps(
                elems as u64 * params.acc_elem_time_ps,
            ))
            .await;
        caller.allreduce_f64(&[local], armci::ReduceOp::Sum).await[0]
    }

    /// Collective trace (sum of diagonal elements; square arrays).
    pub async fn trace(&self, caller: &ArmciRank) -> f64 {
        assert_eq!(
            self.inner.dist.rows, self.inner.dist.cols,
            "trace needs square"
        );
        let ((rlo, rhi), (clo, chi)) = self.inner.dist.block_of(caller.id());
        let base = self.inner.bases[caller.id()];
        let mut local = 0.0;
        for i in rlo.max(clo)..rhi.min(chi) {
            let off = base + ((i - rlo) * (chi - clo) + (i - clo)) * 8;
            local += caller.pami().read_f64s(off, 1)[0];
        }
        caller.allreduce_f64(&[local], armci::ReduceOp::Sum).await[0]
    }

    // ------------------------------------------------------------------
    // Direct (setup/verification) access — no simulated cost.
    // ------------------------------------------------------------------

    /// Fill the whole array with `v` (setup helper, no simulated time).
    pub fn fill(&self, v: f64) {
        let _mem = memprof::scope(&GA_TAG);
        for r in 0..self.inner.dist.nprocs() {
            let elems = self.inner.dist.local_elems(r);
            let pr = self.inner.armci.machine().rank(r);
            pr.write_f64s(self.inner.bases[r], &vec![v; elems]);
        }
    }

    /// Set one element directly (setup helper).
    pub fn set_direct(&self, i: usize, j: usize, v: f64) {
        let owner = self.inner.dist.owner_of(i, j);
        let ((brlo, _), (bclo, bchi)) = self.inner.dist.block_of(owner);
        let off = self.inner.bases[owner] + ((i - brlo) * (bchi - bclo) + (j - bclo)) * 8;
        self.inner.armci.machine().rank(owner).write_f64s(off, &[v]);
    }

    /// Read one element directly (verification helper).
    pub fn get_direct(&self, i: usize, j: usize) -> f64 {
        let owner = self.inner.dist.owner_of(i, j);
        let ((brlo, _), (bclo, bchi)) = self.inner.dist.block_of(owner);
        let off = self.inner.bases[owner] + ((i - brlo) * (bchi - bclo) + (j - bclo)) * 8;
        self.inner.armci.machine().rank(owner).read_f64s(off, 1)[0]
    }

    /// Sum of all elements (verification helper).
    pub fn checksum(&self) -> f64 {
        let mut sum = 0.0;
        for r in 0..self.inner.dist.nprocs() {
            let elems = self.inner.dist.local_elems(r);
            let pr = self.inner.armci.machine().rank(r);
            sum += pr.read_f64s(self.inner.bases[r], elems).iter().sum::<f64>();
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use armci::ArmciConfig;
    use desim::{Sim, SimDuration, SimTime};
    use pami_sim::{Machine, MachineConfig};

    fn setup(p: usize) -> (Sim, Armci) {
        let sim = Sim::new();
        let machine = Machine::new(sim.clone(), MachineConfig::new(p).procs_per_node(1));
        let armci = Armci::new(machine, ArmciConfig::default());
        (sim, armci)
    }

    fn finish(sim: &Sim) {
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        sim.shutdown();
    }

    #[test]
    fn direct_access_round_trip() {
        let (_sim, a) = setup(4);
        let ga = Ga::create(&a, "t", 10, 10);
        ga.fill(0.0);
        ga.set_direct(3, 7, 5.5);
        assert_eq!(ga.get_direct(3, 7), 5.5);
        assert_eq!(ga.checksum(), 5.5);
    }

    #[test]
    fn scatter_acc_am_matches_direct_sum() {
        // Same element-update storm with and without AM batching: identical
        // final array, and the batched run coalesces the wire traffic.
        let run = |batch: bool| -> (f64, u64, u64) {
            let sim = Sim::new();
            let mut mc = MachineConfig::new(4).procs_per_node(1);
            if batch {
                mc = mc.am_batching(4096, SimDuration::from_us(4));
            }
            let machine = Machine::new(sim.clone(), mc);
            let a = Armci::new(machine, ArmciConfig::default());
            let ga = Ga::create(&a, "s", 16, 16);
            ga.fill(1.0);
            let r0 = a.rank(0);
            let ga2 = ga.clone();
            sim.spawn(async move {
                let updates: Vec<(usize, usize, f64)> = (0..32)
                    .map(|k| ((k * 7) % 16, (k * 3) % 16, (k + 1) as f64))
                    .collect();
                ga2.scatter_acc_am(&r0, &updates, 0.5).await;
            });
            finish(&sim);
            let s = a.machine().stats();
            (
                ga.checksum(),
                s.counter("am.sent"),
                s.counter("am.wire_msgs"),
            )
        };
        let (sum_b, sent_b, wire_b) = run(true);
        let (sum_u, sent_u, wire_u) = run(false);
        // 16·16 ones + 0.5 · Σ(k+1) for k in 0..32
        let expect = 256.0 + 0.5 * (32.0 * 33.0 / 2.0);
        assert_eq!(sum_b, expect);
        assert_eq!(sum_u, expect);
        assert_eq!(sent_b, sent_u);
        assert!(
            wire_b < wire_u,
            "batching should coalesce wire messages ({wire_b} vs {wire_u})"
        );
    }

    #[test]
    fn get_patch_spanning_owners() {
        let (sim, a) = setup(4);
        let ga = Ga::create(&a, "t", 16, 16);
        for i in 0..16 {
            for j in 0..16 {
                ga.set_direct(i, j, (i * 16 + j) as f64);
            }
        }
        let r0 = a.rank(0);
        let ga2 = ga.clone();
        sim.spawn(async move {
            // Patch straddles all four owner blocks.
            let buf = r0.malloc(8 * 8 * 8).await;
            ga2.get_patch(&r0, 4, 12, 4, 12, buf).await;
            let data = r0.pami().read_f64s(buf, 64);
            for (k, &v) in data.iter().enumerate() {
                let (i, j) = (4 + k / 8, 4 + k % 8);
                assert_eq!(v, (i * 16 + j) as f64, "element ({i},{j})");
            }
        });
        finish(&sim);
    }

    #[test]
    fn put_patch_then_verify_direct() {
        let (sim, a) = setup(4);
        let ga = Ga::create(&a, "t", 12, 12);
        ga.fill(0.0);
        let r1 = a.rank(1);
        let ga2 = ga.clone();
        sim.spawn(async move {
            let buf = r1.malloc(6 * 6 * 8).await;
            let vals: Vec<f64> = (0..36).map(|x| x as f64).collect();
            r1.pami().write_f64s(buf, &vals);
            ga2.put_patch(&r1, 3, 9, 3, 9, buf).await;
            r1.fence_all().await;
        });
        finish(&sim);
        for i in 0..12 {
            for j in 0..12 {
                let expect = if (3..9).contains(&i) && (3..9).contains(&j) {
                    ((i - 3) * 6 + (j - 3)) as f64
                } else {
                    0.0
                };
                assert_eq!(ga.get_direct(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn acc_patch_accumulates() {
        let (sim, a) = setup(4);
        let ga = Ga::create(&a, "fock", 8, 8);
        ga.fill(1.0);
        let r2 = a.rank(2);
        let ga2 = ga.clone();
        sim.spawn(async move {
            let buf = r2.malloc(4 * 4 * 8).await;
            r2.pami().write_f64s(buf, &[2.0; 16]);
            ga2.acc_patch(&r2, 2, 6, 2, 6, buf, 3.0).await;
            r2.fence_all().await;
        });
        finish(&sim);
        assert_eq!(ga.get_direct(2, 2), 7.0);
        assert_eq!(ga.get_direct(5, 5), 7.0);
        assert_eq!(ga.get_direct(0, 0), 1.0);
        assert_eq!(ga.checksum(), 64.0 + 16.0 * 6.0);
    }

    #[test]
    fn global_sum_and_trace_collectives() {
        let (sim, a) = setup(4);
        let ga = Ga::create(&a, "m", 10, 10);
        ga.fill(2.0);
        ga.set_direct(3, 3, 7.0);
        let sums = Rc::new(RefCell::new(Vec::new()));
        for r in 0..4 {
            let rk = a.rank(r);
            let ga = ga.clone();
            let sums = Rc::clone(&sums);
            sim.spawn(async move {
                let s = ga.global_sum(&rk).await;
                let t = ga.trace(&rk).await;
                sums.borrow_mut().push((s, t));
            });
        }
        finish(&sim);
        for &(s, t) in sums.borrow().iter() {
            assert_eq!(s, 2.0 * 100.0 + 5.0);
            assert_eq!(t, 2.0 * 10.0 + 5.0);
        }
    }

    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn concurrent_accs_from_multiple_ranks() {
        let (sim, a) = setup(4);
        let ga = Ga::create(&a, "fock", 8, 8);
        ga.fill(0.0);
        for r in 0..4 {
            let rk = a.rank(r);
            let ga2 = ga.clone();
            sim.spawn(async move {
                let buf = rk.malloc(8 * 8 * 8).await;
                rk.pami().write_f64s(buf, &[1.0; 64]);
                ga2.acc_patch(&rk, 0, 8, 0, 8, buf, 1.0).await;
                rk.barrier().await;
            });
        }
        finish(&sim);
        // All four ranks accumulated 1.0 everywhere.
        assert_eq!(ga.checksum(), 4.0 * 64.0);
        assert_eq!(ga.get_direct(7, 0), 4.0);
    }
}
