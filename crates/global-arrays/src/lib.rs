#![warn(missing_docs)]
//! # global-arrays — a minimal Global Arrays model over ARMCI
//!
//! The Global Arrays programming model provides block-distributed dense
//! arrays with one-sided patch access, layered directly on ARMCI — exactly
//! the stack NWChem uses (paper §II-B). This crate implements the subset the
//! paper's evaluation needs:
//!
//! * [`Ga`] — dense 2D f64 arrays, 2D block distribution over a process
//!   grid, patch `get`/`put`/`acc` that translate to ARMCI strided
//!   operations against each overlapped owner;
//! * [`SharedCounter`] — the dynamic load-balancing primitive
//!   (`NXTVAL`-style fetch-and-add on a counter hosted by one rank) whose
//!   acceleration is the subject of the paper's §III-D/§IV-B3.
//!
//! ```
//! use desim::Sim;
//! use pami_sim::{Machine, MachineConfig};
//! use armci::{Armci, ArmciConfig};
//! use global_arrays::Ga;
//!
//! let sim = Sim::new();
//! let machine = Machine::new(sim.clone(), MachineConfig::new(4));
//! let armci = Armci::new(machine, ArmciConfig::default());
//! let ga = Ga::create(&armci, "density", 64, 64);
//! ga.fill(1.0);
//! let r0 = armci.rank(0);
//! sim.spawn(async move {
//!     let buf = r0.malloc(16 * 16 * 8).await;
//!     ga.get_patch(&r0, 8, 24, 8, 24, buf).await;
//!     assert_eq!(r0.pami().read_f64s(buf, 4), vec![1.0; 4]);
//! });
//! sim.run();
//! ```

pub mod array;
pub mod counter;
pub mod distribution;

pub use array::Ga;
pub use counter::SharedCounter;
pub use distribution::BlockDist;
