//! LogGP-style cost constants and closed-form latency references.
//!
//! The constants are calibrated so the *simulated* microbenchmarks reproduce
//! the paper's published numbers (§IV, Table II):
//!
//! * adjacent-node blocking get (16 B): **2.89 µs** (Fig 3)
//! * adjacent-node blocking put (16 B): **2.70 µs** (Fig 3)
//! * latency drop at the 256 B cache-alignment boundary (Fig 3)
//! * ~35 ns per torus hop (Fig 7, and Chen et al.)
//! * peak bandwidth ≈ **1775 MB/s** of the 1.8 GB/s available (Fig 4)
//! * α = 4 B, β = 0.3 µs, γ = 8 B, δ = 43 µs, context create ≈ 3.8–4.3 ms
//!   (Table II)
//!
//! The closed-form functions here implement the paper's Eq. 7 (RDMA get),
//! Eq. 8 (active-message fall-back) and Eq. 9 (strided) latency models; the
//! event-level simulation in `pami-sim` composes the same terms and the unit
//! tests cross-check the two.

use desim::SimDuration;

/// Cost-model constants for the simulated Blue Gene/Q.
#[derive(Debug, Clone)]
pub struct BgqParams {
    // ---- network ----
    /// One-way per-hop router latency (35 ns, Chen et al. / paper §IV-B1).
    pub hop_latency: SimDuration,
    /// One-way fixed wire + NIC latency (excluding hops and payload).
    pub base_latency: SimDuration,
    /// Payload serialization time per byte on a torus link, in picoseconds
    /// (563 ps/B ⇒ ≈1776 MB/s achieved of the 1.8 GB/s available).
    pub byte_time_ps: u64,
    /// Raw link bandwidth (2 GB/s), for documentation/efficiency reporting.
    pub raw_link_bw_mbs: f64,
    /// Available (protocol-limited) bandwidth the paper normalizes against.
    pub available_bw_mbs: f64,
    // ---- intra-node (shared memory) ----
    /// Fixed latency between two ranks on the same node.
    pub intranode_latency: SimDuration,
    /// Per-byte copy time within a node, picoseconds.
    pub intranode_byte_time_ps: u64,
    // ---- processor overheads (LogGP "o") ----
    /// Software overhead to post an RMA operation.
    pub o_send: SimDuration,
    /// Software overhead to process a get completion.
    pub o_recv: SimDuration,
    /// Software overhead to retire a put's local completion.
    pub o_put_local: SimDuration,
    /// NIC RDMA engine per-operation setup.
    pub rdma_engine: SimDuration,
    /// Extra cost for cache-unaligned (small) transfers.
    pub unaligned_penalty: SimDuration,
    /// Transfers of at least this many bytes are cache-aligned (256 on BG/Q).
    pub align_threshold: usize,
    // ---- software (active-message) path ----
    /// Target CPU time to dispatch an active-message handler.
    pub am_dispatch: SimDuration,
    /// Target CPU time to service one atomic memory operation.
    pub rmw_service: SimDuration,
    /// Target CPU time per f64 element applied by an accumulate handler,
    /// picoseconds.
    pub acc_elem_time_ps: u64,
    /// Wire overhead bytes added to each active message (header/packetization).
    pub am_header_bytes: usize,
    /// Sender CPU cost to append one active message to a per-destination
    /// aggregation buffer (a cache-resident copy plus bookkeeping — far below
    /// the full NIC post overhead `o_send`, which is the source of the
    /// batching win for small messages).
    pub am_enqueue: SimDuration,
    /// CPU pack/unpack copy rate for the typed/packed datatype path,
    /// picoseconds per byte (≈6.7 GB/s memcpy).
    pub pack_byte_time_ps: u64,
    // ---- PAMI object costs (Table II) ----
    /// Endpoint space utilization α (4 bytes).
    pub endpoint_bytes: usize,
    /// Endpoint creation time β (0.3 µs).
    pub endpoint_create: SimDuration,
    /// Memory-region space utilization γ (8 bytes).
    pub memregion_bytes: usize,
    /// Memory-region creation time δ (43 µs).
    pub memregion_create: SimDuration,
    /// Context space utilization ε ("varies"; representative value).
    pub context_bytes: usize,
    /// Context creation time (3821–4271 µs measured; midpoint used).
    pub context_create: SimDuration,
    // ---- asynchronous progress thread ----
    /// Wake-up overhead of the SMT progress thread per service batch.
    pub at_wakeup: SimDuration,
    // ---- collectives ----
    /// Base cost of the hardware-assisted barrier network.
    pub barrier_base: SimDuration,
    /// Additional barrier cost per log2(p).
    pub barrier_per_log2p: SimDuration,
}

impl Default for BgqParams {
    fn default() -> Self {
        BgqParams {
            hop_latency: SimDuration::from_ns(35),
            base_latency: SimDuration::from_ns(780),
            byte_time_ps: 563,
            raw_link_bw_mbs: 2000.0,
            available_bw_mbs: 1800.0,
            intranode_latency: SimDuration::from_ns(450),
            intranode_byte_time_ps: 100,
            o_send: SimDuration::from_ns(500),
            o_recv: SimDuration::from_ns(300),
            o_put_local: SimDuration::from_ns(110),
            rdma_engine: SimDuration::from_ns(200),
            unaligned_penalty: SimDuration::from_ns(250),
            align_threshold: 256,
            am_dispatch: SimDuration::from_ns(350),
            rmw_service: SimDuration::from_ns(150),
            acc_elem_time_ps: 250,
            am_header_bytes: 32,
            am_enqueue: SimDuration::from_ns(110),
            pack_byte_time_ps: 150,
            endpoint_bytes: 4,
            endpoint_create: SimDuration::from_ns(300),
            memregion_bytes: 8,
            memregion_create: SimDuration::from_us(43),
            context_bytes: 16 * 1024,
            context_create: SimDuration::from_us(4046),
            at_wakeup: SimDuration::from_ns(200),
            barrier_base: SimDuration::from_us_f64(1.5),
            barrier_per_log2p: SimDuration::from_ns(50),
        }
    }
}

impl BgqParams {
    /// Payload serialization time for `bytes` on a torus link.
    #[inline]
    pub fn wire_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_ps(bytes as u64 * self.byte_time_ps)
    }

    /// Copy time for `bytes` through shared memory within a node.
    #[inline]
    pub fn intranode_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_ps(bytes as u64 * self.intranode_byte_time_ps)
    }

    /// One-way network latency for a header-only packet over `hops` hops
    /// (`hops == 0` means intra-node).
    #[inline]
    pub fn oneway_header(&self, hops: u32) -> SimDuration {
        if hops == 0 {
            self.intranode_latency
        } else {
            self.base_latency + self.hop_latency * u64::from(hops)
        }
    }

    /// One-way network time for `bytes` of payload over `hops` hops.
    #[inline]
    pub fn oneway(&self, hops: u32, bytes: usize) -> SimDuration {
        if hops == 0 {
            self.intranode_latency + self.intranode_time(bytes)
        } else {
            self.oneway_header(hops) + self.wire_time(bytes)
        }
    }

    /// Alignment penalty: transfers below [`BgqParams::align_threshold`] are
    /// cache-unaligned and slower (the Fig 3 "drop at 256 bytes").
    #[inline]
    pub fn align_penalty(&self, bytes: usize) -> SimDuration {
        if bytes < self.align_threshold {
            self.unaligned_penalty
        } else {
            SimDuration::ZERO
        }
    }

    /// Closed-form blocking RDMA **get** latency (the paper's Eq. 7 with the
    /// round trip made explicit):
    /// `o_send + rdma + L_req + (L + m·G)_resp + o_recv + align`.
    pub fn model_rdma_get(&self, hops: u32, bytes: usize) -> SimDuration {
        self.o_send
            + self.rdma_engine
            + self.oneway_header(hops)
            + self.oneway(hops, bytes)
            + self.o_recv
            + self.align_penalty(bytes)
    }

    /// Closed-form blocking RDMA **put** latency, as observed by the caller
    /// (BG/Q put local completion requires the hardware ack round trip):
    /// `o_send + rdma + (L + m·G) + L_ack + o_put_local + align`.
    pub fn model_rdma_put(&self, hops: u32, bytes: usize) -> SimDuration {
        self.o_send
            + self.rdma_engine
            + self.oneway(hops, bytes)
            + self.oneway_header(hops)
            + self.o_put_local
            + self.align_penalty(bytes)
    }

    /// Closed-form fall-back (active message) get latency — the paper's
    /// Eq. 8: one extra `o` (the remote dispatch) over Eq. 7, **plus** it only
    /// holds if the target is making progress; queueing at a busy target is
    /// what the event simulation adds on top.
    pub fn model_fallback_get(&self, hops: u32, bytes: usize) -> SimDuration {
        self.o_send
            + self.oneway_header(hops)
            + self.am_dispatch
            + self.oneway(hops, bytes)
            + self.o_recv
            + self.align_penalty(bytes)
    }

    /// Closed-form strided transfer latency — the paper's Eq. 9:
    /// `o·(m/l0) + m·G` for `chunks = m/l0` chunks of `l0` contiguous bytes,
    /// issued as independent non-blocking RDMA operations.
    pub fn model_strided(&self, hops: u32, chunk_bytes: usize, chunks: usize) -> SimDuration {
        let per_chunk_o = self.o_send + self.rdma_engine;
        let total = chunk_bytes * chunks;
        per_chunk_o * chunks as u64 + self.oneway_header(hops) + self.wire_time(total)
    }

    /// Hardware barrier cost for `p` processes.
    pub fn barrier_cost(&self, p: usize) -> SimDuration {
        let log2p = usize::BITS - p.max(1).leading_zeros() - 1;
        self.barrier_base + self.barrier_per_log2p * u64::from(log2p)
    }

    /// Achieved bandwidth in MB/s for `bytes` transferred in `elapsed`.
    pub fn bandwidth_mbs(bytes: usize, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        bytes as f64 / elapsed.as_secs() / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_headline_numbers() {
        let p = BgqParams::default();
        // Fig 3: adjacent-node (1 hop) 16-byte get = 2.89 us, put = 2.70 us.
        let get = p.model_rdma_get(1, 16).as_us();
        let put = p.model_rdma_put(1, 16).as_us();
        assert!((get - 2.89).abs() < 0.02, "get 16B = {get}");
        assert!((put - 2.70).abs() < 0.02, "put 16B = {put}");
    }

    #[test]
    fn latency_drops_at_alignment_boundary() {
        let p = BgqParams::default();
        let l128 = p.model_rdma_get(1, 128);
        let l256 = p.model_rdma_get(1, 256);
        assert!(l256 < l128, "aligned 256B must be faster than 128B");
    }

    #[test]
    fn per_hop_increment_is_35ns_oneway() {
        let p = BgqParams::default();
        let l1 = p.model_rdma_get(1, 16);
        let l7 = p.model_rdma_get(7, 16);
        let per_hop_roundtrip = (l7 - l1).as_ns() / (6.0 * 2.0);
        assert!(
            (per_hop_roundtrip - 35.0).abs() < 0.5,
            "{per_hop_roundtrip}"
        );
    }

    #[test]
    fn asymptotic_bandwidth_near_1775() {
        let p = BgqParams::default();
        let m = 1 << 20; // 1 MB
        let wire = p.wire_time(m);
        let bw = BgqParams::bandwidth_mbs(m, wire);
        assert!((1750.0..1800.0).contains(&bw), "wire-limited bw = {bw}");
    }

    #[test]
    fn fallback_slower_than_rdma() {
        let p = BgqParams::default();
        for m in [16usize, 256, 4096, 1 << 20] {
            assert!(p.model_fallback_get(3, m) > p.model_rdma_get(3, m), "m={m}");
        }
    }

    #[test]
    fn strided_latency_inverse_in_chunk_size() {
        let p = BgqParams::default();
        let total = 1 << 20;
        // Eq. 9: bigger l0 (fewer chunks) => lower latency for fixed m.
        let coarse = p.model_strided(2, 64 * 1024, total / (64 * 1024));
        let fine = p.model_strided(2, 1024, total / 1024);
        assert!(coarse < fine);
    }

    #[test]
    fn intranode_faster_than_internode() {
        let p = BgqParams::default();
        assert!(p.oneway(0, 1024) < p.oneway(1, 1024));
    }

    #[test]
    fn barrier_cost_grows_slowly() {
        let p = BgqParams::default();
        let b2 = p.barrier_cost(2);
        let b4096 = p.barrier_cost(4096);
        assert!(b4096 > b2);
        assert!(b4096.as_us() < 3.0, "HW barrier stays a few us");
    }

    #[test]
    fn bandwidth_of_zero_elapsed_is_zero() {
        assert_eq!(BgqParams::bandwidth_mbs(100, SimDuration::ZERO), 0.0);
    }
}
