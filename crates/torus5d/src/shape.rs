//! Torus shapes and standard BG/Q partition geometries.

use crate::coords::{wrap_distance, Coord};
use std::fmt;

/// Dimensions of a 5D torus `[A, B, C, D, E]`.
///
/// On Blue Gene/Q the E dimension is fixed at 2 for partitions of 32 nodes
/// and up; smaller sub-block shapes use meshes of 1s and 2s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TorusShape {
    dims: [u16; 5],
}

impl TorusShape {
    /// Create a shape from explicit dimensions (each ≥ 1).
    pub fn new(dims: [u16; 5]) -> TorusShape {
        assert!(dims.iter().all(|&d| d >= 1), "dimensions must be >= 1");
        TorusShape { dims }
    }

    /// The standard BG/Q partition shape for a node count.
    ///
    /// Shapes for power-of-two counts follow the machine's sub-block
    /// allocation table (e.g. 128 = 2×2×4×4×2, the paper's Eq. 10; a
    /// midplane is 512 = 4×4×4×4×2). Other counts get a balanced greedy
    /// factorization.
    pub fn for_nodes(nodes: usize) -> TorusShape {
        assert!(nodes >= 1, "need at least one node");
        let table: &[(usize, [u16; 5])] = &[
            (1, [1, 1, 1, 1, 1]),
            (2, [1, 1, 1, 1, 2]),
            (4, [1, 1, 1, 2, 2]),
            (8, [1, 1, 2, 2, 2]),
            (16, [1, 2, 2, 2, 2]),
            (32, [2, 2, 2, 2, 2]),
            (64, [2, 2, 4, 2, 2]),
            (128, [2, 2, 4, 4, 2]),
            (256, [4, 2, 4, 4, 2]),
            (512, [4, 4, 4, 4, 2]),
            (1024, [4, 4, 4, 8, 2]),
            (2048, [4, 4, 8, 8, 2]),
            (4096, [8, 4, 8, 8, 2]),
        ];
        if let Some(&(_, dims)) = table.iter().find(|(n, _)| *n == nodes) {
            return TorusShape::new(dims);
        }
        // Greedy balanced factorization for unusual counts: repeatedly give
        // the smallest prime factor to the currently smallest dimension
        // (E last, matching BG/Q's preference for E=2).
        let mut dims = [1u16; 5];
        let mut rest = nodes;
        let mut p = 2;
        while rest > 1 {
            while !rest.is_multiple_of(p) {
                p += 1;
            }
            let idx = (0..5)
                .min_by_key(|&i| (dims[i], i))
                .expect("five dimensions");
            dims[idx] = dims[idx].checked_mul(p as u16).expect("shape overflow");
            rest /= p;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        // Keep E smallest, as on the real machine.
        TorusShape::new(dims)
    }

    /// The dimension sizes `[A, B, C, D, E]`.
    pub fn dims(&self) -> [u16; 5] {
        self.dims
    }

    /// Size of dimension `dim` (0=A … 4=E).
    pub fn dim(&self, dim: usize) -> u16 {
        self.dims[dim]
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.dims.iter().map(|&d| d as usize).product()
    }

    /// Longest possible shortest-path distance in this torus
    /// (`Σ floor(dim/2)`, the paper's Eq. 10 discussion).
    pub fn diameter(&self) -> u32 {
        self.dims.iter().map(|&d| u32::from(d) / 2).sum()
    }

    /// Shortest-path (wrap-around Manhattan) distance between two nodes.
    pub fn torus_distance(&self, a: Coord, b: Coord) -> u32 {
        (0..5)
            .map(|i| wrap_distance(a.get(i), b.get(i), self.dims[i]))
            .sum()
    }

    /// Linearize a coordinate to a node index (A slowest, E fastest).
    pub fn node_index(&self, c: Coord) -> usize {
        let mut idx = 0usize;
        for i in 0..5 {
            debug_assert!(c.get(i) < self.dims[i]);
            idx = idx * self.dims[i] as usize + c.get(i) as usize;
        }
        idx
    }

    /// Inverse of [`TorusShape::node_index`].
    pub fn node_coord(&self, mut idx: usize) -> Coord {
        debug_assert!(idx < self.num_nodes());
        let mut c = [0u16; 5];
        for i in (0..5).rev() {
            c[i] = (idx % self.dims[i] as usize) as u16;
            idx /= self.dims[i] as usize;
        }
        Coord(c)
    }

    /// Iterate over every coordinate in index order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.num_nodes()).map(|i| self.node_coord(i))
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2], self.dims[3], self.dims[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partition_shapes() {
        assert_eq!(TorusShape::for_nodes(128).dims(), [2, 2, 4, 4, 2]);
        assert_eq!(TorusShape::for_nodes(512).dims(), [4, 4, 4, 4, 2]);
        assert_eq!(TorusShape::for_nodes(128).diameter(), 7); // paper Eq. 10
    }

    #[test]
    fn node_count_matches_product() {
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096] {
            assert_eq!(TorusShape::for_nodes(n).num_nodes(), n, "n={n}");
        }
    }

    #[test]
    fn odd_node_counts_factor() {
        for n in [3usize, 6, 12, 24, 48, 96, 100, 384] {
            assert_eq!(TorusShape::for_nodes(n).num_nodes(), n, "n={n}");
        }
    }

    #[test]
    fn index_coord_round_trip() {
        let s = TorusShape::for_nodes(128);
        for i in 0..s.num_nodes() {
            assert_eq!(s.node_index(s.node_coord(i)), i);
        }
    }

    #[test]
    fn distance_properties() {
        let s = TorusShape::for_nodes(64);
        let a = s.node_coord(0);
        for i in 0..s.num_nodes() {
            let b = s.node_coord(i);
            let d = s.torus_distance(a, b);
            assert_eq!(d, s.torus_distance(b, a));
            assert!(d <= s.diameter());
            if i == 0 {
                assert_eq!(d, 0);
            } else {
                assert!(d >= 1);
            }
        }
    }

    #[test]
    fn iter_coords_covers_all() {
        let s = TorusShape::for_nodes(32);
        let coords: Vec<_> = s.iter_coords().collect();
        assert_eq!(coords.len(), 32);
        let mut dedup = coords.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 32);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", TorusShape::for_nodes(128)), "2x2x4x4x2");
    }
}
