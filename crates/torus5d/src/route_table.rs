//! Interned links and cached dimension-ordered routes.
//!
//! Deterministic dimension-ordered routing makes a route a pure function of
//! its `(source node, destination node)` pair — the exact property the
//! paper's PAMI relies on for pairwise ordering (§III-A4). [`RouteTable`]
//! exploits it on the simulator's hot path:
//!
//! * **[`LinkId`]** — a directed physical link interned as
//!   `node_index * 10 + dim * 2 + plus`: O(1) to compute, no hashing, and
//!   dense, so per-link state can live in flat `Vec`s indexed by it.
//!   Ascending `LinkId` order equals the lexicographic [`Link`] order
//!   (node indices are the lexicographic linearization of coordinates), so
//!   sorted views come for free.
//! * **Route arena** — the first message between a node pair computes its
//!   route once (via [`crate::routing::route_with`], so it is exact by
//!   construction) and appends it to a shared arena; every later message
//!   walks the cached `LinkId` slice with zero allocations.
//! * **On-demand rank mapping** — rank → (coordinate, node index) is pure
//!   mapping arithmetic, computed per call. A precomputed rank table (and a
//!   dense node² span table) would cost O(p) (and O(nodes²)) bytes up
//!   front; at the million-rank partitions `fig_scale` targets, every
//!   per-rank structure must instead cost O(touched). Route spans live in a
//!   compact [`FxMap64`] keyed by the packed node pair, so only pairs that
//!   actually exchange traffic occupy memory.

use crate::coords::Coord;
use crate::fxmap::FxMap64;
use crate::routing::{route_avoiding, route_with, Link};
use crate::shape::TorusShape;
use crate::{Mapping, Topology};
use desim::memprof::{self, MemTag};

/// Span map and link arena of the route cache.
static ROUTES_TAG: MemTag = MemTag::new("torus5d.routes");

/// Links per node: 5 dimensions × 2 directions.
const LINKS_PER_NODE: u32 = 10;

/// Interned directed-link id: `node_index * 10 + dim * 2 + plus`.
///
/// The interning is a bijection between ids `0..nodes*10` and [`Link`]s of
/// the torus; decode with [`RouteTable::link_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Sentinel offset marking a route span not yet cached.
const UNCACHED: u32 = u32::MAX;

/// Sentinel offset marking a node pair the degraded walker could not
/// connect at its epoch (destination cut off by dead links).
const NO_ROUTE: u32 = u32::MAX - 1;

/// One cached route span: arena offset, hop count and the liveness epoch it
/// was last validated at. The `Default` value is the "never cached" state,
/// so [`FxMap64`] lookups of untouched pairs need no separate sentinel.
#[derive(Debug, Clone, Copy)]
struct SpanSlot {
    off: u32,
    len: u16,
    /// Only consulted by [`RouteTable::route_span_live`]; the fault-free
    /// [`RouteTable::route_span`] never looks at it.
    epoch: u32,
}

impl Default for SpanSlot {
    fn default() -> Self {
        SpanSlot {
            off: UNCACHED,
            len: 0,
            epoch: 0,
        }
    }
}

/// Pack a `(src node, dst node)` pair into one span-map key.
#[inline]
fn span_key(src_node: u32, dst_node: u32) -> u64 {
    (u64::from(src_node) << 32) | u64::from(dst_node)
}

/// Per-partition routing acceleration: link interning and the lazily filled
/// route arena. See the module docs.
pub struct RouteTable {
    shape: TorusShape,
    nodes: u32,
    /// Rank→coordinate mapping, evaluated on demand per lookup.
    mapping: Mapping,
    procs_per_node: usize,
    /// Total process slots of the partition (`nodes * procs_per_node`).
    capacity: usize,
    /// Packed (src node, dst node) → cached span. Compact: only pairs that
    /// exchanged traffic occupy a slot, so idle partitions cost zero and a
    /// million-rank all-to-all among k active ranks costs O(k²), never
    /// O(nodes²).
    spans: FxMap64<SpanSlot>,
    /// Shared arena of cached routes, stored back-to-back.
    arena: Vec<LinkId>,
    /// Number of distinct node pairs whose route has been cached.
    routes_cached: u64,
}

impl RouteTable {
    /// Build the table for a topology. Construction is O(1) in the partition
    /// size: rank coordinates are computed on demand and routes fill in
    /// lazily as traffic touches node pairs.
    pub fn new(topo: &Topology) -> RouteTable {
        let shape = topo.shape;
        RouteTable {
            shape,
            nodes: shape.num_nodes() as u32,
            mapping: topo.mapping.clone(),
            procs_per_node: topo.procs_per_node,
            capacity: topo.capacity(),
            spans: FxMap64::new(),
            arena: Vec::new(),
            routes_cached: 0,
        }
    }

    /// The torus shape this table spans.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// Total process slots of the partition.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of nodes in the torus.
    pub fn num_nodes(&self) -> usize {
        self.nodes as usize
    }

    /// Exclusive upper bound of the dense [`LinkId`] space (`nodes * 10`).
    pub fn num_link_ids(&self) -> usize {
        (self.nodes * LINKS_PER_NODE) as usize
    }

    /// Torus coordinate of the node hosting `rank` (mapping arithmetic).
    #[inline]
    pub fn coord_of(&self, rank: usize) -> Coord {
        self.mapping
            .rank_to_coord(rank, &self.shape, self.procs_per_node)
            .0
    }

    /// Node index of the node hosting `rank` (mapping arithmetic).
    #[inline]
    pub fn node_of(&self, rank: usize) -> u32 {
        self.shape.node_index(self.coord_of(rank)) as u32
    }

    /// True when both ranks live on the same node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Hop count between the nodes hosting the two ranks (0 if co-located).
    /// Coordinate mapping + wrap arithmetic; no route computation.
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.shape
            .torus_distance(self.coord_of(a), self.coord_of(b))
    }

    /// Intern a [`Link`] (O(1): one node-index linearization, no hashing).
    #[inline]
    pub fn link_id(&self, link: Link) -> LinkId {
        let node = self.shape.node_index(link.from) as u32;
        LinkId(node * LINKS_PER_NODE + u32::from(link.dim) * 2 + u32::from(link.plus))
    }

    /// Decode a [`LinkId`] back into the full [`Link`] identity.
    #[inline]
    pub fn link_of(&self, id: LinkId) -> Link {
        let rem = id.0 % LINKS_PER_NODE;
        Link {
            from: self.shape.node_coord((id.0 / LINKS_PER_NODE) as usize),
            dim: (rem / 2) as u8,
            plus: rem % 2 == 1,
        }
    }

    /// The cached route between two *node indices* as an `(arena offset,
    /// hop count)` span, computing and caching it on first use. Index the
    /// links with [`RouteTable::link_at`]; the span stays valid for the
    /// lifetime of the table (the arena only grows).
    #[inline]
    pub fn route_span(&mut self, src_node: u32, dst_node: u32) -> (u32, u16) {
        let key = span_key(src_node, dst_node);
        let slot = self.spans.get(key).unwrap_or_default();
        if slot.off != UNCACHED {
            debug_assert_ne!(slot.off, NO_ROUTE, "fault-free lookups never see NO_ROUTE");
            return (slot.off, slot.len);
        }
        self.fill_route(key, src_node, dst_node)
    }

    /// Liveness-aware variant of [`RouteTable::route_span`]: the cached span
    /// for the pair, valid **at liveness epoch `epoch`** given the per-link
    /// predicate `live`. A span cached at an older epoch is recomputed with
    /// [`route_avoiding`]; if the fresh walk matches the cached links the
    /// span is merely re-stamped (no arena growth — the common case once
    /// routes settle after a failure), otherwise the detour is appended as a
    /// new span. Returns `None` when the pair is unreachable at this epoch.
    #[inline]
    pub fn route_span_live<F: Fn(LinkId) -> bool>(
        &mut self,
        src_node: u32,
        dst_node: u32,
        epoch: u32,
        live: F,
    ) -> Option<(u32, u16)> {
        let key = span_key(src_node, dst_node);
        let slot = self.spans.get(key).unwrap_or_default();
        if slot.off != UNCACHED && slot.epoch == epoch {
            return if slot.off == NO_ROUTE {
                None
            } else {
                Some((slot.off, slot.len))
            };
        }
        self.fill_route_live(key, src_node, dst_node, epoch, live)
    }

    /// The cached route between two node indices as a [`LinkId`] slice.
    pub fn route_ids(&mut self, src_node: u32, dst_node: u32) -> &[LinkId] {
        let (off, len) = self.route_span(src_node, dst_node);
        &self.arena[off as usize..off as usize + len as usize]
    }

    /// One link of the arena (index comes from [`RouteTable::route_span`]).
    #[inline]
    pub fn link_at(&self, arena_idx: u32) -> LinkId {
        self.arena[arena_idx as usize]
    }

    /// Number of distinct node-pair routes cached so far.
    pub fn routes_cached(&self) -> u64 {
        self.routes_cached
    }

    /// Total links stored in the shared route arena.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    #[cold]
    fn fill_route(&mut self, key: u64, src_node: u32, dst_node: u32) -> (u32, u16) {
        let _mem = memprof::scope(&ROUTES_TAG);
        let off = self.arena.len() as u32;
        let src = self.shape.node_coord(src_node as usize);
        let dst = self.shape.node_coord(dst_node as usize);
        let shape = self.shape;
        let arena = &mut self.arena;
        route_with(&shape, src, dst, |link| {
            let node = shape.node_index(link.from) as u32;
            arena.push(LinkId(
                node * LINKS_PER_NODE + u32::from(link.dim) * 2 + u32::from(link.plus),
            ));
        });
        let len = (self.arena.len() as u32 - off) as u16;
        debug_assert_eq!(
            u32::from(len),
            self.shape.torus_distance(src, dst),
            "cached route length must equal the torus distance"
        );
        self.spans.insert(key, SpanSlot { off, len, epoch: 0 });
        self.routes_cached += 1;
        (off, len)
    }

    #[cold]
    fn fill_route_live<F: Fn(LinkId) -> bool>(
        &mut self,
        key: u64,
        src_node: u32,
        dst_node: u32,
        epoch: u32,
        live: F,
    ) -> Option<(u32, u16)> {
        let _mem = memprof::scope(&ROUTES_TAG);
        let shape = self.shape;
        let src = shape.node_coord(src_node as usize);
        let dst = shape.node_coord(dst_node as usize);
        let fresh = route_avoiding(&shape, src, dst, |l| {
            let node = shape.node_index(l.from) as u32;
            live(LinkId(
                node * LINKS_PER_NODE + u32::from(l.dim) * 2 + u32::from(l.plus),
            ))
        });
        let old = self.spans.get(key).unwrap_or_default();
        let Some(links) = fresh else {
            self.spans.insert(
                key,
                SpanSlot {
                    off: NO_ROUTE,
                    len: 0,
                    epoch,
                },
            );
            return None;
        };
        if old.off != UNCACHED && old.off != NO_ROUTE {
            // Re-validate: if the degraded walk reproduces the cached links
            // exactly, keep the old span (the cache stays *exact* without
            // duplicating arena storage on every epoch bump).
            let (off, len) = (old.off as usize, old.len as usize);
            if len == links.len()
                && self.arena[off..off + len]
                    .iter()
                    .zip(&links)
                    .all(|(id, l)| *id == self.link_id(*l))
            {
                self.spans.insert(key, SpanSlot { epoch, ..old });
                return Some((old.off, old.len));
            }
        }
        let off = self.arena.len() as u32;
        for l in &links {
            let id = self.link_id(*l);
            self.arena.push(id);
        }
        let span = SpanSlot {
            off,
            len: links.len() as u16,
            epoch,
        };
        self.spans.insert(key, span);
        self.routes_cached += 1;
        Some((span.off, span.len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::route;
    use crate::Mapping;

    fn table(nodes: usize, ppn: usize) -> (Topology, RouteTable) {
        let topo = Topology {
            shape: TorusShape::for_nodes(nodes),
            procs_per_node: ppn,
            mapping: Mapping::abcdet(),
        };
        let rt = RouteTable::new(&topo);
        (topo, rt)
    }

    #[test]
    fn rank_table_matches_topology() {
        let (topo, rt) = table(64, 16);
        assert_eq!(rt.capacity(), topo.capacity());
        for r in 0..topo.capacity() {
            assert_eq!(rt.coord_of(r), topo.coord_of(r), "rank {r}");
            assert_eq!(
                rt.node_of(r) as usize,
                topo.shape.node_index(topo.coord_of(r))
            );
        }
        for (a, b) in [(0, 0), (0, 15), (0, 16), (3, 999), (1000, 17)] {
            assert_eq!(rt.same_node(a, b), topo.same_node(a, b));
            assert_eq!(rt.hops(a, b), topo.hops(a, b));
        }
    }

    #[test]
    fn link_id_is_a_bijection() {
        let (_, rt) = table(128, 1);
        for id in 0..rt.num_link_ids() as u32 {
            let link = rt.link_of(LinkId(id));
            assert_eq!(rt.link_id(link), LinkId(id));
            assert!(link.dim < 5);
        }
    }

    #[test]
    fn link_id_order_matches_link_order() {
        // Dense id order must equal the lexicographic Link order the old
        // HashMap-based utilization view sorted by.
        let (_, rt) = table(32, 1);
        let links: Vec<Link> = (0..rt.num_link_ids() as u32)
            .map(|i| rt.link_of(LinkId(i)))
            .collect();
        let mut sorted = links.clone();
        sorted.sort_unstable();
        assert_eq!(links, sorted);
    }

    #[test]
    fn cached_routes_match_fresh_routes() {
        let (topo, mut rt) = table(64, 1);
        let shape = topo.shape;
        for a in 0..shape.num_nodes() as u32 {
            for b in 0..shape.num_nodes() as u32 {
                let cached: Vec<Link> = rt
                    .route_ids(a, b)
                    .to_vec()
                    .into_iter()
                    .map(|id| rt.link_of(id))
                    .collect();
                let fresh = route(
                    &shape,
                    shape.node_coord(a as usize),
                    shape.node_coord(b as usize),
                );
                assert_eq!(cached, fresh, "route {a}->{b}");
            }
        }
        let n = shape.num_nodes() as u64;
        assert_eq!(rt.routes_cached(), n * n);
    }

    #[test]
    fn live_span_revalidates_without_arena_growth() {
        let (_, mut rt) = table(64, 1);
        let all_live = |_: LinkId| true;
        let span0 = rt.route_span_live(0, 9, 0, all_live).unwrap();
        assert_eq!(
            span0,
            rt.route_span(0, 9),
            "all-live walk is the exact route"
        );
        let arena = rt.arena_len();
        let cached = rt.routes_cached();
        // Epoch bump with nothing dead: same links -> re-stamp, no growth.
        let span1 = rt.route_span_live(0, 9, 1, all_live).unwrap();
        assert_eq!(span1, span0);
        assert_eq!(rt.arena_len(), arena);
        assert_eq!(rt.routes_cached(), cached);
        // Same epoch again: pure cache hit.
        assert_eq!(rt.route_span_live(0, 9, 1, all_live), Some(span0));
    }

    #[test]
    fn live_span_detours_and_caches_the_detour() {
        let (_, mut rt) = table(64, 1);
        let (off, len) = rt.route_span_live(0, 9, 0, |_| true).unwrap();
        assert!(len > 0);
        let dead = rt.link_at(off);
        let (off2, len2) = rt.route_span_live(0, 9, 1, |l| l != dead).unwrap();
        let detour: Vec<LinkId> = (off2..off2 + u32::from(len2))
            .map(|i| rt.link_at(i))
            .collect();
        assert!(!detour.contains(&dead), "detour must avoid the dead link");
        // The detour is itself cached: same epoch, no recompute drift.
        assert_eq!(
            rt.route_span_live(0, 9, 1, |l| l != dead),
            Some((off2, len2))
        );
        // Recovery epoch: walker returns to the original exact route, which
        // re-validates against the *original* span (but a new span entry is
        // appended only if links differ from the detour currently stored).
        let (off3, len3) = rt.route_span_live(0, 9, 2, |_| true).unwrap();
        let back: Vec<LinkId> = (off3..off3 + u32::from(len3))
            .map(|i| rt.link_at(i))
            .collect();
        assert!(back.contains(&dead));
        assert_eq!(back.len(), len as usize);
    }

    #[test]
    fn live_span_reports_unreachable_and_recovers() {
        let (_, mut rt) = table(32, 1);
        let src_node = 0u32;
        // Kill every link leaving node 0: unreachable.
        assert_eq!(
            rt.route_span_live(src_node, 3, 5, |l| l.0 / 10 != src_node),
            None
        );
        // The NO_ROUTE verdict is cached at that epoch.
        assert_eq!(
            rt.route_span_live(src_node, 3, 5, |l| l.0 / 10 != src_node),
            None
        );
        // Next epoch with links back: route again.
        assert!(rt.route_span_live(src_node, 3, 6, |_| true).is_some());
    }

    #[test]
    fn route_cache_is_lazy_and_stable() {
        let (_, mut rt) = table(32, 1);
        assert_eq!(rt.routes_cached(), 0);
        assert_eq!(rt.arena_len(), 0);
        let first = rt.route_span(0, 7);
        let len_after = rt.arena_len();
        // Second lookup: cache hit, no arena growth.
        assert_eq!(rt.route_span(0, 7), first);
        assert_eq!(rt.arena_len(), len_after);
        // Self-route caches an empty span.
        assert_eq!(rt.route_span(5, 5).1, 0);
    }
}
