//! Parallel batch delivery: execute a pre-generated message schedule across
//! N worker shards with results byte-identical to the serial delivery loop.
//!
//! # Why sequence tickets, not time windows
//!
//! The serial engine ([`NetState::try_deliver_op`] in a loop) is a state
//! machine: injection-FIFO fronts (`tx_busy`), link reservations
//! (`link_busy`) and pair-order fronts (`pair_last`) are all updated in
//! *schedule order*, and contended link grants couple messages that are
//! minutes of virtual time apart. Lookahead windows alone therefore cannot
//! reproduce the serial output byte-for-byte — two messages in the same
//! window may contend for a link, and their grant order must match the
//! schedule, not the clock. Instead the batch engine turns the schedule
//! position into an explicit dependency graph:
//!
//! * **Source shards** (`src % workers`): each worker computes injection-FIFO
//!   starts for its sources' messages in schedule order — exactly the
//!   per-source subsequence of the serial update order, which is all the
//!   serial engine's `tx_busy[src]` ever observes.
//! * **Link shards** (`link % workers`): every directed link has a queue of
//!   `(message, hop-position)` reservations in schedule order. A worker
//!   grants its links' queue heads as soon as the message's head has cleared
//!   the previous hop (published through a per-message `(head, stage)` atom
//!   pair), reproducing the serial wormhole walk grant-for-grant.
//! * **Arrival shards** (same as source shards): payload serialization and
//!   the pair-order clamp are per-source-keyed, again in schedule order.
//!
//! The serial execution order is a topological order of this graph (edges go
//! from lower schedule index to higher, and along each route), so the
//! dataflow can never deadlock; workers that are momentarily blocked yield
//! rather than spin, which keeps a 1-core container livelock-free. The
//! conservative *time-windowed* machinery lives one layer up, in
//! [`desim::par::ParSim`] — rank-level simulations use windows to batch
//! cross-shard synchronization; this module is the network-level engine
//! those windows delegate batches to.
//!
//! # Determinism and the merge
//!
//! After the dataflow drains, per-shard state merges back into the
//! [`NetState`] in a fixed order: `tx_busy`/`pair_last` fronts ascending by
//! key, link `busy`/`utilization`/`touched` ascending by [`crate::LinkId`] (each
//! link is owned by exactly one worker, so these are plain moves), and the
//! message/byte counters as sums. Every merged value equals the serial
//! value, so a serial delivery *after* a parallel batch continues
//! byte-identically — asserted by `tests/par_net.rs`.
//!
//! `--workers 1` (and any configuration with a per-delivery observer
//! attached: fault plan, flight recorder, timeline) bypasses all of this and
//! runs the untouched serial hot path — zero warm-delivery allocations,
//! pinned by `tests/alloc_free.rs`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use desim::memprof::{self, MemTag};
use desim::time::{SimDuration, SimTime};

use crate::fxmap::FxMap64;
use crate::net::{Delivery, MsgClass, NetState};

/// Schedule construction and the batch dataflow's transient state.
static BATCH_TAG: MemTag = MemTag::new("torus5d.batch");

/// One pre-scheduled message for [`deliver_batch`].
#[derive(Debug, Clone, Copy)]
pub struct NetMsg {
    /// Injection time (the serial loop's `inject` argument).
    pub inject: SimTime,
    /// Source rank.
    pub src: u32,
    /// Destination rank.
    pub dst: u32,
    /// Payload bytes.
    pub payload: u32,
    /// Ordering class.
    pub class: MsgClass,
}

/// Aggregate result of a batch delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOut {
    /// Messages delivered (drops by an installed fault plan are excluded —
    /// only possible on the serial fallback path).
    pub delivered: u64,
    /// Latest arrival time across the batch ([`SimTime::ZERO`] if empty).
    pub last_arrival: SimTime,
}

/// Deliver a message schedule through `net`, fanned across `workers` shards.
///
/// Results (arrival times, counters, link utilization, and every byte of
/// post-batch `NetState`) are identical for any worker count. `workers <= 1`
/// — or any network with a per-delivery observer attached (fault plan,
/// flight recorder, timeline) — runs the serial loop unchanged.
pub fn deliver_batch(net: &mut NetState, msgs: &[NetMsg], workers: usize) -> BatchOut {
    if use_serial(net, workers) {
        deliver_batch_serial(net, msgs, None)
    } else {
        deliver_batch_parallel(net, msgs, workers, None)
    }
}

/// [`deliver_batch`], additionally returning every message's arrival time in
/// schedule order (a message dropped by a fault plan — serial fallback only —
/// reports [`SimTime::MAX`]). Used by the differential test suite.
pub fn deliver_batch_arrivals(
    net: &mut NetState,
    msgs: &[NetMsg],
    workers: usize,
) -> (BatchOut, Vec<SimTime>) {
    let mut arrivals = vec![SimTime::MAX; msgs.len()];
    let out = if use_serial(net, workers) {
        deliver_batch_serial(net, msgs, Some(&mut arrivals))
    } else {
        deliver_batch_parallel(net, msgs, workers, Some(&mut arrivals))
    };
    (out, arrivals)
}

/// The parallel dataflow supports exactly the observer-free configuration;
/// everything else keeps the serial loop (which supports everything).
fn use_serial(net: &NetState, workers: usize) -> bool {
    workers <= 1 || net.faults_installed() || net.flight_on() || net.timeline_attached()
}

/// The serial fallback: the exact per-message hot path, no staging state.
fn deliver_batch_serial(
    net: &mut NetState,
    msgs: &[NetMsg],
    mut arrivals: Option<&mut [SimTime]>,
) -> BatchOut {
    let mut delivered = 0u64;
    let mut last = SimTime::ZERO;
    for (i, m) in msgs.iter().enumerate() {
        match net.try_deliver_op(
            m.inject,
            m.src as usize,
            m.dst as usize,
            m.payload as usize,
            m.class,
            None,
        ) {
            Delivery::Delivered(at) => {
                delivered += 1;
                if at > last {
                    last = at;
                }
                if let Some(out) = arrivals.as_deref_mut() {
                    out[i] = at;
                }
            }
            Delivery::Dropped { .. } => {}
        }
    }
    BatchOut {
        delivered,
        last_arrival: last,
    }
}

/// Per-owned-link reservation queue: a slice `lo..hi` of the flat entry
/// array plus the link's running busy front and utilization delta.
struct LinkQ {
    li: u32,
    lo: u32,
    hi: u32,
    cur: u32,
    busy: u64,
    util: u64,
}

/// Everything one worker owns: its sources' messages (schedule order), the
/// seeded source-keyed fronts, and its link queues.
struct ShardTask {
    mine: Vec<u32>,
    tx: FxMap64<SimTime>,
    pair: FxMap64<SimTime>,
    links: Vec<LinkQ>,
}

/// What a worker hands back for the deterministic merge.
struct ShardOut {
    tx: Vec<(u64, u64)>,
    pair: Vec<(u64, u64)>,
    links: Vec<(u32, u64, u64)>,
    arrivals: Vec<(u32, u64)>,
    last: u64,
    bytes: u64,
}

/// Hop position sentinel: "phase 1 has not published this message yet".
const STAGE_UNSET: u32 = u32::MAX;

fn deliver_batch_parallel(
    net: &mut NetState,
    msgs: &[NetMsg],
    workers: usize,
    arrivals_out: Option<&mut [SimTime]>,
) -> BatchOut {
    let _mem = memprof::scope(&BATCH_TAG);
    let n = msgs.len();
    let hop_ps = net.params.hop_latency.as_ps();
    let base_ps = net.params.base_latency.as_ps();
    let intra_ps = net.params.intranode_latency.as_ps();
    let contention = net.contention;
    let track = net.track_links;

    // ---- Serial prep: routes, per-message constants, link queues. -------
    let mut wire: Vec<u64> = Vec::with_capacity(n);
    let mut head_add: Vec<u64> = Vec::with_capacity(n);
    let mut expect: Vec<u32> = Vec::with_capacity(n);
    let mut spans: Vec<(u32, u16)> = Vec::with_capacity(n);
    let nlinks = net.rt.num_link_ids();
    let mut counts: Vec<u32> = if contention {
        vec![0; nlinks]
    } else {
        Vec::new()
    };
    for m in msgs {
        let (src, dst) = (m.src as usize, m.dst as usize);
        let same = net.rt.same_node(src, dst);
        let payload = m.payload as usize;
        if same {
            wire.push(net.params.intranode_time(payload).as_ps());
            head_add.push(intra_ps);
            expect.push(0);
            spans.push((0, 0));
        } else if contention {
            let (off, len) = net.rt.route_span(net.rt.node_of(src), net.rt.node_of(dst));
            wire.push(net.params.wire_time(payload).as_ps());
            head_add.push(base_ps);
            expect.push(u32::from(len));
            spans.push((off, len));
            for i in off..off + u32::from(len) {
                counts[net.rt.link_at(i).0 as usize] += 1;
            }
        } else {
            wire.push(net.params.wire_time(payload).as_ps());
            head_add.push(net.params.oneway_header(net.rt.hops(src, dst)).as_ps());
            expect.push(0);
            let span = if track {
                net.rt.route_span(net.rt.node_of(src), net.rt.node_of(dst))
            } else {
                (0, 0)
            };
            spans.push(span);
        }
    }
    // Analytic-mode link accounting is a pure commutative sum, so it can run
    // right here on the serial prep pass — the workers then never touch the
    // link arrays at all in analytic mode.
    if !contention && track {
        for (m, &(off, len)) in msgs.iter().zip(&spans) {
            if len == 0 && net.rt.same_node(m.src as usize, m.dst as usize) {
                continue;
            }
            let add = net.params.hop_latency + net.params.wire_time(m.payload as usize);
            for i in off..off + u32::from(len) {
                let li = net.rt.link_at(i).0 as usize;
                net.link_util[li] += add;
                net.link_touched[li] = true;
            }
        }
    }
    // Flat per-link queues in schedule order (counting sort by link id).
    let mut qstart: Vec<u32> = Vec::new();
    let mut entries: Vec<(u32, u16)> = Vec::new();
    if contention {
        qstart = Vec::with_capacity(nlinks + 1);
        let mut acc = 0u32;
        for &c in &counts {
            qstart.push(acc);
            acc += c;
        }
        qstart.push(acc);
        entries = vec![(0u32, 0u16); acc as usize];
        let mut cursor: Vec<u32> = qstart[..nlinks].to_vec();
        for (i, &(off, len)) in spans.iter().enumerate() {
            if expect[i] == 0 {
                continue;
            }
            for pos in 0..u32::from(len) {
                let li = net.rt.link_at(off + pos).0 as usize;
                entries[cursor[li] as usize] = (i as u32, pos as u16);
                cursor[li] += 1;
            }
        }
    }
    // Shard assignment and seeded per-shard fronts.
    let mut tasks: Vec<ShardTask> = (0..workers)
        .map(|_| ShardTask {
            mine: Vec::new(),
            tx: FxMap64::new(),
            pair: FxMap64::new(),
            links: Vec::new(),
        })
        .collect();
    for (i, m) in msgs.iter().enumerate() {
        let w = (m.src as usize) % workers;
        tasks[w].mine.push(i as u32);
        if m.class == MsgClass::Ordered {
            let key = m.src as u64;
            if tasks[w].tx.get(key).is_none() {
                tasks[w]
                    .tx
                    .insert(key, net.tx_busy.get(key).unwrap_or(SimTime::ZERO));
            }
        }
        if m.class != MsgClass::Unordered {
            let key = (u64::from(m.src) << 32) | u64::from(m.dst);
            if tasks[w].pair.get(key).is_none() {
                tasks[w]
                    .pair
                    .insert(key, net.pair_last.get(key).unwrap_or(SimTime::ZERO));
            }
        }
    }
    if contention {
        for li in 0..nlinks {
            if counts[li] > 0 {
                tasks[li % workers].links.push(LinkQ {
                    li: li as u32,
                    lo: qstart[li],
                    hi: qstart[li + 1],
                    cur: qstart[li],
                    busy: net.link_busy[li].as_ps(),
                    util: 0,
                });
            }
        }
    }

    // ---- The dataflow: per-message (head, stage) atoms. -----------------
    let head: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let stage: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(STAGE_UNSET)).collect();
    let outs: Vec<ShardOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                let (head, stage) = (&head, &stage);
                let (wire, head_add, expect, entries) = (&wire, &head_add, &expect, &entries);
                scope.spawn(move || {
                    run_shard(
                        task, msgs, wire, head_add, expect, entries, head, stage, hop_ps,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // ---- Deterministic merge, ascending by key / LinkId. ----------------
    let mut tx_merge: Vec<(u64, u64)> = Vec::new();
    let mut pair_merge: Vec<(u64, u64)> = Vec::new();
    let mut link_merge: Vec<(u32, u64, u64)> = Vec::new();
    let mut last = 0u64;
    let mut bytes = 0u64;
    for out in &outs {
        tx_merge.extend_from_slice(&out.tx);
        pair_merge.extend_from_slice(&out.pair);
        link_merge.extend_from_slice(&out.links);
        last = last.max(out.last);
        bytes += out.bytes;
    }
    tx_merge.sort_unstable_by_key(|&(k, _)| k);
    pair_merge.sort_unstable_by_key(|&(k, _)| k);
    link_merge.sort_unstable_by_key(|&(li, _, _)| li);
    for (k, t) in tx_merge {
        *net.tx_busy.entry(k) = SimTime(t);
    }
    for (k, t) in pair_merge {
        *net.pair_last.entry(k) = SimTime(t);
    }
    for (li, busy, util) in link_merge {
        let li = li as usize;
        net.link_busy[li] = SimTime(busy);
        net.link_util[li] += SimDuration(util);
        net.link_touched[li] = true;
    }
    net.messages += n as u64;
    net.bytes += bytes;
    if let Some(out) = arrivals_out {
        for shard in &outs {
            for &(i, at) in &shard.arrivals {
                out[i as usize] = SimTime(at);
            }
        }
    }
    BatchOut {
        delivered: n as u64,
        last_arrival: SimTime(last),
    }
}

/// One worker: injection starts for owned sources (phase 1), grants for
/// owned links (phase 2), arrivals + pair clamps for owned sources
/// (phase 3). No barriers — the `(head, stage)` atoms are the only
/// synchronization, and the schedule order is a topological order of their
/// dependency graph, so progress is always possible somewhere.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    mut task: ShardTask,
    msgs: &[NetMsg],
    wire: &[u64],
    head_add: &[u64],
    expect: &[u32],
    entries: &[(u32, u16)],
    head: &[AtomicU64],
    stage: &[AtomicU32],
    hop_ps: u64,
) -> ShardOut {
    // Phase 1: injection-FIFO starts, in schedule order per owned source.
    for &mi in &task.mine {
        let i = mi as usize;
        let m = &msgs[i];
        let start = if m.class == MsgClass::Ordered {
            let front = task.tx.entry(m.src as u64);
            let start = m.inject.max(*front);
            *front = SimTime(start.as_ps() + wire[i]);
            start
        } else {
            m.inject
        };
        head[i].store(start.as_ps() + head_add[i], Ordering::Relaxed);
        // Publish: a stage of 0 means "head is the post-header time, no hops
        // granted yet"; messages that never enter the link dataflow
        // (intranode, analytic) have `expect == 0` and are complete at once.
        stage[i].store(0, Ordering::Release);
    }
    // Phase 2: wormhole grants for owned links, each queue in schedule
    // order, each grant gated on the message clearing its previous hop.
    let mut remaining: usize = task.links.iter().map(|q| (q.hi - q.lo) as usize).sum();
    while remaining > 0 {
        let mut progress = false;
        for q in &mut task.links {
            while q.cur < q.hi {
                let (mi, pos) = entries[q.cur as usize];
                let i = mi as usize;
                if stage[i].load(Ordering::Acquire) != u32::from(pos) {
                    break;
                }
                let t = head[i].load(Ordering::Relaxed);
                let granted = t.max(q.busy);
                let t = granted + hop_ps;
                q.busy = t + wire[i];
                q.util += hop_ps + wire[i];
                head[i].store(t, Ordering::Relaxed);
                stage[i].store(u32::from(pos) + 1, Ordering::Release);
                q.cur += 1;
                remaining -= 1;
                progress = true;
            }
        }
        if !progress {
            // Blocked on another shard's hop or phase 1 — yield, don't spin:
            // on a 1-core host the owner needs this core to make progress.
            std::thread::yield_now();
        }
    }
    // Phase 3: serialization + pair-order clamp, schedule order per source.
    let mut arrivals: Vec<(u32, u64)> = Vec::with_capacity(task.mine.len());
    let mut last = 0u64;
    let mut bytes = 0u64;
    for &mi in &task.mine {
        let i = mi as usize;
        while stage[i].load(Ordering::Acquire) != expect[i] {
            std::thread::yield_now();
        }
        let m = &msgs[i];
        let mut arrival = head[i].load(Ordering::Relaxed) + wire[i];
        if m.class != MsgClass::Unordered {
            let key = (u64::from(m.src) << 32) | u64::from(m.dst);
            let front = task.pair.entry(key);
            arrival = arrival.max(front.as_ps());
            *front = SimTime(arrival);
        }
        arrivals.push((mi, arrival));
        last = last.max(arrival);
        bytes += u64::from(m.payload);
    }
    let mut tx: Vec<(u64, u64)> = task.tx.iter().map(|(k, v)| (k, v.as_ps())).collect();
    let mut pair: Vec<(u64, u64)> = task.pair.iter().map(|(k, v)| (k, v.as_ps())).collect();
    tx.sort_unstable_by_key(|&(k, _)| k);
    pair.sort_unstable_by_key(|&(k, _)| k);
    ShardOut {
        tx,
        pair,
        links: task.links.iter().map(|q| (q.li, q.busy, q.util)).collect(),
        arrivals,
        last,
        bytes,
    }
}
