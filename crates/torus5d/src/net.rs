//! Network delivery-time computation with ordering and optional contention.
//!
//! [`NetState`] is the mutable part of the interconnect model. Given an
//! injection time it computes when a message fully arrives at its target,
//! enforcing:
//!
//! * **pairwise FIFO** for [`MsgClass::Ordered`] traffic — deterministic
//!   dimension-ordered routing delivers messages between a pair of processes
//!   in order (paper §III-A4); atomic memory operations are
//!   [`MsgClass::Unordered`] and may overtake;
//! * optional **per-link contention** — each directed link serializes the
//!   payload bytes of the messages crossing it (busy-until reservation with
//!   cut-through forwarding), exposing hot links under concurrent traffic.
//!
//! The per-message hot path is allocation-free once warm and (except for
//! the compact pair maps) hash-free: routes come from the [`RouteTable`]
//! arena as cached [`LinkId`] slices, per-link busy/occupancy state lives
//! in flat `Vec`s indexed by `LinkId` (per-*link* hardware state — O(nodes),
//! not O(ranks)), while the per-*rank* injection FIFO and the pair-ordering
//! front live in hand-rolled FxHash maps ([`crate::fxmap::FxMap64`]) so
//! ranks that never send cost zero bytes. Arrival-time arithmetic is
//! identical to the original dense implementation — simulated times are
//! bit-for-bit unchanged (pinned by the differential tests and the
//! `results/` goldens).

use std::cell::Cell;

use desim::fault::{FaultEvent, FaultPlan};
use desim::timeline::{SeriesId, SeriesKind, Timeline};
use desim::{FlightRecorder, OpId, SegCategory, SimDuration, SimRng, SimTime, TraceValue, Tracer};

use crate::cost::BgqParams;
use crate::fxmap::FxMap64;
use crate::route_table::{LinkId, RouteTable};
use crate::routing::Link;
use crate::Topology;
use desim::memprof::{self, MemTag};

/// Dense per-link/per-rank delivery state and the fault engine.
static LINKS_TAG: MemTag = MemTag::new("torus5d.links");

/// Ordering class of a message (paper §III-A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Data-bearing traffic: delivered in FIFO order per (source,
    /// destination) pair and serialized through the source NIC's injection
    /// FIFO (streams are bounded by link bandwidth).
    Ordered,
    /// Header-only control traffic (RMA requests, AM dispatch, replies):
    /// pair-ordered like data — deterministic routing cannot reorder a pair —
    /// but interleaves past bulk payloads on its own virtual channel.
    Control,
    /// Atomic memory operations: may overtake everything (paper §III-A4).
    Unordered,
}

/// Sentinel: flight-recorder id not interned yet for this link.
const NO_FLIGHT_ID: u32 = u32::MAX;

/// Outcome of a fault-aware delivery attempt ([`NetState::try_deliver_op`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message fully arrived at the destination at this time.
    Delivered(SimTime),
    /// The fault layer lost the message (physically-down link, corrupted
    /// packet, or no live route to the destination).
    Dropped {
        /// When the loss happened: the head's arrival at the failing link,
        /// or the injection time when no route existed at all.
        at: SimTime,
    },
}

/// Snapshot of the fault layer's accounting (see
/// [`NetState::fault_counters`]). All values are cumulative since
/// [`NetState::install_faults`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Total link downtime in picoseconds, summed over links (a link still
    /// down at snapshot time counts up to the snapshot instant).
    pub link_down_ps: u64,
    /// Link-down transitions applied so far.
    pub link_down_events: u64,
    /// Messages lost to a physically-down link on their (stale) route.
    pub drops_dead_link: u64,
    /// Messages lost to packet corruption.
    pub drops_corrupt: u64,
    /// Messages dropped because no live route to the destination existed.
    pub drops_unroutable: u64,
}

impl FaultCounters {
    /// Total messages lost, over all causes.
    pub fn drops(&self) -> u64 {
        self.drops_dead_link + self.drops_corrupt + self.drops_unroutable
    }
}

/// Runtime state of an installed [`FaultPlan`]: the compiled schedule cursor,
/// both liveness views, per-link corruption probabilities and the loss
/// accounting. Boxed behind an `Option` so fault-free networks pay one
/// null check per delivery and nothing else.
struct Faults {
    plan: FaultPlan,
    /// Compiled, time-sorted schedule and the replay cursor into it.
    events: Vec<(SimTime, FaultEvent)>,
    cursor: usize,
    /// Liveness epoch for the route cache: bumped on every routing-view
    /// change so cached spans re-validate lazily.
    epoch: u32,
    /// Physical link state: flips the instant a window starts/ends.
    phys_up: Vec<bool>,
    /// Routing view of link state: flips `route_update_delay` later.
    routable: Vec<bool>,
    /// Per-node hang horizon (`SimTime::ZERO` = not hung).
    hang_until: Vec<SimTime>,
    /// Per-link corruption probability; empty when the plan has none, so
    /// the common no-corruption case skips sampling entirely.
    corrupt: Vec<f64>,
    /// When each currently-down link went down (valid while `!phys_up`).
    down_since: Vec<SimTime>,
    /// Corruption sampler, derived from the plan seed — consulted once per
    /// link traversal on corruptible links, in delivery order, so the
    /// decision stream is deterministic.
    rng: SimRng,
    link_down_events: u64,
    /// Closed-window downtime; open windows are added at snapshot time.
    downtime: SimDuration,
    drops_dead_link: u64,
    drops_corrupt: u64,
    drops_unroutable: u64,
}

/// Mutable interconnect state: per-pair FIFO fronts and per-link busy times.
pub struct NetState {
    pub(crate) topo: Topology,
    pub(crate) params: BgqParams,
    pub(crate) contention: bool,
    /// Interned links, cached routes and the rank→(coord, node) table.
    pub(crate) rt: RouteTable,
    /// Pair-ordering front per `(src << 32) | dst` rank pair.
    pub(crate) pair_last: FxMap64<SimTime>,
    /// Busy-until reservation per directed link, indexed by [`LinkId`].
    pub(crate) link_busy: Vec<SimTime>,
    /// Per-rank NIC injection FIFO front, keyed by sending rank: data
    /// payloads from one rank serialize onto the wire, bounding any stream
    /// at link bandwidth. Sparse so idle ranks cost zero bytes.
    pub(crate) tx_busy: FxMap64<SimTime>,
    /// Accumulated occupancy (header + serialization) per directed link, for
    /// utilization heatmaps. Filled by the contended path always, and by the
    /// analytic path when [`NetState::set_link_tracking`] is on.
    pub(crate) link_util: Vec<SimDuration>,
    /// Which links have been touched (a touch with a zero-duration increment
    /// still counts, matching the old map-entry semantics).
    pub(crate) link_touched: Vec<bool>,
    pub(crate) track_links: bool,
    pub(crate) messages: u64,
    pub(crate) bytes: u64,
    /// Lifecycle recorder for per-operation attribution (disabled by
    /// default; shared with the owning `Sim` via [`NetState::set_flight`]).
    flight: FlightRecorder,
    /// Interned flight-recorder id per [`LinkId`], so the formatted link
    /// name is built once per link rather than once per message.
    flight_ids: Vec<u32>,
    /// Installed fault schedule and its runtime state; `None` (the default)
    /// keeps every delivery on the exact fault-free path.
    faults: Option<Box<Faults>>,
    /// Tracer for fault instants (link down/up, node hangs); `None` or a
    /// disabled tracer costs nothing.
    tracer: Option<Tracer>,
    /// Windowed-telemetry handles, populated by [`NetState::set_timeline`]
    /// only when the attached timeline is *enabled*: the disabled case is
    /// `None` and costs a single `Option` check per delivery.
    tl: Option<NetTimeline>,
}

/// Pre-interned timeline series for the network producers.
struct NetTimeline {
    tl: Timeline,
    /// `net.msgs` — messages delivered per window.
    msgs: SeriesId,
    /// `net.bytes` — payload bytes delivered per window.
    bytes: SeriesId,
    /// `net.link_busy_ps` — aggregate link occupancy (hop + serialization),
    /// spread exactly over the windows each reservation covers.
    busy: SeriesId,
    /// `net.link_wait_ps` — aggregate head-blocking wait (granted − request);
    /// the direct congestion signal.
    wait: SeriesId,
    /// `net.detours` — contended deliveries whose live route is longer than
    /// the fault-free dimension-ordered route.
    detours: SeriesId,
    /// `fault.links_down` — gauge of physically-down links.
    links_down: SeriesId,
    /// Running count mirrored into the `links_down` gauge.
    down_now: Cell<i64>,
}

impl NetState {
    /// Create network state for a topology. With `contention` enabled, link
    /// bandwidth is a shared resource; otherwise delivery times are purely
    /// analytic (LogGP).
    pub fn new(topo: Topology, params: BgqParams, contention: bool) -> NetState {
        let rt = RouteTable::new(&topo);
        let _mem = memprof::scope(&LINKS_TAG);
        let nlinks = rt.num_link_ids();
        NetState {
            topo,
            params,
            contention,
            rt,
            pair_last: FxMap64::new(),
            link_busy: vec![SimTime::ZERO; nlinks],
            tx_busy: FxMap64::new(),
            link_util: vec![SimDuration::ZERO; nlinks],
            link_touched: vec![false; nlinks],
            track_links: false,
            messages: 0,
            bytes: 0,
            flight: FlightRecorder::new(),
            flight_ids: vec![NO_FLIGHT_ID; nlinks],
            faults: None,
            tracer: None,
            tl: None,
        }
    }

    /// Install a fault schedule. From now on deliveries replay the plan's
    /// compiled events as virtual time passes, route lookups go through the
    /// liveness-aware cache, and messages crossing dead or corrupting links
    /// are lost — callers that install a non-empty plan must use
    /// [`NetState::try_deliver_op`] and handle [`Delivery::Dropped`].
    ///
    /// Fault state advances with message *injection* times, which a
    /// simulator may present slightly out of order (concurrent senders with
    /// engine lookahead); the schedule cursor is monotone, so an event
    /// applies to every delivery injected at-or-after the first delivery
    /// that observed it. This is a detection-granularity approximation, and
    /// it is deterministic.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        let _mem = memprof::scope(&LINKS_TAG);
        let nlinks = self.rt.num_link_ids();
        let nodes = self.rt.num_nodes();
        let corrupt = if plan.any_corruption() {
            (0..nlinks as u32).map(|l| plan.corruption_for(l)).collect()
        } else {
            Vec::new()
        };
        self.faults = Some(Box::new(Faults {
            events: plan.compiled(),
            cursor: 0,
            epoch: 0,
            phys_up: vec![true; nlinks],
            routable: vec![true; nlinks],
            hang_until: vec![SimTime::ZERO; nodes],
            corrupt,
            down_since: vec![SimTime::ZERO; nlinks],
            rng: SimRng::new(plan.seed()).derive(0xC0_44),
            link_down_events: 0,
            downtime: SimDuration::ZERO,
            drops_dead_link: 0,
            drops_corrupt: 0,
            drops_unroutable: 0,
            plan,
        }));
    }

    /// True when a fault plan has been installed (empty or not).
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// True when the flight recorder attached to this network is recording —
    /// one of the per-delivery observers that pins [`crate::par`] batches to
    /// the serial path (lifecycle segments are emitted in delivery order).
    pub(crate) fn flight_on(&self) -> bool {
        self.flight.on()
    }

    /// True when an enabled timeline is attached (see [`NetState::flight_on`]
    /// — same role for the windowed-telemetry observer).
    pub(crate) fn timeline_attached(&self) -> bool {
        self.tl.is_some()
    }

    /// Attach a tracer so fault transitions emit instants on a
    /// `net.faults` track (`fault.link_down`, `fault.link_up`,
    /// `fault.node_hang`).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    /// Attach a windowed-telemetry timeline. Series handles are interned
    /// eagerly; when `timeline` is disabled nothing is stored, keeping the
    /// per-delivery cost at one `Option` check (and the warm delivery path
    /// allocation-free). Call again after enabling to start recording.
    ///
    /// Series produced: `net.msgs`, `net.bytes` (per-window delivery
    /// counts), `net.link_busy_ps` (aggregate occupancy spread over the
    /// windows it covers), `net.link_wait_ps` (aggregate head-blocking
    /// wait — the congestion signal), `net.detours` (deliveries routed
    /// around faults), and the `fault.links_down` gauge.
    pub fn set_timeline(&mut self, timeline: &Timeline) {
        if !timeline.on() {
            self.tl = None;
            return;
        }
        self.tl = Some(NetTimeline {
            msgs: timeline.series("net.msgs", SeriesKind::Counter),
            bytes: timeline.series("net.bytes", SeriesKind::Counter),
            busy: timeline.series("net.link_busy_ps", SeriesKind::Counter),
            wait: timeline.series("net.link_wait_ps", SeriesKind::Counter),
            detours: timeline.series("net.detours", SeriesKind::Counter),
            links_down: timeline.series("fault.links_down", SeriesKind::Gauge),
            down_now: Cell::new(0),
            tl: timeline.clone(),
        });
    }

    /// Cumulative fault accounting, with still-open link-down windows
    /// counted up to `now`. `None` when no plan is installed or the
    /// installed plan is empty (so fault-free metric snapshots stay
    /// byte-identical).
    pub fn fault_counters(&self, now: SimTime) -> Option<FaultCounters> {
        let f = self.faults.as_deref()?;
        if f.plan.is_empty() {
            return None;
        }
        let mut down = f.downtime;
        for (li, up) in f.phys_up.iter().enumerate() {
            if !up {
                down += now.since(f.down_since[li]);
            }
        }
        Some(FaultCounters {
            link_down_ps: down.as_ps(),
            link_down_events: f.link_down_events,
            drops_dead_link: f.drops_dead_link,
            drops_corrupt: f.drops_corrupt,
            drops_unroutable: f.drops_unroutable,
        })
    }

    /// If `node` is hung at `now` (per the installed plan), the time it
    /// resumes. Advances the fault schedule to `now` first.
    pub fn hang_until(&mut self, node: u32, now: SimTime) -> Option<SimTime> {
        self.advance_faults(now);
        let f = self.faults.as_deref()?;
        let t = f.hang_until[node as usize];
        (t > now).then_some(t)
    }

    /// Replay every scheduled fault event with `at <= now`. The cursor only
    /// moves forward; see [`NetState::install_faults`] for the ordering
    /// contract.
    fn advance_faults(&mut self, now: SimTime) {
        let Some(f) = self.faults.as_deref_mut() else {
            return;
        };
        while f.cursor < f.events.len() && f.events[f.cursor].0 <= now {
            let (at, ev) = f.events[f.cursor];
            f.cursor += 1;
            match ev {
                FaultEvent::LinkDown(l) => {
                    let li = l as usize;
                    if f.phys_up[li] {
                        f.phys_up[li] = false;
                        f.down_since[li] = at;
                        f.link_down_events += 1;
                        if let Some(t) = &self.tl {
                            let n = t.down_now.get() + 1;
                            t.down_now.set(n);
                            t.tl.gauge(t.links_down, at, n);
                        }
                        if let Some(tr) = &self.tracer {
                            let track = tr.track("net.faults");
                            tr.instant(
                                track,
                                "fault.link_down",
                                at,
                                &[("link", TraceValue::U64(u64::from(l)))],
                            );
                        }
                    }
                }
                FaultEvent::LinkUp(l) => {
                    let li = l as usize;
                    if !f.phys_up[li] {
                        f.phys_up[li] = true;
                        f.downtime += at.since(f.down_since[li]);
                        if let Some(t) = &self.tl {
                            let n = t.down_now.get() - 1;
                            t.down_now.set(n);
                            t.tl.gauge(t.links_down, at, n);
                        }
                        if let Some(tr) = &self.tracer {
                            let track = tr.track("net.faults");
                            tr.instant(
                                track,
                                "fault.link_up",
                                at,
                                &[("link", TraceValue::U64(u64::from(l)))],
                            );
                        }
                    }
                }
                FaultEvent::RouteLost(l) => {
                    let li = l as usize;
                    if f.routable[li] {
                        f.routable[li] = false;
                        f.epoch += 1;
                    }
                }
                FaultEvent::RouteRestored(l) => {
                    let li = l as usize;
                    if !f.routable[li] {
                        f.routable[li] = true;
                        f.epoch += 1;
                    }
                }
                FaultEvent::NodeHang { node, until } => {
                    let n = node as usize;
                    f.hang_until[n] = f.hang_until[n].max(until);
                    if let Some(tr) = &self.tracer {
                        let track = tr.track("net.faults");
                        tr.instant(
                            track,
                            "fault.node_hang",
                            at,
                            &[
                                ("node", TraceValue::U64(u64::from(node))),
                                ("until_ps", TraceValue::U64(until.as_ps())),
                            ],
                        );
                    }
                }
            }
        }
    }

    /// Record per-link occupancy on the analytic (non-contended) path too.
    /// Costs one cached-route walk per internode message, so it is opt-in.
    pub fn set_link_tracking(&mut self, on: bool) {
        self.track_links = on;
    }

    /// Attach the simulation's shared [`FlightRecorder`] so deliveries can
    /// record per-message lifecycle segments and link occupancy. When the
    /// recorder is disabled (the default) delivery costs are unchanged.
    pub fn set_flight(&mut self, flight: FlightRecorder) {
        self.flight = flight;
        self.flight_ids.fill(NO_FLIGHT_ID);
    }

    /// Interned flight-recorder id for `link`, formatting the stable name
    /// `(a,b,c,d,e)±X` (source coordinate, direction, dimension letter) at
    /// most once per link.
    fn flight_link_id(&mut self, link: LinkId) -> u32 {
        let cached = self.flight_ids[link.0 as usize];
        if cached != NO_FLIGHT_ID {
            return cached;
        }
        let full = self.rt.link_of(link);
        let c = full.from.0;
        let dim = [b'A', b'B', b'C', b'D', b'E'][full.dim as usize] as char;
        let sign = if full.plus { '+' } else { '-' };
        let name = format!(
            "({},{},{},{},{}){}{}",
            c[0], c[1], c[2], c[3], c[4], sign, dim
        );
        let id = self.flight.link_id(&name);
        self.flight_ids[link.0 as usize] = id;
        id
    }

    /// The topology this network spans.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing acceleration table (interned links, cached routes).
    pub fn route_table(&self) -> &RouteTable {
        &self.rt
    }

    /// The cost constants in use.
    pub fn params(&self) -> &BgqParams {
        &self.params
    }

    /// Total messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes delivered so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Hop count between the nodes hosting two ranks (table lookup; same
    /// value as [`Topology::hops`]).
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.rt.hops(a, b)
    }

    /// Compute the full-arrival time at `dst` for `payload` bytes injected by
    /// `src` at `inject`, updating FIFO/contention state.
    pub fn deliver(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
    ) -> SimTime {
        self.deliver_op(inject, src, dst, payload, class, None)
    }

    /// Like [`NetState::deliver`], additionally attributing the message's
    /// lifecycle to `op` in the flight recorder: injection-FIFO wait
    /// (queueing), header flight and payload serialization (wire), per-link
    /// waits (contention, plus a [`desim::flight::LinkUse`] occupancy record)
    /// and the pair-order clamp (queueing). Timing is identical to
    /// [`NetState::deliver`]; with the recorder disabled so is the cost.
    pub fn deliver_op(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
        op: Option<OpId>,
    ) -> SimTime {
        match self.try_deliver_op(inject, src, dst, payload, class, op) {
            Delivery::Delivered(at) => at,
            Delivery::Dropped { at } => panic!(
                "message {src}->{dst} dropped by fault injection at {at}; \
                 callers that install a fault plan must use try_deliver_op"
            ),
        }
    }

    /// Fault-aware delivery: like [`NetState::deliver_op`], but a message
    /// that crosses a physically-down link, gets corrupted, or has no live
    /// route returns [`Delivery::Dropped`] instead of an arrival time. With
    /// no fault plan installed (or an empty one) the outcome is always
    /// [`Delivery::Delivered`] with arithmetic identical to
    /// [`NetState::deliver_op`].
    ///
    /// Loss semantics: the injection-FIFO reservation and any link
    /// reservations made up to the failure point **stay** (the bytes really
    /// occupied those resources), but the message/byte counters and the
    /// pair-ordering front are only updated on delivery — a retransmit of a
    /// dropped ordered message therefore still clamps behind any younger
    /// delivered message to the same pair, which is exactly the
    /// ordering-across-retry invariant the PAMI layer relies on.
    pub fn try_deliver_op(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
        op: Option<OpId>,
    ) -> Delivery {
        if self.faults.is_some() {
            self.advance_faults(inject);
        }
        let same_node = self.rt.same_node(src, dst);
        let wire = if same_node {
            self.params.intranode_time(payload)
        } else {
            self.params.wire_time(payload)
        };
        // Injection: data payloads from one rank serialize onto the wire
        // (any stream is bounded by link bandwidth). Control packets and
        // AMOs interleave on their own virtual channels and bypass the data
        // FIFO; pair ordering is enforced below regardless.
        let start = if class == MsgClass::Ordered {
            let front = self.tx_busy.entry(src as u64);
            let start = inject.max(*front);
            *front = start + wire;
            start
        } else {
            inject
        };
        if let Some(op) = op {
            self.flight
                .segment(op, SegCategory::Queueing, "net.tx_fifo", inject, start);
        }
        // Head-of-packet flight time. Intranode transfers never touch the
        // torus, so they are immune to link faults.
        let head = if same_node {
            let head = start + self.params.intranode_latency;
            if let Some(op) = op {
                self.flight
                    .segment(op, SegCategory::Wire, "net.intranode", start, head);
            }
            head
        } else if self.contention {
            match self.deliver_contended_head(start, src, dst, payload, op) {
                Ok(head) => head,
                Err(at) => return Delivery::Dropped { at },
            }
        } else if self.faults.is_some() {
            match self.analytic_head_faulty(start, src, dst, payload, op) {
                Ok(head) => head,
                Err(at) => return Delivery::Dropped { at },
            }
        } else {
            if self.track_links {
                self.account_links(src, dst, payload);
            }
            let head = start + self.params.oneway_header(self.rt.hops(src, dst));
            if let Some(op) = op {
                self.flight
                    .segment(op, SegCategory::Wire, "net.header", start, head);
            }
            head
        };
        let mut arrival = head + wire;
        if let Some(op) = op {
            self.flight
                .segment(op, SegCategory::Wire, "net.serialize", head, arrival);
        }
        if class != MsgClass::Unordered {
            // Deterministic dimension-ordered routing: everything between a
            // pair except AMOs stays in order. Single probe walk: the front
            // slot is read, clamped and written in place.
            let key = ((src as u64) << 32) | dst as u64;
            let front = self.pair_last.entry(key);
            let last = *front;
            if let (Some(op), true) = (op, last > arrival) {
                self.flight
                    .segment(op, SegCategory::Queueing, "net.pair_order", arrival, last);
            }
            arrival = arrival.max(last);
            *front = arrival;
        }
        self.messages += 1;
        self.bytes += payload as u64;
        if let Some(t) = &self.tl {
            t.tl.add(t.msgs, inject, 1);
            t.tl.add(t.bytes, inject, payload as u64);
        }
        Delivery::Delivered(arrival)
    }

    /// Cut-through wormhole model: the header reserves each link in turn
    /// (waiting for the link to drain), the payload then occupies every link
    /// on the path for its serialization time. Returns the *head* arrival
    /// time, or `Err(drop time)` when the fault layer lost the message; the
    /// caller adds the payload serialization on success.
    fn deliver_contended_head(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        op: Option<OpId>,
    ) -> Result<SimTime, SimTime> {
        let src_node = self.rt.node_of(src);
        let dst_node = self.rt.node_of(dst);
        let (off, len) = if let Some(f) = self.faults.as_deref() {
            match self
                .rt
                .route_span_live(src_node, dst_node, f.epoch, |l| f.routable[l.0 as usize])
            {
                Some(span) => span,
                None => {
                    self.faults.as_deref_mut().unwrap().drops_unroutable += 1;
                    return Err(inject);
                }
            }
        } else {
            self.rt.route_span(src_node, dst_node)
        };
        let check_faults = self.faults.is_some();
        let check_corrupt = self
            .faults
            .as_deref()
            .is_some_and(|f| !f.corrupt.is_empty());
        let wire = self.params.wire_time(payload);
        let hop = self.params.hop_latency;
        let record = self.flight.on();
        // Copy out the timeline handles (Rc bump, no allocation) so the
        // reservation loop below can mutate `link_busy` freely.
        let tlh = self.tl.as_ref().map(|t| (t.tl.clone(), t.busy, t.wait));
        if check_faults {
            if let Some(t) = &self.tl {
                // A live route longer than the fault-free dimension-ordered
                // one means the message detoured around a lost link.
                if u32::from(len) > self.rt.hops(src, dst) {
                    t.tl.add(t.detours, inject, 1);
                }
            }
        }
        let mut t = inject + self.params.base_latency;
        if let (Some(op), true) = (op, record) {
            self.flight
                .segment(op, SegCategory::Wire, "net.header", inject, t);
        }
        for i in off..off + u32::from(len) {
            let link = self.rt.link_at(i);
            let li = link.0 as usize;
            if check_faults {
                // A physically-down link on a (stale) route eats the packet
                // the moment the head reaches it; nothing gets reserved.
                let f = self.faults.as_deref_mut().unwrap();
                if !f.phys_up[li] {
                    f.drops_dead_link += 1;
                    return Err(t);
                }
            }
            let request = t;
            let granted = t.max(self.link_busy[li]);
            t = granted + hop;
            self.link_busy[li] = t + wire;
            self.link_util[li] += hop + wire;
            self.link_touched[li] = true;
            if let Some((tl, busy, wait)) = &tlh {
                tl.add_range(*busy, granted, t + wire);
                tl.add(*wait, request, granted.since(request).as_ps());
            }
            if record {
                let id = self.flight_link_id(link);
                self.flight.link_use(id, request, granted, t + wire, op);
                if let Some(op) = op {
                    self.flight.segment(
                        op,
                        SegCategory::Contention,
                        "net.link_wait",
                        request,
                        granted,
                    );
                    self.flight
                        .segment(op, SegCategory::Wire, "net.hop", granted, t);
                }
            }
            if check_corrupt {
                // The packet crossed (and occupied) the link but arrived
                // damaged: lost after the reservation, one uniform draw per
                // corruptible link traversal.
                let f = self.faults.as_deref_mut().unwrap();
                let p = f.corrupt[li];
                if p > 0.0 && f.rng.next_f64() < p {
                    f.drops_corrupt += 1;
                    return Err(t);
                }
            }
        }
        Ok(t)
    }

    /// Analytic (non-contended) head time under an installed fault plan:
    /// timing stays LogGP over the *live* route's hop count, but the walk
    /// still visits every link for physical-liveness and corruption checks
    /// (and utilization accounting when link tracking is on). With an empty
    /// plan this computes exactly the fault-free analytic head.
    fn analytic_head_faulty(
        &mut self,
        start: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        op: Option<OpId>,
    ) -> Result<SimTime, SimTime> {
        let src_node = self.rt.node_of(src);
        let dst_node = self.rt.node_of(dst);
        let f = self.faults.as_deref().unwrap();
        let Some((off, len)) = self
            .rt
            .route_span_live(src_node, dst_node, f.epoch, |l| f.routable[l.0 as usize])
        else {
            self.faults.as_deref_mut().unwrap().drops_unroutable += 1;
            return Err(start);
        };
        let check_corrupt = !f.corrupt.is_empty();
        let track = self.track_links;
        let add = self.params.hop_latency + self.params.wire_time(payload);
        for (k, i) in (off..off + u32::from(len)).enumerate() {
            let li = self.rt.link_at(i).0 as usize;
            // Head reaches link k roughly k hops into the flight.
            let at = start + self.params.oneway_header(k as u32);
            let f = self.faults.as_deref_mut().unwrap();
            if !f.phys_up[li] {
                f.drops_dead_link += 1;
                return Err(at);
            }
            if check_corrupt {
                let p = f.corrupt[li];
                if p > 0.0 && f.rng.next_f64() < p {
                    f.drops_corrupt += 1;
                    return Err(at + self.params.hop_latency);
                }
            }
            if track {
                self.link_util[li] += add;
                self.link_touched[li] = true;
            }
        }
        let head = start + self.params.oneway_header(u32::from(len));
        if let Some(op) = op {
            self.flight
                .segment(op, SegCategory::Wire, "net.header", start, head);
        }
        Ok(head)
    }

    /// Accumulate per-link occupancy for a message on the analytic path
    /// (cached-route walk for accounting only; timing stays LogGP).
    fn account_links(&mut self, src: usize, dst: usize, payload: usize) {
        let (off, len) = self
            .rt
            .route_span(self.rt.node_of(src), self.rt.node_of(dst));
        let add = self.params.hop_latency + self.params.wire_time(payload);
        for i in off..off + u32::from(len) {
            let li = self.rt.link_at(i).0 as usize;
            self.link_util[li] += add;
            self.link_touched[li] = true;
        }
    }

    /// Accumulated busy time per directed link, sorted deterministically by
    /// the full link identity (source coordinate, dimension, direction).
    /// Suitable for emitting a link-utilization heatmap.
    ///
    /// The dense per-[`LinkId`] state is already stored in that order
    /// (ascending `LinkId` equals the lexicographic [`Link`] order), so the
    /// sorted view is a single filtered pass, not a sort.
    pub fn link_utilization(&self) -> Vec<(Link, SimDuration)> {
        (0..self.link_util.len())
            .filter(|&i| self.link_touched[i])
            .map(|i| (self.rt.link_of(LinkId(i as u32)), self.link_util[i]))
            .collect()
    }

    /// Analytic reference delivery time ignoring FIFO/contention state
    /// (useful for assertions).
    pub fn analytic(&self, src: usize, dst: usize, payload: usize) -> SimDuration {
        let hops = self.rt.hops(src, dst);
        self.params.oneway(hops, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(contention: bool) -> NetState {
        NetState::new(Topology::for_procs(64, 1), BgqParams::default(), contention)
    }

    #[test]
    fn analytic_delivery_uses_hops() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let a1 = n.deliver(t0, 0, 1, 0, MsgClass::Unordered);
        let far = (0..64).max_by_key(|&r| n.topology().hops(0, r)).unwrap();
        let a2 = n.deliver(t0, 0, far, 0, MsgClass::Unordered);
        assert!(a2 > a1);
        let hops = n.topology().hops(0, far);
        assert_eq!(hops, n.hops(0, far), "table hops must match topology");
        let expect = n.params().oneway_header(hops);
        assert_eq!(a2, t0 + expect);
    }

    #[test]
    fn ordered_messages_never_overtake() {
        let mut n = net(false);
        // Big message first, then a small one: the small one must not arrive
        // earlier than the big one.
        let t0 = SimTime::ZERO;
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let small = n.deliver(t0 + SimDuration::from_ns(1), 0, 5, 8, MsgClass::Ordered);
        assert!(small >= big);
    }

    #[test]
    fn unordered_messages_may_overtake() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let amo = n.deliver(t0 + SimDuration::from_ns(1), 0, 5, 8, MsgClass::Unordered);
        assert!(amo < big, "AMO should overtake bulk transfer");
    }

    #[test]
    fn fifo_is_per_pair() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let _big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        // Different *source*: unaffected by rank 0's injection FIFO and the
        // (0,5) pair front.
        let other = n.deliver(t0 + SimDuration::from_ns(1), 1, 6, 8, MsgClass::Ordered);
        let expect = n.analytic(1, 6, 8);
        assert_eq!(other, t0 + SimDuration::from_ns(1) + expect);
        // Same source, different destination, data-class probe: waits for
        // the 1MB payload to drain off the shared injection FIFO.
        let mut n = net(false);
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let other = n.deliver(t0, 0, 6, 1 << 16, MsgClass::Ordered);
        assert!(other > t0 + n.analytic(0, 6, 1 << 16));
        assert!(other > big);
        // A control-class probe interleaves on its own virtual channel.
        let ctl = n.deliver(t0, 0, 7, 8, MsgClass::Control);
        assert_eq!(ctl, t0 + n.analytic(0, 7, 8));
    }

    #[test]
    fn injection_serializes_bulk_stream() {
        // Two 64KB messages from the same source: the second's payload waits
        // for the first to drain off the injection FIFO.
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 5, 1 << 16, MsgClass::Ordered);
        let b = n.deliver(t0, 0, 5, 1 << 16, MsgClass::Ordered);
        let wire = n.params().wire_time(1 << 16);
        assert_eq!(b - a, wire);
    }

    #[test]
    fn contention_serializes_shared_link() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        // Two messages over the same first hop at the same instant.
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        let b = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        assert!(b > a, "second message waits for the link");
        let gap = b - a;
        let wire = n.params().wire_time(1 << 16);
        assert!(gap >= wire, "gap {gap} must cover serialization {wire}");
    }

    #[test]
    fn contention_does_not_couple_disjoint_paths() {
        let topo = Topology::for_procs(64, 1);
        // Find two pairs with disjoint dimension-order routes: (0 -> +A) and
        // a pair one hop apart along E.
        let mut n = NetState::new(topo, BgqParams::default(), true);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        // node index 2,3 differ in last dim only; distinct links from (0,1).
        let b = n.deliver(t0, 2, 3, 1 << 16, MsgClass::Unordered);
        assert_eq!(a.since(t0), b.since(t0));
    }

    #[test]
    fn intranode_bypasses_torus() {
        let topo = Topology::for_procs(32, 16);
        let mut n = NetState::new(topo, BgqParams::default(), true);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 1, 4096, MsgClass::Ordered);
        let p = n.params();
        assert_eq!(a.since(t0), p.intranode_latency + p.intranode_time(4096));
    }

    #[test]
    fn link_utilization_accumulates_under_contention() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        let util = n.link_utilization();
        assert!(!util.is_empty());
        let wire = n.params().wire_time(1 << 16);
        let hop = n.params().hop_latency;
        // Both messages crossed the same single-hop route.
        let total: SimDuration = util.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, (wire + hop) * 2);
        // Deterministic ordering.
        assert_eq!(util, n.link_utilization());
    }

    #[test]
    fn link_utilization_order_matches_link_sort() {
        // The dense view must emit exactly the order the old HashMap-based
        // implementation produced: sorted by the full Link identity
        // (source coordinate, dimension, direction).
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        // Load many distinct links, in a scattered order.
        for (i, (src, dst)) in [(0usize, 63usize), (5, 40), (17, 2), (63, 0), (30, 31)]
            .iter()
            .enumerate()
        {
            n.deliver(
                t0 + SimDuration::from_ns(i as u64),
                *src,
                *dst,
                4096,
                MsgClass::Ordered,
            );
        }
        let util = n.link_utilization();
        assert!(util.len() > 4, "expected several distinct links");
        let mut sorted = util.clone();
        sorted.sort_by_key(|(l, _)| *l);
        assert_eq!(util, sorted, "emitted order must be the Link-sorted order");
    }

    #[test]
    fn link_tracking_covers_analytic_path() {
        let mut n = net(false);
        assert!(n.link_utilization().is_empty());
        n.deliver(SimTime::ZERO, 0, 1, 4096, MsgClass::Ordered);
        assert!(
            n.link_utilization().is_empty(),
            "analytic path does not account links unless tracking is on"
        );
        n.set_link_tracking(true);
        n.deliver(SimTime::ZERO, 0, 1, 4096, MsgClass::Ordered);
        let util = n.link_utilization();
        let hops = n.topology().hops(0, 1) as usize;
        assert_eq!(util.len(), hops);
    }

    #[test]
    fn deliver_op_attributes_lifecycle_segments() {
        use desim::SegCategory;
        let mut n = net(true);
        let fr = FlightRecorder::new();
        fr.enable(1 << 12);
        n.set_flight(fr.clone());
        let t0 = SimTime::ZERO;
        let op = fr.begin_op(t0, 0, "test.op").unwrap();
        // First message (unattributed) loads the link; second (attributed)
        // waits behind it.
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Ordered);
        let b = n.deliver_op(t0, 0, 1, 1 << 16, MsgClass::Ordered, Some(op));
        assert!(b > a);
        let segs = fr.segments();
        let cats: Vec<SegCategory> = segs.iter().map(|s| s.cat).collect();
        // Attributed message: tx-FIFO wait, header flight, link hop(s),
        // payload serialization; the link itself was free by grant time so
        // there may or may not be a link_wait, but the wire parts must exist.
        assert!(cats.contains(&SegCategory::Queueing), "tx fifo wait");
        assert!(cats.contains(&SegCategory::Wire));
        assert!(segs.iter().any(|s| s.label == "net.header"));
        assert!(segs.iter().any(|s| s.label == "net.serialize"));
        assert!(segs.iter().all(|s| s.op == op));
        // Both messages produced link-occupancy records; only the second is
        // attributed.
        let uses = fr.link_uses();
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].op, None);
        assert_eq!(uses[1].op, Some(op));
        assert!(uses[1].release > uses[1].grant);
        assert!(!fr.link_name(uses[1].link).is_empty());
        // Segment timing tiles the delivery exactly: the op's segments all
        // fall within [t0, b].
        assert!(segs.iter().all(|s| s.start >= t0 && s.end <= b));
    }

    #[test]
    fn deliver_op_records_pair_order_clamp() {
        let mut n = net(false);
        let fr = FlightRecorder::new();
        fr.enable(64);
        n.set_flight(fr.clone());
        let t0 = SimTime::ZERO;
        let op = fr.begin_op(t0, 0, "test.op").unwrap();
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        // Control message bypasses the tx FIFO but must not overtake the
        // pair front: the clamp shows up as a pair-order queueing segment.
        let small = n.deliver_op(t0, 0, 5, 8, MsgClass::Control, Some(op));
        assert_eq!(small, big);
        let clamp = fr
            .segments()
            .iter()
            .find(|s| s.label == "net.pair_order")
            .copied()
            .expect("pair-order clamp recorded");
        assert_eq!(clamp.cat, SegCategory::Queueing);
        assert_eq!(clamp.end, big);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net(false);
        n.deliver(SimTime::ZERO, 0, 1, 100, MsgClass::Ordered);
        n.deliver(SimTime::ZERO, 1, 2, 50, MsgClass::Ordered);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 150);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        use desim::FaultPlan;
        for contention in [false, true] {
            let mut plain = net(contention);
            let mut faulty = net(contention);
            faulty.install_faults(FaultPlan::new(7));
            let mut t = SimTime::ZERO;
            for i in 0..200usize {
                t += SimDuration::from_ns(37);
                let (src, dst) = (i % 64, (i * 13 + 1) % 64);
                if src == dst {
                    continue;
                }
                let class = match i % 3 {
                    0 => MsgClass::Ordered,
                    1 => MsgClass::Control,
                    _ => MsgClass::Unordered,
                };
                let a = plain.deliver(t, src, dst, 1 << (i % 14), class);
                let b = faulty.deliver(t, src, dst, 1 << (i % 14), class);
                assert_eq!(a, b, "message {i} diverged under an empty plan");
            }
            assert_eq!(plain.messages(), faulty.messages());
            assert_eq!(plain.bytes(), faulty.bytes());
            assert_eq!(plain.link_utilization(), faulty.link_utilization());
            assert_eq!(faulty.fault_counters(t), None, "empty plan reports nothing");
        }
    }

    #[test]
    fn dead_link_drops_then_reroutes_after_detection() {
        use desim::FaultPlan;
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        // Find the first link of 0 -> 9's route, then kill it for a window.
        let first = {
            let sn = n.rt.node_of(0);
            let dn = n.rt.node_of(9);
            let (off, len) = n.rt.route_span(sn, dn);
            assert!(len > 0);
            n.rt.link_at(off)
        };
        let down = t0 + SimDuration::from_us(100);
        let up = t0 + SimDuration::from_us(900);
        let delay = SimDuration::from_us(50);
        n.install_faults(
            FaultPlan::new(1)
                .route_update_delay(delay)
                .link_down(first.0, down, up),
        );
        // Before the window: delivered normally.
        match n.try_deliver_op(t0, 0, 9, 512, MsgClass::Ordered, None) {
            Delivery::Delivered(_) => {}
            d => panic!("pre-window delivery failed: {d:?}"),
        }
        // Inside the detection gap: stale route crosses the dead link.
        let in_gap = down + SimDuration::from_us(10);
        match n.try_deliver_op(in_gap, 0, 9, 512, MsgClass::Ordered, None) {
            Delivery::Dropped { at } => assert!(at >= in_gap),
            d => panic!("expected a drop in the detection gap, got {d:?}"),
        }
        // After detection: rerouted around the dead link, delivered.
        let after = down + delay + SimDuration::from_us(10);
        match n.try_deliver_op(after, 0, 9, 512, MsgClass::Ordered, None) {
            Delivery::Delivered(at) => assert!(at > after),
            d => panic!("expected a detour delivery, got {d:?}"),
        }
        let c = n.fault_counters(after).unwrap();
        assert_eq!(c.drops_dead_link, 1);
        assert_eq!(c.link_down_events, 1);
        assert!(c.link_down_ps > 0);
        // After recovery + detection: back on the original exact route.
        let recovered = up + delay + SimDuration::from_us(10);
        match n.try_deliver_op(recovered, 0, 9, 512, MsgClass::Ordered, None) {
            Delivery::Delivered(_) => {}
            d => panic!("post-recovery delivery failed: {d:?}"),
        }
        let c2 = n.fault_counters(recovered).unwrap();
        assert_eq!(
            c2.link_down_ps,
            up.since(down).as_ps(),
            "closed window counts exactly its length"
        );
    }

    #[test]
    fn dropped_ordered_message_does_not_let_retransmit_overtake() {
        use desim::FaultPlan;
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        let first = {
            let sn = n.rt.node_of(0);
            let dn = n.rt.node_of(9);
            let (off, _) = n.rt.route_span(sn, dn);
            n.rt.link_at(off)
        };
        let down = t0 + SimDuration::from_us(10);
        let up = t0 + SimDuration::from_us(500);
        n.install_faults(
            FaultPlan::new(1)
                .route_update_delay(SimDuration::from_us(100))
                .link_down(first.0, down, up),
        );
        // Older message A drops in the detection gap (pair front untouched).
        let a_inject = down + SimDuration::from_us(1);
        assert!(matches!(
            n.try_deliver_op(a_inject, 0, 9, 4096, MsgClass::Ordered, None),
            Delivery::Dropped { .. }
        ));
        // Younger message B goes after detection and is delivered.
        let b_inject = down + SimDuration::from_us(150);
        let b = match n.try_deliver_op(b_inject, 0, 9, 4096, MsgClass::Ordered, None) {
            Delivery::Delivered(at) => at,
            d => panic!("B should deliver: {d:?}"),
        };
        // A's retransmit fires later; the pair front clamps it behind B.
        let a_retry = b_inject + SimDuration::from_ns(1);
        let a = match n.try_deliver_op(a_retry, 0, 9, 4096, MsgClass::Ordered, None) {
            Delivery::Delivered(at) => at,
            d => panic!("A retransmit should deliver: {d:?}"),
        };
        assert!(a >= b, "retried A ({a}) must not pass younger B ({b})");
    }

    #[test]
    fn corruption_drops_are_seed_deterministic() {
        use desim::FaultPlan;
        let run = |seed: u64| {
            let mut n = net(true);
            n.install_faults(FaultPlan::new(seed).corruption(0.2));
            let mut outcomes = Vec::new();
            let mut t = SimTime::ZERO;
            for i in 0..300usize {
                t += SimDuration::from_ns(50);
                match n.try_deliver_op(t, i % 64, (i + 17) % 64, 1024, MsgClass::Ordered, None) {
                    Delivery::Delivered(at) => outcomes.push((true, at.as_ps())),
                    Delivery::Dropped { at } => outcomes.push((false, at.as_ps())),
                }
            }
            let c = n.fault_counters(t).unwrap();
            (outcomes, c.drops_corrupt)
        };
        let (o1, d1) = run(5);
        let (o2, d2) = run(5);
        assert_eq!(o1, o2, "same seed, same drop pattern");
        assert_eq!(d1, d2);
        assert!(d1 > 0, "20% corruption over 300 messages must drop some");
        assert!(o1.iter().any(|&(ok, _)| ok), "and deliver some");
        let (o3, _) = run(6);
        assert_ne!(o1, o3, "different seed, different pattern");
    }

    #[test]
    fn node_hang_is_visible_and_bounded() {
        use desim::FaultPlan;
        let mut n = net(true);
        let from = SimTime::ZERO + SimDuration::from_us(10);
        let until = SimTime::ZERO + SimDuration::from_us(60);
        n.install_faults(FaultPlan::new(3).node_hang(2, from, until));
        assert_eq!(n.hang_until(2, SimTime::ZERO), None, "not hung yet");
        assert_eq!(n.hang_until(2, from + SimDuration::from_us(1)), Some(until));
        assert_eq!(n.hang_until(3, from + SimDuration::from_us(1)), None);
        assert_eq!(n.hang_until(2, until), None, "resume is exclusive");
    }

    #[test]
    fn route_cache_warms_once_per_pair() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        n.deliver(t0, 0, 9, 64, MsgClass::Ordered);
        let cached = n.route_table().routes_cached();
        let arena = n.route_table().arena_len();
        assert!(cached >= 1);
        for i in 0..100u64 {
            n.deliver(t0 + SimDuration::from_ns(i), 0, 9, 64, MsgClass::Ordered);
        }
        assert_eq!(n.route_table().routes_cached(), cached);
        assert_eq!(n.route_table().arena_len(), arena);
    }
}
