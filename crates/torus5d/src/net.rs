//! Network delivery-time computation with ordering and optional contention.
//!
//! [`NetState`] is the mutable part of the interconnect model. Given an
//! injection time it computes when a message fully arrives at its target,
//! enforcing:
//!
//! * **pairwise FIFO** for [`MsgClass::Ordered`] traffic — deterministic
//!   dimension-ordered routing delivers messages between a pair of processes
//!   in order (paper §III-A4); atomic memory operations are
//!   [`MsgClass::Unordered`] and may overtake;
//! * optional **per-link contention** — each directed link serializes the
//!   payload bytes of the messages crossing it (busy-until reservation with
//!   cut-through forwarding), exposing hot links under concurrent traffic.
//!
//! The per-message hot path is allocation-free and (except for the compact
//! pair-ordering map) hash-free: routes come from the [`RouteTable`] arena
//! as cached [`LinkId`] slices, per-link busy/occupancy state lives in flat
//! `Vec`s indexed by `LinkId`, the injection FIFO in a `Vec` indexed by
//! rank, and the pair-ordering front in a hand-rolled FxHash map
//! ([`crate::fxmap::FxMap64`]). Arrival-time arithmetic is identical to the
//! original HashMap-based implementation — simulated times are bit-for-bit
//! unchanged (pinned by the differential tests and the `results/` goldens).

use desim::{FlightRecorder, OpId, SegCategory, SimDuration, SimTime};

use crate::cost::BgqParams;
use crate::fxmap::FxMap64;
use crate::route_table::{LinkId, RouteTable};
use crate::routing::Link;
use crate::Topology;

/// Ordering class of a message (paper §III-A4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// Data-bearing traffic: delivered in FIFO order per (source,
    /// destination) pair and serialized through the source NIC's injection
    /// FIFO (streams are bounded by link bandwidth).
    Ordered,
    /// Header-only control traffic (RMA requests, AM dispatch, replies):
    /// pair-ordered like data — deterministic routing cannot reorder a pair —
    /// but interleaves past bulk payloads on its own virtual channel.
    Control,
    /// Atomic memory operations: may overtake everything (paper §III-A4).
    Unordered,
}

/// Sentinel: flight-recorder id not interned yet for this link.
const NO_FLIGHT_ID: u32 = u32::MAX;

/// Mutable interconnect state: per-pair FIFO fronts and per-link busy times.
pub struct NetState {
    topo: Topology,
    params: BgqParams,
    contention: bool,
    /// Interned links, cached routes and the rank→(coord, node) table.
    rt: RouteTable,
    /// Pair-ordering front per `(src << 32) | dst` rank pair.
    pair_last: FxMap64<SimTime>,
    /// Busy-until reservation per directed link, indexed by [`LinkId`].
    link_busy: Vec<SimTime>,
    /// Per-rank NIC injection FIFO: data payloads from one rank serialize
    /// onto the wire, bounding any stream at link bandwidth.
    tx_busy: Vec<SimTime>,
    /// Accumulated occupancy (header + serialization) per directed link, for
    /// utilization heatmaps. Filled by the contended path always, and by the
    /// analytic path when [`NetState::set_link_tracking`] is on.
    link_util: Vec<SimDuration>,
    /// Which links have been touched (a touch with a zero-duration increment
    /// still counts, matching the old map-entry semantics).
    link_touched: Vec<bool>,
    track_links: bool,
    messages: u64,
    bytes: u64,
    /// Lifecycle recorder for per-operation attribution (disabled by
    /// default; shared with the owning `Sim` via [`NetState::set_flight`]).
    flight: FlightRecorder,
    /// Interned flight-recorder id per [`LinkId`], so the formatted link
    /// name is built once per link rather than once per message.
    flight_ids: Vec<u32>,
}

impl NetState {
    /// Create network state for a topology. With `contention` enabled, link
    /// bandwidth is a shared resource; otherwise delivery times are purely
    /// analytic (LogGP).
    pub fn new(topo: Topology, params: BgqParams, contention: bool) -> NetState {
        let rt = RouteTable::new(&topo);
        let nlinks = rt.num_link_ids();
        let capacity = rt.capacity();
        NetState {
            topo,
            params,
            contention,
            rt,
            pair_last: FxMap64::new(),
            link_busy: vec![SimTime::ZERO; nlinks],
            tx_busy: vec![SimTime::ZERO; capacity],
            link_util: vec![SimDuration::ZERO; nlinks],
            link_touched: vec![false; nlinks],
            track_links: false,
            messages: 0,
            bytes: 0,
            flight: FlightRecorder::new(),
            flight_ids: vec![NO_FLIGHT_ID; nlinks],
        }
    }

    /// Record per-link occupancy on the analytic (non-contended) path too.
    /// Costs one cached-route walk per internode message, so it is opt-in.
    pub fn set_link_tracking(&mut self, on: bool) {
        self.track_links = on;
    }

    /// Attach the simulation's shared [`FlightRecorder`] so deliveries can
    /// record per-message lifecycle segments and link occupancy. When the
    /// recorder is disabled (the default) delivery costs are unchanged.
    pub fn set_flight(&mut self, flight: FlightRecorder) {
        self.flight = flight;
        self.flight_ids.fill(NO_FLIGHT_ID);
    }

    /// Interned flight-recorder id for `link`, formatting the stable name
    /// `(a,b,c,d,e)±X` (source coordinate, direction, dimension letter) at
    /// most once per link.
    fn flight_link_id(&mut self, link: LinkId) -> u32 {
        let cached = self.flight_ids[link.0 as usize];
        if cached != NO_FLIGHT_ID {
            return cached;
        }
        let full = self.rt.link_of(link);
        let c = full.from.0;
        let dim = [b'A', b'B', b'C', b'D', b'E'][full.dim as usize] as char;
        let sign = if full.plus { '+' } else { '-' };
        let name = format!(
            "({},{},{},{},{}){}{}",
            c[0], c[1], c[2], c[3], c[4], sign, dim
        );
        let id = self.flight.link_id(&name);
        self.flight_ids[link.0 as usize] = id;
        id
    }

    /// The topology this network spans.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing acceleration table (interned links, cached routes).
    pub fn route_table(&self) -> &RouteTable {
        &self.rt
    }

    /// The cost constants in use.
    pub fn params(&self) -> &BgqParams {
        &self.params
    }

    /// Total messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes delivered so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Hop count between the nodes hosting two ranks (table lookup; same
    /// value as [`Topology::hops`]).
    #[inline]
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        self.rt.hops(a, b)
    }

    /// Compute the full-arrival time at `dst` for `payload` bytes injected by
    /// `src` at `inject`, updating FIFO/contention state.
    pub fn deliver(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
    ) -> SimTime {
        self.deliver_op(inject, src, dst, payload, class, None)
    }

    /// Like [`NetState::deliver`], additionally attributing the message's
    /// lifecycle to `op` in the flight recorder: injection-FIFO wait
    /// (queueing), header flight and payload serialization (wire), per-link
    /// waits (contention, plus a [`desim::flight::LinkUse`] occupancy record)
    /// and the pair-order clamp (queueing). Timing is identical to
    /// [`NetState::deliver`]; with the recorder disabled so is the cost.
    pub fn deliver_op(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
        op: Option<OpId>,
    ) -> SimTime {
        self.messages += 1;
        self.bytes += payload as u64;
        let same_node = self.rt.same_node(src, dst);
        let wire = if same_node {
            self.params.intranode_time(payload)
        } else {
            self.params.wire_time(payload)
        };
        // Injection: data payloads from one rank serialize onto the wire
        // (any stream is bounded by link bandwidth). Control packets and
        // AMOs interleave on their own virtual channels and bypass the data
        // FIFO; pair ordering is enforced below regardless.
        let start = if class == MsgClass::Ordered {
            let start = inject.max(self.tx_busy[src]);
            self.tx_busy[src] = start + wire;
            start
        } else {
            inject
        };
        if let Some(op) = op {
            self.flight
                .segment(op, SegCategory::Queueing, "net.tx_fifo", inject, start);
        }
        // Head-of-packet flight time.
        let head = if same_node {
            let head = start + self.params.intranode_latency;
            if let Some(op) = op {
                self.flight
                    .segment(op, SegCategory::Wire, "net.intranode", start, head);
            }
            head
        } else if self.contention {
            self.deliver_contended_head(start, src, dst, payload, op)
        } else {
            if self.track_links {
                self.account_links(src, dst, payload);
            }
            let head = start + self.params.oneway_header(self.rt.hops(src, dst));
            if let Some(op) = op {
                self.flight
                    .segment(op, SegCategory::Wire, "net.header", start, head);
            }
            head
        };
        let mut arrival = head + wire;
        if let Some(op) = op {
            self.flight
                .segment(op, SegCategory::Wire, "net.serialize", head, arrival);
        }
        if class != MsgClass::Unordered {
            // Deterministic dimension-ordered routing: everything between a
            // pair except AMOs stays in order. Single probe walk: the front
            // slot is read, clamped and written in place.
            let key = ((src as u64) << 32) | dst as u64;
            let front = self.pair_last.entry(key);
            let last = *front;
            if let (Some(op), true) = (op, last > arrival) {
                self.flight
                    .segment(op, SegCategory::Queueing, "net.pair_order", arrival, last);
            }
            arrival = arrival.max(last);
            *front = arrival;
        }
        arrival
    }

    /// Cut-through wormhole model: the header reserves each link in turn
    /// (waiting for the link to drain), the payload then occupies every link
    /// on the path for its serialization time. Returns the *head* arrival
    /// time; the caller adds the payload serialization.
    fn deliver_contended_head(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        op: Option<OpId>,
    ) -> SimTime {
        let (off, len) = self
            .rt
            .route_span(self.rt.node_of(src), self.rt.node_of(dst));
        let wire = self.params.wire_time(payload);
        let hop = self.params.hop_latency;
        let record = self.flight.on();
        let mut t = inject + self.params.base_latency;
        if let (Some(op), true) = (op, record) {
            self.flight
                .segment(op, SegCategory::Wire, "net.header", inject, t);
        }
        for i in off..off + u32::from(len) {
            let link = self.rt.link_at(i);
            let li = link.0 as usize;
            let request = t;
            let granted = t.max(self.link_busy[li]);
            t = granted + hop;
            self.link_busy[li] = t + wire;
            self.link_util[li] += hop + wire;
            self.link_touched[li] = true;
            if record {
                let id = self.flight_link_id(link);
                self.flight.link_use(id, request, granted, t + wire, op);
                if let Some(op) = op {
                    self.flight.segment(
                        op,
                        SegCategory::Contention,
                        "net.link_wait",
                        request,
                        granted,
                    );
                    self.flight
                        .segment(op, SegCategory::Wire, "net.hop", granted, t);
                }
            }
        }
        t
    }

    /// Accumulate per-link occupancy for a message on the analytic path
    /// (cached-route walk for accounting only; timing stays LogGP).
    fn account_links(&mut self, src: usize, dst: usize, payload: usize) {
        let (off, len) = self
            .rt
            .route_span(self.rt.node_of(src), self.rt.node_of(dst));
        let add = self.params.hop_latency + self.params.wire_time(payload);
        for i in off..off + u32::from(len) {
            let li = self.rt.link_at(i).0 as usize;
            self.link_util[li] += add;
            self.link_touched[li] = true;
        }
    }

    /// Accumulated busy time per directed link, sorted deterministically by
    /// the full link identity (source coordinate, dimension, direction).
    /// Suitable for emitting a link-utilization heatmap.
    ///
    /// The dense per-[`LinkId`] state is already stored in that order
    /// (ascending `LinkId` equals the lexicographic [`Link`] order), so the
    /// sorted view is a single filtered pass, not a sort.
    pub fn link_utilization(&self) -> Vec<(Link, SimDuration)> {
        (0..self.link_util.len())
            .filter(|&i| self.link_touched[i])
            .map(|i| (self.rt.link_of(LinkId(i as u32)), self.link_util[i]))
            .collect()
    }

    /// Analytic reference delivery time ignoring FIFO/contention state
    /// (useful for assertions).
    pub fn analytic(&self, src: usize, dst: usize, payload: usize) -> SimDuration {
        let hops = self.rt.hops(src, dst);
        self.params.oneway(hops, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(contention: bool) -> NetState {
        NetState::new(Topology::for_procs(64, 1), BgqParams::default(), contention)
    }

    #[test]
    fn analytic_delivery_uses_hops() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let a1 = n.deliver(t0, 0, 1, 0, MsgClass::Unordered);
        let far = (0..64).max_by_key(|&r| n.topology().hops(0, r)).unwrap();
        let a2 = n.deliver(t0, 0, far, 0, MsgClass::Unordered);
        assert!(a2 > a1);
        let hops = n.topology().hops(0, far);
        assert_eq!(hops, n.hops(0, far), "table hops must match topology");
        let expect = n.params().oneway_header(hops);
        assert_eq!(a2, t0 + expect);
    }

    #[test]
    fn ordered_messages_never_overtake() {
        let mut n = net(false);
        // Big message first, then a small one: the small one must not arrive
        // earlier than the big one.
        let t0 = SimTime::ZERO;
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let small = n.deliver(t0 + SimDuration::from_ns(1), 0, 5, 8, MsgClass::Ordered);
        assert!(small >= big);
    }

    #[test]
    fn unordered_messages_may_overtake() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let amo = n.deliver(t0 + SimDuration::from_ns(1), 0, 5, 8, MsgClass::Unordered);
        assert!(amo < big, "AMO should overtake bulk transfer");
    }

    #[test]
    fn fifo_is_per_pair() {
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let _big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        // Different *source*: unaffected by rank 0's injection FIFO and the
        // (0,5) pair front.
        let other = n.deliver(t0 + SimDuration::from_ns(1), 1, 6, 8, MsgClass::Ordered);
        let expect = n.analytic(1, 6, 8);
        assert_eq!(other, t0 + SimDuration::from_ns(1) + expect);
        // Same source, different destination, data-class probe: waits for
        // the 1MB payload to drain off the shared injection FIFO.
        let mut n = net(false);
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        let other = n.deliver(t0, 0, 6, 1 << 16, MsgClass::Ordered);
        assert!(other > t0 + n.analytic(0, 6, 1 << 16));
        assert!(other > big);
        // A control-class probe interleaves on its own virtual channel.
        let ctl = n.deliver(t0, 0, 7, 8, MsgClass::Control);
        assert_eq!(ctl, t0 + n.analytic(0, 7, 8));
    }

    #[test]
    fn injection_serializes_bulk_stream() {
        // Two 64KB messages from the same source: the second's payload waits
        // for the first to drain off the injection FIFO.
        let mut n = net(false);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 5, 1 << 16, MsgClass::Ordered);
        let b = n.deliver(t0, 0, 5, 1 << 16, MsgClass::Ordered);
        let wire = n.params().wire_time(1 << 16);
        assert_eq!(b - a, wire);
    }

    #[test]
    fn contention_serializes_shared_link() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        // Two messages over the same first hop at the same instant.
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        let b = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        assert!(b > a, "second message waits for the link");
        let gap = b - a;
        let wire = n.params().wire_time(1 << 16);
        assert!(gap >= wire, "gap {gap} must cover serialization {wire}");
    }

    #[test]
    fn contention_does_not_couple_disjoint_paths() {
        let topo = Topology::for_procs(64, 1);
        // Find two pairs with disjoint dimension-order routes: (0 -> +A) and
        // a pair one hop apart along E.
        let mut n = NetState::new(topo, BgqParams::default(), true);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        // node index 2,3 differ in last dim only; distinct links from (0,1).
        let b = n.deliver(t0, 2, 3, 1 << 16, MsgClass::Unordered);
        assert_eq!(a.since(t0), b.since(t0));
    }

    #[test]
    fn intranode_bypasses_torus() {
        let topo = Topology::for_procs(32, 16);
        let mut n = NetState::new(topo, BgqParams::default(), true);
        let t0 = SimTime::ZERO;
        let a = n.deliver(t0, 0, 1, 4096, MsgClass::Ordered);
        let p = n.params();
        assert_eq!(a.since(t0), p.intranode_latency + p.intranode_time(4096));
    }

    #[test]
    fn link_utilization_accumulates_under_contention() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        n.deliver(t0, 0, 1, 1 << 16, MsgClass::Unordered);
        let util = n.link_utilization();
        assert!(!util.is_empty());
        let wire = n.params().wire_time(1 << 16);
        let hop = n.params().hop_latency;
        // Both messages crossed the same single-hop route.
        let total: SimDuration = util.iter().map(|(_, d)| *d).sum();
        assert_eq!(total, (wire + hop) * 2);
        // Deterministic ordering.
        assert_eq!(util, n.link_utilization());
    }

    #[test]
    fn link_utilization_order_matches_link_sort() {
        // The dense view must emit exactly the order the old HashMap-based
        // implementation produced: sorted by the full Link identity
        // (source coordinate, dimension, direction).
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        // Load many distinct links, in a scattered order.
        for (i, (src, dst)) in [(0usize, 63usize), (5, 40), (17, 2), (63, 0), (30, 31)]
            .iter()
            .enumerate()
        {
            n.deliver(
                t0 + SimDuration::from_ns(i as u64),
                *src,
                *dst,
                4096,
                MsgClass::Ordered,
            );
        }
        let util = n.link_utilization();
        assert!(util.len() > 4, "expected several distinct links");
        let mut sorted = util.clone();
        sorted.sort_by_key(|(l, _)| *l);
        assert_eq!(util, sorted, "emitted order must be the Link-sorted order");
    }

    #[test]
    fn link_tracking_covers_analytic_path() {
        let mut n = net(false);
        assert!(n.link_utilization().is_empty());
        n.deliver(SimTime::ZERO, 0, 1, 4096, MsgClass::Ordered);
        assert!(
            n.link_utilization().is_empty(),
            "analytic path does not account links unless tracking is on"
        );
        n.set_link_tracking(true);
        n.deliver(SimTime::ZERO, 0, 1, 4096, MsgClass::Ordered);
        let util = n.link_utilization();
        let hops = n.topology().hops(0, 1) as usize;
        assert_eq!(util.len(), hops);
    }

    #[test]
    fn deliver_op_attributes_lifecycle_segments() {
        use desim::SegCategory;
        let mut n = net(true);
        let fr = FlightRecorder::new();
        fr.enable(1 << 12);
        n.set_flight(fr.clone());
        let t0 = SimTime::ZERO;
        let op = fr.begin_op(t0, 0, "test.op").unwrap();
        // First message (unattributed) loads the link; second (attributed)
        // waits behind it.
        let a = n.deliver(t0, 0, 1, 1 << 16, MsgClass::Ordered);
        let b = n.deliver_op(t0, 0, 1, 1 << 16, MsgClass::Ordered, Some(op));
        assert!(b > a);
        let segs = fr.segments();
        let cats: Vec<SegCategory> = segs.iter().map(|s| s.cat).collect();
        // Attributed message: tx-FIFO wait, header flight, link hop(s),
        // payload serialization; the link itself was free by grant time so
        // there may or may not be a link_wait, but the wire parts must exist.
        assert!(cats.contains(&SegCategory::Queueing), "tx fifo wait");
        assert!(cats.contains(&SegCategory::Wire));
        assert!(segs.iter().any(|s| s.label == "net.header"));
        assert!(segs.iter().any(|s| s.label == "net.serialize"));
        assert!(segs.iter().all(|s| s.op == op));
        // Both messages produced link-occupancy records; only the second is
        // attributed.
        let uses = fr.link_uses();
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].op, None);
        assert_eq!(uses[1].op, Some(op));
        assert!(uses[1].release > uses[1].grant);
        assert!(!fr.link_name(uses[1].link).is_empty());
        // Segment timing tiles the delivery exactly: the op's segments all
        // fall within [t0, b].
        assert!(segs.iter().all(|s| s.start >= t0 && s.end <= b));
    }

    #[test]
    fn deliver_op_records_pair_order_clamp() {
        let mut n = net(false);
        let fr = FlightRecorder::new();
        fr.enable(64);
        n.set_flight(fr.clone());
        let t0 = SimTime::ZERO;
        let op = fr.begin_op(t0, 0, "test.op").unwrap();
        let big = n.deliver(t0, 0, 5, 1 << 20, MsgClass::Ordered);
        // Control message bypasses the tx FIFO but must not overtake the
        // pair front: the clamp shows up as a pair-order queueing segment.
        let small = n.deliver_op(t0, 0, 5, 8, MsgClass::Control, Some(op));
        assert_eq!(small, big);
        let clamp = fr
            .segments()
            .iter()
            .find(|s| s.label == "net.pair_order")
            .copied()
            .expect("pair-order clamp recorded");
        assert_eq!(clamp.cat, SegCategory::Queueing);
        assert_eq!(clamp.end, big);
    }

    #[test]
    fn counters_accumulate() {
        let mut n = net(false);
        n.deliver(SimTime::ZERO, 0, 1, 100, MsgClass::Ordered);
        n.deliver(SimTime::ZERO, 1, 2, 50, MsgClass::Ordered);
        assert_eq!(n.messages(), 2);
        assert_eq!(n.bytes(), 150);
    }

    #[test]
    fn route_cache_warms_once_per_pair() {
        let mut n = net(true);
        let t0 = SimTime::ZERO;
        n.deliver(t0, 0, 9, 64, MsgClass::Ordered);
        let cached = n.route_table().routes_cached();
        let arena = n.route_table().arena_len();
        assert!(cached >= 1);
        for i in 0..100u64 {
            n.deliver(t0 + SimDuration::from_ns(i), 0, 9, 64, MsgClass::Ordered);
        }
        assert_eq!(n.route_table().routes_cached(), cached);
        assert_eq!(n.route_table().arena_len(), arena);
    }
}
