//! Process→torus mappings.
//!
//! A mapping is a permutation of the six placement dimensions
//! `A B C D E T` (T = processor slot within a node). The **rightmost**
//! letter varies fastest as the rank increases, matching the `BG_MAPPING`
//! convention on Blue Gene/Q. The paper's evaluation uses `ABCDET`: ranks
//! fill a node's 16 slots first, then walk E, then D, and so on.

use crate::coords::Coord;
use crate::shape::TorusShape;
use std::fmt;
use std::str::FromStr;

/// One of the six placement dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Torus dimension A.
    A,
    /// Torus dimension B.
    B,
    /// Torus dimension C.
    C,
    /// Torus dimension D.
    D,
    /// Torus dimension E.
    E,
    /// Processor slot within a node.
    T,
}

impl Axis {
    fn from_char(c: char) -> Option<Axis> {
        Some(match c.to_ascii_uppercase() {
            'A' => Axis::A,
            'B' => Axis::B,
            'C' => Axis::C,
            'D' => Axis::D,
            'E' => Axis::E,
            'T' => Axis::T,
            _ => return None,
        })
    }

    fn as_char(self) -> char {
        match self {
            Axis::A => 'A',
            Axis::B => 'B',
            Axis::C => 'C',
            Axis::D => 'D',
            Axis::E => 'E',
            Axis::T => 'T',
        }
    }
}

/// A rank→(coordinate, slot) mapping: a permutation of `A B C D E T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    order: [Axis; 6],
}

/// Error returned when parsing an invalid mapping string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingParseError(pub String);

impl fmt::Display for MappingParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid mapping string: {}", self.0)
    }
}

impl std::error::Error for MappingParseError {}

impl Mapping {
    /// The default BG/Q mapping `ABCDET` used throughout the paper.
    pub fn abcdet() -> Mapping {
        Mapping {
            order: [Axis::A, Axis::B, Axis::C, Axis::D, Axis::E, Axis::T],
        }
    }

    /// `TABCDE`: spread consecutive ranks across nodes first.
    pub fn tabcde() -> Mapping {
        Mapping {
            order: [Axis::T, Axis::A, Axis::B, Axis::C, Axis::D, Axis::E],
        }
    }

    /// The permutation, slowest-varying axis first.
    pub fn order(&self) -> &[Axis; 6] {
        &self.order
    }

    fn axis_size(axis: Axis, shape: &TorusShape, procs_per_node: usize) -> usize {
        match axis {
            Axis::A => shape.dim(0) as usize,
            Axis::B => shape.dim(1) as usize,
            Axis::C => shape.dim(2) as usize,
            Axis::D => shape.dim(3) as usize,
            Axis::E => shape.dim(4) as usize,
            Axis::T => procs_per_node,
        }
    }

    /// Map a rank to its node coordinate and on-node slot.
    ///
    /// The rightmost axis in the permutation varies fastest.
    pub fn rank_to_coord(
        &self,
        rank: usize,
        shape: &TorusShape,
        procs_per_node: usize,
    ) -> (Coord, usize) {
        let capacity = shape.num_nodes() * procs_per_node;
        assert!(rank < capacity, "rank {rank} out of range ({capacity})");
        let mut digits = [0usize; 6];
        let mut rest = rank;
        for (i, &axis) in self.order.iter().enumerate().rev() {
            let size = Self::axis_size(axis, shape, procs_per_node);
            digits[i] = rest % size;
            rest /= size;
        }
        let mut coord = [0u16; 5];
        let mut slot = 0usize;
        for (i, &axis) in self.order.iter().enumerate() {
            match axis {
                Axis::A => coord[0] = digits[i] as u16,
                Axis::B => coord[1] = digits[i] as u16,
                Axis::C => coord[2] = digits[i] as u16,
                Axis::D => coord[3] = digits[i] as u16,
                Axis::E => coord[4] = digits[i] as u16,
                Axis::T => slot = digits[i],
            }
        }
        (Coord(coord), slot)
    }

    /// Inverse of [`Mapping::rank_to_coord`].
    pub fn coord_to_rank(
        &self,
        coord: Coord,
        slot: usize,
        shape: &TorusShape,
        procs_per_node: usize,
    ) -> usize {
        let mut rank = 0usize;
        for &axis in self.order.iter() {
            let size = Self::axis_size(axis, shape, procs_per_node);
            let digit = match axis {
                Axis::A => coord.get(0) as usize,
                Axis::B => coord.get(1) as usize,
                Axis::C => coord.get(2) as usize,
                Axis::D => coord.get(3) as usize,
                Axis::E => coord.get(4) as usize,
                Axis::T => slot,
            };
            debug_assert!(digit < size);
            rank = rank * size + digit;
        }
        rank
    }
}

impl FromStr for Mapping {
    type Err = MappingParseError;

    fn from_str(s: &str) -> Result<Mapping, MappingParseError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != 6 {
            return Err(MappingParseError(s.to_string()));
        }
        let mut order = [Axis::A; 6];
        let mut seen = [false; 6];
        for (i, &c) in chars.iter().enumerate() {
            let axis = Axis::from_char(c).ok_or_else(|| MappingParseError(s.to_string()))?;
            let idx = axis as usize;
            if seen[idx] {
                return Err(MappingParseError(s.to_string()));
            }
            seen[idx] = true;
            order[i] = axis;
        }
        Ok(Mapping { order })
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for axis in self.order {
            write!(f, "{}", axis.as_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abcdet_fills_node_first() {
        let shape = TorusShape::for_nodes(128);
        let m = Mapping::abcdet();
        for r in 0..16 {
            let (c, slot) = m.rank_to_coord(r, &shape, 16);
            assert_eq!(c, Coord::ORIGIN);
            assert_eq!(slot, r);
        }
        let (c, slot) = m.rank_to_coord(16, &shape, 16);
        assert_eq!(c, Coord([0, 0, 0, 0, 1])); // E varies next-fastest
        assert_eq!(slot, 0);
    }

    #[test]
    fn tabcde_spreads_across_nodes() {
        let shape = TorusShape::for_nodes(4);
        let m = Mapping::tabcde();
        // With T slowest, consecutive ranks land on different nodes.
        let (c0, _) = m.rank_to_coord(0, &shape, 2);
        let (c1, _) = m.rank_to_coord(1, &shape, 2);
        assert_ne!(c0, c1);
    }

    #[test]
    fn round_trip_bijection_abcdet() {
        let shape = TorusShape::for_nodes(64);
        let m = Mapping::abcdet();
        let c = 4;
        for rank in 0..shape.num_nodes() * c {
            let (coord, slot) = m.rank_to_coord(rank, &shape, c);
            assert_eq!(m.coord_to_rank(coord, slot, &shape, c), rank);
        }
    }

    #[test]
    fn parse_and_display() {
        let m: Mapping = "ABCDET".parse().unwrap();
        assert_eq!(m, Mapping::abcdet());
        assert_eq!(m.to_string(), "ABCDET");
        let m2: Mapping = "tabcde".parse().unwrap();
        assert_eq!(m2, Mapping::tabcde());
        assert!("ABCDEE".parse::<Mapping>().is_err());
        assert!("ABCDE".parse::<Mapping>().is_err());
        assert!("ABCDEX".parse::<Mapping>().is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let shape = TorusShape::for_nodes(2);
        Mapping::abcdet().rank_to_coord(64, &shape, 16);
    }
}
