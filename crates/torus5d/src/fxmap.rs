//! A minimal open-addressing hash map with an FxHash-style multiplicative
//! hash, for hot-path state keyed by small integers.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 — DoS-resistant but
//! ~10× more expensive than needed for trusted `u64` keys like packed
//! `(src, dst)` rank pairs. [`FxMap64`] trades that robustness for a single
//! multiply per probe: linear probing over a power-of-two table, no
//! deletion (the network state only ever monotonically adds pairs), and
//! amortized O(1) insertion with zero allocations between growths.

use desim::memprof::{self, MemTag};

/// The Firefox hash multiplier (`π`-derived odd constant used by rustc's
/// FxHasher).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxMap slot tables (only ever allocated in [`FxMap64::grow`], so the
/// probe/insert hot path carries no profiler cost at all).
static FXMAP_TAG: MemTag = MemTag::new("torus5d.fxmap");

/// Sentinel for an empty slot. `u64::MAX` cannot be a packed rank pair
/// (ranks are `u32` values, and `u32::MAX` ranks do not exist).
const EMPTY: u64 = u64::MAX;

#[inline]
fn spread(k: u64) -> u64 {
    let h = k.wrapping_mul(FX_SEED);
    h ^ (h >> 32)
}

/// Open-addressing map from `u64` keys to `Copy` values.
///
/// Keys must never equal `u64::MAX` (reserved as the empty-slot sentinel).
/// Keys and values are stored interleaved so a random lookup touches a
/// single cache line, not one per array.
#[derive(Debug, Clone)]
pub struct FxMap64<V> {
    slots: Vec<(u64, V)>,
    len: usize,
}

impl<V: Copy + Default> Default for FxMap64<V> {
    fn default() -> Self {
        FxMap64::new()
    }
}

impl<V: Copy + Default> FxMap64<V> {
    /// An empty map. No allocation happens until the first insert.
    pub fn new() -> FxMap64<V> {
        FxMap64 {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX keys are reserved");
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = spread(key) as usize & mask;
        loop {
            let (k, v) = self.slots[i];
            if k == key {
                return Some(v);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert or overwrite `key`.
    #[inline]
    pub fn insert(&mut self, key: u64, val: V) {
        *self.entry(key) = val;
    }

    /// Mutable access to the value for `key`, inserting `V::default()` if
    /// absent — one probe walk for a read-modify-write instead of a `get`
    /// followed by an `insert`. Allocates only when a *new* key pushes the
    /// table past 7/8 load; hits on existing keys are allocation-free.
    #[inline]
    pub fn entry(&mut self, key: u64) -> &mut V {
        debug_assert_ne!(key, EMPTY, "u64::MAX keys are reserved");
        if self.slots.is_empty() {
            self.grow();
        }
        loop {
            let mask = self.slots.len() - 1;
            let mut i = spread(key) as usize & mask;
            let slot = loop {
                let k = self.slots[i].0;
                if k == key || k == EMPTY {
                    break i;
                }
                i = (i + 1) & mask;
            };
            if self.slots[slot].0 == key {
                return &mut self.slots[slot].1;
            }
            // New key: grow at 7/8 load (and re-probe) so chains stay short.
            if (self.len + 1) * 8 > self.slots.len() * 7 {
                self.grow();
                continue;
            }
            self.slots[slot].0 = key;
            self.len += 1;
            return &mut self.slots[slot].1;
        }
    }

    /// Iterate over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.slots
            .iter()
            .filter(|(k, _)| *k != EMPTY)
            .map(|&(k, v)| (k, v))
    }

    fn grow(&mut self) {
        let _mem = memprof::scope(&FXMAP_TAG);
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(EMPTY, V::default()); cap]);
        let mask = cap - 1;
        for (k, v) in old {
            if k == EMPTY {
                continue;
            }
            let mut i = spread(k) as usize & mask;
            while self.slots[i].0 != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = (k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m: FxMap64<u64> = FxMap64::new();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
        m.insert(7, 70);
        m.insert(8, 80);
        assert_eq!(m.get(7), Some(70));
        assert_eq!(m.get(8), Some(80));
        m.insert(7, 71);
        assert_eq!(m.get(7), Some(71));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn survives_growth_and_collisions() {
        let mut m: FxMap64<u64> = FxMap64::new();
        // Keys chosen to collide in small tables: same low bits after spread
        // are likely somewhere within 10k sequential and strided keys.
        for i in 0..10_000u64 {
            m.insert(i * 0x1_0000_0001, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i * 0x1_0000_0001), Some(i), "key {i}");
        }
        assert_eq!(m.get(0xdead_beef_dead_beef), None);
    }

    #[test]
    fn matches_std_hashmap_on_random_ops() {
        use std::collections::HashMap;
        let mut m: FxMap64<u64> = FxMap64::new();
        let mut r: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random op stream (no external RNG dep here).
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 4096; // force overwrites
            let val = x >> 16;
            m.insert(key, val);
            r.insert(key, val);
        }
        assert_eq!(m.len(), r.len());
        for (k, v) in r {
            assert_eq!(m.get(k), Some(v));
        }
        let mut pairs: Vec<(u64, u64)> = m.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs.len(), m.len());
    }

    #[test]
    fn iter_skips_empty_slots() {
        let mut m: FxMap64<u32> = FxMap64::new();
        m.insert(1, 10);
        m.insert(2, 20);
        let mut got: Vec<(u64, u32)> = m.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(1, 10), (2, 20)]);
    }
}
