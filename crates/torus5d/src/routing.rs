//! Deterministic dimension-ordered routing.
//!
//! Blue Gene/Q's software interfaces (at the time of the paper) enabled
//! deterministic dimension-order routing only; this is what guarantees PAMI's
//! pairwise message ordering. A route visits dimensions A→B→C→D→E, taking the
//! shorter wrap direction in each (ties resolve to the positive direction).

use crate::coords::{wrap_delta, Coord};
use crate::shape::TorusShape;

/// A directed physical link: from node `from`, along `dim`, in `dir`
/// (+1 or −1). Used as the contention-tracking key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Source node of the link.
    pub from: Coord,
    /// Dimension the link travels along (0=A … 4=E).
    pub dim: u8,
    /// Direction: `true` = increasing coordinate.
    pub plus: bool,
}

/// Compute the dimension-ordered route between two nodes as the sequence of
/// links traversed. An empty route means the nodes are identical.
pub fn route(shape: &TorusShape, src: Coord, dst: Coord) -> Vec<Link> {
    let mut links = Vec::new();
    route_with(shape, src, dst, |l| links.push(l));
    links
}

/// Walk the dimension-ordered route from `src` to `dst`, invoking `visit`
/// for every link in traversal order without materializing a `Vec`. This is
/// the single source of truth for routing; [`route`] and the cached
/// [`crate::route_table::RouteTable`] arena are both built on it.
pub fn route_with<F: FnMut(Link)>(shape: &TorusShape, src: Coord, dst: Coord, mut visit: F) {
    let mut cur = src;
    for dim in 0..5u8 {
        let size = shape.dim(dim as usize);
        let delta = wrap_delta(cur.get(dim as usize), dst.get(dim as usize), size);
        let plus = delta >= 0;
        for _ in 0..delta.unsigned_abs() {
            visit(Link {
                from: cur,
                dim,
                plus,
            });
            let c = cur.get(dim as usize);
            let next = if plus {
                (c + 1) % size
            } else {
                (c + size - 1) % size
            };
            cur = cur.with(dim as usize, next);
        }
    }
    debug_assert_eq!(cur, dst, "route must terminate at destination");
}

/// Hop count of the dimension-ordered route (equals the torus distance,
/// since dimension-order routing is minimal).
pub fn hops(shape: &TorusShape, src: Coord, dst: Coord) -> u32 {
    shape.torus_distance(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_equals_distance() {
        let s = TorusShape::for_nodes(128);
        let a = s.node_coord(0);
        for i in 0..s.num_nodes() {
            let b = s.node_coord(i);
            assert_eq!(route(&s, a, b).len() as u32, s.torus_distance(a, b));
        }
    }

    #[test]
    fn route_visits_dimensions_in_order() {
        let s = TorusShape::new([4, 4, 4, 4, 2]);
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([2, 1, 0, 3, 1]));
        let dims: Vec<u8> = r.iter().map(|l| l.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted, "dimension order violated: {dims:?}");
    }

    #[test]
    fn route_to_self_is_empty() {
        let s = TorusShape::for_nodes(32);
        let c = s.node_coord(7);
        assert!(route(&s, c, c).is_empty());
    }

    #[test]
    fn route_takes_shorter_wrap_direction() {
        let s = TorusShape::new([8, 1, 1, 1, 1]);
        // 0 -> 6 should go backwards (2 hops) not forwards (6 hops).
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([6, 0, 0, 0, 0]));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|l| !l.plus));
        // Tie (0 -> 4 in size 8) resolves to positive.
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([4, 0, 0, 0, 0]));
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|l| l.plus));
    }

    #[test]
    fn route_is_deterministic() {
        let s = TorusShape::for_nodes(64);
        let a = s.node_coord(3);
        let b = s.node_coord(49);
        assert_eq!(route(&s, a, b), route(&s, a, b));
    }

    #[test]
    fn consecutive_links_are_connected() {
        let s = TorusShape::for_nodes(128);
        let a = s.node_coord(0);
        let b = s.node_coord(101);
        let r = route(&s, a, b);
        let mut cur = a;
        for link in &r {
            assert_eq!(link.from, cur);
            let size = s.dim(link.dim as usize);
            let c = cur.get(link.dim as usize);
            let next = if link.plus {
                (c + 1) % size
            } else {
                (c + size - 1) % size
            };
            cur = cur.with(link.dim as usize, next);
        }
        assert_eq!(cur, b);
    }
}
