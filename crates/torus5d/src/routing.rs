//! Deterministic dimension-ordered routing.
//!
//! Blue Gene/Q's software interfaces (at the time of the paper) enabled
//! deterministic dimension-order routing only; this is what guarantees PAMI's
//! pairwise message ordering. A route visits dimensions A→B→C→D→E, taking the
//! shorter wrap direction in each (ties resolve to the positive direction).

use crate::coords::{wrap_delta, Coord};
use crate::shape::TorusShape;

/// A directed physical link: from node `from`, along `dim`, in `dir`
/// (+1 or −1). Used as the contention-tracking key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    /// Source node of the link.
    pub from: Coord,
    /// Dimension the link travels along (0=A … 4=E).
    pub dim: u8,
    /// Direction: `true` = increasing coordinate.
    pub plus: bool,
}

/// Compute the dimension-ordered route between two nodes as the sequence of
/// links traversed. An empty route means the nodes are identical.
pub fn route(shape: &TorusShape, src: Coord, dst: Coord) -> Vec<Link> {
    let mut links = Vec::new();
    route_with(shape, src, dst, |l| links.push(l));
    links
}

/// Walk the dimension-ordered route from `src` to `dst`, invoking `visit`
/// for every link in traversal order without materializing a `Vec`. This is
/// the single source of truth for routing; [`route`] and the cached
/// [`crate::route_table::RouteTable`] arena are both built on it.
pub fn route_with<F: FnMut(Link)>(shape: &TorusShape, src: Coord, dst: Coord, mut visit: F) {
    let mut cur = src;
    for dim in 0..5u8 {
        let size = shape.dim(dim as usize);
        let delta = wrap_delta(cur.get(dim as usize), dst.get(dim as usize), size);
        let plus = delta >= 0;
        for _ in 0..delta.unsigned_abs() {
            visit(Link {
                from: cur,
                dim,
                plus,
            });
            let c = cur.get(dim as usize);
            let next = if plus {
                (c + 1) % size
            } else {
                (c + size - 1) % size
            };
            cur = cur.with(dim as usize, next);
        }
    }
    debug_assert_eq!(cur, dst, "route must terminate at destination");
}

/// Hop count of the dimension-ordered route (equals the torus distance,
/// since dimension-order routing is minimal).
pub fn hops(shape: &TorusShape, src: Coord, dst: Coord) -> u32 {
    shape.torus_distance(src, dst)
}

/// Walk a route from `src` to `dst` that avoids links for which `live`
/// returns `false`, detouring through the next available dimension when the
/// preferred link is dead. Returns `None` when no route was found within the
/// hop budget (destination unreachable, or cut off by the dead set).
///
/// The walker is greedy and deterministic: at every node it considers, in
/// order, (1) each dimension still needing correction (A→E), preferred wrap
/// direction first then the long way around, and (2) pure detour moves
/// through already-correct dimensions (plus then minus), and takes the first
/// live candidate — refusing to immediately re-traverse the link it just
/// arrived on unless that is the only live option. **With every link live
/// the first candidate always wins, so the result is exactly the
/// dimension-ordered [`route_with`] walk** — the property the route cache
/// relies on to re-validate cached spans instead of duplicating them.
pub fn route_avoiding<F: Fn(Link) -> bool>(
    shape: &TorusShape,
    src: Coord,
    dst: Coord,
    live: F,
) -> Option<Vec<Link>> {
    let mut links = Vec::new();
    let mut cur = src;
    // A detouring walk can legitimately exceed the torus distance, but any
    // sensible route fits in a few ring circumferences; past that we are
    // ping-ponging inside a cut-off region.
    let circumference: usize = (0..5).map(|d| shape.dim(d) as usize).sum();
    let budget = 4 * circumference + 8;
    let mut prev: Option<Link> = None;
    while cur != dst {
        if links.len() >= budget {
            return None;
        }
        // The link that would undo the previous hop: same dimension,
        // opposite direction, starting where we stand now.
        let reverse = prev.map(|p| Link {
            from: cur,
            dim: p.dim,
            plus: !p.plus,
        });
        let mut chosen: Option<Link> = None;
        let mut fallback: Option<Link> = None; // the reverse link, last resort
        let consider = |cand: Link, chosen: &mut Option<Link>, fallback: &mut Option<Link>| {
            if chosen.is_some() || !live(cand) {
                return;
            }
            if Some(cand) == reverse {
                fallback.get_or_insert(cand);
            } else {
                *chosen = Some(cand);
            }
        };
        for dim in 0..5u8 {
            let size = shape.dim(dim as usize);
            let delta = wrap_delta(cur.get(dim as usize), dst.get(dim as usize), size);
            if delta == 0 {
                continue;
            }
            let preferred = delta >= 0;
            for plus in [preferred, !preferred] {
                consider(
                    Link {
                        from: cur,
                        dim,
                        plus,
                    },
                    &mut chosen,
                    &mut fallback,
                );
            }
        }
        if chosen.is_none() {
            // Every productive link is dead: detour through a dimension that
            // is already correct (it will need correcting back afterwards).
            for dim in 0..5u8 {
                let size = shape.dim(dim as usize);
                if size < 2 || wrap_delta(cur.get(dim as usize), dst.get(dim as usize), size) != 0 {
                    continue;
                }
                for plus in [true, false] {
                    consider(
                        Link {
                            from: cur,
                            dim,
                            plus,
                        },
                        &mut chosen,
                        &mut fallback,
                    );
                }
            }
        }
        let step = chosen.or(fallback)?;
        links.push(step);
        let size = shape.dim(step.dim as usize);
        let c = cur.get(step.dim as usize);
        let next = if step.plus {
            (c + 1) % size
        } else {
            (c + size - 1) % size
        };
        cur = cur.with(step.dim as usize, next);
        prev = Some(step);
    }
    Some(links)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_length_equals_distance() {
        let s = TorusShape::for_nodes(128);
        let a = s.node_coord(0);
        for i in 0..s.num_nodes() {
            let b = s.node_coord(i);
            assert_eq!(route(&s, a, b).len() as u32, s.torus_distance(a, b));
        }
    }

    #[test]
    fn route_visits_dimensions_in_order() {
        let s = TorusShape::new([4, 4, 4, 4, 2]);
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([2, 1, 0, 3, 1]));
        let dims: Vec<u8> = r.iter().map(|l| l.dim).collect();
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        assert_eq!(dims, sorted, "dimension order violated: {dims:?}");
    }

    #[test]
    fn route_to_self_is_empty() {
        let s = TorusShape::for_nodes(32);
        let c = s.node_coord(7);
        assert!(route(&s, c, c).is_empty());
    }

    #[test]
    fn route_takes_shorter_wrap_direction() {
        let s = TorusShape::new([8, 1, 1, 1, 1]);
        // 0 -> 6 should go backwards (2 hops) not forwards (6 hops).
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([6, 0, 0, 0, 0]));
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|l| !l.plus));
        // Tie (0 -> 4 in size 8) resolves to positive.
        let r = route(&s, Coord([0, 0, 0, 0, 0]), Coord([4, 0, 0, 0, 0]));
        assert_eq!(r.len(), 4);
        assert!(r.iter().all(|l| l.plus));
    }

    #[test]
    fn route_is_deterministic() {
        let s = TorusShape::for_nodes(64);
        let a = s.node_coord(3);
        let b = s.node_coord(49);
        assert_eq!(route(&s, a, b), route(&s, a, b));
    }

    #[test]
    fn route_avoiding_with_all_live_equals_dimension_order() {
        let s = TorusShape::for_nodes(128);
        for (a, b) in [(0, 101), (3, 3), (7, 120), (64, 1)] {
            let src = s.node_coord(a);
            let dst = s.node_coord(b);
            assert_eq!(
                route_avoiding(&s, src, dst, |_| true).unwrap(),
                route(&s, src, dst),
                "{a}->{b}"
            );
        }
    }

    #[test]
    fn route_avoiding_detours_around_a_dead_link() {
        let s = TorusShape::for_nodes(128);
        let src = s.node_coord(0);
        let dst = s.node_coord(101);
        let normal = route(&s, src, dst);
        let dead = normal[0];
        let detour = route_avoiding(&s, src, dst, |l| l != dead).unwrap();
        assert!(!detour.contains(&dead), "detour reuses the dead link");
        // The detour is still a valid connected walk ending at dst.
        let mut cur = src;
        for link in &detour {
            assert_eq!(link.from, cur);
            let size = s.dim(link.dim as usize);
            let c = cur.get(link.dim as usize);
            cur = cur.with(
                link.dim as usize,
                if link.plus {
                    (c + 1) % size
                } else {
                    (c + size - 1) % size
                },
            );
        }
        assert_eq!(cur, dst);
    }

    #[test]
    fn route_avoiding_two_node_ring_uses_the_other_direction() {
        // Size-2 dimension: the plus and minus links between the two nodes
        // are physically distinct; killing one must fail over to the other.
        let s = TorusShape::new([2, 1, 1, 1, 1]);
        let a = Coord([0, 0, 0, 0, 0]);
        let b = Coord([1, 0, 0, 0, 0]);
        let preferred = route(&s, a, b)[0];
        let detour = route_avoiding(&s, a, b, |l| l != preferred).unwrap();
        assert_eq!(detour.len(), 1);
        assert_eq!(detour[0].dim, preferred.dim);
        assert_ne!(detour[0].plus, preferred.plus);
    }

    #[test]
    fn route_avoiding_reports_unreachable() {
        // Kill every link out of the source: nothing can leave.
        let s = TorusShape::for_nodes(32);
        let src = s.node_coord(0);
        let dst = s.node_coord(5);
        assert_eq!(route_avoiding(&s, src, dst, |l| l.from != src), None);
        // Self-route needs no links at all.
        assert_eq!(route_avoiding(&s, src, src, |_| false), Some(Vec::new()));
    }

    #[test]
    fn consecutive_links_are_connected() {
        let s = TorusShape::for_nodes(128);
        let a = s.node_coord(0);
        let b = s.node_coord(101);
        let r = route(&s, a, b);
        let mut cur = a;
        for link in &r {
            assert_eq!(link.from, cur);
            let size = s.dim(link.dim as usize);
            let c = cur.get(link.dim as usize);
            let next = if link.plus {
                (c + 1) % size
            } else {
                (c + size - 1) % size
            };
            cur = cur.with(link.dim as usize, next);
        }
        assert_eq!(cur, b);
    }
}
