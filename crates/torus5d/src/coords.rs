//! 5D torus coordinates.

use std::fmt;

/// Names of the five torus dimensions, in BG/Q order.
pub const DIM_NAMES: [char; 5] = ['A', 'B', 'C', 'D', 'E'];

/// A node coordinate in the 5D torus: `(a, b, c, d, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Coord(pub [u16; 5]);

impl Coord {
    /// The origin `(0,0,0,0,0)`.
    pub const ORIGIN: Coord = Coord([0; 5]);

    /// Coordinate along dimension `dim` (0=A … 4=E).
    #[inline]
    pub fn get(&self, dim: usize) -> u16 {
        self.0[dim]
    }

    /// Replace the coordinate along `dim`.
    #[inline]
    pub fn with(mut self, dim: usize, v: u16) -> Coord {
        self.0[dim] = v;
        self
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{},{},{},{})",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }
}

/// Signed hop count along a single wrapped dimension of size `size`:
/// magnitude is the shortest distance; sign is the travel direction
/// (+1 = increasing coordinate). Ties (exactly half-way) resolve to `+`,
/// matching deterministic dimension-ordered routing.
pub fn wrap_delta(from: u16, to: u16, size: u16) -> i32 {
    debug_assert!(from < size && to < size);
    if size <= 1 {
        return 0;
    }
    let fwd = ((to as i32 - from as i32).rem_euclid(size as i32)) as u16; // hops going +
    let bwd = size - fwd; // hops going - (when fwd != 0)
    if fwd == 0 {
        0
    } else if fwd <= bwd {
        fwd as i32
    } else {
        -(bwd as i32)
    }
}

/// Shortest wrapped distance along one dimension.
pub fn wrap_distance(from: u16, to: u16, size: u16) -> u32 {
    wrap_delta(from, to, size).unsigned_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_delta_basic() {
        assert_eq!(wrap_delta(0, 1, 4), 1);
        assert_eq!(wrap_delta(1, 0, 4), -1);
        assert_eq!(wrap_delta(0, 3, 4), -1); // shorter going backwards
        assert_eq!(wrap_delta(3, 0, 4), 1);
        assert_eq!(wrap_delta(0, 2, 4), 2); // tie -> positive
        assert_eq!(wrap_delta(2, 0, 4), 2); // tie -> positive
        assert_eq!(wrap_delta(1, 1, 4), 0);
    }

    #[test]
    fn wrap_delta_degenerate_dims() {
        assert_eq!(wrap_delta(0, 0, 1), 0);
        assert_eq!(wrap_delta(0, 1, 2), 1);
        assert_eq!(wrap_delta(1, 0, 2), 1); // tie in size-2 -> positive
    }

    #[test]
    fn wrap_distance_symmetric() {
        for size in [2u16, 3, 4, 5, 8] {
            for a in 0..size {
                for b in 0..size {
                    assert_eq!(
                        wrap_distance(a, b, size),
                        wrap_distance(b, a, size),
                        "size={size} a={a} b={b}"
                    );
                    assert!(wrap_distance(a, b, size) <= u32::from(size) / 2);
                }
            }
        }
    }

    #[test]
    fn coord_accessors() {
        let c = Coord([1, 2, 3, 4, 1]);
        assert_eq!(c.get(2), 3);
        assert_eq!(c.with(2, 9).get(2), 9);
        assert_eq!(format!("{c}"), "(1,2,3,4,1)");
    }
}
