#![warn(missing_docs)]
//! # torus5d — Blue Gene/Q interconnect model
//!
//! Faithful model of the Blue Gene/Q 5D torus used by the PGAS communication
//! subsystem reproduction:
//!
//! * [`shape::TorusShape`] — 5D torus dimensions (A, B, C, D, E), including
//!   the standard BG/Q partition shapes (e.g. 128 nodes = 2×2×4×4×2, the
//!   shape in the paper's Eq. 10).
//! * [`coords::Coord`] — node coordinates with wrap-around distance.
//! * [`mapping::Mapping`] — process→torus mapping; `ABCDET` (the paper's
//!   mapping, rightmost letter varies fastest) plus the other permutations.
//! * [`routing`] — deterministic dimension-ordered routing, as enabled by
//!   default on BG/Q (the property that gives PAMI its pairwise ordering).
//! * [`cost::BgqParams`] — LogGP-style cost constants calibrated against the
//!   paper's Table II and §IV-B microbenchmarks (35 ns/hop, 1.8 GB/s
//!   available link bandwidth, 2.89 µs adjacent-node get, …).
//! * [`route_table::RouteTable`] — interned dense [`route_table::LinkId`]s,
//!   a lazily cached route arena and a precomputed rank table, so delivery
//!   is allocation- and hash-free on the hot path.
//! * [`net::NetState`] — per-(src,dst) FIFO tracking for ordered delivery and
//!   optional per-link contention (busy-until reservation).

pub mod coords;
pub mod cost;
pub mod fxmap;
pub mod mapping;
pub mod net;
pub mod par;
pub mod route_table;
pub mod routing;
pub mod shape;

pub use coords::Coord;
pub use cost::BgqParams;
pub use mapping::Mapping;
pub use net::{Delivery, FaultCounters, MsgClass, NetState};
pub use par::{deliver_batch, deliver_batch_arrivals, BatchOut, NetMsg};
pub use route_table::{LinkId, RouteTable};
pub use routing::Link;
pub use shape::TorusShape;

/// A fully specified simulated partition: torus shape, processes/node and
/// the process→coordinate mapping.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Torus dimensions.
    pub shape: TorusShape,
    /// Processes per node (`c` in the paper, 1–16 on BG/Q).
    pub procs_per_node: usize,
    /// Process→coordinate mapping (default `ABCDET`).
    pub mapping: Mapping,
}

impl Topology {
    /// Topology for `nprocs` processes with `procs_per_node` ranks per node,
    /// using the standard BG/Q partition shape for the node count and the
    /// `ABCDET` mapping.
    pub fn for_procs(nprocs: usize, procs_per_node: usize) -> Topology {
        assert!(nprocs > 0 && procs_per_node > 0);
        let nodes = nprocs.div_ceil(procs_per_node);
        Topology {
            shape: TorusShape::for_nodes(nodes),
            procs_per_node,
            mapping: Mapping::abcdet(),
        }
    }

    /// Total process slots in the partition.
    pub fn capacity(&self) -> usize {
        self.shape.num_nodes() * self.procs_per_node
    }

    /// Torus coordinate of the node hosting `rank`.
    pub fn coord_of(&self, rank: usize) -> Coord {
        self.mapping
            .rank_to_coord(rank, &self.shape, self.procs_per_node)
            .0
    }

    /// Hop count between the nodes hosting the two ranks (0 if co-located).
    pub fn hops(&self, a: usize, b: usize) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        self.shape.torus_distance(ca, cb)
    }

    /// True when both ranks live on the same node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.coord_of(a) == self.coord_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_for_procs_paper_example() {
        // Paper §IV-B1: 2048 processes, 16/node -> 128 nodes = 2*2*4*4*2.
        let t = Topology::for_procs(2048, 16);
        assert_eq!(t.shape.num_nodes(), 128);
        assert_eq!(t.shape.dims(), [2, 2, 4, 4, 2]);
        assert_eq!(t.capacity(), 2048);
    }

    #[test]
    fn adjacent_ranks_same_node_under_abcdet() {
        let t = Topology::for_procs(32, 16);
        // With ABCDET the T coordinate varies fastest: ranks 0..16 share node.
        assert!(t.same_node(0, 15));
        assert!(!t.same_node(0, 16));
        assert_eq!(t.hops(0, 16), 1);
    }

    #[test]
    fn capacity_round_up() {
        let t = Topology::for_procs(17, 16);
        assert_eq!(t.shape.num_nodes(), 2);
        assert_eq!(t.capacity(), 32);
    }
}
