//! Property test: [`torus5d::fxmap::FxMap64`] behaves exactly like
//! `std::collections::HashMap` under seeded pseudo-random op streams.
//!
//! The map backs the network's per-pair ordering state, so a silent probe
//! or growth bug would corrupt delivery ordering without failing any direct
//! assertion. This drives both maps through the same operations — inserts,
//! overwrites, `entry`-style read-modify-writes and negative lookups —
//! across several seeds and key distributions (uniform, collision-heavy
//! strides, dense packed rank pairs) and demands identical observable state
//! after every phase.

use std::collections::HashMap;

use desim::SimRng;
use torus5d::fxmap::FxMap64;

/// Drive `ops` random operations from `rng` over keys drawn by `key_of`,
/// mirroring every mutation into a std HashMap, then check full agreement.
fn check_against_std(mut rng: SimRng, ops: usize, key_of: impl Fn(u64) -> u64) {
    let mut fx: FxMap64<u64> = FxMap64::new();
    let mut std_map: HashMap<u64, u64> = HashMap::new();
    for _ in 0..ops {
        let key = key_of(rng.next_below(1 << 40));
        match rng.next_below(4) {
            // insert / overwrite
            0 | 1 => {
                let val = rng.next_below(u64::MAX / 2);
                fx.insert(key, val);
                std_map.insert(key, val);
            }
            // entry read-modify-write (inserts default 0 when absent)
            2 => {
                *fx.entry(key) += 3;
                *std_map.entry(key).or_insert(0) += 3;
            }
            // lookup must agree mid-stream too
            _ => {
                assert_eq!(fx.get(key), std_map.get(&key).copied(), "key {key:#x}");
            }
        }
        assert_eq!(fx.len(), std_map.len());
    }
    // Full agreement both directions: every std entry is in fx...
    for (&k, &v) in &std_map {
        assert_eq!(fx.get(k), Some(v), "std key {k:#x} missing/wrong in fx");
    }
    // ...and fx's iterator yields exactly the std pairs, no phantoms.
    let mut fx_pairs: Vec<(u64, u64)> = fx.iter().collect();
    fx_pairs.sort_unstable();
    let mut std_pairs: Vec<(u64, u64)> = std_map.into_iter().collect();
    std_pairs.sort_unstable();
    assert_eq!(fx_pairs, std_pairs);
}

#[test]
fn uniform_keys_match_std() {
    let root = SimRng::new(0xF0CA_CC1A);
    for seed in 0..4 {
        check_against_std(root.derive(seed), 20_000, |k| k);
    }
}

#[test]
fn collision_heavy_strided_keys_match_std() {
    // Multiplying by a power of two throws away the hash's low entropy:
    // after the Fx multiply these cluster hard in small tables, forcing
    // long linear-probe chains and growth re-probes.
    let root = SimRng::new(0xC011_1DE5);
    for (seed, shift) in [(0u64, 16u32), (1, 24), (2, 33)] {
        check_against_std(root.derive(seed), 15_000, move |k| (k & 0xFF) << shift);
    }
}

#[test]
fn packed_rank_pairs_match_std() {
    // The production key shape: (src << 32) | dst for ranks < 4096 — dense
    // small values in both halves, like the per-pair ordering table sees.
    let root = SimRng::new(0x5EED_0A12);
    check_against_std(root.derive(0), 30_000, |k| {
        let src = k & 0xFFF;
        let dst = (k >> 12) & 0xFFF;
        (src << 32) | dst
    });
}

#[test]
fn growth_preserves_everything_under_sequential_load() {
    // Worst case for growth: monotone keys inserted once each, spanning
    // several doublings, verified exhaustively afterwards.
    let mut fx: FxMap64<u64> = FxMap64::new();
    let mut rng = SimRng::new(0x0061_2011);
    let n = 40_000u64;
    for i in 0..n {
        fx.insert(i, i.wrapping_mul(0x9E37_79B9));
        if rng.next_below(64) == 0 {
            // Spot-check an already-inserted key mid-growth.
            let probe = rng.next_below(i + 1);
            assert_eq!(fx.get(probe), Some(probe.wrapping_mul(0x9E37_79B9)));
        }
    }
    assert_eq!(fx.len(), n as usize);
    for i in 0..n {
        assert_eq!(fx.get(i), Some(i.wrapping_mul(0x9E37_79B9)), "key {i}");
    }
    assert_eq!(fx.get(n), None);
}
