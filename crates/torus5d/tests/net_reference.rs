//! Differential test: the dense, arena-backed `NetState` must produce
//! *bit-identical* arrival times and link-utilization views to the original
//! HashMap-based implementation, reproduced here as a reference model.
//!
//! The reference deliberately mirrors the old code's arithmetic (max/add
//! ordering, `unwrap_or(ZERO)` defaults, `entry().or_default()` inserts) so
//! any divergence in the rework shows up as a failed equality, not a tolerance
//! breach.

use std::collections::HashMap;

use desim::{SimDuration, SimRng, SimTime};
use torus5d::routing::route;
use torus5d::{BgqParams, Link, MsgClass, NetState, Topology};

/// The pre-rework `NetState` delivery logic, verbatim modulo flight
/// recording (both sides run with the recorder disabled).
struct RefNet {
    topo: Topology,
    params: BgqParams,
    contention: bool,
    track_links: bool,
    pair_last: HashMap<(u32, u32), SimTime>,
    link_busy: HashMap<Link, SimTime>,
    tx_busy: HashMap<u32, SimTime>,
    link_util: HashMap<Link, SimDuration>,
}

impl RefNet {
    fn new(topo: Topology, params: BgqParams, contention: bool, track_links: bool) -> RefNet {
        RefNet {
            topo,
            params,
            contention,
            track_links,
            pair_last: HashMap::new(),
            link_busy: HashMap::new(),
            tx_busy: HashMap::new(),
            link_util: HashMap::new(),
        }
    }

    fn deliver(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
        class: MsgClass,
    ) -> SimTime {
        let same_node = self.topo.same_node(src, dst);
        let wire = if same_node {
            self.params.intranode_time(payload)
        } else {
            self.params.wire_time(payload)
        };
        let start = if class == MsgClass::Ordered {
            let busy = self
                .tx_busy
                .get(&(src as u32))
                .copied()
                .unwrap_or(SimTime::ZERO);
            let start = inject.max(busy);
            self.tx_busy.insert(src as u32, start + wire);
            start
        } else {
            inject
        };
        let head = if same_node {
            start + self.params.intranode_latency
        } else if self.contention {
            self.contended_head(start, src, dst, payload)
        } else {
            if self.track_links {
                self.account_links(src, dst, payload);
            }
            start + self.params.oneway_header(self.topo.hops(src, dst))
        };
        let mut arrival = head + wire;
        if class != MsgClass::Unordered {
            let key = (src as u32, dst as u32);
            let last = self.pair_last.get(&key).copied().unwrap_or(SimTime::ZERO);
            arrival = arrival.max(last);
            self.pair_last.insert(key, arrival);
        }
        arrival
    }

    fn contended_head(
        &mut self,
        inject: SimTime,
        src: usize,
        dst: usize,
        payload: usize,
    ) -> SimTime {
        let links = route(
            &self.topo.shape,
            self.topo.coord_of(src),
            self.topo.coord_of(dst),
        );
        let wire = self.params.wire_time(payload);
        let hop = self.params.hop_latency;
        let mut t = inject + self.params.base_latency;
        for link in links {
            let busy = self.link_busy.get(&link).copied().unwrap_or(SimTime::ZERO);
            let granted = t.max(busy);
            t = granted + hop;
            self.link_busy.insert(link, t + wire);
            *self.link_util.entry(link).or_default() += hop + wire;
        }
        t
    }

    fn account_links(&mut self, src: usize, dst: usize, payload: usize) {
        let links = route(
            &self.topo.shape,
            self.topo.coord_of(src),
            self.topo.coord_of(dst),
        );
        let add = self.params.hop_latency + self.params.wire_time(payload);
        for link in links {
            *self.link_util.entry(link).or_default() += add;
        }
    }

    fn link_utilization(&self) -> Vec<(Link, SimDuration)> {
        let mut v: Vec<(Link, SimDuration)> =
            self.link_util.iter().map(|(l, d)| (*l, *d)).collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }
}

/// Run a randomized schedule through both implementations and require exact
/// agreement on every arrival time and the final utilization view.
fn differential(procs: usize, ppn: usize, contention: bool, track: bool, seed: u64, msgs: usize) {
    let topo = Topology::for_procs(procs, ppn);
    let mut new = NetState::new(topo.clone(), BgqParams::default(), contention);
    new.set_link_tracking(track);
    let mut old = RefNet::new(topo, BgqParams::default(), contention, track);
    let mut rng = SimRng::new(seed);
    let mut inject = SimTime::ZERO;
    let cap = (procs) as u64;
    for i in 0..msgs {
        let src = rng.next_below(cap) as usize;
        let mut dst = rng.next_below(cap) as usize;
        if dst == src {
            dst = (dst + 1) % procs;
        }
        let payload = 1usize << rng.next_below(16); // 1 B .. 32 KB
        let class = match rng.next_below(4) {
            0 => MsgClass::Unordered,
            1 => MsgClass::Control,
            _ => MsgClass::Ordered,
        };
        inject += SimDuration::from_ns(rng.next_below(500));
        let a_new = new.deliver(inject, src, dst, payload, class);
        let a_old = old.deliver(inject, src, dst, payload, class);
        assert_eq!(
            a_new, a_old,
            "msg {i}: {src}->{dst} {payload}B {class:?} at {inject}"
        );
    }
    assert_eq!(
        new.link_utilization(),
        old.link_utilization(),
        "link utilization view diverged (procs={procs} ppn={ppn} \
         contention={contention} track={track})"
    );
}

#[test]
fn contended_delivery_matches_reference() {
    differential(256, 16, true, false, 0xD1FF_0001, 20_000);
}

#[test]
fn analytic_delivery_matches_reference() {
    differential(256, 16, false, false, 0xD1FF_0002, 20_000);
}

#[test]
fn tracked_analytic_delivery_matches_reference() {
    differential(128, 16, false, true, 0xD1FF_0003, 10_000);
}

#[test]
fn single_rank_per_node_matches_reference() {
    differential(64, 1, true, false, 0xD1FF_0004, 10_000);
}

#[test]
fn intranode_heavy_schedule_matches_reference() {
    // Few nodes, many ranks per node: most traffic is intranode, stressing
    // the same-node and tx-FIFO paths.
    differential(32, 16, true, false, 0xD1FF_0005, 10_000);
}
