//! Property tests for `RouteTable`: cached routes must be *identical* to
//! freshly computed `route()` output, and `LinkId` interning must be a
//! bijection — across randomized shapes and rank pairs (seeded `SimRng`, so
//! failures reproduce deterministically; no external property-test dep).

use desim::SimRng;
use torus5d::routing::route;
use torus5d::{Coord, LinkId, Mapping, RouteTable, Topology, TorusShape};

/// Random shapes mixing the standard partition tables with hand-picked
/// degenerate ones (size-1 dims, even dims with wrap ties, long thin dims).
fn random_shapes(rng: &mut SimRng) -> Vec<TorusShape> {
    let mut shapes = vec![
        TorusShape::new([1, 1, 1, 1, 1]),
        TorusShape::new([8, 1, 1, 1, 1]),  // wrap both directions
        TorusShape::new([4, 4, 4, 4, 2]),  // all-even: every tie case
        TorusShape::new([2, 3, 5, 2, 2]),  // odd dims: no ties
        TorusShape::new([16, 1, 2, 1, 1]), // long + degenerate
    ];
    for _ in 0..6 {
        let dims = [
            1 + rng.next_below(6) as u16,
            1 + rng.next_below(6) as u16,
            1 + rng.next_below(4) as u16,
            1 + rng.next_below(4) as u16,
            1 + rng.next_below(2) as u16,
        ];
        shapes.push(TorusShape::new(dims));
    }
    for nodes in [32, 128, 512] {
        shapes.push(TorusShape::for_nodes(nodes));
    }
    shapes
}

fn topo(shape: TorusShape, ppn: usize) -> Topology {
    Topology {
        shape,
        procs_per_node: ppn,
        mapping: Mapping::abcdet(),
    }
}

#[test]
fn cached_routes_equal_fresh_routes_on_random_pairs() {
    let mut rng = SimRng::new(0x5EED_0001);
    for shape in random_shapes(&mut rng.derive(0)) {
        let ppn = 1 + rng.next_below(16) as usize;
        let t = topo(shape, ppn);
        let mut rt = RouteTable::new(&t);
        let nodes = shape.num_nodes() as u64;
        // Random node pairs, plus forced wrap-around pairs (first<->last
        // along each dim) and self-routes.
        let mut pairs: Vec<(u32, u32)> = (0..200)
            .map(|_| (rng.next_below(nodes) as u32, rng.next_below(nodes) as u32))
            .collect();
        pairs.push((0, 0));
        pairs.push((0, nodes as u32 - 1));
        pairs.push((nodes as u32 - 1, 0));
        for (a, b) in pairs {
            let fresh = route(
                &shape,
                shape.node_coord(a as usize),
                shape.node_coord(b as usize),
            );
            let cached: Vec<_> = rt
                .route_ids(a, b)
                .to_vec()
                .into_iter()
                .map(|id| rt.link_of(id))
                .collect();
            assert_eq!(cached, fresh, "shape {shape} route {a}->{b}");
            // Cached again: identical (stability).
            let again: Vec<_> = rt
                .route_ids(a, b)
                .to_vec()
                .into_iter()
                .map(|id| rt.link_of(id))
                .collect();
            assert_eq!(again, fresh);
        }
    }
}

#[test]
fn wrap_ties_resolve_identically_in_cache_and_fresh() {
    // Even-sized dims: distance n/2 ties between the two wrap directions
    // and must resolve to `plus` in both the fresh and the cached route.
    let shape = TorusShape::new([4, 4, 4, 4, 2]);
    let t = topo(shape, 1);
    let mut rt = RouteTable::new(&t);
    let n = shape.num_nodes();
    for a in 0..n {
        let ca = shape.node_coord(a);
        // The antipodal node ties in every dimension.
        let cb = Coord([
            (ca.0[0] + 2) % 4,
            (ca.0[1] + 2) % 4,
            (ca.0[2] + 2) % 4,
            (ca.0[3] + 2) % 4,
            (ca.0[4] + 1) % 2,
        ]);
        let b = shape.node_index(cb);
        let fresh = route(&shape, ca, cb);
        assert!(fresh.iter().all(|l| l.plus), "ties must resolve positive");
        let cached: Vec<_> = rt
            .route_ids(a as u32, b as u32)
            .to_vec()
            .into_iter()
            .map(|id| rt.link_of(id))
            .collect();
        assert_eq!(cached, fresh, "antipodal route {a}->{b}");
    }
}

#[test]
fn link_interning_is_a_bijection_on_random_shapes() {
    let rng = SimRng::new(0x5EED_0002);
    for shape in random_shapes(&mut rng.derive(0)) {
        let t = topo(shape, 1);
        let rt = RouteTable::new(&t);
        let mut seen = vec![false; rt.num_link_ids()];
        // Decode every id and re-encode: must round-trip and be unique.
        for raw in 0..rt.num_link_ids() as u32 {
            let link = rt.link_of(LinkId(raw));
            assert!(link.dim < 5, "shape {shape} id {raw}");
            let back = rt.link_id(link);
            assert_eq!(back, LinkId(raw), "shape {shape} id {raw}");
            assert!(!seen[raw as usize]);
            seen[raw as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

#[test]
fn rank_table_agrees_with_mapping_on_random_ranks() {
    let mut rng = SimRng::new(0x5EED_0003);
    for shape in random_shapes(&mut rng.derive(0)) {
        let ppn = 1 + rng.next_below(16) as usize;
        let t = topo(shape, ppn);
        let rt = RouteTable::new(&t);
        let cap = t.capacity() as u64;
        for _ in 0..100 {
            let a = rng.next_below(cap) as usize;
            let b = rng.next_below(cap) as usize;
            assert_eq!(rt.coord_of(a), t.coord_of(a));
            assert_eq!(rt.hops(a, b), t.hops(a, b), "shape {shape} {a},{b}");
            assert_eq!(rt.same_node(a, b), t.same_node(a, b));
        }
    }
}
