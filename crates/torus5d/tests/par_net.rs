//! Differential suite for the parallel batch delivery engine: for every
//! contention regime and worker count, `deliver_batch` must be byte-identical
//! to the serial `try_deliver_op` loop — per-message arrivals, counters, link
//! utilization, and the merged `NetState` a *subsequent* serial delivery
//! continues from.

use desim::{SimDuration, SimRng, SimTime};
use torus5d::{
    deliver_batch, deliver_batch_arrivals, BgqParams, Delivery, MsgClass, NetMsg, NetState,
    Topology,
};

/// A churn-style schedule: mixed classes and sizes, staggered injections,
/// some intranode pairs (16 ranks/node) and repeated (src, dst) pairs so the
/// FIFO, link and pair-order state all carry real coupling.
fn schedule(procs: usize, msgs: usize, seed: u64) -> Vec<NetMsg> {
    let mut rng = SimRng::new(seed);
    let mut sched = Vec::with_capacity(msgs);
    let mut inject = SimTime::ZERO;
    for i in 0..msgs {
        let src = rng.next_below(procs as u64) as u32;
        let mut dst = rng.next_below(procs as u64) as u32;
        if dst == src {
            dst = (dst + 1) % procs as u32;
        }
        let payload = 1u32 << (4 + rng.next_below(12));
        let class = match i % 8 {
            0 => MsgClass::Unordered,
            1 | 2 => MsgClass::Control,
            _ => MsgClass::Ordered,
        };
        inject += SimDuration::from_ns(rng.next_below(200));
        sched.push(NetMsg {
            inject,
            src,
            dst,
            payload,
            class,
        });
    }
    sched
}

fn net(procs: usize, contention: bool) -> NetState {
    NetState::new(
        Topology::for_procs(procs, 16),
        BgqParams::default(),
        contention,
    )
}

/// Serial reference: the plain delivery loop, arrivals in schedule order.
fn serial_ref(net: &mut NetState, sched: &[NetMsg]) -> Vec<SimTime> {
    sched
        .iter()
        .map(|m| {
            match net.try_deliver_op(
                m.inject,
                m.src as usize,
                m.dst as usize,
                m.payload as usize,
                m.class,
                None,
            ) {
                Delivery::Delivered(at) => at,
                Delivery::Dropped { .. } => unreachable!("fault-free"),
            }
        })
        .collect()
}

/// Deliver `sched` serially on one net and batched on another, then drive a
/// serial tail through both and assert every observable matches.
fn assert_batch_matches(procs: usize, contention: bool, workers: usize, msgs: usize) {
    let sched = schedule(procs, msgs, 0x5041_5242 ^ msgs as u64);
    let mut a = net(procs, contention);
    let mut b = net(procs, contention);
    if !contention {
        a.set_link_tracking(true);
        b.set_link_tracking(true);
    }
    let want = serial_ref(&mut a, &sched);
    let (out, got) = deliver_batch_arrivals(&mut b, &sched, workers);
    assert_eq!(got, want, "arrivals diverged (workers={workers})");
    assert_eq!(out.delivered, msgs as u64);
    assert_eq!(
        out.last_arrival,
        want.iter().copied().max().unwrap(),
        "last arrival diverged"
    );
    assert_eq!(a.messages(), b.messages(), "message counter diverged");
    assert_eq!(a.bytes(), b.bytes(), "byte counter diverged");
    assert_eq!(
        a.link_utilization(),
        b.link_utilization(),
        "link utilization diverged (workers={workers})"
    );
    // The merged NetState must be indistinguishable from the serial one:
    // a serial tail (fresh pairs and re-used pairs alike) continues
    // identically on both.
    let tail = schedule(procs, 200, 0x7441_494C);
    let tail: Vec<NetMsg> = tail
        .iter()
        .map(|m| NetMsg {
            inject: m.inject + SimDuration::from_ms(2),
            ..*m
        })
        .collect();
    assert_eq!(
        serial_ref(&mut a, &tail),
        serial_ref(&mut b, &tail),
        "post-batch serial handoff diverged (workers={workers})"
    );
    assert_eq!(a.link_utilization(), b.link_utilization());
}

#[test]
fn contended_batch_matches_serial() {
    for workers in [1, 2, 3, 4] {
        assert_batch_matches(128, true, workers, 3_000);
    }
}

#[test]
fn analytic_batch_matches_serial() {
    for workers in [1, 2, 4] {
        assert_batch_matches(128, false, workers, 3_000);
    }
}

#[test]
fn single_node_intranode_batch_matches_serial() {
    // All ranks on one node: every delivery is intranode, no link state.
    for workers in [1, 4] {
        assert_batch_matches(16, true, workers, 1_000);
    }
}

#[test]
fn tiny_and_empty_batches() {
    let mut n = net(64, true);
    let out = deliver_batch(&mut n, &[], 4);
    assert_eq!(out.delivered, 0);
    assert_eq!(out.last_arrival, SimTime::ZERO);
    assert_eq!(n.messages(), 0);
    // A one-message batch across more workers than messages.
    let sched = schedule(64, 1, 1);
    let mut a = net(64, true);
    let want = serial_ref(&mut a, &sched);
    let (_, got) = deliver_batch_arrivals(&mut n, &sched, 8);
    assert_eq!(got, want);
}

#[test]
fn batch_over_warm_state_matches_serial() {
    // A batch applied to nets that already carry FIFO/link/pair state from
    // an earlier serial phase: seeds must be read, not assumed zero.
    let warm = schedule(128, 500, 0xAAAA);
    let cold = schedule(128, 1_500, 0xBBBB);
    let cold: Vec<NetMsg> = cold
        .iter()
        .map(|m| NetMsg {
            inject: m.inject + SimDuration::from_ms(1),
            ..*m
        })
        .collect();
    let mut a = net(128, true);
    let mut b = net(128, true);
    serial_ref(&mut a, &warm);
    serial_ref(&mut b, &warm);
    let want = serial_ref(&mut a, &cold);
    let (_, got) = deliver_batch_arrivals(&mut b, &cold, 4);
    assert_eq!(got, want, "warm-state batch diverged");
    assert_eq!(a.link_utilization(), b.link_utilization());
}

#[test]
fn faulty_net_falls_back_to_serial_path() {
    // With a fault plan installed the batch API must keep the serial
    // semantics (drops included) rather than attempting the dataflow.
    let sched = schedule(64, 400, 0xFA01);
    let mut a = net(64, true);
    let mut b = net(64, true);
    a.install_faults(desim::FaultPlan::new(7));
    b.install_faults(desim::FaultPlan::new(7));
    let want = serial_ref(&mut a, &sched);
    let (out, got) = deliver_batch_arrivals(&mut b, &sched, 4);
    assert_eq!(got, want);
    assert_eq!(out.delivered, sched.len() as u64);
}
