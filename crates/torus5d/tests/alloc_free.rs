//! Proof that message delivery is allocation-free once warm: the tracking
//! allocator from `desim::memprof` is installed as the global allocator,
//! the delivery state is warmed (route arena + pair map populated), and a
//! second batch of deliveries must not allocate at all —
//! [`desim::memprof::total_allocs`] counts every `alloc`/`alloc_zeroed`/
//! `realloc` process-wide, exactly like the private counting allocator this
//! test used to carry.
//!
//! This doubles as an end-to-end check of the profiler itself: with it
//! *enabled* (the worst case — full attribution and side-table accounting on
//! every allocation), the warm path still performs zero heap operations, so
//! the profiler cannot have added any of its own.
//!
//! This lives in its own integration-test binary because `#[global_allocator]`
//! is process-wide, and it holds a single `#[test]` so no concurrent test can
//! pollute the counter.

use desim::memprof::{self, MemProf};
use desim::{SimDuration, SimRng, SimTime};
use torus5d::{BgqParams, MsgClass, NetState, Topology};

#[global_allocator]
static ALLOC: MemProf = MemProf;

fn schedule(procs: usize, msgs: usize, seed: u64) -> Vec<(usize, usize, usize, MsgClass)> {
    let mut rng = SimRng::new(seed);
    (0..msgs)
        .map(|i| {
            let src = rng.next_below(procs as u64) as usize;
            let mut dst = rng.next_below(procs as u64) as usize;
            if dst == src {
                dst = (dst + 1) % procs;
            }
            let payload = 1usize << (4 + rng.next_below(12));
            let class = match i % 8 {
                0 => MsgClass::Unordered,
                1 | 2 => MsgClass::Control,
                _ => MsgClass::Ordered,
            };
            (src, dst, payload, class)
        })
        .collect()
}

#[test]
fn deliver_is_allocation_free_once_routes_are_warm() {
    memprof::enable();
    let procs = 256;
    let topo = Topology::for_procs(procs, 16);
    let mut net = NetState::new(topo, BgqParams::default(), true);
    let sched = schedule(procs, 30_000, 0xA110_C8EE);

    // Warm pass: populates the route arena, the span table and every pair
    // slot in the ordering map (allocations expected and allowed here).
    let mut inject = SimTime::ZERO;
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        net.deliver(inject, src, dst, payload, class);
    }
    let routes_warm = net.route_table().routes_cached();
    let arena_warm = net.route_table().arena_len();

    // The warm pass must have charged the network tags, not `untagged` —
    // the scope wiring in `NetState`/`RouteTable` is live.
    let global = memprof::global_snapshot();
    assert!(
        global.get("torus5d.links").is_some_and(|t| t.allocs > 0),
        "link state allocations must carry the torus5d.links tag"
    );
    assert!(
        global.get("torus5d.routes").is_some_and(|t| t.allocs > 0),
        "route arena allocations must carry the torus5d.routes tag"
    );

    // Hot pass: same pairs again — zero heap activity allowed.
    let before = memprof::total_allocs();
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        net.deliver(inject, src, dst, payload, class);
    }
    let after = memprof::total_allocs();
    assert_eq!(
        after - before,
        0,
        "deliveries over warm routes must not allocate"
    );

    // And the warm pass really did all the cache work: nothing new appeared.
    assert_eq!(net.route_table().routes_cached(), routes_warm);
    assert_eq!(net.route_table().arena_len(), arena_warm);
    assert_eq!(net.messages(), 2 * sched.len() as u64);

    // Same contract with an *empty* fault plan installed: the fault-gating
    // branches on the delivery path must stay allocation-free too. (Kept in
    // this one #[test] — the allocation counter is process-global.)
    let mut fnet = NetState::new(Topology::for_procs(procs, 16), BgqParams::default(), true);
    fnet.install_faults(desim::FaultPlan::new(42));
    let mut inject = SimTime::ZERO;
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        fnet.deliver(inject, src, dst, payload, class);
    }
    let before = memprof::total_allocs();
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        fnet.deliver(inject, src, dst, payload, class);
    }
    let after = memprof::total_allocs();
    assert_eq!(
        after - before,
        0,
        "an empty fault plan must not add allocations to warm deliveries"
    );

    // Same contract with a *disabled* timeline attached (the production
    // default: every producer holds no handles, so the telemetry branches
    // collapse to one `Option` check).
    let mut tnet = NetState::new(Topology::for_procs(procs, 16), BgqParams::default(), true);
    let tl = desim::Timeline::new();
    tnet.set_timeline(&tl);
    let mut inject = SimTime::ZERO;
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        tnet.deliver(inject, src, dst, payload, class);
    }
    let before = memprof::total_allocs();
    for &(src, dst, payload, class) in &sched {
        inject += SimDuration::from_ns(100);
        tnet.deliver(inject, src, dst, payload, class);
    }
    let after = memprof::total_allocs();
    assert_eq!(
        after - before,
        0,
        "a disabled timeline must not add allocations to warm deliveries"
    );

    // The batch entry point at `workers = 1` is contractually the serial
    // hot path (DESIGN.md §16): no shard state, no mailboxes, no merge
    // buffers — just the same warm `deliver` loop, so a warm batch must
    // also be a zero-allocation operation. (The schedule is prepared in
    // `NetMsg` form *before* the measured region.)
    let mut bnet = NetState::new(Topology::for_procs(procs, 16), BgqParams::default(), true);
    let mut inject = SimTime::ZERO;
    let batch: Vec<torus5d::NetMsg> = sched
        .iter()
        .map(|&(src, dst, payload, class)| {
            inject += SimDuration::from_ns(100);
            torus5d::NetMsg {
                inject,
                src: src as u32,
                dst: dst as u32,
                payload: payload as u32,
                class,
            }
        })
        .collect();
    torus5d::deliver_batch(&mut bnet, &batch, 1); // warm pass
    let before = memprof::total_allocs();
    let out = torus5d::deliver_batch(&mut bnet, &batch, 1);
    let after = memprof::total_allocs();
    assert_eq!(
        after - before,
        0,
        "deliver_batch at workers=1 must take the allocation-free serial path"
    );
    assert_eq!(out.delivered, batch.len() as u64);

    // Ranks that never send cost zero bytes: per-rank sender state
    // (`tx_busy`, the pair-ordering map) lives in lazily-grown hash maps
    // tagged `torus5d.fxmap`, so the same traffic between the same two
    // ranks must charge *byte-identical* fxmap allocations whether the
    // machine has 256 ranks or a million — only the per-link hardware
    // arrays (`torus5d.links`, O(nodes) by design) may grow with the
    // partition. `mark`/`since` brackets are thread-local, so this stays
    // exact inside the one-test binary.
    let run = |procs: usize| {
        let m = memprof::mark();
        let mut net = NetState::new(Topology::for_procs(procs, 16), BgqParams::default(), true);
        let mut inject = SimTime::ZERO;
        for i in 0..200 {
            inject += SimDuration::from_ns(100);
            // Two cross-node pairs, every class: 0→17, 33→17.
            let (src, dst) = if i % 2 == 0 { (0, 17) } else { (33, 17) };
            let class = match i % 3 {
                0 => MsgClass::Ordered,
                1 => MsgClass::Control,
                _ => MsgClass::Unordered,
            };
            net.deliver(inject, src, dst, 4096, class);
        }
        let snap = memprof::since(&m);
        let stat = |tag: &str| {
            snap.get(tag)
                .map(|t| (t.peak_bytes, t.allocs))
                .unwrap_or((0, 0))
        };
        (stat("torus5d.fxmap"), stat("torus5d.links"))
    };
    let (fx_small, links_small) = run(256);
    let (fx_huge, links_huge) = run(1 << 20);
    assert_eq!(
        fx_small, fx_huge,
        "per-rank sender state must scale with senders, not with p"
    );
    assert!(fx_small.1 > 0, "fxmap traffic state was actually exercised");
    assert!(
        links_huge.0 > links_small.0,
        "link arrays are per-node hardware and do grow with the machine"
    );
}
