//! Full-stack message-lifecycle tests: ARMCI ops → PAMI contexts → torus
//! delivery, recorded by the flight recorder and decomposed with
//! [`desim::analyze`]. Reproduces the paper's central claim at lifecycle
//! granularity: under the default progress engine a compute-busy target
//! *starves* remote atomics (the critical path is progress-starvation time),
//! while the asynchronous progress thread shifts the bottleneck back to the
//! wire (§III-D, Fig 9).

use armci::{Armci, ArmciConfig, ProgressMode};
use desim::{analyze, CritPath, SegCategory, Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::Cell;
use std::rc::Rc;

/// Ranks 1..p fetch-and-add a counter at rank 0 while rank 0 "computes" for
/// 300 µs before entering the final barrier — the SCF pattern. Rank 0 issues
/// no ARMCI data ops, so the recorded lifecycles (and the critical path)
/// belong entirely to the requesters. Returns the analysis clipped to the
/// last operation's completion, plus its JSON rendering.
fn rmw_storm(mode: ProgressMode) -> (CritPath, String) {
    let p = 4;
    let k = 6;
    let sim = Sim::new();
    let contexts = if mode == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(contexts),
    );
    machine.enable_flight(1 << 16);
    let armci = Armci::new(machine, ArmciConfig::default().progress(mode));
    let owner = armci.machine().rank(0);
    let counter = owner.alloc(8);
    owner.write_i64(counter, 0);
    let done = Rc::new(Cell::new(0usize));
    for r in 1..p {
        let rk = armci.rank(r);
        let done = Rc::clone(&done);
        sim.spawn(async move {
            for _ in 0..k {
                rk.rmw_fetch_add(0, counter, 1).await;
            }
            done.set(done.get() + 1);
            rk.barrier().await;
        });
    }
    {
        // Rank 0 computes one 300 µs grain, then sits in the barrier. In D
        // mode nothing services the counter's AMOs until the barrier's
        // progress wait starts; under AT the progress thread serves them
        // throughout.
        let rk = armci.rank(0);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(300)).await;
            rk.barrier().await;
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    let fl = armci.machine().flight();
    // Clip the analysis to the communication epoch: the last op completion.
    let end = fl.ops().iter().map(|o| o.end).max().expect("ops recorded");
    let cp = analyze(&fl, end);
    let json = cp.to_json();
    armci.finalize();
    sim.shutdown();
    (cp, json)
}

#[test]
fn critical_path_shifts_from_starvation_to_wire_under_at() {
    let (d, _) = rmw_storm(ProgressMode::Default);
    let (at, _) = rmw_storm(ProgressMode::AsyncThread);
    // The five categories tile the whole analyzed window in both modes.
    assert_eq!(d.breakdown.total(), d.total);
    assert_eq!(at.breakdown.total(), at.total);
    // Default: remote fetch-and-adds sit unserviced while rank 0 computes —
    // progress starvation dominates the critical path.
    assert_eq!(
        d.breakdown.dominant(),
        SegCategory::Starvation,
        "D breakdown: {:?}",
        d.breakdown
    );
    // Async thread: starvation collapses and the wire dominates.
    assert_eq!(
        at.breakdown.dominant(),
        SegCategory::Wire,
        "AT breakdown: {:?}",
        at.breakdown
    );
    assert!(
        at.breakdown.starvation < at.breakdown.wire,
        "AT starvation {} >= wire {}",
        at.breakdown.starvation,
        at.breakdown.wire
    );
    // And the run itself collapses: the paper's speedup, seen end-to-end.
    assert!(at.total < d.total);
    assert!(at.breakdown.starvation < d.breakdown.starvation);
}

#[test]
fn lifecycle_analysis_is_deterministic() {
    let (_, a) = rmw_storm(ProgressMode::AsyncThread);
    let (_, b) = rmw_storm(ProgressMode::AsyncThread);
    assert_eq!(a, b, "same seed must give byte-identical breakdown JSON");
}
