//! Synchronization-primitive and instrumentation tests: notify streams,
//! mutex fairness under load, collective/point-to-point interleaving, and
//! the per-operation latency statistics.

use armci::{Armci, ArmciConfig, ProgressMode, ReduceOp};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(p: usize, mode: ProgressMode) -> (Sim, Armci) {
    let contexts = if mode == ProgressMode::AsyncThread {
        2
    } else {
        1
    };
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(contexts),
    );
    let armci = Armci::new(machine, ArmciConfig::default().progress(mode));
    (sim, armci)
}

fn finish(sim: &Sim, a: &Armci) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(30));
    a.finalize();
    sim.shutdown();
}

#[test]
fn notify_stream_counts_monotonically() {
    let (sim, a) = setup(2, ProgressMode::AsyncThread);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let seen = Rc::new(RefCell::new(Vec::new()));
    {
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..5 {
                s.sleep(SimDuration::from_us(10 * (i + 1))).await;
                let seq = r0.notify(1).await;
                assert_eq!(seq, i as i64 + 1);
            }
            r0.barrier().await;
        });
    }
    {
        let seen = Rc::clone(&seen);
        let s = sim.clone();
        sim.spawn(async move {
            for want in [2i64, 4, 5] {
                r1.wait_notify(0, want).await;
                seen.borrow_mut().push((want, s.now().as_us()));
            }
            r1.barrier().await;
        });
    }
    finish(&sim, &a);
    let seen = seen.borrow();
    assert_eq!(seen.len(), 3);
    // Monotone wake times, each after the corresponding notify was sent.
    assert!(seen[0].1 >= 20.0);
    assert!(seen[1].1 >= 40.0);
    assert!(seen[2].1 >= 50.0);
    assert!(seen[0].1 <= seen[1].1 && seen[1].1 <= seen[2].1);
}

#[test]
fn mutexes_on_different_owners_are_independent() {
    let p = 4;
    let (sim, a) = setup(p, ProgressMode::AsyncThread);
    let order: Rc<RefCell<Vec<(usize, usize)>>> = Rc::new(RefCell::new(Vec::new()));
    for r in 0..p {
        let rk = a.rank(r);
        let s = sim.clone();
        let order = Rc::clone(&order);
        sim.spawn(async move {
            rk.create_mutexes(2).await;
            // Each rank locks mutex (r % 2) on owner (r / 2): disjoint pairs
            // proceed concurrently.
            let owner = r / 2;
            let idx = r % 2;
            rk.lock(idx, owner).await;
            order.borrow_mut().push((rk.id(), s.now().as_us() as usize));
            s.sleep(SimDuration::from_us(50)).await;
            rk.unlock(idx, owner).await;
            rk.barrier().await;
        });
    }
    finish(&sim, &a);
    let order = order.borrow();
    assert_eq!(order.len(), p);
    // All four acquisitions happen in the same short window (no serialization
    // across distinct mutexes).
    let min = order.iter().map(|&(_, t)| t).min().unwrap();
    let max = order.iter().map(|&(_, t)| t).max().unwrap();
    assert!(max - min < 20, "independent mutexes serialized: {order:?}");
}

#[test]
fn lock_retry_stats_count_contention() {
    let p = 3;
    let (sim, a) = setup(p, ProgressMode::AsyncThread);
    for r in 0..p {
        let rk = a.rank(r);
        let s = sim.clone();
        sim.spawn(async move {
            rk.create_mutexes(1).await;
            rk.lock(0, 0).await;
            s.sleep(SimDuration::from_us(30)).await;
            rk.unlock(0, 0).await;
            rk.barrier().await;
        });
    }
    finish(&sim, &a);
    let stats = a.machine().stats();
    assert_eq!(stats.counter("armci.lock_acquired"), p as u64);
    assert!(
        stats.counter("armci.lock_retry") >= 2,
        "serialized lock must show retries"
    );
}

#[test]
fn wait_stats_record_latencies_per_kind() {
    let (sim, a) = setup(2, ProgressMode::AsyncThread);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let counter = a.machine().rank(1).alloc(8);
    sim.spawn(async move {
        let src = r0.malloc(4096).await;
        let dst = r1.malloc(4096).await;
        for _ in 0..4 {
            r0.get(1, src, dst, 1024).await;
            r0.put(1, src, dst, 1024).await;
            r0.rmw_fetch_add(1, counter, 1).await;
        }
        r0.fence_all().await;
    });
    finish(&sim, &a);
    let stats = a.machine().stats();
    let get = stats.time("armci.wait.get");
    let put = stats.time("armci.wait.put");
    let rmw = stats.time("armci.wait.rmw");
    assert_eq!(get.count, 4);
    assert_eq!(put.count, 4);
    assert_eq!(rmw.count, 4);
    // Sanity on magnitudes: ~3us-class operations for 1KB / AMO traffic.
    assert!(get.mean().as_us() > 1.0 && get.mean().as_us() < 10.0);
    assert!(rmw.mean().as_us() > 1.0 && rmw.mean().as_us() < 10.0);
    assert!(get.min <= get.max);
}

#[test]
fn collectives_interleave_with_rma() {
    // Alternate allreduce with puts; both must stay correct.
    let p = 4;
    let (sim, a) = setup(p, ProgressMode::AsyncThread);
    let results = Rc::new(RefCell::new(Vec::new()));
    let mut bufs = Vec::new();
    for r in 0..p {
        let pr = a.machine().rank(r);
        let off = pr.alloc(64);
        let _ = pr.register_region_untimed(off, 64);
        bufs.push(off);
    }
    for r in 0..p {
        let rk = a.rank(r);
        let results = Rc::clone(&results);
        let bufs = bufs.clone();
        sim.spawn(async move {
            let scratch = rk.malloc(64).await;
            let mut sums = Vec::new();
            for round in 0..3 {
                rk.pami().write_i64(scratch, (round * 10 + r) as i64);
                let next = (r + 1) % rk.armci().nprocs();
                rk.put(next, scratch, bufs[next], 8).await;
                rk.fence(next).await;
                let s = rk.allreduce_f64(&[(round + r) as f64], ReduceOp::Sum).await;
                sums.push(s[0]);
            }
            results.borrow_mut().push(sums);
        });
    }
    finish(&sim, &a);
    for sums in results.borrow().iter() {
        // round r: sum over ranks of (round + rank) = 4*round + 6.
        assert_eq!(sums, &vec![6.0, 10.0, 14.0]);
    }
}

#[test]
fn default_mode_collectives_do_not_deadlock() {
    // In D mode the collective completion must be reachable while every
    // rank sits in progress_wait (their queues service each other).
    let p = 3;
    let (sim, a) = setup(p, ProgressMode::Default);
    let done = Rc::new(RefCell::new(0));
    for r in 0..p {
        let rk = a.rank(r);
        let done = Rc::clone(&done);
        sim.spawn(async move {
            let v = rk.allreduce_f64(&[1.0], ReduceOp::Sum).await;
            assert_eq!(v, vec![3.0]);
            *done.borrow_mut() += 1;
        });
    }
    finish(&sim, &a);
    assert_eq!(*done.borrow(), p);
}

#[test]
fn broadcast_large_payload_costs_wire_time() {
    let p = 4;
    let (sim, a) = setup(p, ProgressMode::AsyncThread);
    let times = Rc::new(RefCell::new(Vec::new()));
    for r in 0..p {
        let rk = a.rank(r);
        let s = sim.clone();
        let times = Rc::clone(&times);
        sim.spawn(async move {
            let payload = (r == 0).then(|| vec![1u8; 1 << 20]);
            let t0 = s.now();
            let got = rk.broadcast(0, payload).await;
            times.borrow_mut().push((s.now() - t0).as_us());
            assert_eq!(got.len(), 1 << 20);
        });
    }
    finish(&sim, &a);
    // 1MB at ~1.8GB/s on the collective network: >= 570us.
    for &t in times.borrow().iter() {
        assert!(t >= 570.0, "broadcast too fast: {t}us");
    }
}
