//! Tests of the AM-backed ARMCI operations (notify broadcast, accumulate
//! fallback, fence) over both the unbatched hot path and the per-destination
//! aggregation buffer.

use armci::{Armci, ArmciConfig};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(nprocs: usize, mcfg: impl FnOnce(MachineConfig) -> MachineConfig) -> (Sim, Armci) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        mcfg(MachineConfig::new(nprocs).procs_per_node(1)),
    );
    let armci = Armci::new(machine, ArmciConfig::default());
    (sim, armci)
}

fn finish(sim: &Sim) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
    sim.shutdown();
}

#[test]
fn notify_am_observed_by_wait_notify_unbatched() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        let s1 = r0.notify_am(1).await;
        let s2 = r0.notify_am(1).await;
        assert_eq!((s1, s2), (1, 2));
        r1.wait_notify(0, 2).await;
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
    assert_eq!(a.machine().stats().counter("armci.notify_am"), 2);
    // Unbatched: every AM is its own wire message.
    assert_eq!(a.machine().stats().counter("am.wire_msgs"), 2);
    assert_eq!(a.machine().stats().counter("am.batches"), 0);
}

#[test]
fn notify_am_shares_sequence_space_with_sw_notify() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        assert_eq!(r0.notify(1).await, 1);
        assert_eq!(r0.notify_am(1).await, 2);
        r1.wait_notify(0, 2).await;
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
}

#[test]
fn acc_am_batched_applies_and_coalesces() {
    let (sim, a) = setup(
        2,
        |m| m.am_batching(1 << 16, SimDuration::from_us(2)), // window-driven
    );
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        let dst = r1.malloc(8 * 16).await;
        r1.pami().write_f64s(dst, &[1.0; 16]);
        for i in 0..16 {
            r0.acc_am(1, dst + 8 * i, &[i as f64], 2.0).await;
        }
        r0.am_fence(1).await;
        let got = r1.pami().read_f64s(dst, 16);
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 1.0 + 2.0 * i as f64, "element {i}");
        }
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
    let s = a.machine().stats();
    assert_eq!(s.counter("armci.acc_am"), 16);
    // 16 accs + the fence ping coalesced into one wire message.
    assert_eq!(s.counter("am.wire_msgs"), 1);
    assert_eq!(s.counter("am.batches"), 1);
    assert_eq!(s.counter("am.sent"), 17);
}

#[test]
fn size_threshold_flushes_before_window() {
    // Threshold small enough that the third enqueue trips it; the fence
    // flushes the remainder.
    let (sim, a) = setup(2, |m| m.am_batching(96, SimDuration::from_ms(100)));
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let dst = r1.malloc(64).await;
        for i in 0..4 {
            r0.acc_am(1, dst + 8 * i, &[1.0], 1.0).await;
        }
        r0.am_fence(1).await;
        assert_eq!(r1.pami().read_f64s(dst, 4), vec![1.0; 4]);
    });
    finish(&sim);
    let s = a.machine().stats();
    assert!(
        s.counter("am.wire_msgs") >= 2,
        "size trip plus fence flush => at least two wire messages, got {}",
        s.counter("am.wire_msgs")
    );
}

#[test]
fn batched_matches_unbatched_values() {
    let run = |batch: bool| -> Vec<f64> {
        let (sim, a) = setup(4, |m| {
            if batch {
                m.am_batching(4096, SimDuration::from_us(4))
            } else {
                m
            }
        });
        let owner = a.rank(3);
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        let dst = Rc::new(RefCell::new(0usize));
        let dst2 = Rc::clone(&dst);
        let o2 = owner.clone();
        sim.spawn(async move {
            *dst2.borrow_mut() = o2.malloc(8 * 8).await;
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        for r in 0..3 {
            let rk = a.rank(r);
            let dst = *dst.borrow();
            sim.spawn(async move {
                for k in 0..8 {
                    rk.acc_am(3, dst + 8 * k, &[(r + 1) as f64], k as f64).await;
                }
                rk.am_fence(3).await;
            });
        }
        let off = *dst.borrow();
        finish(&sim);
        *got2.borrow_mut() = owner.pami().read_f64s(off, 8);
        let vals = got.borrow().clone();
        vals
    };
    let b = run(true);
    let u = run(false);
    assert_eq!(b, u);
    for (k, v) in b.iter().enumerate() {
        // sum over ranks r of (r+1) * k  =  6k
        assert_eq!(*v, 6.0 * k as f64, "element {k}");
    }
}

#[test]
fn notify_broadcast_reaches_all_targets() {
    let (sim, a) = setup(5, |m| m.am_batching(4096, SimDuration::from_us(1)));
    let r0 = a.rank(0);
    let ranks: Vec<_> = (1..5).map(|r| a.rank(r)).collect();
    let ok = Rc::new(RefCell::new(0));
    sim.spawn({
        let r0 = r0.clone();
        async move {
            let seqs = r0.notify_broadcast(&[1, 2, 3, 4]).await;
            assert_eq!(seqs, vec![1, 1, 1, 1]);
        }
    });
    for rk in ranks {
        let ok2 = Rc::clone(&ok);
        sim.spawn(async move {
            rk.wait_notify(0, 1).await;
            *ok2.borrow_mut() += 1;
        });
    }
    finish(&sim);
    assert_eq!(*ok.borrow(), 4);
    // One wire message per destination once the window expires.
    assert_eq!(a.machine().stats().counter("am.wire_msgs"), 4);
}
