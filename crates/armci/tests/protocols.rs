//! Protocol-level integration tests: I/O-vector transfers, collective
//! allocation, cache eviction under pressure, non-blocking strided handles,
//! and mixed-traffic stress.

use armci::{Armci, ArmciConfig, ProgressMode, Strided};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn setup(nprocs: usize, mcfg: impl FnOnce(MachineConfig) -> MachineConfig) -> (Sim, Armci) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        mcfg(MachineConfig::new(nprocs).procs_per_node(1).contexts(2)),
    );
    let armci = Armci::new(machine, ArmciConfig::default());
    (sim, armci)
}

fn finish(sim: &Sim, armci: &Armci) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    armci.finalize();
    sim.shutdown();
}

#[test]
fn vector_put_get_round_trip() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(Cell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        let src = r0.malloc(4096).await;
        let dst = r1.malloc(8192).await;
        let back = r0.malloc(4096).await;
        for i in 0..4096 / 8 {
            r0.pami().write_i64(src + i * 8, i as i64);
        }
        // Scatter three disjoint pieces at irregular remote offsets.
        let parts = [
            (src, dst + 100, 1000),
            (src + 1000, dst + 3000, 500),
            (src + 1500, dst + 7000, 800),
        ];
        r0.putv(1, &parts).await;
        r0.fence(1).await;
        // Gather them back into a different local layout.
        let back_parts = [
            (back, dst + 100, 1000),
            (back + 1000, dst + 3000, 500),
            (back + 1500, dst + 7000, 800),
        ];
        r0.getv(1, &back_parts).await;
        assert_eq!(
            r0.pami().read_bytes(back, 2300),
            r0.pami().read_bytes(src, 2300)
        );
        ok2.set(true);
    });
    finish(&sim, &a);
    assert!(ok.get());
}

#[test]
fn vector_ops_pick_protocol_by_min_chunk() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let src = r0.malloc(8192).await;
        let dst = r1.malloc(8192).await;
        // All chunks large: zero-copy.
        r0.putv(1, &[(src, dst, 2048), (src + 2048, dst + 4096, 2048)])
            .await;
        // One tiny chunk: packed.
        r0.putv(1, &[(src, dst, 2048), (src + 4000, dst + 6100, 8)])
            .await;
        r0.fence(1).await;
    });
    finish(&sim, &a);
    let stats = a.machine().stats();
    assert_eq!(stats.counter("armci.strided_zero_copy"), 1);
    assert_eq!(stats.counter("armci.strided_packed"), 1);
}

#[test]
fn malloc_collective_exchanges_offsets_and_keys() {
    let p = 5;
    let (sim, a) = setup(p, |m| m);
    let offsets: Rc<RefCell<Vec<Vec<usize>>>> = Rc::new(RefCell::new(vec![Vec::new(); p]));
    for r in 0..p {
        let rk = a.rank(r);
        let offsets = Rc::clone(&offsets);
        sim.spawn(async move {
            let offs = rk.malloc_collective(4096).await;
            offsets.borrow_mut()[r] = offs.clone();
            // Immediately RDMA into the right neighbour using the exchanged
            // offset — no query round trip should be needed.
            let next = (r + 1) % rk.armci().nprocs();
            let buf = rk.malloc(64).await;
            rk.pami().write_i64(buf, r as i64);
            rk.put(next, buf, offs[next], 8).await;
            rk.barrier().await;
        });
    }
    finish(&sim, &a);
    let offsets = offsets.borrow();
    // Every rank saw the same offset vector.
    for r in 1..p {
        assert_eq!(offsets[0], offsets[r]);
    }
    // All puts were RDMA (keys pre-exchanged, no queries).
    let stats = a.machine().stats();
    assert_eq!(stats.counter("armci.put_rdma"), p as u64);
    assert_eq!(stats.counter("armci.region_query"), 0);
    // And the data landed.
    for r in 0..p {
        let prev = (r + p - 1) % p;
        assert_eq!(a.machine().rank(r).read_i64(offsets[0][r]), prev as i64);
    }
}

#[test]
fn region_cache_eviction_forces_requery() {
    let p = 6;
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(2),
    );
    // Cache only 2 entries: visiting 5 targets round-robin thrashes it.
    let armci = Armci::new(machine, ArmciConfig::default().region_cache_capacity(2));
    let r0 = armci.rank(0);
    let mut remotes = Vec::new();
    for t in 1..p {
        let pr = armci.machine().rank(t);
        let off = pr.alloc(1024);
        let _ = pr.register_region_untimed(off, 1024);
        remotes.push(off);
    }
    sim.spawn(async move {
        let local = r0.malloc(1024).await;
        for round in 0..4 {
            for t in 1..p {
                let _ = round;
                r0.get(t, local, remotes[t - 1], 256).await;
            }
        }
    });
    finish(&sim, &armci);
    let (hits, misses, evictions) = armci.region_cache_totals();
    assert!(misses > 5, "thrashing expected, misses = {misses}");
    assert!(evictions > 0);
    let _ = hits;
    // Data correctness is unaffected by eviction (every get still resolved).
    assert_eq!(
        armci.machine().stats().counter("armci.get_rdma"),
        4 * (p as u64 - 1)
    );
}

#[test]
fn nb_strided_handles_complete_out_of_order() {
    let (sim, a) = setup(3, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let r2 = a.rank(2);
    sim.spawn(async move {
        let big_remote = r1.malloc(1 << 20).await;
        let small_remote = r2.malloc(4096).await;
        let big_local = r0.malloc(1 << 20).await;
        let small_local = r0.malloc(4096).await;
        let big = Strided::patch2d(big_remote, 64 * 1024, 16, 64 * 1024);
        let big_l = Strided::patch2d(big_local, 64 * 1024, 16, 64 * 1024);
        let h_big = r0.nbget_strided(1, &big_l, &big).await;
        let small = Strided::patch2d(small_remote, 1024, 4, 1024);
        let small_l = Strided::patch2d(small_local, 1024, 4, 1024);
        let h_small = r0.nbget_strided(2, &small_l, &small).await;
        // The small get (different target) finishes first.
        r0.wait(&h_small).await;
        assert!(!h_big.test(), "1MB strided get cannot beat 4KB");
        r0.wait(&h_big).await;
        assert!(h_big.test());
    });
    finish(&sim, &a);
}

#[test]
fn default_mode_mixed_traffic_stress() {
    // Default progress, every rank mixes puts/gets/accs/rmws — this must
    // neither deadlock nor corrupt data.
    let p = 6;
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(p).procs_per_node(1).contexts(1),
    );
    let armci = Armci::new(
        machine,
        ArmciConfig::default().progress(ProgressMode::Default),
    );
    let counter = armci.machine().rank(0).alloc(8);
    let handles: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(vec![false; p]));
    for r in 0..p {
        let rk = armci.rank(r);
        let handles = Rc::clone(&handles);
        sim.spawn(async move {
            let buf = rk.malloc(4096).await;
            let acc_src = rk.malloc(512).await;
            rk.pami().write_f64s(acc_src, &[1.0; 64]);
            let mine = rk.malloc(4096).await;
            rk.barrier().await;
            for i in 0..10 {
                let t = (r + 1 + i) % p;
                rk.rmw_fetch_add(0, counter, 1).await;
                rk.get(t, buf, mine, 1024).await;
                rk.nbacc(t, acc_src, mine + 2048, 64, 1.0).await;
            }
            rk.barrier().await;
            handles.borrow_mut()[rk.id()] = true;
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(60));
    armci.finalize();
    sim.shutdown();
    assert!(handles.borrow().iter().all(|&d| d), "a rank hung");
    assert_eq!(armci.machine().rank(0).read_i64(counter), (p * 10) as i64);
}

#[test]
fn value_put_get_round_trip() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let cell = a.machine().rank(1).alloc(8);
    let got = Rc::new(Cell::new(0i64));
    let got2 = Rc::clone(&got);
    sim.spawn(async move {
        r0.put_value_i64(1, cell, -1234).await;
        r0.fence(1).await;
        got2.set(r0.get_value_i64(1, cell).await);
    });
    finish(&sim, &a);
    assert_eq!(got.get(), -1234);
    assert_eq!(a.machine().rank(1).read_i64(cell), -1234);
    let _ = r1;
}

#[test]
fn immediate_am_reaches_handler() {
    let (sim, a) = setup(2, |m| m);
    let p0 = a.machine().rank(0);
    let p1 = a.machine().rank(1);
    let seen = Rc::new(Cell::new(0u8));
    let seen2 = Rc::clone(&seen);
    let ctx = a.machine().target_ctx();
    p1.register_dispatch(
        ctx,
        77,
        std::rc::Rc::new(move |_env, msg| {
            seen2.set(msg.header[0]);
        }),
    );
    sim.spawn(async move {
        p0.am_send_immediate(1, 77, vec![42]).await;
    });
    finish(&sim, &a);
    assert_eq!(seen.get(), 42);
}

#[test]
fn deregistered_region_falls_back() {
    let (sim, a) = setup(2, |m| m);
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let dst = r1.malloc(1024).await;
        let buf = r0.malloc(1024).await;
        r0.get(1, buf, dst, 256).await; // RDMA (registered + cached)
                                        // Owner tears the region down; the stale cache entry still points at
                                        // it, but a *fresh* runtime lookup after eviction must fall back.
        let id = r1.pami().find_region(dst, 1024).expect("registered");
        r1.pami().deregister_region(id);
        assert!(r1.pami().find_region(dst, 256).is_none());
    });
    finish(&sim, &a);
    assert_eq!(a.machine().stats().counter("armci.get_rdma"), 1);
}
