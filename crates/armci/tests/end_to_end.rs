//! End-to-end tests of the ARMCI runtime: data correctness across protocol
//! paths, consistency semantics, synchronization, and progress modes.

use armci::{Armci, ArmciConfig, ConsistencyMode, ProgressMode, Strided};
use desim::{Sim, SimDuration, SimTime};
use pami_sim::{Machine, MachineConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn setup(
    nprocs: usize,
    mcfg: impl FnOnce(MachineConfig) -> MachineConfig,
    acfg: ArmciConfig,
) -> (Sim, Armci) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        mcfg(MachineConfig::new(nprocs).procs_per_node(1)),
    );
    let armci = Armci::new(machine, acfg);
    (sim, armci)
}

fn finish(sim: &Sim) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(10));
    sim.shutdown();
}

#[test]
fn put_get_round_trip_rdma() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        let src = r0.malloc(4096).await;
        let dst = r1.malloc(4096).await;
        let back = r0.malloc(4096).await;
        r0.pami().write_bytes(src, &[0xAB; 4096]);
        r0.put(1, src, dst, 4096).await;
        r0.fence(1).await;
        r0.get(1, back, dst, 4096).await;
        assert_eq!(r0.pami().read_bytes(back, 4096), vec![0xAB; 4096]);
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
    // Both transfers should have used RDMA.
    assert_eq!(a.machine().stats().counter("armci.put_rdma"), 1);
    assert_eq!(a.machine().stats().counter("armci.get_rdma"), 1);
    assert_eq!(a.machine().stats().counter("armci.get_fallback"), 0);
}

#[test]
fn fallback_used_when_regions_unavailable() {
    // Region limit 0: nothing can register; every transfer takes the
    // fall-back path yet data stays correct.
    let (sim, a) = setup(2, |m| m.memregion_limit(Some(0)), ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let done = Rc::new(RefCell::new(false));
    let done2 = Rc::clone(&done);
    sim.spawn(async move {
        let src = r0.malloc(512).await;
        let dst = r1.malloc(512).await;
        let back = r0.malloc(512).await;
        r0.pami().write_bytes(src, &[7; 512]);
        r0.put(1, src, dst, 512).await;
        r0.fence(1).await;
        r0.get(1, back, dst, 512).await;
        assert_eq!(r0.pami().read_bytes(back, 512), vec![7; 512]);
        *done2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*done.borrow());
    let stats = a.machine().stats();
    assert_eq!(stats.counter("armci.put_fallback"), 1);
    assert_eq!(stats.counter("armci.get_fallback"), 1);
    assert_eq!(stats.counter("armci.put_rdma"), 0);
    assert_eq!(stats.counter("armci.get_rdma"), 0);
    assert_eq!(stats.counter("armci.malloc_unregistered"), 3);
}

#[test]
fn region_cache_avoids_repeat_queries() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let dst = r1.malloc(8192).await;
        let buf = r0.malloc(8192).await;
        for _ in 0..5 {
            r0.get(1, buf, dst, 1024).await;
        }
    });
    finish(&sim);
    // One miss -> one AM query; the rest hit the cache.
    assert_eq!(a.machine().stats().counter("armci.region_query"), 1);
    let (hits, misses, _) = a.region_cache_totals();
    assert_eq!(misses, 1);
    assert!(hits >= 4);
}

#[test]
fn acc_then_get_sees_consistent_value() {
    // Location consistency: a get following an accumulate to the same
    // structure must observe the accumulated data.
    for mode in [ConsistencyMode::PerTarget, ConsistencyMode::PerRegion] {
        let (sim, a) = setup(2, |m| m, ArmciConfig::default().consistency(mode));
        let r0 = a.rank(0);
        let r1 = a.rank(1);
        let got = Rc::new(RefCell::new(Vec::new()));
        let got2 = Rc::clone(&got);
        sim.spawn(async move {
            let dst = r1.malloc(8 * 8).await;
            r1.pami().write_f64s(dst, &[1.0; 8]);
            let src = r0.malloc(8 * 8).await;
            r0.pami().write_f64s(src, &[2.0; 8]);
            let back = r0.malloc(8 * 8).await;
            // Warm the region cache so the acc can know its region key.
            r0.get(1, back, dst, 64).await;
            r0.nbacc(1, src, dst, 8, 3.0).await;
            // Unfenced get: the runtime must fence the conflicting acc first.
            r0.get(1, back, dst, 64).await;
            *got2.borrow_mut() = r0.pami().read_f64s(back, 8);
        });
        finish(&sim);
        assert_eq!(*got.borrow(), vec![7.0; 8], "mode {mode:?}");
        assert!(a.induced_fences() >= 1, "mode {mode:?}");
    }
}

#[test]
fn per_region_mode_skips_fence_for_disjoint_structures() {
    // The dgemm pattern: accumulate into C while getting from A must not
    // fence under cs_mr, but must under the naive per-target scheme.
    let mut induced = Vec::new();
    for mode in [ConsistencyMode::PerTarget, ConsistencyMode::PerRegion] {
        let (sim, a) = setup(2, |m| m, ArmciConfig::default().consistency(mode));
        let r0 = a.rank(0);
        let r1 = a.rank(1);
        sim.spawn(async move {
            let a_mat = r1.malloc(4096).await; // structure A at target
            let c_mat = r1.malloc(4096).await; // structure C at target
            let src = r0.malloc(4096).await;
            let buf = r0.malloc(4096).await;
            // Warm caches for both structures.
            r0.get(1, buf, a_mat, 512).await;
            r0.get(1, buf, c_mat, 512).await;
            for _ in 0..4 {
                r0.nbacc(1, src, c_mat, 64, 1.0).await;
                r0.get(1, buf, a_mat, 512).await; // disjoint read
            }
            r0.fence_all().await;
        });
        finish(&sim);
        induced.push(a.induced_fences());
    }
    assert!(induced[0] >= 4, "naive mode must fence: {induced:?}");
    assert_eq!(
        induced[1], 0,
        "cs_mr must not fence disjoint reads: {induced:?}"
    );
}

#[test]
fn strided_round_trip_zero_copy() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default().pack_threshold(512));
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        // Remote 4 rows x 1KB with ld 2KB; local dense.
        let remote_base = r1.malloc(8 * 2048).await;
        let local_base = r0.malloc(4 * 1024).await;
        let back = r0.malloc(4 * 1024).await;
        for row in 0..4usize {
            r0.pami()
                .write_bytes(local_base + row * 1024, &[row as u8 + 1; 1024]);
        }
        let local = Strided::patch2d(local_base, 1024, 4, 1024);
        let remote = Strided::patch2d(remote_base, 1024, 4, 2048);
        r0.put_strided(1, &local, &remote).await;
        r0.fence(1).await;
        let local_back = Strided::patch2d(back, 1024, 4, 1024);
        r0.get_strided(1, &local_back, &remote).await;
        for row in 0..4usize {
            assert_eq!(
                r0.pami().read_bytes(back + row * 1024, 1024),
                vec![row as u8 + 1; 1024],
                "row {row}"
            );
        }
        // Check data actually landed strided at the target.
        assert_eq!(
            r1.pami().read_bytes(remote_base + 2048, 4),
            vec![2, 2, 2, 2]
        );
        assert_eq!(
            r1.pami().read_bytes(remote_base + 1024, 4),
            vec![0, 0, 0, 0]
        ); // gap untouched
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
    assert_eq!(a.machine().stats().counter("armci.strided_zero_copy"), 2);
    assert_eq!(a.machine().stats().counter("armci.strided_packed"), 0);
}

#[test]
fn strided_small_chunks_use_packed_path() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default().pack_threshold(512));
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let remote_base = r1.malloc(64 * 256).await;
        let local_base = r0.malloc(64 * 16).await;
        for i in 0..64usize {
            r1.pami().write_bytes(remote_base + i * 256, &[i as u8; 16]);
        }
        // Tall-skinny: 64 chunks of 16 bytes.
        let remote = Strided::patch2d(remote_base, 16, 64, 256);
        let local = Strided::patch2d(local_base, 16, 64, 16);
        r0.get_strided(1, &local, &remote).await;
        for i in 0..64usize {
            assert_eq!(
                r0.pami().read_bytes(local_base + i * 16, 16),
                vec![i as u8; 16]
            );
        }
    });
    finish(&sim);
    assert_eq!(a.machine().stats().counter("armci.strided_packed"), 1);
    assert_eq!(a.machine().stats().counter("armci.strided_zero_copy"), 0);
}

#[test]
fn strided_acc_accumulates_patch() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    sim.spawn(async move {
        let remote_base = r1.malloc(4 * 64).await; // 4 rows x 8 f64, ld 8 f64
        for row in 0..4usize {
            r1.pami().write_f64s(remote_base + row * 64, &[1.0; 8]);
        }
        let local_base = r0.malloc(4 * 64).await;
        for row in 0..4usize {
            r0.pami()
                .write_f64s(local_base + row * 64, &[row as f64; 8]);
        }
        let local = Strided::patch2d(local_base, 64, 4, 64);
        let remote = Strided::patch2d(remote_base, 64, 4, 64);
        r0.acc_strided(1, &local, &remote, 2.0).await;
        r0.fence(1).await;
        for row in 0..4usize {
            assert_eq!(
                r1.pami().read_f64s(remote_base + row * 64, 8),
                vec![1.0 + 2.0 * row as f64; 8],
                "row {row}"
            );
        }
    });
    finish(&sim);
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let (sim, a) = setup(4, |m| m, ArmciConfig::default());
    let times = Rc::new(RefCell::new(Vec::new()));
    for r in 0..4 {
        let rk = a.rank(r);
        let s = sim.clone();
        let times = Rc::clone(&times);
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(r as u64 * 50)).await;
            rk.barrier().await;
            times.borrow_mut().push(s.now());
        });
    }
    finish(&sim);
    let times = times.borrow();
    assert_eq!(times.len(), 4);
    let first = times[0];
    assert!(times.iter().all(|&t| t == first), "all released together");
    // Released no earlier than the last arrival (150us) plus barrier cost.
    assert!(first >= SimTime::ZERO + SimDuration::from_us(150));
}

#[test]
fn barrier_fences_outstanding_writes() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let seen = Rc::new(RefCell::new(-1.0));
    let seen2 = Rc::clone(&seen);
    let dst = a.rank(1).alloc_unregistered(64);
    {
        let r0 = r0.clone();
        sim.spawn(async move {
            let src = r0.malloc(64).await;
            r0.pami().write_f64s(src, &[5.0; 8]);
            r0.nbacc(1, src, dst, 8, 1.0).await;
            r0.barrier().await; // must flush the acc
        });
    }
    sim.spawn(async move {
        r1.barrier().await;
        *seen2.borrow_mut() = r1.pami().read_f64s(dst, 1)[0];
    });
    finish(&sim);
    assert_eq!(*seen.borrow(), 5.0);
}

#[test]
fn counter_semantics_across_many_ranks() {
    let p = 16;
    let (sim, a) = setup(p, |m| m, ArmciConfig::default());
    let owner = a.rank(0);
    let counter = owner.alloc_unregistered(8);
    let results = Rc::new(RefCell::new(Vec::new()));
    for r in 0..p {
        let rk = a.rank(r);
        let results = Rc::clone(&results);
        sim.spawn(async move {
            for _ in 0..10 {
                let v = rk.rmw_fetch_add(0, counter, 1).await;
                results.borrow_mut().push(v);
            }
            rk.barrier().await;
        });
    }
    finish(&sim);
    let mut vals = results.borrow().clone();
    vals.sort_unstable();
    assert_eq!(vals, (0..(p as i64 * 10)).collect::<Vec<_>>());
}

#[test]
fn counter_works_in_default_progress_mode() {
    // D mode: the owner services AMOs only inside blocking calls; the final
    // barrier keeps it in progress_wait, so everyone completes.
    let p = 4;
    let (sim, a) = setup(
        p,
        |m| m,
        ArmciConfig::default().progress(ProgressMode::Default),
    );
    let owner = a.rank(0);
    let counter = owner.alloc_unregistered(8);
    let results = Rc::new(RefCell::new(Vec::new()));
    for r in 0..p {
        let rk = a.rank(r);
        let results = Rc::clone(&results);
        sim.spawn(async move {
            for _ in 0..5 {
                let v = rk.rmw_fetch_add(0, counter, 1).await;
                results.borrow_mut().push(v);
            }
            rk.barrier().await;
        });
    }
    finish(&sim);
    let mut vals = results.borrow().clone();
    vals.sort_unstable();
    assert_eq!(vals, (0..(p as i64 * 5)).collect::<Vec<_>>());
}

#[test]
fn mutex_mutual_exclusion() {
    let p = 4;
    let (sim, a) = setup(p, |m| m, ArmciConfig::default());
    let witness = Rc::new(RefCell::new((0usize, 0usize))); // (inside, max)
    let mut handles = Vec::new();
    for r in 0..p {
        let rk = a.rank(r);
        let s = sim.clone();
        let w = Rc::clone(&witness);
        handles.push(sim.spawn(async move {
            rk.create_mutexes(1).await;
            for _ in 0..3 {
                rk.lock(0, 0).await;
                {
                    let mut w = w.borrow_mut();
                    w.0 += 1;
                    w.1 = w.1.max(w.0);
                }
                s.sleep(SimDuration::from_us(5)).await;
                witness_dec(&w);
                rk.unlock(0, 0).await;
            }
            rk.barrier().await;
        }));
    }
    finish(&sim);
    for h in &handles {
        assert!(h.is_done(), "a rank did not finish (deadlock?)");
    }
    assert_eq!(witness.borrow().1, 1, "critical section overlapped");
}

fn witness_dec(w: &Rc<RefCell<(usize, usize)>>) {
    w.borrow_mut().0 -= 1;
}

#[test]
fn notify_wait_pairwise_sync() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let order = Rc::new(RefCell::new(Vec::<&'static str>::new()));
    {
        let order = Rc::clone(&order);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(100)).await;
            order.borrow_mut().push("producer-done");
            r0.notify(1).await;
            r0.barrier().await;
        });
    }
    {
        let order = Rc::clone(&order);
        sim.spawn(async move {
            r1.wait_notify(0, 1).await;
            order.borrow_mut().push("consumer-resumed");
            r1.barrier().await;
        });
    }
    finish(&sim);
    assert_eq!(&*order.borrow(), &["producer-done", "consumer-resumed"]);
}

#[test]
fn wait_all_flushes_implicit_handles() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let ok = Rc::new(RefCell::new(false));
    let ok2 = Rc::clone(&ok);
    sim.spawn(async move {
        let src = r0.malloc(8192).await;
        let dst = r1.malloc(8192).await;
        for i in 0..8 {
            r0.nbput(1, src + i * 1024, dst + i * 1024, 1024).await;
        }
        r0.wait_all().await;
        r0.fence(1).await;
        *ok2.borrow_mut() = true;
    });
    finish(&sim);
    assert!(*ok.borrow());
    assert_eq!(a.machine().stats().counter("armci.put"), 8);
}

#[test]
fn nb_handle_test_transitions() {
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let observed = Rc::new(RefCell::new((true, false)));
    let obs = Rc::clone(&observed);
    sim.spawn(async move {
        let src = r0.malloc(1 << 20).await;
        let dst = r1.malloc(1 << 20).await;
        let h = r0.nbget(1, src, dst, 1 << 20).await;
        let before = h.test(); // 1MB get cannot be instant
        r0.wait(&h).await;
        let after = h.test();
        *obs.borrow_mut() = (before, after);
    });
    finish(&sim);
    let (before, after) = *observed.borrow();
    assert!(!before);
    assert!(after);
}

#[test]
fn get_latency_through_armci_matches_paper() {
    // The full ARMCI stack (endpoint creation amortized, region cached)
    // still delivers the 2.89us adjacent-node 16B get of Fig 3.
    let (sim, a) = setup(2, |m| m, ArmciConfig::default());
    let r0 = a.rank(0);
    let r1 = a.rank(1);
    let lat = Rc::new(RefCell::new(0.0f64));
    let lat2 = Rc::clone(&lat);
    let s = sim.clone();
    sim.spawn(async move {
        let dst = r1.malloc(4096).await;
        let buf = r0.malloc(4096).await;
        // Warm endpoint + region cache.
        r0.get(1, buf, dst, 16).await;
        let t0 = s.now();
        let n = 100;
        for _ in 0..n {
            r0.get(1, buf, dst, 16).await;
        }
        *lat2.borrow_mut() = (s.now() - t0).as_us() / n as f64;
    });
    finish(&sim);
    let l = *lat.borrow();
    assert!((l - 2.89).abs() < 0.05, "ARMCI 16B get latency {l}");
}
