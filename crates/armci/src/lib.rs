#![warn(missing_docs)]
//! # armci — scalable PGAS communication runtime on simulated Blue Gene/Q
//!
//! Rust reproduction of the communication subsystem from *Building Scalable
//! PGAS Communication Subsystem on Blue Gene/Q* (Vishnu, Kerbyson, Barker,
//! van Dam — IPPS 2013). This crate is the paper's primary contribution: an
//! ARMCI-style one-sided communication runtime layered on a PAMI-like
//! messaging interface ([`pami_sim`]), providing:
//!
//! * **contiguous get/put/accumulate** with RDMA fast paths and an
//!   active-message fall-back protocol (paper Eqs. 7–8), blocking and
//!   non-blocking with explicit/implicit handles;
//! * **uniformly non-contiguous (strided) transfers** as chunk lists of
//!   non-blocking RDMA operations (Eq. 9), with a packed typed-datatype path
//!   for tall-skinny shapes;
//! * **endpoint caching** and a bounded **LFU remote memory-region cache**
//!   whose misses are served by active messages to the owner (§III-B);
//! * **atomic memory operations** (fetch-and-add / swap / compare-and-swap)
//!   for load-balance counters, serviced in target software — accelerated by
//!   an optional **asynchronous progress thread** (§III-D);
//! * **location consistency** with either the naive per-target status or the
//!   paper's per-memory-region (`cs_mr`) tracking that eliminates
//!   false-positive fences between distinct distributed structures (§III-E);
//! * fences, barriers, mutexes, and pairwise notify/wait.
//!
//! ```
//! use desim::Sim;
//! use pami_sim::{Machine, MachineConfig};
//! use armci::{Armci, ArmciConfig};
//!
//! let sim = Sim::new();
//! let machine = Machine::new(sim.clone(), MachineConfig::new(2));
//! let armci = Armci::new(machine, ArmciConfig::default());
//! let (r0, r1) = (armci.rank(0), armci.rank(1));
//! sim.spawn(async move {
//!     let src = r0.malloc(1024).await;
//!     let dst = r1.malloc(1024).await;
//!     r0.pami().write_bytes(src, &[42u8; 1024]);
//!     r0.put(1, src, dst, 1024).await;
//!     r0.fence(1).await;
//!     assert_eq!(r1.pami().read_bytes(dst, 1024), vec![42u8; 1024]);
//! });
//! sim.run();
//! ```

pub mod collectives;
pub mod consistency;
pub mod handle;
pub mod model;
pub mod ops;
pub mod region_cache;
pub mod runtime;
pub mod strided;

pub use collectives::ReduceOp;
pub use consistency::{ConsistencyMode, ConsistencyTracker};
pub use handle::{NbHandle, OpKind};
pub use model::{FailureMode, RetryPolicy};
pub use ops::ArmciRank;
pub use region_cache::{RegionCache, RemoteRegion};
pub use runtime::{Armci, ArmciConfig, ProgressMode};
pub use strided::Strided;
