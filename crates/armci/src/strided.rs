//! Uniformly non-contiguous (strided) datatype descriptors (§III-C2).
//!
//! ARMCI represents multi-dimensional patch transfers compactly: a base
//! offset, the contiguous chunk size `l0` (`count[0]` bytes), and per-level
//! repetition counts and byte strides. [`Strided::chunks`] enumerates the
//! contiguous pieces, which the runtime either ships as a list of
//! non-blocking RDMA operations (zero-copy, Eq. 9) or through the packed
//! typed-datatype path for tall-skinny shapes.

/// A uniformly strided transfer descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Strided {
    /// Byte offset of the first chunk.
    pub offset: usize,
    /// Bytes per contiguous chunk (`l0 = count[0]`).
    pub chunk: usize,
    /// Repetition count per stride level (`count[1..]`), innermost first.
    pub counts: Vec<usize>,
    /// Byte stride per level, innermost first. `strides.len() == counts.len()`.
    pub strides: Vec<usize>,
}

impl Strided {
    /// A fully contiguous descriptor.
    pub fn contiguous(offset: usize, len: usize) -> Strided {
        Strided {
            offset,
            chunk: len,
            counts: Vec::new(),
            strides: Vec::new(),
        }
    }

    /// A 2D patch: `rows` rows of `row_bytes`, consecutive rows `ld_bytes`
    /// apart (the leading dimension), starting at `offset`. This is the
    /// common case for patches of block-distributed dense matrices.
    pub fn patch2d(offset: usize, row_bytes: usize, rows: usize, ld_bytes: usize) -> Strided {
        assert!(ld_bytes >= row_bytes, "leading dimension smaller than row");
        Strided {
            offset,
            chunk: row_bytes,
            counts: vec![rows],
            strides: vec![ld_bytes],
        }
    }

    /// Number of stride levels (`s-1` in the paper's notation).
    pub fn levels(&self) -> usize {
        self.counts.len()
    }

    /// Number of contiguous chunks (`m / l0`).
    pub fn nchunks(&self) -> usize {
        self.counts.iter().product::<usize>().max(1)
    }

    /// Total payload bytes (`m`).
    pub fn total_bytes(&self) -> usize {
        self.chunk * self.nchunks()
    }

    /// Collapse levels whose stride equals the extent below them (dense
    /// packing): e.g. a 2D patch whose leading dimension equals the row
    /// length is really one contiguous chunk. ARMCI performs the same
    /// coalescing before building its chunk list.
    pub fn normalized(&self) -> Strided {
        let mut out = self.clone();
        while let (Some(&count0), Some(&stride0)) = (out.counts.first(), out.strides.first()) {
            if stride0 == out.chunk {
                out.chunk *= count0;
                out.counts.remove(0);
                out.strides.remove(0);
            } else {
                break;
            }
        }
        out
    }

    /// Enumerate the `(offset, len)` of every contiguous chunk, in canonical
    /// (innermost-level-fastest) order. Dense levels are coalesced first.
    pub fn chunks(&self) -> Vec<(usize, usize)> {
        assert_eq!(
            self.counts.len(),
            self.strides.len(),
            "counts/strides length mismatch"
        );
        let norm = self.normalized();
        let n = norm.nchunks();
        let mut out = Vec::with_capacity(n);
        let mut idx = vec![0usize; norm.counts.len()];
        loop {
            let off = norm.offset
                + idx
                    .iter()
                    .zip(&norm.strides)
                    .map(|(&i, &s)| i * s)
                    .sum::<usize>();
            out.push((off, norm.chunk));
            // Odometer increment, innermost level first.
            let mut level = 0;
            loop {
                if level == norm.counts.len() {
                    return out;
                }
                idx[level] += 1;
                if idx[level] < norm.counts[level] {
                    break;
                }
                idx[level] = 0;
                level += 1;
            }
        }
    }

    /// True when two descriptors describe transfers of the same total size
    /// (the local and remote sides of one strided call; chunk boundaries may
    /// differ — [`Strided::pair_chunks`] re-splits them).
    pub fn compatible(&self, other: &Strided) -> bool {
        self.total_bytes() == other.total_bytes()
    }

    /// Pair up the contiguous pieces of two shape-compatible descriptors,
    /// splitting at common boundaries so each pair has equal length (needed
    /// when dense coalescing merges chunks on one side only). Returns
    /// `((local_off, len), (remote_off, len))` pairs in canonical order.
    pub fn pair_chunks(a: &Strided, b: &Strided) -> Vec<((usize, usize), (usize, usize))> {
        let ac = a.chunks();
        let bc = b.chunks();
        let mut out = Vec::with_capacity(ac.len().max(bc.len()));
        let (mut i, mut j) = (0usize, 0usize);
        let (mut aoff, mut alen) = ac.first().copied().unwrap_or((0, 0));
        let (mut boff, mut blen) = bc.first().copied().unwrap_or((0, 0));
        while i < ac.len() && j < bc.len() {
            let take = alen.min(blen);
            out.push(((aoff, take), (boff, take)));
            aoff += take;
            alen -= take;
            boff += take;
            blen -= take;
            if alen == 0 {
                i += 1;
                if i < ac.len() {
                    (aoff, alen) = ac[i];
                }
            }
            if blen == 0 {
                j += 1;
                if j < bc.len() {
                    (boff, blen) = bc[j];
                }
            }
        }
        assert!(
            i >= ac.len() && j >= bc.len(),
            "descriptors have different total sizes"
        );
        out
    }

    /// Whether any two chunks overlap (always false for well-formed
    /// descriptors with strides ≥ chunk; used by property tests).
    pub fn self_overlapping(&self) -> bool {
        let mut ranges: Vec<(usize, usize)> = self.chunks();
        ranges.sort_unstable();
        ranges.windows(2).any(|w| w[0].0 + w[0].1 > w[1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_is_one_chunk() {
        let s = Strided::contiguous(64, 4096);
        assert_eq!(s.nchunks(), 1);
        assert_eq!(s.total_bytes(), 4096);
        assert_eq!(s.chunks(), vec![(64, 4096)]);
        assert_eq!(s.levels(), 0);
    }

    #[test]
    fn patch2d_chunks() {
        // 3 rows of 16 bytes, leading dimension 100.
        let s = Strided::patch2d(1000, 16, 3, 100);
        assert_eq!(s.nchunks(), 3);
        assert_eq!(s.total_bytes(), 48);
        assert_eq!(s.chunks(), vec![(1000, 16), (1100, 16), (1200, 16)]);
    }

    #[test]
    fn three_level_odometer_order() {
        let s = Strided {
            offset: 0,
            chunk: 4,
            counts: vec![2, 3],
            strides: vec![10, 100],
        };
        assert_eq!(s.nchunks(), 6);
        assert_eq!(
            s.chunks(),
            vec![(0, 4), (10, 4), (100, 4), (110, 4), (200, 4), (210, 4)]
        );
    }

    #[test]
    fn compatibility() {
        let a = Strided::patch2d(0, 8, 4, 32);
        let b = Strided::patch2d(512, 8, 4, 64);
        let c = Strided::patch2d(0, 16, 4, 64);
        assert!(a.compatible(&b));
        assert!(!a.compatible(&c));
    }

    #[test]
    fn overlap_detection() {
        let ok = Strided::patch2d(0, 16, 3, 16); // dense: touching, no overlap
        assert!(!ok.self_overlapping());
        let bad = Strided {
            offset: 0,
            chunk: 20,
            counts: vec![2],
            strides: vec![10], // stride < chunk: overlaps
        };
        assert!(bad.self_overlapping());
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn patch2d_validates_ld() {
        Strided::patch2d(0, 100, 2, 50);
    }
}
