//! Remote memory-region cache with least-frequently-used replacement.
//!
//! RDMA needs the target's memory-region metadata. Caching an entry for every
//! possible (peer, structure) pair costs `σ·ζ·γ` bytes (paper Eq. 5) which is
//! prohibitive under strong scaling (`ζ ≈ p`) on a memory-limited machine, so
//! the cache is bounded: misses are served by an active message to the owner
//! (which requires the owner's progress engine — misses are *expensive*), and
//! the replacement policy is **least frequently used** (paper §III-B).

use std::collections::HashMap;

/// Metadata of a remote rank's registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteRegion {
    /// Start offset of the region in the owner's memory.
    pub off: usize,
    /// Region length in bytes.
    pub len: usize,
}

impl RemoteRegion {
    /// Whether the region fully covers `[off, off+len)`.
    pub fn covers(&self, off: usize, len: usize) -> bool {
        self.off <= off && off + len <= self.off + self.len
    }
}

#[derive(Debug, Clone)]
struct Entry {
    target: usize,
    region: RemoteRegion,
    freq: u64,
    inserted: u64,
}

/// Bounded cache of remote region metadata, LFU replacement.
#[derive(Debug)]
pub struct RegionCache {
    capacity: usize,
    entries: Vec<Entry>,
    by_target: HashMap<usize, Vec<usize>>,
    seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl RegionCache {
    /// Create a cache bounded to `capacity` entries (0 disables caching,
    /// forcing a query round trip on every RDMA attempt).
    pub fn new(capacity: usize) -> RegionCache {
        RegionCache {
            capacity,
            entries: Vec::new(),
            by_target: HashMap::new(),
            seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a cached region of `target` covering `[off, off+len)`,
    /// bumping its use frequency. Records a hit or miss.
    pub fn lookup(&mut self, target: usize, off: usize, len: usize) -> Option<RemoteRegion> {
        let idx = self.by_target.get(&target).and_then(|ids| {
            ids.iter()
                .copied()
                .find(|&i| self.entries[i].region.covers(off, len))
        });
        match idx {
            Some(i) => {
                self.entries[i].freq += 1;
                self.hits += 1;
                Some(self.entries[i].region)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a region fetched from `target`, evicting the globally
    /// least-frequently-used entry if at capacity. Returns the evicted
    /// entry's `(target, region)` if any.
    pub fn insert(&mut self, target: usize, region: RemoteRegion) -> Option<(usize, RemoteRegion)> {
        if self.capacity == 0 {
            return None;
        }
        // Refresh rather than duplicate if an identical entry exists.
        if let Some(ids) = self.by_target.get(&target) {
            if let Some(&i) = ids.iter().find(|&&i| self.entries[i].region == region) {
                self.entries[i].freq += 1;
                return None;
            }
        }
        let mut evicted = None;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.freq, e.inserted))
                .map(|(i, _)| i)
                .expect("nonempty at capacity");
            let e = self.entries.swap_remove(victim);
            self.evictions += 1;
            evicted = Some((e.target, e.region));
            self.rebuild_index();
        }
        self.seq += 1;
        self.entries.push(Entry {
            target,
            region,
            freq: 1,
            inserted: self.seq,
        });
        self.by_target
            .entry(target)
            .or_default()
            .push(self.entries.len() - 1);
        evicted
    }

    fn rebuild_index(&mut self) {
        self.by_target.clear();
        for (i, e) in self.entries.iter().enumerate() {
            self.by_target.entry(e.target).or_default().push(i);
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime cache hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(off: usize, len: usize) -> RemoteRegion {
        RemoteRegion { off, len }
    }

    #[test]
    fn covers_bounds() {
        let r = reg(100, 50);
        assert!(r.covers(100, 50));
        assert!(r.covers(120, 10));
        assert!(!r.covers(90, 20));
        assert!(!r.covers(140, 20));
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = RegionCache::new(4);
        assert_eq!(c.lookup(1, 0, 8), None);
        c.insert(1, reg(0, 1024));
        assert_eq!(c.lookup(1, 0, 8), Some(reg(0, 1024)));
        assert_eq!(c.lookup(1, 2000, 8), None); // not covered
        assert_eq!(c.lookup(2, 0, 8), None); // different target
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = RegionCache::new(2);
        c.insert(1, reg(0, 100));
        c.insert(2, reg(0, 100));
        // Heat up target 1's entry.
        for _ in 0..5 {
            c.lookup(1, 0, 8);
        }
        let evicted = c.insert(3, reg(0, 100));
        assert_eq!(evicted, Some((2, reg(0, 100))));
        assert!(c.lookup(1, 0, 8).is_some());
        assert!(c.lookup(3, 0, 8).is_some());
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lfu_tie_breaks_by_age() {
        let mut c = RegionCache::new(2);
        c.insert(1, reg(0, 100));
        c.insert(2, reg(0, 100));
        // Equal frequency: the older entry (target 1) is evicted.
        let evicted = c.insert(3, reg(0, 100));
        assert_eq!(evicted, Some((1, reg(0, 100))));
    }

    #[test]
    fn capacity_zero_disables_cache() {
        let mut c = RegionCache::new(0);
        assert!(c.insert(1, reg(0, 100)).is_none());
        assert_eq!(c.lookup(1, 0, 8), None);
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_insert_refreshes() {
        let mut c = RegionCache::new(2);
        c.insert(1, reg(0, 100));
        c.insert(1, reg(0, 100));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = RegionCache::new(3);
        for t in 0..10 {
            c.insert(t, reg(t * 10, 10));
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn multiple_regions_same_target() {
        let mut c = RegionCache::new(4);
        c.insert(1, reg(0, 100));
        c.insert(1, reg(1000, 100));
        assert_eq!(c.lookup(1, 50, 10), Some(reg(0, 100)));
        assert_eq!(c.lookup(1, 1050, 10), Some(reg(1000, 100)));
    }
}
