//! Location-consistency tracking of conflicting memory accesses (§III-E).
//!
//! ARMCI provides location consistency: before a **read** (get) from a
//! process is serviced, outstanding **writes** (put/accumulate) to that
//! process must be fenced. The naive algorithm keeps one communication
//! status per target (`cs_tgt`, space `Θ(ζ)`) and therefore fences on *every*
//! get that follows an unfenced write — even when the read and write touch
//! different distributed data structures (the dgemm example: non-blocking
//! gets of A/B must not wait for accumulates into C).
//!
//! The paper's improvement keeps a small status per **memory region**
//! (`cs_mr`, an 8-bit integer per structure; space `Θ(σ·ζ)`): a get only
//! fences writes to the *same* region of the same target. Accumulates are
//! associative, so ordering among them is never enforced.

use std::collections::HashMap;

use desim::Completion;

/// Which conflict-tracking granularity to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyMode {
    /// Naive `cs_tgt`: one status per target; any outstanding write to the
    /// target conflicts with any read from it. Space `Θ(ζ)`, false positives.
    PerTarget,
    /// `cs_mr`: status per (target, memory region). Space `Θ(σ·ζ)`, no
    /// cross-structure false positives.
    PerRegion,
}

/// Key identifying the distributed structure a write touched: the remote
/// region's start offset, or `None` when the write went through the
/// fall-back path (no region metadata — treated conservatively).
pub type RegionKey = Option<usize>;

/// Tracks outstanding (un-fenced) writes and decides which must complete
/// before a read may be issued.
pub struct ConsistencyTracker {
    mode: ConsistencyMode,
    /// Outstanding write completions per (target, region-key).
    writes: HashMap<(usize, RegionKey), Vec<Completion<()>>>,
    induced_fences: u64,
    checks: u64,
}

impl ConsistencyTracker {
    /// Create a tracker for the given mode.
    pub fn new(mode: ConsistencyMode) -> ConsistencyTracker {
        ConsistencyTracker {
            mode,
            writes: HashMap::new(),
            induced_fences: 0,
            checks: 0,
        }
    }

    /// The tracking mode.
    pub fn mode(&self) -> ConsistencyMode {
        self.mode
    }

    /// Record an outstanding write (`done` = its remote completion).
    pub fn record_write(&mut self, target: usize, region: RegionKey, done: Completion<()>) {
        self.writes.entry((target, region)).or_default().push(done);
    }

    /// Drop completions that already fired (cheap lazy pruning).
    fn prune(&mut self) {
        self.writes.retain(|_, v| {
            v.retain(|c| !c.is_complete());
            !v.is_empty()
        });
    }

    /// Completions that must be awaited before a read of `(target, region)`
    /// may be issued. Removes them from the outstanding set; increments the
    /// induced-fence counter when nonempty.
    pub fn conflicts_for_read(&mut self, target: usize, region: RegionKey) -> Vec<Completion<()>> {
        self.checks += 1;
        self.prune();
        let mut out = Vec::new();
        match self.mode {
            ConsistencyMode::PerTarget => {
                // Any write to this target conflicts.
                let keys: Vec<_> = self
                    .writes
                    .keys()
                    .filter(|(t, _)| *t == target)
                    .cloned()
                    .collect();
                for k in keys {
                    out.extend(self.writes.remove(&k).unwrap_or_default());
                }
            }
            ConsistencyMode::PerRegion => {
                // Same region conflicts; region-less (fall-back) writes are
                // conservative and conflict with every read from the target;
                // a region-less read conflicts with every write to the target.
                let keys: Vec<_> = self
                    .writes
                    .keys()
                    .filter(|(t, k)| {
                        *t == target && (region.is_none() || k.is_none() || *k == region)
                    })
                    .cloned()
                    .collect();
                for k in keys {
                    out.extend(self.writes.remove(&k).unwrap_or_default());
                }
            }
        }
        if !out.is_empty() {
            self.induced_fences += 1;
        }
        out
    }

    /// All outstanding writes to `target` (explicit `fence`).
    pub fn drain_target(&mut self, target: usize) -> Vec<Completion<()>> {
        self.prune();
        let keys: Vec<_> = self
            .writes
            .keys()
            .filter(|(t, _)| *t == target)
            .cloned()
            .collect();
        let mut out = Vec::new();
        for k in keys {
            out.extend(self.writes.remove(&k).unwrap_or_default());
        }
        out
    }

    /// All outstanding writes (explicit `fence_all` / barrier).
    pub fn drain_all(&mut self) -> Vec<Completion<()>> {
        self.prune();
        self.writes.drain().flat_map(|(_, v)| v).collect()
    }

    /// Number of reads that were forced to fence.
    pub fn induced_fences(&self) -> u64 {
        self.induced_fences
    }

    /// Number of read-conflict checks performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Outstanding (unpruned) write count, for tests.
    pub fn outstanding(&mut self) -> usize {
        self.prune();
        self.writes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending() -> Completion<()> {
        Completion::new()
    }

    #[test]
    fn per_target_fences_across_regions() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        t.record_write(3, Some(100), pending());
        let conflicts = t.conflicts_for_read(3, Some(999)); // different region
        assert_eq!(conflicts.len(), 1, "naive mode: false positive expected");
        assert_eq!(t.induced_fences(), 1);
    }

    #[test]
    fn per_region_skips_unrelated_structures() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        t.record_write(3, Some(100), pending());
        let conflicts = t.conflicts_for_read(3, Some(999));
        assert!(conflicts.is_empty(), "cs_mr: different region, no fence");
        assert_eq!(t.induced_fences(), 0);
        // Same region does conflict.
        let conflicts = t.conflicts_for_read(3, Some(100));
        assert_eq!(conflicts.len(), 1);
        assert_eq!(t.induced_fences(), 1);
    }

    #[test]
    fn per_region_conservative_for_unknown_regions() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        t.record_write(3, None, pending()); // fall-back write
        assert_eq!(t.conflicts_for_read(3, Some(100)).len(), 1);
        t.record_write(3, Some(50), pending());
        assert_eq!(t.conflicts_for_read(3, None).len(), 1); // fall-back read
    }

    #[test]
    fn reads_from_other_targets_never_conflict() {
        for mode in [ConsistencyMode::PerTarget, ConsistencyMode::PerRegion] {
            let mut t = ConsistencyTracker::new(mode);
            t.record_write(3, Some(100), pending());
            assert!(t.conflicts_for_read(4, Some(100)).is_empty());
        }
    }

    #[test]
    fn completed_writes_are_pruned() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        let done = pending();
        done.complete(());
        t.record_write(3, Some(0), done);
        assert!(t.conflicts_for_read(3, Some(0)).is_empty());
        assert_eq!(t.induced_fences(), 0);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn drain_target_and_all() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerRegion);
        t.record_write(1, Some(0), pending());
        t.record_write(1, Some(8), pending());
        t.record_write(2, Some(0), pending());
        assert_eq!(t.drain_target(1).len(), 2);
        assert_eq!(t.outstanding(), 1);
        assert_eq!(t.drain_all().len(), 1);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn conflicts_are_removed_once_returned() {
        let mut t = ConsistencyTracker::new(ConsistencyMode::PerTarget);
        t.record_write(1, Some(0), pending());
        assert_eq!(t.conflicts_for_read(1, Some(0)).len(), 1);
        assert!(t.conflicts_for_read(1, Some(0)).is_empty());
    }
}
