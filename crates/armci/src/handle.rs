//! Non-blocking request handles.
//!
//! ARMCI supports non-blocking communication with explicit handles (waited
//! individually) and implicit requests (collected by `wait_all`), with
//! MPI-style buffer-reuse semantics: a put's handle completes when the local
//! buffer is reusable, a get's when the data has landed locally.

use desim::{Completion, OpId};

/// What kind of operation a handle tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A get (read): completion = data arrived locally.
    Get,
    /// A put (write): completion = local buffer reusable.
    Put,
    /// An accumulate: completion = local buffer reusable.
    Acc,
}

/// Explicit handle for one non-blocking ARMCI operation.
#[derive(Clone)]
pub struct NbHandle {
    /// Operation kind (decides the completion-processing overhead on wait).
    pub kind: OpKind,
    /// Target rank of the operation.
    pub target: usize,
    /// The caller-visible completion (see [`OpKind`] for what it means).
    pub done: Completion<()>,
    /// Remote (target-side) completion for writes, used by fences; `None`
    /// for gets.
    pub remote: Option<Completion<()>>,
    /// Flight-recorder operation id, when lifecycle recording was on at
    /// issue time. The matching `wait` closes the op's lifecycle record.
    pub op: Option<OpId>,
}

impl NbHandle {
    /// True once the caller-visible completion fired (non-blocking test).
    pub fn test(&self) -> bool {
        self.done.is_complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_reflects_completion() {
        let h = NbHandle {
            kind: OpKind::Get,
            target: 3,
            done: Completion::new(),
            remote: None,
            op: None,
        };
        assert!(!h.test());
        h.done.complete(());
        assert!(h.test());
    }
}
