//! The ARMCI runtime: configuration, initialization, and shared state.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};

use desim::memprof::{self, MemTag};
use desim::{Completion, FxHashMap, Sim};
use pami_sim::{Machine, PamiRank};

/// Per-rank ARMCI runtime state (caches, implicit sets, reply maps).
static HANDLES_TAG: MemTag = MemTag::new("armci.handles");

use crate::collectives::CollectiveEngine;
use crate::consistency::{ConsistencyMode, ConsistencyTracker};
use crate::region_cache::{RegionCache, RemoteRegion};

/// Progress-engine configuration (the paper's central design axis, §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// "D": remote software requests (AMOs, fall-back gets, accumulates) are
    /// serviced only while the main thread sits inside a blocking ARMCI call.
    Default,
    /// "AT": a dedicated SMT progress thread services them continuously.
    AsyncThread,
}

/// ARMCI runtime configuration.
#[derive(Debug, Clone)]
pub struct ArmciConfig {
    /// Progress mode (D vs AT).
    pub progress: ProgressMode,
    /// Conflict-tracking granularity for location consistency.
    pub consistency: ConsistencyMode,
    /// Per-rank remote memory-region cache capacity (entries).
    pub region_cache_capacity: usize,
    /// Strided transfers with contiguous chunks smaller than this use the
    /// packed typed-datatype path instead of per-chunk RDMA (§III-C2,
    /// "tall-skinny" transfers).
    pub pack_threshold: usize,
}

impl Default for ArmciConfig {
    fn default() -> Self {
        ArmciConfig {
            progress: ProgressMode::AsyncThread,
            consistency: ConsistencyMode::PerRegion,
            region_cache_capacity: 1 << 16,
            pack_threshold: 32,
        }
    }
}

impl ArmciConfig {
    /// Set the progress mode.
    pub fn progress(mut self, p: ProgressMode) -> Self {
        self.progress = p;
        self
    }

    /// Set the consistency mode.
    pub fn consistency(mut self, c: ConsistencyMode) -> Self {
        self.consistency = c;
        self
    }

    /// Set the region-cache capacity.
    pub fn region_cache_capacity(mut self, n: usize) -> Self {
        self.region_cache_capacity = n;
        self
    }

    /// Set the packed-path threshold.
    pub fn pack_threshold(mut self, bytes: usize) -> Self {
        self.pack_threshold = bytes;
        self
    }
}

/// AM dispatch ids used internally by the runtime.
pub(crate) const DISPATCH_REGION_QUERY: u16 = 1;
pub(crate) const DISPATCH_REGION_REPLY: u16 = 2;
/// AM-backed notify (header = `[seq i64]`): the handler writes the sender's
/// slot of the destination's notify-cell array, so [`crate::ArmciRank::wait_notify`]
/// observes it exactly as it does a software-put notify.
pub(crate) const DISPATCH_NOTIFY_AM: u16 = 3;
/// AM-backed accumulate (header = `[off u64][scale f64]`, payload = f64s):
/// the handler applies `dst[i] += scale·x[i]` at the destination.
pub(crate) const DISPATCH_ACC_AM: u16 = 4;
/// AM fence ping (header = `[reply_id u64]`): the handler echoes the header
/// back as a pong on the unbatched control channel.
pub(crate) const DISPATCH_AM_PING: u16 = 5;
/// AM fence pong: completes the pending fence at the requester.
pub(crate) const DISPATCH_AM_PONG: u16 = 6;

pub(crate) struct RankRt {
    pub region_cache: RefCell<RegionCache>,
    pub consistency: RefCell<ConsistencyTracker>,
    /// Implicit-handle set: local completions of outstanding non-blocking ops.
    pub implicit: RefCell<Vec<Completion<()>>>,
    pub pending_replies: RefCell<HashMap<u64, Completion<Option<RemoteRegion>>>>,
    pub next_reply: Cell<u64>,
    /// Offset of this rank's mutex array (usize::MAX = not created).
    pub mutex_off: Cell<usize>,
    /// Offset of this rank's notify cells (one i64 per peer).
    pub notify_off: Cell<usize>,
    /// Notification sequence numbers sent, per target.
    pub notify_seq: RefCell<HashMap<usize, i64>>,
    /// Outstanding AM-fence pings awaiting their pong.
    pub pending_pings: RefCell<HashMap<u64, Completion<()>>>,
    /// Next AM-fence ping id.
    pub next_ping: Cell<u64>,
}

impl RankRt {
    fn new(cfg: &ArmciConfig) -> RankRt {
        RankRt {
            region_cache: RefCell::new(RegionCache::new(cfg.region_cache_capacity)),
            consistency: RefCell::new(ConsistencyTracker::new(cfg.consistency)),
            implicit: RefCell::new(Vec::new()),
            pending_replies: RefCell::new(HashMap::new()),
            next_reply: Cell::new(0),
            mutex_off: Cell::new(usize::MAX),
            notify_off: Cell::new(usize::MAX),
            notify_seq: RefCell::new(HashMap::new()),
            pending_pings: RefCell::new(HashMap::new()),
            next_ping: Cell::new(0),
        }
    }
}

pub(crate) struct BarrierSt {
    pub arrived: usize,
    pub current: Option<Completion<()>>,
}

/// State of one in-flight collective allocation (keyed by call sequence:
/// every rank must call `malloc_collective` in the same order).
pub(crate) struct CollectiveAlloc {
    pub offs: Vec<usize>,
    pub arrived: usize,
    pub done: Completion<std::rc::Rc<Vec<usize>>>,
}

pub(crate) struct ArmciInner {
    pub machine: Machine,
    pub cfg: ArmciConfig,
    /// Lazily materialized per-rank runtime state, keyed by rank id and
    /// created by the machine's rank-init hook — an untouched rank has no
    /// entry (and costs no bytes) here.
    pub ranks: RefCell<FxHashMap<usize, Rc<RankRt>>>,
    pub barrier: RefCell<BarrierSt>,
    pub nmutexes: Cell<usize>,
    /// In-flight collective allocations, keyed by call sequence number.
    pub collective: RefCell<HashMap<u64, CollectiveAlloc>>,
    /// Per-rank count of `malloc_collective` calls (the ordering key);
    /// ranks that never allocate collectively carry no slot.
    pub collective_seq: RefCell<FxHashMap<usize, u64>>,
    /// Collective-network engine (allreduce/broadcast).
    pub coll: CollectiveEngine,
    /// `armci.inflight` gauge handle, interned by [`Armci::enable_timeline`].
    pub tl_inflight: Cell<Option<desim::SeriesId>>,
    /// Operations begun but not yet locally completed (all ranks), mirrored
    /// into the `armci.inflight` gauge while the timeline is enabled.
    pub inflight: Cell<i64>,
}

/// The ARMCI runtime over a simulated machine. Clone freely.
#[derive(Clone)]
pub struct Armci {
    pub(crate) inner: Rc<ArmciInner>,
}

impl Armci {
    /// Initialize ARMCI over `machine`. Per-rank setup — region-query
    /// active messages, notification cells, async-progress arming — is
    /// deferred to the machine's rank-init hook, so it runs only for ranks
    /// the program actually touches; initialization itself is O(1) in
    /// `nprocs`.
    pub fn new(machine: Machine, cfg: ArmciConfig) -> Armci {
        let _mem = memprof::scope(&HANDLES_TAG);
        let inner = Rc::new(ArmciInner {
            machine: machine.clone(),
            cfg,
            ranks: RefCell::new(FxHashMap::default()),
            barrier: RefCell::new(BarrierSt {
                arrived: 0,
                current: None,
            }),
            nmutexes: Cell::new(0),
            collective: RefCell::new(HashMap::new()),
            collective_seq: RefCell::new(FxHashMap::default()),
            coll: CollectiveEngine::default(),
            tl_inflight: Cell::new(None),
            inflight: Cell::new(0),
        });
        let weak = Rc::downgrade(&inner);
        machine.set_rank_init(Rc::new(move |pr| init_rank(&weak, pr)));
        install_am_handlers(&machine, &Rc::downgrade(&inner));
        // Ranks that materialized before this runtime existed missed the
        // hook: bring them up now, in rank order, exactly as the hook would.
        let a = Armci { inner };
        for r in machine.materialized_ranks() {
            init_rank(&Rc::downgrade(&a.inner), machine.rank(r));
        }
        a
    }

    /// The simulation driving this runtime.
    pub fn sim(&self) -> &Sim {
        self.inner.machine.sim()
    }

    /// The underlying machine.
    pub fn machine(&self) -> &Machine {
        &self.inner.machine
    }

    /// Number of processes.
    pub fn nprocs(&self) -> usize {
        self.inner.machine.nprocs()
    }

    /// Runtime configuration.
    pub fn config(&self) -> &ArmciConfig {
        &self.inner.cfg
    }

    /// Handle for one rank's ARMCI operations.
    pub fn rank(&self, r: usize) -> crate::ArmciRank {
        crate::ArmciRank {
            a: self.clone(),
            r,
            pami: self.inner.machine.rank(r),
        }
    }

    /// Turn on windowed telemetry for this runtime: enables the machine's
    /// [`desim::Timeline`] (network + PAMI producers) and registers the
    /// ARMCI-level `armci.inflight` gauge tracking operations begun but not
    /// yet locally completed. Free until called.
    pub fn enable_timeline(&self, window_ps: u64, max_windows: usize) {
        self.inner.machine.enable_timeline(window_ps, max_windows);
        let tl = self.inner.machine.timeline();
        self.inner
            .tl_inflight
            .set(Some(tl.series("armci.inflight", desim::SeriesKind::Gauge)));
        self.inner.inflight.set(0);
    }

    /// Adjust the in-flight-operations mirror and record the gauge sample.
    /// One `Cell` read when the timeline is off.
    pub(crate) fn op_inflight(&self, at: desim::SimTime, delta: i64) {
        if let Some(id) = self.inner.tl_inflight.get() {
            let n = self.inner.inflight.get() + delta;
            self.inner.inflight.set(n);
            self.inner.machine.timeline().gauge(id, at, n);
        }
    }

    /// This rank's ARMCI runtime state, materializing the underlying PAMI
    /// rank (and hence running the init hook) on first touch.
    pub(crate) fn rank_rt(&self, r: usize) -> Rc<RankRt> {
        if let Some(rt) = self.inner.ranks.borrow().get(&r) {
            return Rc::clone(rt);
        }
        self.inner.machine.materialize_rank(r);
        if let Some(rt) = self.inner.ranks.borrow().get(&r) {
            return Rc::clone(rt);
        }
        // The rank materialized under an older hook (e.g. a second runtime
        // over the same machine): run this runtime's init directly.
        init_rank(&Rc::downgrade(&self.inner), self.inner.machine.rank(r));
        Rc::clone(
            self.inner
                .ranks
                .borrow()
                .get(&r)
                .expect("init_rank inserts the rank"),
        )
    }

    /// Stop all asynchronous progress threads (finalize).
    pub fn finalize(&self) {
        self.inner.machine.stop_progress_threads();
    }

    /// Region-cache statistics summed over all ranks: `(hits, misses,
    /// evictions)`.
    pub fn region_cache_totals(&self) -> (u64, u64, u64) {
        let mut t = (0, 0, 0);
        for rt in self.inner.ranks.borrow().values() {
            let c = rt.region_cache.borrow();
            t.0 += c.hits();
            t.1 += c.misses();
            t.2 += c.evictions();
        }
        t
    }

    /// Seed `rank`'s remote-region cache with `target`'s region metadata.
    ///
    /// Collective allocation (ARMCI_Malloc / GA create) exchanges region
    /// keys among all ranks at allocation time, so subsequent RDMA needs no
    /// query round trip; this is the σ·ζ·γ term of Eq. 5. The query-on-miss
    /// path remains for non-collective allocations and evicted entries.
    pub fn seed_region(&self, rank: usize, target: usize, off: usize, len: usize) {
        self.rank_rt(rank)
            .region_cache
            .borrow_mut()
            .insert(target, RemoteRegion { off, len });
    }

    /// Resilience-layer counters accumulated so far: `(retries, timeouts,
    /// gave_up)` from the PAMI retry machinery. All zero on a fault-free
    /// run (the counters only exist once a fault plan drops something).
    pub fn retry_counts(&self) -> (u64, u64, u64) {
        let s = self.inner.machine.stats();
        (
            s.counter("pami.retries"),
            s.counter("pami.timeouts"),
            s.counter("pami.gave_up"),
        )
    }

    /// Induced fences (reads forced to wait on writes) summed over ranks.
    pub fn induced_fences(&self) -> u64 {
        self.inner
            .ranks
            .borrow()
            .values()
            .map(|rt| rt.consistency.borrow().induced_fences())
            .sum()
    }
}

/// Bring up one rank's ARMCI state: runtime struct, notification cells,
/// region-query dispatch, async-progress arming. Runs as the machine's
/// rank-init hook the moment the rank's PAMI state materializes — the rank's
/// notification cells are its very first allocation, exactly as they were
/// when initialization looped over every rank eagerly.
fn init_rank(weak: &Weak<ArmciInner>, pr: PamiRank) {
    let Some(inner) = weak.upgrade() else { return };
    if inner.ranks.borrow().contains_key(&pr.id()) {
        return;
    }
    let _mem = memprof::scope(&HANDLES_TAG);
    let rt = Rc::new(RankRt::new(&inner.cfg));
    inner.ranks.borrow_mut().insert(pr.id(), Rc::clone(&rt));
    // Notification cells: one i64 per peer (offsets only — the backing
    // memory grows on first write).
    rt.notify_off.set(pr.alloc(inner.machine.nprocs() * 8));
    let target_ctx = inner.machine.target_ctx();
    install_dispatch(&pr, target_ctx, weak);
    if inner.cfg.progress == ProgressMode::AsyncThread {
        pr.enable_async_progress(target_ctx);
    }
}

/// Install the runtime's machine-global AM handlers (the `send_am` /
/// aggregation surface). Unlike the per-rank region-query dispatch these
/// carry no per-rank state beyond what `ArmciInner` already tracks, so one
/// machine-wide table entry serves every destination.
fn install_am_handlers(machine: &Machine, weak: &Weak<ArmciInner>) {
    // NOTIFY_AM: write the sender's notify cell at the destination. The
    // write is monotone-max so a retransmit-delayed older notify can never
    // roll the cell back below a newer one.
    {
        let weak = weak.clone();
        machine.register_am(
            DISPATCH_NOTIFY_AM,
            Rc::new(move |env, msg| {
                let Some(inner) = weak.upgrade() else { return };
                let seq = i64::from_le_bytes(msg.header[0..8].try_into().expect("8"));
                let rt = inner.ranks.borrow().get(&env.rank).cloned();
                let Some(rt) = rt else { return };
                let cell = rt.notify_off.get() + 8 * msg.src;
                let pr = env.machine.rank(env.rank);
                if pr.read_i64(cell) < seq {
                    pr.write_i64(cell, seq);
                }
            }),
        );
    }
    // ACC_AM: value-carrying accumulate, dst[i] += scale * x[i]. The
    // per-element compute cost is covered by the per-byte deserialize the
    // service loop already charges for each coalesced entry.
    machine.register_am(
        DISPATCH_ACC_AM,
        Rc::new(move |env, msg| {
            let off = u64::from_le_bytes(msg.header[0..8].try_into().expect("8")) as usize;
            let scale = f64::from_le_bytes(msg.header[8..16].try_into().expect("8"));
            let pr = env.machine.rank(env.rank);
            let n = msg.payload.len() / 8;
            let mut cur = pr.read_f64s(off, n);
            for (i, c) in cur.iter_mut().enumerate() {
                let x = f64::from_le_bytes(msg.payload[i * 8..i * 8 + 8].try_into().expect("8"));
                *c += scale * x;
            }
            pr.write_f64s(off, &cur);
        }),
    );
    // AM_PING: echo the header back as a pong on the unbatched legacy
    // channel — the pong is a completion signal, not ordered data, and must
    // not sit out a batch window at the target.
    machine.register_am(
        DISPATCH_AM_PING,
        Rc::new(move |env, msg| {
            let responder = env.machine.rank(env.rank);
            let src = msg.src;
            let header = msg.header;
            env.machine.sim().spawn(async move {
                responder
                    .am_send(src, DISPATCH_AM_PONG, header, Vec::new())
                    .await;
            });
        }),
    );
    // AM_PONG: complete the pending fence at the requester.
    {
        let weak = weak.clone();
        machine.register_am(
            DISPATCH_AM_PONG,
            Rc::new(move |env, msg| {
                let Some(inner) = weak.upgrade() else { return };
                let reply_id = u64::from_le_bytes(msg.header[0..8].try_into().expect("8"));
                let pending = inner
                    .ranks
                    .borrow()
                    .get(&env.rank)
                    .and_then(|rt| rt.pending_pings.borrow_mut().remove(&reply_id));
                if let Some(c) = pending {
                    c.complete(());
                }
            }),
        );
    }
}

/// Install the runtime's active-message handlers on one rank.
fn install_dispatch(pr: &PamiRank, ctx: usize, weak: &Weak<ArmciInner>) {
    // REGION_QUERY: header = [reply_id u64][off u64][len u64]; the owner looks
    // up its registered regions and replies with REGION_REPLY.
    {
        let pr_capture = pr.clone();
        pr.register_dispatch(
            ctx,
            DISPATCH_REGION_QUERY,
            Rc::new(move |env, msg| {
                let reply_id = u64::from_le_bytes(msg.header[0..8].try_into().expect("8"));
                let off = u64::from_le_bytes(msg.header[8..16].try_into().expect("8")) as usize;
                let len = u64::from_le_bytes(msg.header[16..24].try_into().expect("8")) as usize;
                let found = pr_capture
                    .find_region(off, len)
                    .map(|id| pr_capture.region_bounds(id));
                let mut reply = Vec::with_capacity(25);
                reply.extend_from_slice(&reply_id.to_le_bytes());
                reply.push(u8::from(found.is_some()));
                let (roff, rlen) = found.unwrap_or((0, 0));
                reply.extend_from_slice(&(roff as u64).to_le_bytes());
                reply.extend_from_slice(&(rlen as u64).to_le_bytes());
                let responder = env.machine.rank(env.rank);
                let src = msg.src;
                env.machine.sim().spawn(async move {
                    responder
                        .am_send(src, DISPATCH_REGION_REPLY, reply, Vec::new())
                        .await;
                });
            }),
        );
    }
    // REGION_REPLY: complete the pending query at the requester.
    {
        let weak = weak.clone();
        pr.register_dispatch(
            ctx,
            DISPATCH_REGION_REPLY,
            Rc::new(move |env, msg| {
                let Some(inner) = weak.upgrade() else { return };
                let reply_id = u64::from_le_bytes(msg.header[0..8].try_into().expect("8"));
                let found = msg.header[8] != 0;
                let off = u64::from_le_bytes(msg.header[9..17].try_into().expect("8")) as usize;
                let len = u64::from_le_bytes(msg.header[17..25].try_into().expect("8")) as usize;
                let pending = inner
                    .ranks
                    .borrow()
                    .get(&env.rank)
                    .and_then(|rt| rt.pending_replies.borrow_mut().remove(&reply_id));
                if let Some(c) = pending {
                    c.complete(found.then_some(RemoteRegion { off, len }));
                }
            }),
        );
    }
}
