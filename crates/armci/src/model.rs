//! Time–space complexity models of the communication subsystem
//! (paper §III-B, Table I, Eqs. 1–6).
//!
//! These closed forms are used by tests to validate that the implementation's
//! actual accounting (see `pami_sim::SpaceAccount`) matches the paper's
//! models, and by the Table II bench to print predicted-vs-measured rows.
//!
//! | # | Property | Symbol |
//! |---|----------|--------|
//! | 1 | Message size for data transfer | `m` |
//! | 2 | Total number of processes | `p` |
//! | 3 | Processes per node | `c` |
//! | 4 | Endpoint space utilization | `α` |
//! | 5 | Endpoint creation time | `β` |
//! | 6 | Memory region space utilization | `γ` |
//! | 7 | Memory region creation time | `δ` |
//! | 8 | Context space utilization | `ε` |
//! | 9 | Context creation time | (`ρ` row 9) |
//! | 10 | Number of contexts | `ρ` |
//! | 11 | Communication clique | `ζ` |
//! | 12 | Active global address structures | `σ` |
//! | 13 | Local communication buffers | `τ` |

use desim::SimDuration;
use torus5d::BgqParams;

/// Eq. 1 — context space per process: `M_c = ε·ρ`.
pub fn context_space(eps: usize, rho: usize) -> usize {
    eps * rho
}

/// Eq. 2 — context creation time per process: `T_c = ρ·t_ctx`.
pub fn context_time(t_ctx: SimDuration, rho: usize) -> SimDuration {
    t_ctx * rho as u64
}

/// Eq. 3 — endpoint space for communication clique ζ: `M_e = ζ·α·ρ`.
pub fn endpoint_space(zeta: usize, alpha: usize, rho: usize) -> usize {
    zeta * alpha * rho
}

/// Eq. 4 — endpoint creation time for clique ζ: `T_e = ζ·β·ρ`.
pub fn endpoint_time(zeta: usize, beta: SimDuration, rho: usize) -> SimDuration {
    beta * (zeta * rho) as u64
}

/// Eq. 5 — memory-region space: `M_r = τ·γ + σ·ζ·γ` (local buffers plus the
/// cached clique metadata for σ active structures).
pub fn region_space(tau: usize, gamma: usize, sigma: usize, zeta: usize) -> usize {
    tau * gamma + sigma * zeta * gamma
}

/// Eq. 6 — memory-region creation time: `T_r = τ·δ + σ·δ` (each local buffer
/// and each local piece of an active structure is registered once).
pub fn region_time(tau: usize, sigma: usize, delta: SimDuration) -> SimDuration {
    delta * (tau + sigma) as u64
}

/// Failure-handling mode surfaced to ARMCI users — re-exported from the
/// PAMI layer, where the timeout/backoff/retry machinery lives.
pub use pami_sim::FailureMode;
/// Timeout/backoff/bounded-retry policy surfaced to ARMCI users.
pub use pami_sim::RetryPolicy;

/// Closed form for the wait a single attempt spends before retransmit
/// number `k+1` goes out: `timeout + backoff·2^k` (see
/// [`RetryPolicy::backoff_delay`]).
pub fn retry_attempt_delay(p: &RetryPolicy, k: u32) -> SimDuration {
    p.timeout + p.backoff_delay(k)
}

/// Closed form for the total delay an operation accumulates after `k`
/// consecutive drops: `Σ_{i<k} (timeout + backoff·2^i)
/// = k·timeout + backoff·(2^k − 1)`. This is the worst-case latency added
/// by the resilience layer before either the `k`-th retransmit succeeds or
/// the policy gives up (`k = max_retries + 1`).
pub fn retry_total_delay(p: &RetryPolicy, k: u32) -> SimDuration {
    (0..k).fold(SimDuration::ZERO, |acc, i| acc + retry_attempt_delay(p, i))
}

/// All Table-II style attribute values for a parameter set, as
/// `(name, value)` rows for reporting.
pub fn attribute_rows(p: &BgqParams, rho: usize) -> Vec<(&'static str, String)> {
    vec![
        (
            "Endpoint Space Utilization (alpha)",
            format!("{} Bytes", p.endpoint_bytes),
        ),
        (
            "Endpoint Creation Time (beta)",
            format!("{}", p.endpoint_create),
        ),
        (
            "Memory Region Space Utilization (gamma)",
            format!("{} Bytes", p.memregion_bytes),
        ),
        (
            "Memory Region Creation Time (delta)",
            format!("{}", p.memregion_create),
        ),
        (
            "Context Space Utilization (epsilon)",
            format!("{} Bytes", p.context_bytes),
        ),
        ("Context Creation Time", format!("{}", p.context_create)),
        ("Number of Contexts (rho)", format!("{rho}")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equations_match_paper_examples() {
        let p = BgqParams::default();
        // M_c with one context and ~16KB contexts.
        assert_eq!(context_space(p.context_bytes, 1), p.context_bytes);
        assert_eq!(context_space(p.context_bytes, 2), 2 * p.context_bytes);
        // M_e for a full clique of 4096 with alpha=4: 16 KB/rank — "highly
        // scalable" per the paper.
        assert_eq!(endpoint_space(4096, 4, 1), 16 * 1024);
        // T_e = zeta * beta.
        assert_eq!(
            endpoint_time(100, p.endpoint_create, 1),
            p.endpoint_create * 100
        );
        // M_r with tau=3 local buffers, sigma=7 structures, clique 4096.
        assert_eq!(region_space(3, 8, 7, 4096), 3 * 8 + 7 * 4096 * 8);
        // T_r.
        assert_eq!(
            region_time(3, 7, p.memregion_create),
            p.memregion_create * 10
        );
    }

    #[test]
    fn retry_delay_closed_form_matches_geometric_sum() {
        let p = RetryPolicy::default();
        // k·timeout + backoff·(2^k − 1), for the default 30us/5us policy.
        for k in 0..6u32 {
            let closed = p.timeout * k as u64 + p.backoff * ((1u64 << k) - 1);
            assert_eq!(retry_total_delay(&p, k), closed, "k={k}");
        }
        assert_eq!(retry_total_delay(&p, 0), SimDuration::ZERO);
        assert_eq!(retry_attempt_delay(&p, 2), p.timeout + p.backoff * 4);
    }

    #[test]
    fn attribute_rows_cover_table2() {
        let rows = attribute_rows(&BgqParams::default(), 2);
        assert_eq!(rows.len(), 7);
        assert!(rows
            .iter()
            .any(|(n, v)| n.contains("alpha") && v == "4 Bytes"));
        assert!(rows
            .iter()
            .any(|(n, v)| n.contains("delta") && v == "43.000us"));
    }
}
