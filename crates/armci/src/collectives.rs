//! Collective operations over the BG/Q collective network.
//!
//! Blue Gene/Q integrates a hardware collective/barrier network with the
//! torus (paper §II-A); Global Arrays' `ga_dgop`/`ga_brdcst` and NWChem's
//! convergence checks ride it. The model: all ranks arrive, the combined
//! result is available `barrier_cost(p) + bytes·G_coll` after the last
//! arrival (the collective network runs at link rate with near-constant
//! latency).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use desim::{Completion, FxHashMap};

use crate::ops::ArmciRank;

/// Reduction operator for [`ArmciRank::allreduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl ReduceOp {
    fn apply(self, acc: &mut [f64], xs: &[f64]) {
        for (a, &x) in acc.iter_mut().zip(xs) {
            *a = match self {
                ReduceOp::Sum => *a + x,
                ReduceOp::Max => a.max(x),
                ReduceOp::Min => a.min(x),
            };
        }
    }
}

/// In-flight collective state, keyed by per-kind sequence number.
pub(crate) struct CollectiveOp {
    arrived: usize,
    acc: Vec<f64>,
    bytes_payload: Vec<u8>,
    done: Completion<Rc<(Vec<f64>, Vec<u8>)>>,
}

/// Shared collective-engine state (one per runtime). Per-rank sequence
/// counters are sparse: ranks that never join a collective carry no slot.
#[derive(Default)]
pub(crate) struct CollectiveEngine {
    reduce_seq: RefCell<FxHashMap<usize, u64>>,
    reduces: RefCell<HashMap<u64, CollectiveOp>>,
    bcast_seq: RefCell<FxHashMap<usize, u64>>,
    bcasts: RefCell<HashMap<u64, CollectiveOp>>,
}

fn next_seq(seqs: &RefCell<FxHashMap<usize, u64>>, rank: usize) -> u64 {
    let mut s = seqs.borrow_mut();
    let e = s.entry(rank).or_insert(0);
    let v = *e;
    *e += 1;
    v
}

impl ArmciRank {
    /// All-reduce a vector of f64 over all ranks on the collective network.
    /// Every rank must call it in the same order with the same length.
    pub async fn allreduce_f64(&self, xs: &[f64], op: ReduceOp) -> Vec<f64> {
        let p = self.armci().nprocs();
        let eng = &self.armci().inner.coll;
        let seq = next_seq(&eng.reduce_seq, self.id());
        let (done, ready) = {
            let mut reds = eng.reduces.borrow_mut();
            let st = reds.entry(seq).or_insert_with(|| CollectiveOp {
                arrived: 0,
                acc: Vec::new(),
                bytes_payload: Vec::new(),
                done: Completion::new(),
            });
            if st.acc.is_empty() {
                st.acc = xs.to_vec();
            } else {
                assert_eq!(st.acc.len(), xs.len(), "allreduce length mismatch");
                op.apply(&mut st.acc, xs);
            }
            st.arrived += 1;
            (st.done.clone(), st.arrived == p)
        };
        if ready {
            let st = eng
                .reduces
                .borrow_mut()
                .remove(&seq)
                .expect("collective state present");
            let params = self.armci().machine().params();
            let cost = params.barrier_cost(p) + params.wire_time(xs.len() * 8);
            let result = Rc::new((st.acc, Vec::new()));
            let done2 = st.done.clone();
            self.armci()
                .sim()
                .schedule_in(cost, move || done2.complete(result));
            self.armci().machine().stats().incr("armci.allreduce");
        }
        let out = self.pami().progress_wait(&done).await;
        out.0.clone()
    }

    /// Broadcast bytes from `root` to all ranks over the collective network.
    /// Non-root ranks pass `None` and receive the root's data.
    pub async fn broadcast(&self, root: usize, data: Option<Vec<u8>>) -> Vec<u8> {
        let p = self.armci().nprocs();
        assert_eq!(
            self.id() == root,
            data.is_some(),
            "exactly the root provides data"
        );
        let eng = &self.armci().inner.coll;
        let seq = next_seq(&eng.bcast_seq, self.id());
        let (done, ready, nbytes) = {
            let mut bc = eng.bcasts.borrow_mut();
            let st = bc.entry(seq).or_insert_with(|| CollectiveOp {
                arrived: 0,
                acc: Vec::new(),
                bytes_payload: Vec::new(),
                done: Completion::new(),
            });
            if let Some(d) = data {
                st.bytes_payload = d;
            }
            st.arrived += 1;
            (st.done.clone(), st.arrived == p, st.bytes_payload.len())
        };
        if ready {
            let st = eng
                .bcasts
                .borrow_mut()
                .remove(&seq)
                .expect("collective state present");
            let params = self.armci().machine().params();
            let cost =
                params.barrier_cost(p) + params.wire_time(nbytes.max(st.bytes_payload.len()));
            let result = Rc::new((Vec::new(), st.bytes_payload));
            let done2 = st.done.clone();
            self.armci()
                .sim()
                .schedule_in(cost, move || done2.complete(result));
            self.armci().machine().stats().incr("armci.broadcast");
        }
        let out = self.pami().progress_wait(&done).await;
        out.1.clone()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Armci, ArmciConfig};
    use desim::{Sim, SimDuration, SimTime};
    use pami_sim::{Machine, MachineConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    use super::ReduceOp;

    fn setup(p: usize) -> (Sim, Armci) {
        let sim = Sim::new();
        let machine = Machine::new(
            sim.clone(),
            MachineConfig::new(p).procs_per_node(1).contexts(2),
        );
        let armci = Armci::new(machine, ArmciConfig::default());
        (sim, armci)
    }

    #[test]
    fn allreduce_sum_and_max() {
        let p = 5;
        let (sim, a) = setup(p);
        type Outs = Rc<RefCell<Vec<(Vec<f64>, Vec<f64>)>>>;
        let outs: Outs = Rc::new(RefCell::new(vec![Default::default(); p]));
        for r in 0..p {
            let rk = a.rank(r);
            let outs = Rc::clone(&outs);
            sim.spawn(async move {
                let sum = rk.allreduce_f64(&[r as f64, 1.0], ReduceOp::Sum).await;
                let max = rk
                    .allreduce_f64(&[r as f64, -(r as f64)], ReduceOp::Max)
                    .await;
                outs.borrow_mut()[r] = (sum, max);
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        a.finalize();
        sim.shutdown();
        for r in 0..p {
            let (sum, max) = &outs.borrow()[r];
            assert_eq!(sum, &vec![10.0, 5.0], "rank {r}");
            assert_eq!(max, &vec![4.0, 0.0], "rank {r}");
        }
    }

    #[test]
    fn allreduce_synchronizes_on_last_arrival() {
        let p = 3;
        let (sim, a) = setup(p);
        let times: Rc<RefCell<Vec<f64>>> = Rc::new(RefCell::new(vec![0.0; p]));
        for r in 0..p {
            let rk = a.rank(r);
            let s = sim.clone();
            let times = Rc::clone(&times);
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(r as u64 * 100)).await;
                rk.allreduce_f64(&[1.0], ReduceOp::Sum).await;
                times.borrow_mut()[r] = s.now().as_us();
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        a.finalize();
        sim.shutdown();
        let times = times.borrow();
        assert!(times.iter().all(|&t| t >= 200.0), "{times:?}");
        assert!((times[0] - times[2]).abs() < 1e-9);
    }

    #[test]
    fn broadcast_delivers_root_payload() {
        let p = 4;
        let (sim, a) = setup(p);
        let outs: Rc<RefCell<Vec<Vec<u8>>>> = Rc::new(RefCell::new(vec![Vec::new(); p]));
        for r in 0..p {
            let rk = a.rank(r);
            let outs = Rc::clone(&outs);
            sim.spawn(async move {
                let payload = (r == 2).then(|| vec![7u8, 8, 9]);
                let got = rk.broadcast(2, payload).await;
                outs.borrow_mut()[r] = got;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        a.finalize();
        sim.shutdown();
        for r in 0..p {
            assert_eq!(outs.borrow()[r], vec![7, 8, 9], "rank {r}");
        }
    }

    #[test]
    fn repeated_collectives_keep_order() {
        let p = 3;
        let (sim, a) = setup(p);
        let ok = Rc::new(RefCell::new(0));
        for r in 0..p {
            let rk = a.rank(r);
            let ok = Rc::clone(&ok);
            sim.spawn(async move {
                for round in 0..5 {
                    let s = rk.allreduce_f64(&[round as f64], ReduceOp::Sum).await;
                    assert_eq!(s, vec![(round * 3) as f64]);
                }
                *ok.borrow_mut() += 1;
            });
        }
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        a.finalize();
        sim.shutdown();
        assert_eq!(*ok.borrow(), p);
    }
}
