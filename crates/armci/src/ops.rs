//! Per-rank ARMCI operations: contiguous and strided get/put/accumulate,
//! atomic memory operations, fences, barriers, mutexes and notify/wait.
//!
//! Protocol selection follows §III-C: contiguous transfers use RDMA whenever
//! both the local and the remote memory region are available (remote
//! metadata comes from the LFU region cache, misses cost an active-message
//! round trip to the owner), falling back to the active-message protocol
//! otherwise (Eq. 8 — one extra `o`, plus a dependence on target progress).
//! Strided transfers post a chunk list of non-blocking RDMA operations
//! (Eq. 9) unless the contiguous chunk is below the pack threshold
//! (tall-skinny), in which case the packed typed-datatype path is used.

use std::rc::Rc;

use desim::memprof::{self, MemTag};
use desim::{Completion, FlightRecorder, OpId, SimDuration, TraceValue, Tracer, TrackId};
use pami_sim::{PamiRank, RmwOp};

/// Implicit-handle sets and non-blocking handle state.
static HANDLES_TAG: MemTag = MemTag::new("armci.handles");

use crate::handle::{NbHandle, OpKind};
use crate::region_cache::RemoteRegion;
use crate::runtime::{
    Armci, RankRt, DISPATCH_ACC_AM, DISPATCH_AM_PING, DISPATCH_NOTIFY_AM, DISPATCH_REGION_QUERY,
};
use crate::strided::Strided;

/// Handle for one rank's view of the ARMCI runtime.
///
/// All operations are issued *by* this rank; blocking variants drive the
/// PAMI progress engine while they wait (so a blocked rank services remote
/// requests — the "default" progress mode of the paper).
#[derive(Clone)]
pub struct ArmciRank {
    pub(crate) a: Armci,
    pub(crate) r: usize,
    pub(crate) pami: PamiRank,
}

impl ArmciRank {
    /// This rank's id.
    pub fn id(&self) -> usize {
        self.r
    }

    /// The runtime this rank belongs to.
    pub fn armci(&self) -> &Armci {
        &self.a
    }

    /// The underlying PAMI rank (for memory access in tests/apps).
    pub fn pami(&self) -> &PamiRank {
        &self.pami
    }

    fn rt(&self) -> Rc<RankRt> {
        self.a.rank_rt(self.r)
    }

    fn stats(&self) -> desim::Stats {
        self.a.inner.machine.stats()
    }

    fn tracer(&self) -> Tracer {
        self.a.sim().tracer()
    }

    /// This rank's trace track. The `format!` (and everything else) is
    /// guarded on enablement so disabled tracing allocates nothing.
    fn op_track(&self, tr: &Tracer) -> TrackId {
        if tr.on() {
            tr.track(&format!("rank {}", self.r))
        } else {
            TrackId(0)
        }
    }

    fn flight(&self) -> FlightRecorder {
        self.a.sim().flight()
    }

    /// Open a flight-recorder lifecycle record for an operation of `kind`
    /// and mark this rank's subsequent injections with its id. Returns
    /// `None` (and records nothing) when the recorder is disabled.
    fn begin_op(&self, kind: &'static str) -> Option<OpId> {
        // The in-flight gauge counts op begin/end call pairs, independent of
        // whether the flight recorder hands out an id.
        self.a.op_inflight(self.a.sim().now(), 1);
        let op = self
            .flight()
            .begin_op(self.a.sim().now(), self.r as u32, kind);
        if op.is_some() {
            self.pami.set_current_op(op);
        }
        op
    }

    /// Detach attribution at the end of a *non-blocking* call: later
    /// injections by this rank are no longer this op's, but the op record
    /// stays open until the matching [`ArmciRank::wait`] closes it.
    fn detach_op(&self, op: Option<OpId>) {
        if op.is_some() {
            self.pami.set_current_op(None);
        }
    }

    /// Close an operation's lifecycle record (initiator-side completion).
    fn end_op(&self, op: Option<OpId>) {
        self.a.op_inflight(self.a.sim().now(), -1);
        if let Some(op) = op {
            self.flight().end_op(op, self.a.sim().now());
            self.pami.set_current_op(None);
        }
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocate `len` bytes of remotely accessible memory and register it as
    /// an RDMA region (cost δ). If registration fails (region limit), the
    /// memory is still usable — operations on it take the fall-back path.
    pub async fn malloc(&self, len: usize) -> usize {
        let off = self.pami.alloc(len);
        if self.pami.register_region(off, len).await.is_err() {
            self.stats().incr("armci.malloc_unregistered");
        }
        off
    }

    /// Allocate without registering (always exercises the fall-back path).
    pub fn alloc_unregistered(&self, len: usize) -> usize {
        self.pami.alloc(len)
    }

    /// Collective allocation (ARMCI_Malloc): every rank allocates and
    /// registers `len` bytes, region keys are exchanged among all ranks
    /// (seeding the remote-region caches — Eq. 5's σ·ζ·γ term), and the
    /// offsets of all ranks' blocks are returned. All ranks must call this
    /// in the same order; it synchronizes like a barrier.
    pub async fn malloc_collective(&self, len: usize) -> Vec<usize> {
        let p = self.a.nprocs();
        let off = self.pami.alloc(len);
        let registered = self.pami.register_region(off, len).await.is_ok();
        if !registered {
            self.stats().incr("armci.malloc_unregistered");
        }
        let seq = {
            let mut seqs = self.a.inner.collective_seq.borrow_mut();
            let e = seqs.entry(self.r).or_insert(0);
            let s = *e;
            *e += 1;
            s
        };
        let (done, ready) = {
            let mut calls = self.a.inner.collective.borrow_mut();
            let st = calls
                .entry(seq)
                .or_insert_with(|| crate::runtime::CollectiveAlloc {
                    offs: vec![0; p],
                    arrived: 0,
                    done: Completion::new(),
                });
            st.offs[self.r] = off;
            st.arrived += 1;
            (st.done.clone(), st.arrived == p)
        };
        if ready {
            let st = self
                .a
                .inner
                .collective
                .borrow_mut()
                .remove(&seq)
                .expect("collective state present");
            // Exchange region keys: seed every rank's cache with every
            // other rank's block (only blocks that actually registered).
            for r in 0..p {
                for (owner, &o) in st.offs.iter().enumerate() {
                    if owner != r
                        && self
                            .a
                            .inner
                            .machine
                            .rank(owner)
                            .find_region(o, len)
                            .is_some()
                    {
                        self.a.seed_region(r, owner, o, len);
                    }
                }
            }
            // The metadata exchange rides the collective network.
            let cost = self.a.inner.machine.params().barrier_cost(p);
            let offs = std::rc::Rc::new(st.offs);
            let done2 = st.done.clone();
            self.a.sim().schedule_in(cost, move || done2.complete(offs));
        }
        let offs = self.pami.progress_wait(&done).await;
        (*offs).clone()
    }

    // ------------------------------------------------------------------
    // Region / endpoint resolution
    // ------------------------------------------------------------------

    /// Resolve the remote memory region covering `[off, off+len)` at
    /// `target`: local registry for self, else the LFU cache, else an
    /// active-message query to the owner (which needs the owner's progress —
    /// the expensive miss path).
    pub async fn resolve_remote(
        &self,
        target: usize,
        off: usize,
        len: usize,
    ) -> Option<RemoteRegion> {
        if target == self.r {
            return self.pami.find_region(off, len).map(|id| {
                let (o, l) = self.pami.region_bounds(id);
                RemoteRegion { off: o, len: l }
            });
        }
        if let Some(r) = self.rt().region_cache.borrow_mut().lookup(target, off, len) {
            return Some(r);
        }
        // Miss: query the owner.
        self.stats().incr("armci.region_query");
        let reply_id = self.rt().next_reply.get();
        self.rt().next_reply.set(reply_id + 1);
        let reply: Completion<Option<RemoteRegion>> = Completion::new();
        self.rt()
            .pending_replies
            .borrow_mut()
            .insert(reply_id, reply.clone());
        let mut header = Vec::with_capacity(24);
        header.extend_from_slice(&reply_id.to_le_bytes());
        header.extend_from_slice(&(off as u64).to_le_bytes());
        header.extend_from_slice(&(len as u64).to_le_bytes());
        self.pami
            .am_send(target, DISPATCH_REGION_QUERY, header, Vec::new())
            .await;
        let res = self.pami.progress_wait(&reply).await;
        if let Some(region) = res {
            self.rt().region_cache.borrow_mut().insert(target, region);
        }
        res
    }

    /// Make sure the local side `[off, off+len)` is covered by a region,
    /// registering one (cost δ) if needed. Returns false when registration
    /// is impossible (region limit) — the fall-back protocol must be used.
    async fn ensure_local_region(&self, off: usize, len: usize) -> bool {
        if self.pami.find_region(off, len).is_some() {
            return true;
        }
        self.pami.register_region(off, len).await.is_ok()
    }

    async fn ensure_endpoint(&self, target: usize) {
        let ctx = self.a.inner.machine.target_ctx();
        self.pami.ensure_endpoint(target, ctx).await;
    }

    /// Await the conflicting writes location consistency demands before a
    /// read of `(target, key)` (§III-E).
    async fn consistency_read_gate(&self, target: usize, key: Option<usize>) {
        let conflicts = self
            .rt()
            .consistency
            .borrow_mut()
            .conflicts_for_read(target, key);
        if !conflicts.is_empty() {
            self.stats().incr("armci.induced_fence");
            for c in conflicts {
                self.pami.progress_wait(&c).await;
            }
        }
    }

    // ------------------------------------------------------------------
    // Contiguous get/put/acc
    // ------------------------------------------------------------------

    /// Non-blocking contiguous get.
    pub async fn nbget(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> NbHandle {
        let op = self.begin_op("armci.get");
        self.stats().incr("armci.get");
        self.stats().add("armci.get_bytes", len as u64);
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.get",
            self.a.sim().now(),
            &[
                ("target", TraceValue::U64(target as u64)),
                ("bytes", TraceValue::U64(len as u64)),
            ],
        );
        self.ensure_endpoint(target).await;
        let remote = self.resolve_remote(target, remote_off, len).await;
        let key = remote.map(|r| r.off);
        self.consistency_read_gate(target, key).await;
        let local_ok = self.ensure_local_region(local_off, len).await;
        let (done, path) = if local_ok && remote.is_some() {
            self.stats().incr("armci.get_rdma");
            (
                self.pami.rdma_get(target, local_off, remote_off, len).await,
                "rdma",
            )
        } else {
            self.stats().incr("armci.get_fallback");
            (
                self.pami.sw_get(target, local_off, remote_off, len).await,
                "fallback",
            )
        };
        tr.span_end(
            track,
            "armci.get",
            self.a.sim().now(),
            &[("path", TraceValue::Str(path))],
        );
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Get,
            target,
            done,
            remote: None,
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking contiguous get.
    pub async fn get(&self, target: usize, local_off: usize, remote_off: usize, len: usize) {
        let h = self.nbget(target, local_off, remote_off, len).await;
        self.wait(&h).await;
    }

    /// Non-blocking contiguous put.
    pub async fn nbput(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        len: usize,
    ) -> NbHandle {
        let op = self.begin_op("armci.put");
        self.stats().incr("armci.put");
        self.stats().add("armci.put_bytes", len as u64);
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.put",
            self.a.sim().now(),
            &[
                ("target", TraceValue::U64(target as u64)),
                ("bytes", TraceValue::U64(len as u64)),
            ],
        );
        self.ensure_endpoint(target).await;
        let remote = self.resolve_remote(target, remote_off, len).await;
        let key = remote.map(|r| r.off);
        let local_ok = self.ensure_local_region(local_off, len).await;
        let (handles, path) = if local_ok && remote.is_some() {
            self.stats().incr("armci.put_rdma");
            (
                self.pami.rdma_put(target, local_off, remote_off, len).await,
                "rdma",
            )
        } else {
            self.stats().incr("armci.put_fallback");
            (
                self.pami.sw_put(target, local_off, remote_off, len).await,
                "fallback",
            )
        };
        tr.span_end(
            track,
            "armci.put",
            self.a.sim().now(),
            &[("path", TraceValue::Str(path))],
        );
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, key, handles.remote.clone());
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Put,
            target,
            done: handles.local.clone(),
            remote: Some(handles.remote),
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking contiguous put (returns when the local buffer is reusable).
    pub async fn put(&self, target: usize, local_off: usize, remote_off: usize, len: usize) {
        let h = self.nbput(target, local_off, remote_off, len).await;
        self.wait(&h).await;
    }

    /// Non-blocking accumulate of `elems` f64s: `dst += scale·src`. Always
    /// travels the software path (no NIC support for accumulate on BG/Q).
    pub async fn nbacc(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        elems: usize,
        scale: f64,
    ) -> NbHandle {
        let op = self.begin_op("armci.acc");
        self.stats().incr("armci.acc");
        self.stats().add("armci.acc_bytes", (elems * 8) as u64);
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.acc",
            self.a.sim().now(),
            &[
                ("target", TraceValue::U64(target as u64)),
                ("bytes", TraceValue::U64((elems * 8) as u64)),
                ("path", TraceValue::Str("software")),
            ],
        );
        self.ensure_endpoint(target).await;
        // Accumulates never need the region for the transfer itself, but the
        // region key (if cheaply known) lets cs_mr scope conflict tracking.
        let key = self
            .rt()
            .region_cache
            .borrow_mut()
            .lookup(target, remote_off, elems * 8)
            .map(|r| r.off);
        let handles = self
            .pami
            .acc_f64(target, local_off, remote_off, elems, scale)
            .await;
        tr.span_end(track, "armci.acc", self.a.sim().now(), &[]);
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, key, handles.remote.clone());
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Acc,
            target,
            done: handles.local.clone(),
            remote: Some(handles.remote),
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking accumulate (local completion only; the remote update is
    /// fenced later, matching location consistency).
    pub async fn acc(
        &self,
        target: usize,
        local_off: usize,
        remote_off: usize,
        elems: usize,
        scale: f64,
    ) {
        let h = self
            .nbacc(target, local_off, remote_off, elems, scale)
            .await;
        self.wait(&h).await;
    }

    // ------------------------------------------------------------------
    // Strided (uniformly non-contiguous) get/put/acc
    // ------------------------------------------------------------------

    fn span(desc: &Strided) -> (usize, usize) {
        let extra: usize = desc
            .counts
            .iter()
            .zip(&desc.strides)
            .map(|(&c, &s)| c.saturating_sub(1) * s)
            .sum();
        (desc.offset, extra + desc.chunk)
    }

    /// Non-blocking strided get; `local` and `remote` must be
    /// shape-compatible.
    pub async fn nbget_strided(
        &self,
        target: usize,
        local: &Strided,
        remote: &Strided,
    ) -> NbHandle {
        assert!(local.compatible(remote), "incompatible strided descriptors");
        let op = self.begin_op("armci.get_strided");
        self.stats().incr("armci.get_strided");
        self.stats()
            .add("armci.get_bytes", remote.total_bytes() as u64);
        self.ensure_endpoint(target).await;
        let (roff, rlen) = Self::span(remote);
        let region = self.resolve_remote(target, roff, rlen).await;
        let key = region.map(|r| r.off);
        self.consistency_read_gate(target, key).await;
        let (loff, llen) = Self::span(local);
        let local_ok = self.ensure_local_region(loff, llen).await;
        let pairs = Strided::pair_chunks(local, remote);
        let min_chunk = pairs.iter().map(|&(_, (_, l))| l).min().unwrap_or(0);
        let zero_copy =
            min_chunk >= self.a.inner.cfg.pack_threshold && local_ok && region.is_some();
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.get_strided",
            self.a.sim().now(),
            &[
                ("target", TraceValue::U64(target as u64)),
                ("bytes", TraceValue::U64(remote.total_bytes() as u64)),
                ("chunks", TraceValue::U64(pairs.len() as u64)),
                (
                    "path",
                    TraceValue::Str(if zero_copy { "zero_copy" } else { "packed" }),
                ),
            ],
        );
        let done = if zero_copy {
            self.stats().incr("armci.strided_zero_copy");
            let mut parts = Vec::with_capacity(pairs.len());
            for ((lo, ll), (ro, _)) in pairs {
                parts.push(self.pami.rdma_get(target, lo, ro, ll).await);
            }
            merge_completions(self.a.sim(), parts)
        } else {
            self.stats().incr("armci.strided_packed");
            self.pami
                .packed_get(target, remote.chunks(), local.chunks())
                .await
        };
        tr.span_end(track, "armci.get_strided", self.a.sim().now(), &[]);
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Get,
            target,
            done,
            remote: None,
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking strided get.
    pub async fn get_strided(&self, target: usize, local: &Strided, remote: &Strided) {
        let h = self.nbget_strided(target, local, remote).await;
        self.wait(&h).await;
    }

    /// Non-blocking strided put.
    pub async fn nbput_strided(
        &self,
        target: usize,
        local: &Strided,
        remote: &Strided,
    ) -> NbHandle {
        assert!(local.compatible(remote), "incompatible strided descriptors");
        let op = self.begin_op("armci.put_strided");
        self.stats().incr("armci.put_strided");
        self.stats()
            .add("armci.put_bytes", remote.total_bytes() as u64);
        self.ensure_endpoint(target).await;
        let (roff, rlen) = Self::span(remote);
        let region = self.resolve_remote(target, roff, rlen).await;
        let key = region.map(|r| r.off);
        let (loff, llen) = Self::span(local);
        let local_ok = self.ensure_local_region(loff, llen).await;
        let pairs = Strided::pair_chunks(local, remote);
        let min_chunk = pairs.iter().map(|&(_, (_, l))| l).min().unwrap_or(0);
        let zero_copy =
            min_chunk >= self.a.inner.cfg.pack_threshold && local_ok && region.is_some();
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.put_strided",
            self.a.sim().now(),
            &[
                ("target", TraceValue::U64(target as u64)),
                ("bytes", TraceValue::U64(remote.total_bytes() as u64)),
                ("chunks", TraceValue::U64(pairs.len() as u64)),
                (
                    "path",
                    TraceValue::Str(if zero_copy { "zero_copy" } else { "packed" }),
                ),
            ],
        );
        let (local_done, remote_done) = if zero_copy {
            self.stats().incr("armci.strided_zero_copy");
            let mut locals = Vec::with_capacity(pairs.len());
            let mut remotes = Vec::with_capacity(pairs.len());
            for ((lo, ll), (ro, _)) in pairs {
                let h = self.pami.rdma_put(target, lo, ro, ll).await;
                locals.push(h.local);
                remotes.push(h.remote);
            }
            (
                merge_completions(self.a.sim(), locals),
                merge_completions(self.a.sim(), remotes),
            )
        } else {
            self.stats().incr("armci.strided_packed");
            let h = self
                .pami
                .packed_put(target, local.chunks(), remote.chunks())
                .await;
            (h.local, h.remote)
        };
        tr.span_end(track, "armci.put_strided", self.a.sim().now(), &[]);
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, key, remote_done.clone());
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Put,
            target,
            done: local_done,
            remote: Some(remote_done),
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking strided put.
    pub async fn put_strided(&self, target: usize, local: &Strided, remote: &Strided) {
        let h = self.nbput_strided(target, local, remote).await;
        self.wait(&h).await;
    }

    /// Non-blocking strided accumulate (`dst += scale·src` elementwise over
    /// f64 chunks).
    pub async fn nbacc_strided(
        &self,
        target: usize,
        local: &Strided,
        remote: &Strided,
        scale: f64,
    ) -> NbHandle {
        assert!(local.compatible(remote), "incompatible strided descriptors");
        let op = self.begin_op("armci.acc_strided");
        self.stats().incr("armci.acc_strided");
        self.stats()
            .add("armci.acc_bytes", remote.total_bytes() as u64);
        self.ensure_endpoint(target).await;
        let (roff, rlen) = Self::span(remote);
        let key = self
            .rt()
            .region_cache
            .borrow_mut()
            .lookup(target, roff, rlen)
            .map(|r| r.off);
        let h = self
            .pami
            .acc_strided_f64(target, local.chunks(), remote.chunks(), scale)
            .await;
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, key, h.remote.clone());
        self.detach_op(op);
        let handle = NbHandle {
            kind: OpKind::Acc,
            target,
            done: h.local.clone(),
            remote: Some(h.remote),
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(handle.done.clone());
        handle
    }

    /// Blocking strided accumulate.
    pub async fn acc_strided(&self, target: usize, local: &Strided, remote: &Strided, scale: f64) {
        let h = self.nbacc_strided(target, local, remote, scale).await;
        self.wait(&h).await;
    }

    /// Blocking single-value put (ARMCI_PutValueLong): stages the value in a
    /// scratch cell and writes it to the target. Used for flags and small
    /// control words.
    pub async fn put_value_i64(&self, target: usize, remote_off: usize, v: i64) {
        let scratch = self.pami.alloc(8);
        self.pami.write_i64(scratch, v);
        self.put(target, scratch, remote_off, 8).await;
    }

    /// Blocking single-value get (ARMCI_GetValueLong).
    pub async fn get_value_i64(&self, target: usize, remote_off: usize) -> i64 {
        let scratch = self.pami.alloc(8);
        self.get(target, scratch, remote_off, 8).await;
        self.pami.read_i64(scratch)
    }

    // ------------------------------------------------------------------
    // Generalized I/O vector (ARMCI_GetV/PutV)
    // ------------------------------------------------------------------

    /// Non-blocking vector get: explicit `(local_off, remote_off, len)`
    /// triples (the general I/O-vector interface; strided descriptors are
    /// the compact special case, §III-C2).
    pub async fn nbgetv(&self, target: usize, parts: &[(usize, usize, usize)]) -> NbHandle {
        assert!(!parts.is_empty(), "empty vector request");
        let op = self.begin_op("armci.getv");
        self.stats().incr("armci.getv");
        self.ensure_endpoint(target).await;
        let total: usize = parts.iter().map(|&(_, _, l)| l).sum();
        self.stats().add("armci.get_bytes", total as u64);
        let lo = parts.iter().map(|&(_, r, _)| r).min().expect("nonempty");
        let hi = parts
            .iter()
            .map(|&(_, r, l)| r + l)
            .max()
            .expect("nonempty");
        let region = self.resolve_remote(target, lo, hi - lo).await;
        let key = region.map(|r| r.off);
        self.consistency_read_gate(target, key).await;
        let min_len = parts.iter().map(|&(_, _, l)| l).min().expect("nonempty");
        let local_span = {
            let lo = parts.iter().map(|&(l, _, _)| l).min().expect("nonempty");
            let hi = parts
                .iter()
                .map(|&(l, _, len)| l + len)
                .max()
                .expect("nonempty");
            (lo, hi - lo)
        };
        let local_ok = self.ensure_local_region(local_span.0, local_span.1).await;
        let done = if region.is_some() && local_ok && min_len >= self.a.inner.cfg.pack_threshold {
            self.stats().incr("armci.strided_zero_copy");
            let mut dones = Vec::with_capacity(parts.len());
            for &(l, r, len) in parts {
                dones.push(self.pami.rdma_get(target, l, r, len).await);
            }
            merge_completions(self.a.sim(), dones)
        } else {
            self.stats().incr("armci.strided_packed");
            let remote_chunks: Vec<(usize, usize)> =
                parts.iter().map(|&(_, r, l)| (r, l)).collect();
            let local_chunks: Vec<(usize, usize)> =
                parts.iter().map(|&(l, _, len)| (l, len)).collect();
            self.pami
                .packed_get(target, remote_chunks, local_chunks)
                .await
        };
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Get,
            target,
            done,
            remote: None,
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking vector get.
    pub async fn getv(&self, target: usize, parts: &[(usize, usize, usize)]) {
        let h = self.nbgetv(target, parts).await;
        self.wait(&h).await;
    }

    /// Non-blocking vector put.
    pub async fn nbputv(&self, target: usize, parts: &[(usize, usize, usize)]) -> NbHandle {
        assert!(!parts.is_empty(), "empty vector request");
        let op = self.begin_op("armci.putv");
        self.stats().incr("armci.putv");
        self.ensure_endpoint(target).await;
        let total: usize = parts.iter().map(|&(_, _, l)| l).sum();
        self.stats().add("armci.put_bytes", total as u64);
        let lo = parts.iter().map(|&(_, r, _)| r).min().expect("nonempty");
        let hi = parts
            .iter()
            .map(|&(_, r, l)| r + l)
            .max()
            .expect("nonempty");
        let region = self.resolve_remote(target, lo, hi - lo).await;
        let key = region.map(|r| r.off);
        let local_span = {
            let lo = parts.iter().map(|&(l, _, _)| l).min().expect("nonempty");
            let hi = parts
                .iter()
                .map(|&(l, _, len)| l + len)
                .max()
                .expect("nonempty");
            (lo, hi - lo)
        };
        let local_ok = self.ensure_local_region(local_span.0, local_span.1).await;
        let min_len = parts.iter().map(|&(_, _, l)| l).min().expect("nonempty");
        let (local_done, remote_done) =
            if region.is_some() && local_ok && min_len >= self.a.inner.cfg.pack_threshold {
                self.stats().incr("armci.strided_zero_copy");
                let mut locals = Vec::with_capacity(parts.len());
                let mut remotes = Vec::with_capacity(parts.len());
                for &(l, r, len) in parts {
                    let h = self.pami.rdma_put(target, l, r, len).await;
                    locals.push(h.local);
                    remotes.push(h.remote);
                }
                (
                    merge_completions(self.a.sim(), locals),
                    merge_completions(self.a.sim(), remotes),
                )
            } else {
                self.stats().incr("armci.strided_packed");
                let remote_chunks: Vec<(usize, usize)> =
                    parts.iter().map(|&(_, r, l)| (r, l)).collect();
                let local_chunks: Vec<(usize, usize)> =
                    parts.iter().map(|&(l, _, len)| (l, len)).collect();
                let h = self
                    .pami
                    .packed_put(target, local_chunks, remote_chunks)
                    .await;
                (h.local, h.remote)
            };
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, key, remote_done.clone());
        self.detach_op(op);
        let h = NbHandle {
            kind: OpKind::Put,
            target,
            done: local_done,
            remote: Some(remote_done),
            op,
        };
        let _mem = memprof::scope(&HANDLES_TAG);
        self.rt().implicit.borrow_mut().push(h.done.clone());
        h
    }

    /// Blocking vector put.
    pub async fn putv(&self, target: usize, parts: &[(usize, usize, usize)]) {
        let h = self.nbputv(target, parts).await;
        self.wait(&h).await;
    }

    // ------------------------------------------------------------------
    // Completion / synchronization
    // ------------------------------------------------------------------

    /// Wait for one explicit non-blocking handle, driving progress meanwhile.
    /// Records the wait time under `armci.wait.{get,put,acc}` in the stats
    /// registry.
    pub async fn wait(&self, h: &NbHandle) {
        let t0 = self.a.sim().now();
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.wait",
            t0,
            &[("target", TraceValue::U64(h.target as u64))],
        );
        // Re-attach attribution: progress driven while blocked here (lock
        // waits, messages injected on the op's behalf) belongs to this op.
        if h.op.is_some() {
            self.pami.set_current_op(h.op);
        }
        self.pami.progress_wait(&h.done).await;
        let p = self.a.inner.machine.params();
        match h.kind {
            OpKind::Get => self.a.sim().sleep(p.o_recv).await,
            OpKind::Put => self.a.sim().sleep(p.o_put_local).await,
            OpKind::Acc => {}
        }
        let key = match h.kind {
            OpKind::Get => "armci.wait.get",
            OpKind::Put => "armci.wait.put",
            OpKind::Acc => "armci.wait.acc",
        };
        let waited = self.a.sim().now() - t0;
        self.stats().record_time(key, waited);
        // Same key in the histogram space: ns-granularity latency buckets.
        self.stats().record_hist(key, waited.as_ps() / 1000);
        tr.span_end(track, "armci.wait", self.a.sim().now(), &[]);
        self.end_op(h.op);
    }

    /// Wait for all outstanding implicit requests of this rank.
    pub async fn wait_all(&self) {
        let pending: Vec<Completion<()>> = self.rt().implicit.borrow_mut().drain(..).collect();
        for c in pending {
            self.pami.progress_wait(&c).await;
        }
    }

    /// Fence: block until all outstanding writes to `target` are remotely
    /// complete.
    pub async fn fence(&self, target: usize) {
        self.stats().incr("armci.fence");
        let writes = self.rt().consistency.borrow_mut().drain_target(target);
        for c in writes {
            self.pami.progress_wait(&c).await;
        }
    }

    /// Fence all targets.
    pub async fn fence_all(&self) {
        self.stats().incr("armci.fence_all");
        let writes = self.rt().consistency.borrow_mut().drain_all();
        for c in writes {
            self.pami.progress_wait(&c).await;
        }
    }

    /// Collective barrier: fence-all followed by the hardware barrier
    /// network. All ranks must call it.
    pub async fn barrier(&self) {
        self.fence_all().await;
        self.wait_all().await;
        let (done, leader) = {
            let mut b = self.a.inner.barrier.borrow_mut();
            if b.current.is_none() {
                b.current = Some(Completion::new());
            }
            let done = b.current.clone().expect("just set");
            b.arrived += 1;
            let leader = b.arrived == self.a.nprocs();
            if leader {
                b.arrived = 0;
                b.current = None;
            }
            (done, leader)
        };
        if leader {
            let cost = self.a.inner.machine.params().barrier_cost(self.a.nprocs());
            let d2 = done.clone();
            self.a.sim().schedule_in(cost, move || d2.complete(()));
        }
        self.pami.progress_wait(&done).await;
    }

    // ------------------------------------------------------------------
    // Atomic memory operations (load-balance counters)
    // ------------------------------------------------------------------

    /// Blocking fetch-and-add on an i64 at the target; returns the previous
    /// value. This is the load-balance-counter primitive (§III-D).
    pub async fn rmw_fetch_add(&self, target: usize, remote_off: usize, val: i64) -> i64 {
        let op = self.begin_op("armci.rmw");
        let t0 = self.a.sim().now();
        // The full blocking call is one span: in D mode its length is
        // dominated by waiting for the *target* to enter a blocking call and
        // service the queue — exactly the pathology of §III-D.
        let tr = self.tracer();
        let track = self.op_track(&tr);
        tr.span_begin(
            track,
            "armci.rmw",
            t0,
            &[
                ("target", TraceValue::U64(target as u64)),
                ("op", TraceValue::Str("fetch_add")),
            ],
        );
        self.ensure_endpoint(target).await;
        self.stats().incr("armci.rmw");
        let done = self
            .pami
            .rmw(target, remote_off, RmwOp::FetchAdd(val))
            .await;
        let old = self.pami.progress_wait(&done).await;
        self.a
            .sim()
            .sleep(self.a.inner.machine.params().o_recv)
            .await;
        let waited = self.a.sim().now() - t0;
        self.stats().record_time("armci.wait.rmw", waited);
        self.stats()
            .record_hist("armci.wait.rmw", waited.as_ps() / 1000);
        tr.span_end(track, "armci.rmw", self.a.sim().now(), &[]);
        self.end_op(op);
        old
    }

    /// Blocking atomic swap; returns the previous value.
    pub async fn rmw_swap(&self, target: usize, remote_off: usize, val: i64) -> i64 {
        let op = self.begin_op("armci.rmw");
        self.ensure_endpoint(target).await;
        self.stats().incr("armci.rmw");
        let done = self.pami.rmw(target, remote_off, RmwOp::Swap(val)).await;
        let old = self.pami.progress_wait(&done).await;
        self.a
            .sim()
            .sleep(self.a.inner.machine.params().o_recv)
            .await;
        self.end_op(op);
        old
    }

    /// Blocking compare-and-swap; returns the previous value.
    pub async fn rmw_cas(&self, target: usize, remote_off: usize, compare: i64, swap: i64) -> i64 {
        let op = self.begin_op("armci.rmw");
        self.ensure_endpoint(target).await;
        self.stats().incr("armci.rmw");
        let done = self
            .pami
            .rmw(target, remote_off, RmwOp::CompareSwap { compare, swap })
            .await;
        let old = self.pami.progress_wait(&done).await;
        self.a
            .sim()
            .sleep(self.a.inner.machine.params().o_recv)
            .await;
        self.end_op(op);
        old
    }

    // ------------------------------------------------------------------
    // Mutexes
    // ------------------------------------------------------------------

    /// Collectively create `n` mutexes hosted on every rank. All ranks must
    /// call it (includes a barrier).
    pub async fn create_mutexes(&self, n: usize) {
        let off = self.pami.alloc(n * 8);
        self.rt().mutex_off.set(off);
        self.a.inner.nmutexes.set(n);
        self.barrier().await;
    }

    /// Acquire mutex `idx` hosted at `owner` (CAS spin with linear backoff).
    pub async fn lock(&self, idx: usize, owner: usize) {
        assert!(idx < self.a.inner.nmutexes.get(), "mutex {idx} not created");
        let off = self.a.rank_rt(owner).mutex_off.get() + idx * 8;
        assert_ne!(off, usize::MAX, "mutexes not created on owner");
        let me = self.r as i64 + 1;
        let mut attempts: u64 = 0;
        loop {
            let old = self.rmw_cas(owner, off, 0, me).await;
            if old == 0 {
                self.stats().incr("armci.lock_acquired");
                return;
            }
            attempts += 1;
            self.stats().incr("armci.lock_retry");
            let backoff = SimDuration::from_us(attempts.min(8));
            self.a.sim().sleep(backoff).await;
        }
    }

    /// Release mutex `idx` hosted at `owner`.
    pub async fn unlock(&self, idx: usize, owner: usize) {
        let off = self.a.rank_rt(owner).mutex_off.get() + idx * 8;
        let old = self.rmw_swap(owner, off, 0).await;
        debug_assert_eq!(old, self.r as i64 + 1, "unlocking a mutex we don't hold");
    }

    // ------------------------------------------------------------------
    // Pairwise notify/wait
    // ------------------------------------------------------------------

    /// Post a notification to `target`; returns this notification's sequence
    /// number (1-based, monotonically increasing per target).
    pub async fn notify(&self, target: usize) -> i64 {
        let seq = {
            let rt = self.rt();
            let mut m = rt.notify_seq.borrow_mut();
            let e = m.entry(target).or_insert(0);
            *e += 1;
            *e
        };
        // Stage the sequence number in a scratch cell and software-put it
        // into the target's notify slot for this rank.
        let scratch = self.pami.alloc(8);
        self.pami.write_i64(scratch, seq);
        let dst = self.a.rank_rt(target).notify_off.get() + 8 * self.r;
        let h = self.pami.sw_put(target, scratch, dst, 8).await;
        self.rt()
            .consistency
            .borrow_mut()
            .record_write(target, None, h.remote.clone());
        seq
    }

    /// Wait until at least `seq` notifications from `src` have arrived,
    /// driving progress meanwhile.
    pub async fn wait_notify(&self, src: usize, seq: i64) {
        let cell = self.rt().notify_off.get() + 8 * src;
        loop {
            if self.pami.read_i64(cell) >= seq {
                return;
            }
            self.pami.advance(0, usize::MAX).await;
            if self.pami.read_i64(cell) >= seq {
                return;
            }
            self.a.sim().sleep(SimDuration::from_ns(500)).await;
        }
    }

    // ------------------------------------------------------------------
    // Active-message-backed operations (aggregation surface)
    // ------------------------------------------------------------------

    /// Post a notification to `target` as an active message. Shares the
    /// per-target sequence space with [`ArmciRank::notify`], and the
    /// handler writes the same notify cell, so the receiver waits with the
    /// ordinary [`ArmciRank::wait_notify`]. Under AM batching the
    /// notification may sit in an aggregation buffer until the window
    /// expires; use [`ArmciRank::am_fence`] to force it out.
    pub async fn notify_am(&self, target: usize) -> i64 {
        let op = self.begin_op("armci.notify_am");
        self.stats().incr("armci.notify_am");
        let seq = {
            let rt = self.rt();
            let mut m = rt.notify_seq.borrow_mut();
            let e = m.entry(target).or_insert(0);
            *e += 1;
            *e
        };
        // Materialize the target's notify cells before the AM can land.
        self.a.rank_rt(target);
        self.pami
            .send_am(
                target,
                DISPATCH_NOTIFY_AM,
                seq.to_le_bytes().to_vec(),
                Vec::new(),
            )
            .await;
        self.end_op(op);
        seq
    }

    /// `am_broadcast`-style notify: post one AM notification to each target,
    /// returning the per-target sequence numbers. With batching enabled,
    /// notifications to the same destination coalesce with any other queued
    /// AM traffic into one wire message per destination.
    pub async fn notify_broadcast(&self, targets: &[usize]) -> Vec<i64> {
        let mut seqs = Vec::with_capacity(targets.len());
        for &t in targets {
            seqs.push(self.notify_am(t).await);
        }
        seqs
    }

    /// AM-based accumulate fallback: `target[remote_off..] += scale · vals`,
    /// carrying the values inside the message rather than staging them in
    /// registered memory — no region lookup, no RDMA descriptor, ideal for
    /// many tiny updates. Fire-and-forget: remote application is ordered
    /// (pairwise) after prior AMs and can be awaited with
    /// [`ArmciRank::am_fence`].
    pub async fn acc_am(&self, target: usize, remote_off: usize, vals: &[f64], scale: f64) {
        let op = self.begin_op("armci.acc_am");
        self.stats().incr("armci.acc_am");
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&(remote_off as u64).to_le_bytes());
        header.extend_from_slice(&scale.to_le_bytes());
        let mut payload = Vec::with_capacity(vals.len() * 8);
        for v in vals {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        self.pami
            .send_am(target, DISPATCH_ACC_AM, header, payload)
            .await;
        self.end_op(op);
    }

    /// Fence all AM-layer traffic from this rank to `target`: queue a ping
    /// behind everything already buffered, force-flush the pair's
    /// aggregation buffer, and wait for the target's pong. On return every
    /// AM this rank sent to `target` before the fence has been executed
    /// there (buffer FIFO + ordered wire + in-order service).
    pub async fn am_fence(&self, target: usize) {
        let op = self.begin_op("armci.am_fence");
        self.stats().incr("armci.am_fence");
        let done = Completion::new();
        let reply_id = {
            let _mem = memprof::scope(&HANDLES_TAG);
            let rt = self.rt();
            let id = rt.next_ping.get();
            rt.next_ping.set(id + 1);
            rt.pending_pings.borrow_mut().insert(id, done.clone());
            id
        };
        self.pami
            .send_am(
                target,
                DISPATCH_AM_PING,
                reply_id.to_le_bytes().to_vec(),
                Vec::new(),
            )
            .await;
        self.a.machine().am_flush_pair(self.r, target);
        self.pami.progress_wait(&done).await;
        self.end_op(op);
    }
}

/// Combine many completions into one that fires when all have fired
/// (spawns a tiny watcher task — the chunk list of a strided transfer).
fn merge_completions(sim: &desim::Sim, parts: Vec<Completion<()>>) -> Completion<()> {
    if parts.len() == 1 {
        return parts.into_iter().next().expect("len checked");
    }
    let merged = Completion::new();
    let m2 = merged.clone();
    sim.spawn(async move {
        for p in parts {
            p.wait().await;
        }
        m2.complete(());
    });
    merged
}
