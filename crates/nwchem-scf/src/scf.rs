//! The SCF driver: Fig 10's algorithm over Global Arrays, with the
//! paper's two runtime configurations (D = default progress, AT =
//! asynchronous progress thread).

use std::cell::RefCell;
use std::rc::Rc;

use armci::{Armci, ArmciConfig, ProgressMode};
use desim::memprof::{self, MemTag};
use desim::{CritPath, Sim, SimDuration, SimRng};

/// SCF driver state: per-rank tallies and rank-program captures.
static SCF_TAG: MemTag = MemTag::new("scf");
use global_arrays::{Ga, SharedCounter};
use pami_sim::{Machine, MachineConfig};

use crate::report::{max_us, mean_us, ScfReport};

/// Configuration of an SCF run.
#[derive(Debug, Clone)]
pub struct ScfConfig {
    /// Basis functions (matrix dimension). Paper: 644.
    pub nbf: usize,
    /// Patch dimension in elements (task granularity in the matrix).
    pub block: usize,
    /// Task multiplier: tasks per iteration = `repeat_factor · nblk²`
    /// (shell-pair batches revisit matrix blocks many times).
    pub repeat_factor: usize,
    /// SCF iterations.
    pub iterations: usize,
    /// Mean `do work` time per task (paper §IV-B3: ≈300 µs).
    pub compute_mean: SimDuration,
    /// Uniform jitter fraction on the task compute time.
    pub compute_jitter: f64,
    /// Modeled diagonalization/DIIS time per iteration (replicated).
    pub diag_time: SimDuration,
    /// Fraction of tasks eliminated by integral screening (Schwarz
    /// inequality): screened tasks still cost a counter fetch but do
    /// (almost) no work — they raise the AMO pressure per unit of compute,
    /// sharpening the D-vs-AT contrast. 0.0 disables screening.
    pub screen_fraction: f64,
    /// Stop early once the SCF energy change falls below this tolerance
    /// (`None` = always run `iterations` cycles). The density damping makes
    /// per-iteration contributions decay as 1/iter², so the energy converges.
    pub converge_tol: Option<f64>,
    /// Progress mode (the D-vs-AT axis of Fig 11).
    pub progress: ProgressMode,
    /// PAMI contexts per rank (ρ); the AT design uses 2 (§III-D).
    pub contexts: usize,
    /// Processes per node.
    pub procs_per_node: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Windowed-telemetry sample width in picoseconds (`None` = timelines
    /// off; the run stays allocation-free on the telemetry paths).
    pub timeline_window_ps: Option<u64>,
    /// Conservative parallel-engine shards for the simulated machine
    /// (DESIGN.md §16). Outputs are byte-identical for any value; 1 keeps
    /// the serial hot path.
    pub workers: usize,
}

impl ScfConfig {
    /// The paper's workload: 6 H₂O, 644 basis functions, ≈300 µs tasks,
    /// ~24k Fock-build tasks per iteration.
    pub fn paper(progress: ProgressMode) -> ScfConfig {
        ScfConfig {
            nbf: 644,
            block: 46,
            repeat_factor: 123, // 123 * ceil(644/46)^2 = 24,108 tasks/iter
            iterations: 3,
            compute_mean: SimDuration::from_us(300),
            compute_jitter: 0.3,
            diag_time: SimDuration::from_us(200),
            screen_fraction: 0.0,
            converge_tol: None,
            progress,
            contexts: if progress == ProgressMode::AsyncThread {
                2
            } else {
                1
            },
            procs_per_node: 16,
            seed: 20130520,
            timeline_window_ps: None,
            workers: 1,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(progress: ProgressMode) -> ScfConfig {
        ScfConfig {
            nbf: 32,
            block: 8,
            repeat_factor: 2,
            iterations: 2,
            compute_mean: SimDuration::from_us(50),
            compute_jitter: 0.2,
            diag_time: SimDuration::from_us(20),
            screen_fraction: 0.0,
            converge_tol: None,
            progress,
            contexts: if progress == ProgressMode::AsyncThread {
                2
            } else {
                1
            },
            procs_per_node: 1,
            seed: 7,
            timeline_window_ps: None,
            workers: 1,
        }
    }

    /// Matrix block grid dimension.
    pub fn nblocks(&self) -> usize {
        self.nbf.div_ceil(self.block)
    }

    /// Fock-build tasks per iteration.
    pub fn tasks_per_iter(&self) -> usize {
        self.repeat_factor * self.nblocks() * self.nblocks()
    }
}

#[derive(Default, Clone, Copy)]
struct RankTally {
    counter_wait: SimDuration,
    get_time: SimDuration,
    acc_time: SimDuration,
    compute_time: SimDuration,
    sync_time: SimDuration,
    tasks: usize,
    iterations_run: usize,
}

/// Run one SCF calculation on a fresh simulated machine and report the
/// timing breakdown. Deterministic for a given configuration.
pub fn run_scf(nprocs: usize, cfg: &ScfConfig) -> ScfReport {
    run_scf_flight(nprocs, cfg, 0).0
}

/// Like [`run_scf`], but with the message-lifecycle flight recorder enabled
/// when `flight_capacity > 0`: additionally returns the critical-path
/// decomposition of the whole run (compute / queueing / wire / contention /
/// progress-starvation), or `None` when recording was off.
pub fn run_scf_flight(
    nprocs: usize,
    cfg: &ScfConfig,
    flight_capacity: usize,
) -> (ScfReport, Option<CritPath>) {
    let (report, crit, _) = run_scf_timeline(nprocs, cfg, flight_capacity);
    (report, crit)
}

/// Like [`run_scf_flight`], but additionally returns the windowed-telemetry
/// snapshot when `cfg.timeline_window_ps` is set (`None` otherwise).
pub fn run_scf_timeline(
    nprocs: usize,
    cfg: &ScfConfig,
    flight_capacity: usize,
) -> (ScfReport, Option<CritPath>, Option<desim::TimelineSnapshot>) {
    let sim = Sim::new();
    let machine = Machine::new(
        sim.clone(),
        MachineConfig::new(nprocs)
            .procs_per_node(cfg.procs_per_node)
            .contexts(cfg.contexts)
            .workers(cfg.workers),
    );
    if flight_capacity > 0 {
        machine.enable_flight(flight_capacity);
    }
    let armci = Armci::new(machine, ArmciConfig::default().progress(cfg.progress));
    if let Some(w) = cfg.timeline_window_ps {
        armci.enable_timeline(w, 512);
    }
    let density = Ga::create(&armci, "density", cfg.nbf, cfg.nbf);
    let fock = Ga::create(&armci, "fock", cfg.nbf, cfg.nbf);
    density.fill(0.1);
    fock.fill(0.0);
    let counter = SharedCounter::create(&armci, 0);

    let _mem = memprof::scope(&SCF_TAG);
    let tallies: Rc<RefCell<Vec<RankTally>>> =
        Rc::new(RefCell::new(vec![RankTally::default(); nprocs]));
    let root_rng = SimRng::new(cfg.seed);
    let ntasks = cfg.tasks_per_iter();
    let nblk = cfg.nblocks();

    for r in 0..nprocs {
        let rk = armci.rank(r);
        let s = sim.clone();
        let cfg = cfg.clone();
        let density = density.clone();
        let fock = fock.clone();
        let counter = counter.clone();
        let tallies = Rc::clone(&tallies);
        let armci_handle = armci.clone();
        let mut rng = root_rng.derive(r as u64);
        sim.spawn(async move {
            let patch_elems = cfg.block * cfg.block;
            let d_buf = rk.malloc(patch_elems * 8).await;
            let d_buf2 = rk.malloc(patch_elems * 8).await;
            let f_buf = rk.malloc(patch_elems * 8).await;
            let mut tally = RankTally::default();
            let mut prev_energy = 0.0f64;
            // SCF phase tags: one span per phase per iteration on this
            // rank's track (allocation-free while tracing is disabled).
            let tracer = s.tracer();
            let track = if tracer.on() {
                tracer.track(&format!("rank {}", rk.id()))
            } else {
                desim::TrackId(0)
            };
            for iter in 0..cfg.iterations {
                // --- Fock build (Fig 10 inner loop) ---
                let t_fock = s.now();
                tracer.span_begin(
                    track,
                    "scf.fock_build",
                    t_fock,
                    &[("iter", desim::TraceValue::U64(iter as u64))],
                );
                loop {
                    let t0 = s.now();
                    let t = counter.next(&rk, 1).await;
                    tally.counter_wait += s.now() - t0;
                    if t >= ntasks as i64 {
                        break;
                    }
                    tally.tasks += 1;
                    // Integral screening: negligible-contribution quartets
                    // are skipped right after the counter fetch.
                    if cfg.screen_fraction > 0.0 && rng.next_f64() < cfg.screen_fraction {
                        continue;
                    }
                    let blk = (t as usize) % (nblk * nblk);
                    let (bi, bj) = (blk / nblk, blk % nblk);
                    let (rlo, rhi) = (bi * cfg.block, ((bi + 1) * cfg.block).min(cfg.nbf));
                    let (clo, chi) = (bj * cfg.block, ((bj + 1) * cfg.block).min(cfg.nbf));
                    // Two density patches: D(i,j) and its transpose block.
                    let t0 = s.now();
                    density.get_patch(&rk, rlo, rhi, clo, chi, d_buf).await;
                    density.get_patch(&rk, clo, chi, rlo, rhi, d_buf2).await;
                    tally.get_time += s.now() - t0;
                    // do work: contract integrals with the density patches.
                    let jitter =
                        1.0 - cfg.compute_jitter + 2.0 * cfg.compute_jitter * rng.next_f64();
                    let dt = SimDuration::from_us_f64(cfg.compute_mean.as_us() * jitter);
                    let t0 = s.now();
                    s.sleep(dt).await;
                    tally.compute_time += s.now() - t0;
                    // Deposit the contribution (contents: derived locally,
                    // written without cost — the flops are modeled above).
                    // Density damping: later cycles contribute less, so the
                    // energy series converges like a real SCF.
                    let damp = 1.0 / ((iter + 1) * (iter + 1)) as f64;
                    rk.pami().write_f64s(
                        f_buf,
                        &vec![damp / ntasks as f64; (rhi - rlo) * (chi - clo)],
                    );
                    let t0 = s.now();
                    fock.acc_patch(&rk, rlo, rhi, clo, chi, f_buf, 1.0).await;
                    tally.acc_time += s.now() - t0;
                }
                tracer.span_end(track, "scf.fock_build", s.now(), &[]);
                rk.armci()
                    .machine()
                    .stats()
                    .record_time("scf.phase.fock", s.now() - t_fock);
                // --- end of iteration: synchronize, reset counter, "diag" ---
                let t0 = s.now();
                tracer.span_begin(track, "scf.sync", t0, &[]);
                rk.barrier().await;
                if rk.id() == 0 {
                    counter.reset(&armci_handle);
                }
                rk.barrier().await;
                tally.sync_time += s.now() - t0;
                tracer.span_end(track, "scf.sync", s.now(), &[]);
                rk.armci()
                    .machine()
                    .stats()
                    .record_time("scf.phase.sync", s.now() - t0);
                let t_diag = s.now();
                tracer.span_begin(track, "scf.diag", t_diag, &[]);
                s.sleep(cfg.diag_time).await;
                tracer.span_end(track, "scf.diag", s.now(), &[]);
                rk.armci()
                    .machine()
                    .stats()
                    .record_time("scf.phase.diag", s.now() - t_diag);
                // Convergence check: SCF energy via the collective network.
                let energy = fock.global_sum(&rk).await;
                tracer.instant(
                    track,
                    "scf.energy",
                    s.now(),
                    &[("value", desim::TraceValue::F64(energy))],
                );
                let delta = (energy - prev_energy).abs();
                prev_energy = energy;
                tally.iterations_run = iter + 1;
                if let Some(tol) = cfg.converge_tol {
                    if delta < tol {
                        break;
                    }
                }
            }
            rk.barrier().await;
            tallies.borrow_mut()[rk.id()] = tally;
        });
    }

    let end = sim.run();
    let crit = (flight_capacity > 0).then(|| desim::analyze(&armci.machine().flight(), end));
    let timeline = cfg
        .timeline_window_ps
        .map(|_| armci.machine().timeline().snapshot());
    let stats = armci.machine().stats();
    let rmw_count = stats.counter("armci.rmw");
    armci.finalize();
    sim.shutdown();

    let tallies = tallies.borrow();
    let counter_waits: Vec<SimDuration> = tallies.iter().map(|t| t.counter_wait).collect();
    let gets: Vec<SimDuration> = tallies.iter().map(|t| t.get_time).collect();
    let accs: Vec<SimDuration> = tallies.iter().map(|t| t.acc_time).collect();
    let computes: Vec<SimDuration> = tallies.iter().map(|t| t.compute_time).collect();
    let syncs: Vec<SimDuration> = tallies.iter().map(|t| t.sync_time).collect();
    let report = ScfReport {
        nprocs,
        mode: match cfg.progress {
            ProgressMode::Default => "D".to_string(),
            ProgressMode::AsyncThread => "AT".to_string(),
        },
        iterations: tallies.iter().map(|t| t.iterations_run).max().unwrap_or(0),
        tasks_per_iter: ntasks,
        total_us: end.as_us(),
        counter_wait_mean_us: mean_us(&counter_waits),
        counter_wait_max_us: max_us(&counter_waits),
        get_mean_us: mean_us(&gets),
        acc_mean_us: mean_us(&accs),
        compute_mean_us: mean_us(&computes),
        sync_mean_us: mean_us(&syncs),
        tasks_min: tallies.iter().map(|t| t.tasks).min().unwrap_or(0),
        tasks_max: tallies.iter().map(|t| t.tasks).max().unwrap_or(0),
        rmw_count,
    };
    (report, crit, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_scf_completes_and_balances() {
        let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        let report = run_scf(4, &cfg);
        assert_eq!(report.iterations, 2);
        let total_tasks: usize = report.tasks_per_iter * report.iterations;
        // Every task was executed exactly once across ranks and iterations.
        assert!(report.rmw_count as usize >= total_tasks);
        assert!(report.tasks_max >= report.tasks_min);
        assert!(report.total_us > 0.0);
        // Compute dominates for the tiny config.
        assert!(report.compute_mean_us > 0.0);
    }

    #[test]
    fn scf_is_deterministic() {
        let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        let a = run_scf(4, &cfg);
        let b = run_scf(4, &cfg);
        assert_eq!(a.total_us, b.total_us);
        assert_eq!(a.counter_wait_mean_us, b.counter_wait_mean_us);
        assert_eq!(a.tasks_min, b.tasks_min);
        assert_eq!(a.tasks_max, b.tasks_max);
    }

    #[test]
    fn at_beats_default_with_compute_heavy_rank0() {
        // Even at tiny scale the counter waits should be visibly lower
        // with the asynchronous thread.
        let d = run_scf(8, &ScfConfig::tiny(ProgressMode::Default));
        let at = run_scf(8, &ScfConfig::tiny(ProgressMode::AsyncThread));
        assert!(
            at.counter_wait_mean_us < d.counter_wait_mean_us,
            "AT counter {} >= D counter {}",
            at.counter_wait_mean_us,
            d.counter_wait_mean_us
        );
        assert!(
            at.total_us <= d.total_us,
            "AT total {} > D total {}",
            at.total_us,
            d.total_us
        );
    }

    #[test]
    fn flight_breakdown_tiles_total_time_deterministically() {
        let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        let (report, crit) = run_scf_flight(4, &cfg, 1 << 16);
        let cp = crit.expect("flight enabled");
        // The five categories tile the whole run exactly.
        assert_eq!(cp.breakdown.total(), cp.total);
        assert!((cp.total.as_us() - report.total_us).abs() < 1e-9);
        // Byte-identical across same-seed runs.
        let (_, crit2) = run_scf_flight(4, &cfg, 1 << 16);
        assert_eq!(cp.to_json(), crit2.unwrap().to_json());
        // Plain run_scf keeps recording off and matches the recorded run.
        let plain = run_scf(4, &cfg);
        assert_eq!(plain.total_us, report.total_us);
    }

    #[test]
    fn convergence_stops_early() {
        let mut cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        cfg.iterations = 8;
        // Contributions decay as 1/iter^2; a loose tolerance triggers early.
        cfg.converge_tol = Some(5.0);
        let report = run_scf(3, &cfg);
        assert!(
            report.iterations < 8,
            "should converge before 8 cycles, ran {}",
            report.iterations
        );
        // Without a tolerance, all cycles run.
        cfg.converge_tol = None;
        let full = run_scf(3, &cfg);
        assert_eq!(full.iterations, 8);
        assert!(full.total_us > report.total_us);
    }

    #[test]
    fn screening_preserves_counter_pressure_but_cuts_compute() {
        let mut cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        let unscreened = run_scf(4, &cfg);
        cfg.screen_fraction = 0.5;
        let screened = run_scf(4, &cfg);
        // Same counter traffic (every task index is still fetched)...
        assert_eq!(screened.rmw_count, unscreened.rmw_count);
        // ...but roughly half the compute and a faster run.
        assert!(screened.compute_mean_us < unscreened.compute_mean_us * 0.75);
        assert!(screened.total_us < unscreened.total_us);
    }

    #[test]
    fn counter_overdraw_is_exactly_one_per_rank_per_iteration() {
        // Each rank keeps fetching until it sees t >= ntasks, so it overdraws
        // exactly once per iteration: rmw_count = iters * (ntasks + p).
        let cfg = ScfConfig::tiny(ProgressMode::AsyncThread);
        let p = 3;
        let report = run_scf(p, &cfg);
        let expected = cfg.iterations as u64 * (cfg.tasks_per_iter() as u64 + p as u64);
        assert_eq!(report.rmw_count, expected);
        // And the work was complete: total tasks executed match.
        // (tasks_min/max only bound the distribution; the counter accounting
        // above is the exact invariant.)
    }
}
