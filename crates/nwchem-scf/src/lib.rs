#![warn(missing_docs)]
//! # nwchem-scf — Self-Consistent-Field mini-app over Global Arrays
//!
//! A faithful skeleton of NWChem's SCF Fock-matrix construction (the
//! paper's Fig 10), preserving exactly the structure whose performance the
//! paper measures:
//!
//! ```text
//! do while (SCF not converged)
//!   t = SharedCounter.fetch_add(1)            # load-balance counter (rank 0)
//!   while (t < ntasks)
//!     get density patches for task t          # ARMCI strided gets (RDMA)
//!     do work (~300 us)                       # local 2-electron integrals
//!     accumulate Fock patch                   # ARMCI accumulate (software)
//!     t = SharedCounter.fetch_add(1)
//!   barrier; diagonalize; next iteration
//! ```
//!
//! The chemistry itself (integral evaluation, diagonalization) is replaced
//! by a calibrated compute-time model — the paper's own analysis attributes
//! the D-vs-AT difference entirely to *who makes progress on the counter's
//! AMOs while rank 0 computes*, which this skeleton reproduces: real counter
//! traffic, real patch gets, real accumulates, real task-grain compute.
//!
//! The default workload is the paper's: 6 water molecules, 644 basis
//! functions (§IV-C2, the reduced Gordon-Bell input).

pub mod molecule;
pub mod report;
pub mod scf;

pub use molecule::WaterCluster;
pub use report::ScfReport;
pub use scf::{run_scf, run_scf_flight, run_scf_timeline, ScfConfig};
