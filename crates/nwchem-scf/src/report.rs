//! SCF run reports: per-phase timing breakdown as the paper's Fig 11.

use desim::SimDuration;

/// Timing breakdown of one SCF run (all values are virtual time).
#[derive(Debug, Clone)]
pub struct ScfReport {
    /// Number of processes.
    pub nprocs: usize,
    /// Progress mode label ("D" or "AT").
    pub mode: String,
    /// SCF iterations executed.
    pub iterations: usize,
    /// Fock-build tasks per iteration.
    pub tasks_per_iter: usize,
    /// End-to-end execution time (µs).
    pub total_us: f64,
    /// Mean per-rank time blocked on the load-balance counter (µs).
    pub counter_wait_mean_us: f64,
    /// Maximum per-rank counter time (µs).
    pub counter_wait_max_us: f64,
    /// Mean per-rank time in density gets (µs).
    pub get_mean_us: f64,
    /// Mean per-rank time in Fock accumulates (µs).
    pub acc_mean_us: f64,
    /// Mean per-rank compute time (µs).
    pub compute_mean_us: f64,
    /// Mean per-rank barrier/synchronization time (µs).
    pub sync_mean_us: f64,
    /// Minimum tasks executed by any rank.
    pub tasks_min: usize,
    /// Maximum tasks executed by any rank.
    pub tasks_max: usize,
    /// Total fetch-and-adds issued.
    pub rmw_count: u64,
}

impl ScfReport {
    /// Fraction of total time a mean rank spent blocked on the counter.
    pub fn counter_fraction(&self) -> f64 {
        if self.total_us == 0.0 {
            0.0
        } else {
            self.counter_wait_mean_us / self.total_us
        }
    }

    /// One table row, paper-Fig-11 style.
    pub fn row(&self) -> String {
        format!(
            "{:>6} {:>3}  total={:>12.1}us  counter={:>12.1}us ({:>4.1}%)  get={:>10.1}us  acc={:>9.1}us  compute={:>12.1}us  sync={:>10.1}us  tasks/rank={}..{}",
            self.nprocs,
            self.mode,
            self.total_us,
            self.counter_wait_mean_us,
            100.0 * self.counter_fraction(),
            self.get_mean_us,
            self.acc_mean_us,
            self.compute_mean_us,
            self.sync_mean_us,
            self.tasks_min,
            self.tasks_max,
        )
    }

    /// Deterministic JSON object (one row of a `results/*.json` snapshot).
    pub fn to_json(&self) -> String {
        use desim::json::{push_f64, push_str, push_u64};
        let mut o = String::from("{");
        let field = |o: &mut String, first: bool, k: &str| {
            if !first {
                o.push_str(", ");
            }
            push_str(o, k);
            o.push_str(": ");
        };
        field(&mut o, true, "nprocs");
        push_u64(&mut o, self.nprocs as u64);
        field(&mut o, false, "mode");
        push_str(&mut o, &self.mode);
        field(&mut o, false, "iterations");
        push_u64(&mut o, self.iterations as u64);
        field(&mut o, false, "tasks_per_iter");
        push_u64(&mut o, self.tasks_per_iter as u64);
        field(&mut o, false, "total_us");
        push_f64(&mut o, self.total_us);
        field(&mut o, false, "counter_wait_mean_us");
        push_f64(&mut o, self.counter_wait_mean_us);
        field(&mut o, false, "counter_wait_max_us");
        push_f64(&mut o, self.counter_wait_max_us);
        field(&mut o, false, "get_mean_us");
        push_f64(&mut o, self.get_mean_us);
        field(&mut o, false, "acc_mean_us");
        push_f64(&mut o, self.acc_mean_us);
        field(&mut o, false, "compute_mean_us");
        push_f64(&mut o, self.compute_mean_us);
        field(&mut o, false, "sync_mean_us");
        push_f64(&mut o, self.sync_mean_us);
        field(&mut o, false, "tasks_min");
        push_u64(&mut o, self.tasks_min as u64);
        field(&mut o, false, "tasks_max");
        push_u64(&mut o, self.tasks_max as u64);
        field(&mut o, false, "rmw_count");
        push_u64(&mut o, self.rmw_count);
        o.push('}');
        o
    }
}

/// Mean of a slice of durations, in µs.
pub(crate) fn mean_us(xs: &[SimDuration]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|d| d.as_us()).sum::<f64>() / xs.len() as f64
}

/// Max of a slice of durations, in µs.
pub(crate) fn max_us(xs: &[SimDuration]) -> f64 {
    xs.iter().map(|d| d.as_us()).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        let xs = [
            SimDuration::from_us(2),
            SimDuration::from_us(4),
            SimDuration::from_us(9),
        ];
        assert_eq!(mean_us(&xs), 5.0);
        assert_eq!(max_us(&xs), 9.0);
        assert_eq!(mean_us(&[]), 0.0);
    }

    #[test]
    fn counter_fraction_and_row() {
        let r = ScfReport {
            nprocs: 1024,
            mode: "AT".into(),
            iterations: 3,
            tasks_per_iter: 100,
            total_us: 1000.0,
            counter_wait_mean_us: 250.0,
            counter_wait_max_us: 400.0,
            get_mean_us: 1.0,
            acc_mean_us: 1.0,
            compute_mean_us: 700.0,
            sync_mean_us: 10.0,
            tasks_min: 0,
            tasks_max: 3,
            rmw_count: 300,
        };
        assert_eq!(r.counter_fraction(), 0.25);
        let row = r.row();
        assert!(row.contains("1024"));
        assert!(row.contains("AT"));
        assert!(row.contains("25.0%"));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"nprocs\": 1024"));
        assert!(json.contains("\"mode\": \"AT\""));
        assert!(json.contains("\"counter_wait_mean_us\": 250.0"));
        assert!(json.contains("\"rmw_count\": 300"));
        assert_eq!(json, r.to_json(), "serialization is deterministic");
    }
}
