//! Workload descriptors: water clusters as in the paper's evaluation.

/// A water-cluster SCF input. The paper uses 6 H₂O with 644 basis
/// functions — the reduced version of the 24-H₂O Gordon-Bell input of
/// Aprà et al.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaterCluster {
    /// Number of water molecules.
    pub nwaters: usize,
}

impl WaterCluster {
    /// The paper's input: 6 water molecules.
    pub fn paper() -> WaterCluster {
        WaterCluster { nwaters: 6 }
    }

    /// Number of basis functions (aug-cc-pVDZ-like: the paper's 6-water
    /// deck has 644, i.e. ~107.33 per water; we round to the nearest
    /// integer for other cluster sizes).
    pub fn basis_functions(&self) -> usize {
        if self.nwaters == 6 {
            644
        } else {
            (self.nwaters as f64 * 644.0 / 6.0).round() as usize
        }
    }

    /// Number of occupied orbitals (5 per water: 1b2, 3a1, 1b1, 2a1, 1a1).
    pub fn occupied(&self) -> usize {
        self.nwaters * 5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_deck_is_644_bf() {
        assert_eq!(WaterCluster::paper().basis_functions(), 644);
        assert_eq!(WaterCluster::paper().occupied(), 30);
    }

    #[test]
    fn scaling_other_sizes() {
        assert_eq!(WaterCluster { nwaters: 12 }.basis_functions(), 1288);
        assert_eq!(WaterCluster { nwaters: 1 }.basis_functions(), 107);
    }
}
