//! Statistics registry shared across a simulation.
//!
//! Counters, duration accumulators and log₂ histograms keyed by name. The
//! registry is deterministic: reports are emitted in sorted key order.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::time::SimDuration;

/// Accumulated duration statistics for one key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: SimDuration,
    /// Smallest sample (zero if no samples).
    pub min: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
}

impl DurationStat {
    /// Arithmetic mean of the samples (zero if none).
    pub fn mean(&self) -> SimDuration {
        SimDuration(self.total.as_ps().checked_div(self.count).unwrap_or(0))
    }

    fn record(&mut self, d: SimDuration) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.total += d;
    }

    fn merge(&mut self, other: &DurationStat) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.total += other.total;
    }
}

#[derive(Default)]
struct StatsInner {
    counters: BTreeMap<String, u64>,
    durations: BTreeMap<String, DurationStat>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared, clonable statistics registry.
#[derive(Clone, Default)]
pub struct Stats {
    inner: Rc<RefCell<StatsInner>>,
}

impl Stats {
    /// Create an empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increment counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Increment counter `key` by `n`.
    pub fn add(&self, key: &str, n: u64) {
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(key.to_string())
            .or_insert(0) += n;
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner.borrow().counters.get(key).copied().unwrap_or(0)
    }

    /// Record one duration sample under `key`.
    pub fn record_time(&self, key: &str, d: SimDuration) {
        self.inner
            .borrow_mut()
            .durations
            .entry(key.to_string())
            .or_default()
            .record(d);
    }

    /// Duration statistics for `key`.
    pub fn time(&self, key: &str) -> DurationStat {
        self.inner
            .borrow()
            .durations
            .get(key)
            .copied()
            .unwrap_or_default()
    }

    /// Record a sample into the log₂ histogram under `key`.
    pub fn record_hist(&self, key: &str, value: u64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(key.to_string())
            .or_default()
            .record(value);
    }

    /// A copy of the histogram under `key` (empty if never touched).
    pub fn hist(&self, key: &str) -> Histogram {
        self.inner
            .borrow()
            .histograms
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// All counter keys currently present, sorted.
    pub fn counter_keys(&self) -> Vec<String> {
        self.inner.borrow().counters.keys().cloned().collect()
    }

    /// Reset everything.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.clear();
        inner.durations.clear();
        inner.histograms.clear();
    }

    /// Human-readable dump in sorted key order.
    pub fn report(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (k, v) in &inner.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, d) in &inner.durations {
            let _ = writeln!(
                out,
                "time    {k}: n={} total={} mean={} min={} max={}",
                d.count,
                d.total,
                d.mean(),
                d.min,
                d.max
            );
        }
        for (k, h) in &inner.histograms {
            let _ = writeln!(
                out,
                "hist    {k}: n={} p50~{} p99~{}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
        out
    }

    /// Snapshot every counter, duration stat and histogram into a plain,
    /// serializable value (sorted key order, hence deterministic).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            durations: inner
                .durations
                .iter()
                .map(|(k, d)| (k.clone(), *d))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect(),
        }
    }

    /// Fold a snapshot (e.g. from another simulation run) into this registry.
    /// Counters add, duration stats merge, histograms merge bucket-wise.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        let mut inner = self.inner.borrow_mut();
        for (k, v) in &snap.counters {
            *inner.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, d) in &snap.durations {
            inner.durations.entry(k.clone()).or_default().merge(d);
        }
        for (k, h) in &snap.histograms {
            inner.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

/// A plain-data snapshot of a [`Stats`] registry: sorted key/value vectors
/// of counters, duration stats and full histograms. Serializes to
/// deterministic JSON with [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(key, value)` counter pairs in sorted key order.
    pub counters: Vec<(String, u64)>,
    /// `(key, stat)` duration pairs in sorted key order.
    pub durations: Vec<(String, DurationStat)>,
    /// `(key, histogram)` pairs in sorted key order.
    pub histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// Serialize as a deterministic JSON document.
    ///
    /// Shape:
    /// `{"counters": {key: u64, ...},
    ///   "durations": {key: {count, total_ps, mean_ps, min_ps, max_ps}, ...},
    ///   "histograms": {key: {count, sum, mean, p50, p99, buckets: [u64; 65]}, ...}}`
    pub fn to_json(&self) -> String {
        use crate::json::{push_f64, push_str, push_u64};
        let mut o = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str(&mut o, k);
            o.push_str(": ");
            push_u64(&mut o, *v);
        }
        o.push_str("\n  },\n  \"durations\": {");
        for (i, (k, d)) in self.durations.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str(&mut o, k);
            o.push_str(": {\"count\": ");
            push_u64(&mut o, d.count);
            o.push_str(", \"total_ps\": ");
            push_u64(&mut o, d.total.as_ps());
            o.push_str(", \"mean_ps\": ");
            push_u64(&mut o, d.mean().as_ps());
            o.push_str(", \"min_ps\": ");
            push_u64(&mut o, d.min.as_ps());
            o.push_str(", \"max_ps\": ");
            push_u64(&mut o, d.max.as_ps());
            o.push('}');
        }
        o.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_str(&mut o, k);
            o.push_str(": {\"count\": ");
            push_u64(&mut o, h.count());
            o.push_str(", \"sum\": ");
            o.push_str(&format!("{}", h.sum()));
            o.push_str(", \"mean\": ");
            push_f64(&mut o, h.mean());
            o.push_str(", \"p50\": ");
            push_u64(&mut o, h.quantile(0.5));
            o.push_str(", \"p99\": ");
            push_u64(&mut o, h.quantile(0.99));
            o.push_str(", \"buckets\": [");
            for (j, b) in h.buckets().iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                push_u64(&mut o, *b);
            }
            o.push_str("]}");
        }
        o.push_str("\n  }\n}\n");
        o
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Record a sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all samples (exact).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The raw log₂ bucket counts. Bucket 0 holds samples of value 0 or 1;
    /// bucket `i > 0` holds samples in `[2^(i-1), 2^i - 1]`... precisely:
    /// a sample `v` lands in bucket `64 - v.leading_zeros()` (0 for `v = 0`).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Inclusive upper bound of bucket `i`, saturating at `u64::MAX` for the
    /// top bucket (whose true bound `2^64 - 1` is exactly `u64::MAX`).
    fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            (((1u128 << i) - 1).min(u64::MAX as u128)) as u64
        }
    }

    /// Approximate quantile: upper bound of the bucket containing the
    /// nearest-rank sample for `q`.
    ///
    /// Uses the nearest-rank definition `rank = ceil(q * count)` clamped to
    /// `[1, count]`, so `q = 0.0` returns the bucket of the smallest sample
    /// and `q = 1.0` the bucket of the largest.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.incr("x");
        s.add("x", 4);
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn durations_track_min_max_mean() {
        let s = Stats::new();
        s.record_time("lat", SimDuration::from_us(2));
        s.record_time("lat", SimDuration::from_us(4));
        s.record_time("lat", SimDuration::from_us(9));
        let d = s.time("lat");
        assert_eq!(d.count, 3);
        assert_eq!(d.total.as_us(), 15.0);
        assert_eq!(d.mean().as_us(), 5.0);
        assert_eq!(d.min.as_us(), 2.0);
        assert_eq!(d.max.as_us(), 9.0);
    }

    #[test]
    fn empty_duration_stat_is_zero() {
        let s = Stats::new();
        let d = s.time("never");
        assert_eq!(d.count, 0);
        assert_eq!(d.mean(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 185.0).abs() < 1.0);
        assert!(h.quantile(0.5) <= 7);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn report_is_sorted_and_stable() {
        let s = Stats::new();
        s.incr("b");
        s.incr("a");
        s.record_time("t", SimDuration::from_ns(5));
        let r1 = s.report();
        let r2 = s.report();
        assert_eq!(r1, r2);
        let a_pos = r1.find("counter a").unwrap();
        let b_pos = r1.find("counter b").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn stats_histogram_api() {
        let s = Stats::new();
        for v in [1u64, 10, 100, 1000] {
            s.record_hist("lat", v);
        }
        let h = s.hist("lat");
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 277.75).abs() < 0.01);
        assert_eq!(s.hist("missing").count(), 0);
        let report = s.report();
        assert!(report.contains("hist    lat"));
    }

    #[test]
    fn counter_keys_sorted() {
        let s = Stats::new();
        s.incr("zz");
        s.incr("aa");
        s.incr("mm");
        assert_eq!(s.counter_keys(), vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn quantile_top_bucket_does_not_underflow() {
        // Regression: a sample in the top bucket used to hit
        // `(1u128 << 64) as u64 - 1`, truncating to 0 then underflowing.
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        h.record(u64::MAX / 2 + 1); // also top bucket
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantile_nearest_rank_edges() {
        let mut h = Histogram::default();
        for v in [1u64, 16, 1024] {
            h.record(v);
        }
        // q = 0.0 -> rank clamps to 1 -> bucket of the smallest sample.
        assert_eq!(h.quantile(0.0), 1);
        // q = 1.0 -> rank = count -> bucket of the largest sample; the
        // upper bound of 1024's bucket [1024, 2047] is 2047.
        assert_eq!(h.quantile(1.0), 2047);
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        // rank never exceeds count even with fp rounding near 1.0.
        assert_eq!(h.quantile(0.999_999_999), h.quantile(1.0));
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(3);
        b.record(300);
        b.record(0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 303);
        assert_eq!(a.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_round_trips_and_absorbs() {
        let s = Stats::new();
        s.incr("armci.get");
        s.add("armci.get_bytes", 4096);
        s.record_time("armci.wait.get", SimDuration::from_us(3));
        s.record_hist("armci.wait.get", 3000);
        let snap = s.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.durations.len(), 1);
        assert_eq!(snap.histograms.len(), 1);

        let merged = Stats::new();
        merged.absorb(&snap);
        merged.absorb(&snap);
        assert_eq!(merged.counter("armci.get"), 2);
        assert_eq!(merged.time("armci.wait.get").count, 2);
        assert_eq!(merged.time("armci.wait.get").min.as_us(), 3.0);
        assert_eq!(merged.hist("armci.wait.get").count(), 2);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let s = Stats::new();
        s.incr("pami.rmw");
        s.record_time("t", SimDuration::from_ns(5));
        s.record_hist("h", u64::MAX);
        let j1 = s.snapshot().to_json();
        let j2 = s.snapshot().to_json();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"pami.rmw\": 1"));
        assert!(j1.contains("\"total_ps\": 5000"));
        assert!(j1.contains("\"p99\": 18446744073709551615"));
        // Full bucket vector: 65 entries -> 64 commas inside the array.
        let buckets = j1.split("\"buckets\": [").nth(1).unwrap();
        let arr = buckets.split(']').next().unwrap();
        assert_eq!(arr.split(',').count(), 65);
    }

    #[test]
    fn clear_resets() {
        let s = Stats::new();
        s.incr("x");
        s.record_time("t", SimDuration::from_ns(1));
        s.clear();
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.time("t").count, 0);
    }
}
