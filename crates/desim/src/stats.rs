//! Statistics registry shared across a simulation.
//!
//! Counters, duration accumulators and log₂ histograms keyed by name. The
//! registry is deterministic: reports are emitted in sorted key order.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::time::SimDuration;

/// Accumulated duration statistics for one key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurationStat {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: SimDuration,
    /// Smallest sample (zero if no samples).
    pub min: SimDuration,
    /// Largest sample.
    pub max: SimDuration,
}

impl DurationStat {
    /// Arithmetic mean of the samples (zero if none).
    pub fn mean(&self) -> SimDuration {
        SimDuration(self.total.as_ps().checked_div(self.count).unwrap_or(0))
    }

    fn record(&mut self, d: SimDuration) {
        if self.count == 0 {
            self.min = d;
            self.max = d;
        } else {
            self.min = self.min.min(d);
            self.max = self.max.max(d);
        }
        self.count += 1;
        self.total += d;
    }
}

#[derive(Default)]
struct StatsInner {
    counters: BTreeMap<String, u64>,
    durations: BTreeMap<String, DurationStat>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared, clonable statistics registry.
#[derive(Clone, Default)]
pub struct Stats {
    inner: Rc<RefCell<StatsInner>>,
}

impl Stats {
    /// Create an empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increment counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Increment counter `key` by `n`.
    pub fn add(&self, key: &str, n: u64) {
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(key.to_string())
            .or_insert(0) += n;
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Record one duration sample under `key`.
    pub fn record_time(&self, key: &str, d: SimDuration) {
        self.inner
            .borrow_mut()
            .durations
            .entry(key.to_string())
            .or_default()
            .record(d);
    }

    /// Duration statistics for `key`.
    pub fn time(&self, key: &str) -> DurationStat {
        self.inner
            .borrow()
            .durations
            .get(key)
            .copied()
            .unwrap_or_default()
    }

    /// Record a sample into the log₂ histogram under `key`.
    pub fn record_hist(&self, key: &str, value: u64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(key.to_string())
            .or_default()
            .record(value);
    }

    /// A copy of the histogram under `key` (empty if never touched).
    pub fn hist(&self, key: &str) -> Histogram {
        self.inner
            .borrow()
            .histograms
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// All counter keys currently present, sorted.
    pub fn counter_keys(&self) -> Vec<String> {
        self.inner.borrow().counters.keys().cloned().collect()
    }

    /// Reset everything.
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.clear();
        inner.durations.clear();
        inner.histograms.clear();
    }

    /// Human-readable dump in sorted key order.
    pub fn report(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (k, v) in &inner.counters {
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, d) in &inner.durations {
            let _ = writeln!(
                out,
                "time    {k}: n={} total={} mean={} min={} max={}",
                d.count,
                d.total,
                d.mean(),
                d.min,
                d.max
            );
        }
        for (k, h) in &inner.histograms {
            let _ = writeln!(out, "hist    {k}: n={} p50~{} p99~{}", h.count(), h.quantile(0.5), h.quantile(0.99));
        }
        out
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Record a sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples (exact, not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: upper bound of the bucket containing rank
    /// `q * count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0)) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank.max(1) {
                return if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::new();
        s.incr("x");
        s.add("x", 4);
        assert_eq!(s.counter("x"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn durations_track_min_max_mean() {
        let s = Stats::new();
        s.record_time("lat", SimDuration::from_us(2));
        s.record_time("lat", SimDuration::from_us(4));
        s.record_time("lat", SimDuration::from_us(9));
        let d = s.time("lat");
        assert_eq!(d.count, 3);
        assert_eq!(d.total.as_us(), 15.0);
        assert_eq!(d.mean().as_us(), 5.0);
        assert_eq!(d.min.as_us(), 2.0);
        assert_eq!(d.max.as_us(), 9.0);
    }

    #[test]
    fn empty_duration_stat_is_zero() {
        let s = Stats::new();
        let d = s.time("never");
        assert_eq!(d.count, 0);
        assert_eq!(d.mean(), SimDuration::ZERO);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - 185.0).abs() < 1.0);
        assert!(h.quantile(0.5) <= 7);
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_zero_sample() {
        let mut h = Histogram::default();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn report_is_sorted_and_stable() {
        let s = Stats::new();
        s.incr("b");
        s.incr("a");
        s.record_time("t", SimDuration::from_ns(5));
        let r1 = s.report();
        let r2 = s.report();
        assert_eq!(r1, r2);
        let a_pos = r1.find("counter a").unwrap();
        let b_pos = r1.find("counter b").unwrap();
        assert!(a_pos < b_pos);
    }

    #[test]
    fn stats_histogram_api() {
        let s = Stats::new();
        for v in [1u64, 10, 100, 1000] {
            s.record_hist("lat", v);
        }
        let h = s.hist("lat");
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 277.75).abs() < 0.01);
        assert_eq!(s.hist("missing").count(), 0);
        let report = s.report();
        assert!(report.contains("hist    lat"));
    }

    #[test]
    fn counter_keys_sorted() {
        let s = Stats::new();
        s.incr("zz");
        s.incr("aa");
        s.incr("mm");
        assert_eq!(s.counter_keys(), vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn clear_resets() {
        let s = Stats::new();
        s.incr("x");
        s.record_time("t", SimDuration::from_ns(1));
        s.clear();
        assert_eq!(s.counter("x"), 0);
        assert_eq!(s.time("t").count, 0);
    }
}
