//! Tagged allocation profiler — per-subsystem live/peak bytes with no
//! external dependencies.
//!
//! [`MemProf`] is a tracking [`GlobalAlloc`] wrapper around [`System`]. A
//! binary opts in by installing it as its global allocator and calling
//! [`enable`]; until then (and in every binary that never installs it) the
//! profiler costs nothing. With the wrapper installed but **disabled** —
//! the production default — every allocation pays exactly one relaxed
//! atomic load, and the warm-path allocation-freedom goldens remain valid
//! (`torus5d/tests/alloc_free.rs` is built on this module).
//!
//! Attribution works through a thread-local **scope-tag stack**: code brackets
//! an allocation region with [`MemScope::enter`] (or the cheaper
//! [`scope`]/[`MemTag`] pair on warm paths) and every allocation made while
//! the scope is alive is charged to that tag. Frees are charged to the tag
//! that allocated the block — a global sharded pointer→tag side table
//! (backed directly by [`System`], so the profiler never recurses into
//! itself) remembers the owner, and a block allocated while the profiler was
//! disabled is simply skipped on free, which makes enable/disable
//! transitions safe at any point.
//!
//! Two accounting planes are kept:
//!
//! * **global** — process-wide atomics per tag ([`global_snapshot`]);
//! * **thread-local** — exact per-thread counters, read through the
//!   [`mark`]/[`since`] delta API. A simulation runs entirely on one thread,
//!   so bracketing it with `mark`/`since` yields per-run accounting that is
//!   byte-identical no matter how many sweep workers run other simulations
//!   concurrently (`--jobs` invariance).
//!
//! Snapshots serialize as fixed-order `memprof-v1` JSON
//! ([`MemSnapshot::to_json`]). Determinism caveat: *virtual-time results
//! never depend on this module* (it only observes), and per-run byte counts
//! are deterministic for a fixed binary, but absolute counts may drift
//! across compiler versions — perf gates on them use a loose tolerance
//! while schemas and growth classes gate exactly (see `fig_mem`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::Mutex;

use crate::time::SimTime;
use crate::timeline::{SeriesId, SeriesKind, Timeline};

/// Maximum number of distinct tags (including the implicit `untagged`
/// bucket). Registration past the cap falls back to `untagged` rather than
/// failing — the taxonomy is meant to stay small and curated.
pub const MAX_TAGS: usize = 32;

const UNTAGGED: u16 = 0;
const UNTAGGED_NAME: &str = "untagged";

// ---------------------------------------------------------------------------
// Enable gate
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the profiler on. Only meaningful in binaries that installed
/// [`MemProf`] as their `#[global_allocator]`; harmless elsewhere.
pub fn enable() {
    intern(UNTAGGED_NAME);
    ENABLED.store(true, Release);
}

/// Turn the profiler off. Blocks freed later are skipped (their tags were
/// recorded, but accounting is gated), so disabling mid-run never corrupts
/// counters.
pub fn disable() {
    ENABLED.store(false, Release);
}

/// True while the profiler is recording. One relaxed load — this is the
/// entire disabled-path cost of every instrumentation site.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

// ---------------------------------------------------------------------------
// Tag registry: append-only interning of &'static str names
// ---------------------------------------------------------------------------

static TAG_PTRS: [AtomicPtr<u8>; MAX_TAGS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_TAGS];
static TAG_LENS: [AtomicUsize; MAX_TAGS] = [const { AtomicUsize::new(0) }; MAX_TAGS];
static TAG_COUNT: AtomicUsize = AtomicUsize::new(0);
static REG_LOCK: Mutex<()> = Mutex::new(());

/// Name of interned tag `i < tag_count()`.
fn tag_name(i: usize) -> &'static str {
    let ptr = TAG_PTRS[i].load(Relaxed);
    let len = TAG_LENS[i].load(Relaxed);
    // SAFETY: slots below TAG_COUNT were filled from a &'static str before
    // the Release store that published them (Acquire-loaded by callers).
    unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
}

/// Number of tags interned so far (0 until the first [`enable`]/intern).
pub fn tag_count() -> usize {
    TAG_COUNT.load(Acquire)
}

/// Intern `name`, returning its stable tag id. Never called from inside the
/// allocator; the slow path takes a mutex but allocates nothing.
fn intern(name: &'static str) -> u16 {
    let n = TAG_COUNT.load(Acquire);
    for i in 0..n {
        if tag_name(i) == name {
            return i as u16;
        }
    }
    let _g = REG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    if TAG_COUNT.load(Acquire) == 0 && name != UNTAGGED_NAME {
        // Slot 0 is always the untagged bucket.
        TAG_PTRS[0].store(UNTAGGED_NAME.as_ptr() as *mut u8, Relaxed);
        TAG_LENS[0].store(UNTAGGED_NAME.len(), Relaxed);
        TAG_COUNT.store(1, Release);
    }
    let n = TAG_COUNT.load(Acquire);
    for i in 0..n {
        if tag_name(i) == name {
            return i as u16;
        }
    }
    if n >= MAX_TAGS {
        return UNTAGGED;
    }
    TAG_PTRS[n].store(name.as_ptr() as *mut u8, Relaxed);
    TAG_LENS[n].store(name.len(), Relaxed);
    TAG_COUNT.store(n + 1, Release);
    n as u16
}

// ---------------------------------------------------------------------------
// Per-tag statistics: global atomics + exact thread-locals
// ---------------------------------------------------------------------------

struct GlobalTag {
    live: AtomicI64,
    peak: AtomicI64,
    allocs: AtomicU64,
    frees: AtomicU64,
    reallocs: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const GLOBAL_TAG_ZERO: GlobalTag = GlobalTag {
    live: AtomicI64::new(0),
    peak: AtomicI64::new(0),
    allocs: AtomicU64::new(0),
    frees: AtomicU64::new(0),
    reallocs: AtomicU64::new(0),
};
static GLOBAL: [GlobalTag; MAX_TAGS] = [GLOBAL_TAG_ZERO; MAX_TAGS];

/// Thread-local per-tag counters. `Cell` arrays with const initializers:
/// no lazy init and no destructor, so touching them from inside the
/// allocator can neither allocate nor re-enter.
struct TlStats {
    live: [Cell<i64>; MAX_TAGS],
    peak: [Cell<i64>; MAX_TAGS],
    allocs: [Cell<u64>; MAX_TAGS],
    frees: [Cell<u64>; MAX_TAGS],
    reallocs: [Cell<u64>; MAX_TAGS],
}

thread_local! {
    static TLS: TlStats = const {
        TlStats {
            live: [const { Cell::new(0) }; MAX_TAGS],
            peak: [const { Cell::new(0) }; MAX_TAGS],
            allocs: [const { Cell::new(0) }; MAX_TAGS],
            frees: [const { Cell::new(0) }; MAX_TAGS],
            reallocs: [const { Cell::new(0) }; MAX_TAGS],
        }
    };
    static CUR_TAG: Cell<u16> = const { Cell::new(UNTAGGED) };
}

#[inline]
fn cur_tag() -> u16 {
    CUR_TAG.try_with(|c| c.get()).unwrap_or(UNTAGGED)
}

// ---------------------------------------------------------------------------
// Scope tags
// ---------------------------------------------------------------------------

/// RAII guard charging allocations on this thread to a tag until dropped.
/// Scopes nest: the constructor saves the previous tag and `Drop` restores
/// it, so inner subsystems override outer ones and hand attribution back.
pub struct MemScope {
    prev: u16,
    // Scopes guard a *thread's* tag stack; sending one across threads would
    // restore the wrong thread's state.
    _not_send: PhantomData<*const ()>,
}

impl MemScope {
    /// Enter a scope by tag name (interned on first use). Fine for cold
    /// sites; warm paths should hold a [`MemTag`] and use [`scope`].
    pub fn enter(name: &'static str) -> MemScope {
        Self::with_id(intern(name))
    }

    #[inline]
    fn with_id(id: u16) -> MemScope {
        let prev = CUR_TAG.with(|c| c.replace(id));
        MemScope {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl Drop for MemScope {
    #[inline]
    fn drop(&mut self) {
        let _ = CUR_TAG.try_with(|c| c.set(self.prev));
    }
}

/// A pre-declared tag for warm instrumentation sites: interned once, cached
/// in an atomic, so [`scope`] costs one relaxed load when the profiler is
/// enabled and exactly one when it is not.
pub struct MemTag {
    name: &'static str,
    id: AtomicU32,
}

impl MemTag {
    /// Declare a tag (usually as a `static`). Interning is deferred to the
    /// first [`scope`] hit while enabled.
    pub const fn new(name: &'static str) -> MemTag {
        MemTag {
            name,
            id: AtomicU32::new(u32::MAX),
        }
    }

    #[inline]
    fn id(&self) -> u16 {
        let v = self.id.load(Relaxed);
        if v != u32::MAX {
            return v as u16;
        }
        let id = intern(self.name);
        self.id.store(id as u32, Relaxed);
        id
    }
}

/// Enter `tag`'s scope only while the profiler is enabled. This is the warm
/// path idiom — `let _g = memprof::scope(&TAG);` — whose disabled cost is a
/// single relaxed atomic load and branch.
#[inline]
pub fn scope(tag: &'static MemTag) -> Option<MemScope> {
    if !enabled() {
        return None;
    }
    Some(MemScope::with_id(tag.id()))
}

/// Like [`scope`], but only claims the allocations if no outer scope already
/// did — the idiom for shared low-level services (e.g. the kernel's boxed
/// timer callbacks) that should default-attribute to themselves while letting
/// a tagged caller keep the attribution.
#[inline]
pub fn scope_default(tag: &'static MemTag) -> Option<MemScope> {
    if !enabled() || cur_tag() != UNTAGGED {
        return None;
    }
    Some(MemScope::with_id(tag.id()))
}

// ---------------------------------------------------------------------------
// Pointer → tag side table (sharded, System-backed, lock per shard)
// ---------------------------------------------------------------------------

const SHARDS: usize = 64;
const SLOT_EMPTY: usize = 0;
const SLOT_TOMB: usize = 1;

#[derive(Clone, Copy)]
struct Entry {
    ptr: usize,
    tag: u16,
}

struct Table {
    slots: *mut Entry,
    cap: usize,
    len: usize,
    tombs: usize,
}

struct Shard {
    lock: AtomicBool,
    table: UnsafeCell<Table>,
}

// SAFETY: `table` is only touched while `lock` is held (spin lock below).
unsafe impl Sync for Shard {}

#[allow(clippy::declare_interior_mutable_const)]
const SHARD_ZERO: Shard = Shard {
    lock: AtomicBool::new(false),
    table: UnsafeCell::new(Table {
        slots: std::ptr::null_mut(),
        cap: 0,
        len: 0,
        tombs: 0,
    }),
};
static SIDE: [Shard; SHARDS] = [SHARD_ZERO; SHARDS];

#[inline]
fn mix(ptr: usize) -> u64 {
    ((ptr as u64) >> 4).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct ShardGuard(&'static Shard);

impl ShardGuard {
    fn lock(ptr: usize) -> ShardGuard {
        let shard = &SIDE[(mix(ptr) >> 58) as usize];
        while shard
            .lock
            .compare_exchange_weak(false, true, Acquire, Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        ShardGuard(shard)
    }

    #[allow(clippy::mut_from_ref)]
    fn table(&self) -> &mut Table {
        // SAFETY: exclusive by the spin lock held for the guard's lifetime.
        unsafe { &mut *self.0.table.get() }
    }
}

impl Drop for ShardGuard {
    fn drop(&mut self) {
        self.0.lock.store(false, Release);
    }
}

impl Table {
    /// All raw table storage comes straight from `System`, bypassing the
    /// global allocator — the profiler never tracks (or recurses into) its
    /// own bookkeeping.
    fn grow(&mut self) {
        let new_cap = (self.cap * 2).max(1024);
        let layout = Layout::array::<Entry>(new_cap).expect("side-table layout");
        // SAFETY: layout is non-zero-sized; zeroed memory is a valid table
        // of SLOT_EMPTY entries.
        let new = unsafe { System.alloc_zeroed(layout) } as *mut Entry;
        assert!(!new.is_null(), "memprof side table allocation failed");
        let (old, old_cap) = (self.slots, self.cap);
        self.slots = new;
        self.cap = new_cap;
        self.len = 0;
        self.tombs = 0;
        if !old.is_null() {
            for i in 0..old_cap {
                // SAFETY: i < old_cap, old table still owned here.
                let e = unsafe { *old.add(i) };
                if e.ptr > SLOT_TOMB {
                    self.insert_fresh(e);
                }
            }
            let old_layout = Layout::array::<Entry>(old_cap).expect("side-table layout");
            // SAFETY: allocated above with the same layout.
            unsafe { System.dealloc(old as *mut u8, old_layout) };
        }
    }

    /// Insert into a table known to contain no tombstones and no `e.ptr`.
    fn insert_fresh(&mut self, e: Entry) {
        let mask = self.cap - 1;
        let mut i = mix(e.ptr) as usize & mask;
        loop {
            // SAFETY: i < cap by the mask.
            let slot = unsafe { &mut *self.slots.add(i) };
            if slot.ptr == SLOT_EMPTY {
                *slot = e;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn insert(&mut self, ptr: usize, tag: u16) {
        if (self.len + self.tombs + 1) * 4 > self.cap * 3 {
            self.grow();
        }
        let mask = self.cap - 1;
        let mut i = mix(ptr) as usize & mask;
        let mut free: Option<usize> = None;
        loop {
            // SAFETY: i < cap by the mask.
            let slot = unsafe { &mut *self.slots.add(i) };
            match slot.ptr {
                SLOT_EMPTY => {
                    let j = free.unwrap_or(i);
                    if free.is_some() {
                        self.tombs -= 1;
                    }
                    // SAFETY: j < cap (either i or an earlier probe index).
                    unsafe { *self.slots.add(j) = Entry { ptr, tag } };
                    self.len += 1;
                    return;
                }
                SLOT_TOMB if free.is_none() => {
                    free = Some(i);
                }
                p if p == ptr => {
                    // Same address re-allocated: overwrite the stale owner.
                    slot.tag = tag;
                    return;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    fn remove(&mut self, ptr: usize) -> Option<u16> {
        if self.cap == 0 {
            return None;
        }
        let mask = self.cap - 1;
        let mut i = mix(ptr) as usize & mask;
        loop {
            // SAFETY: i < cap by the mask.
            let slot = unsafe { &mut *self.slots.add(i) };
            match slot.ptr {
                SLOT_EMPTY => return None,
                p if p == ptr => {
                    let tag = slot.tag;
                    slot.ptr = SLOT_TOMB;
                    self.len -= 1;
                    self.tombs += 1;
                    return Some(tag);
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }
}

fn side_insert(ptr: usize, tag: u16) {
    ShardGuard::lock(ptr).table().insert(ptr, tag);
}

fn side_remove(ptr: usize) -> Option<u16> {
    ShardGuard::lock(ptr).table().remove(ptr)
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

fn bump_alloc(tag: u16, size: i64) {
    let t = tag as usize;
    let _ = TLS.try_with(|s| {
        let live = s.live[t].get() + size;
        s.live[t].set(live);
        if live > s.peak[t].get() {
            s.peak[t].set(live);
        }
        s.allocs[t].set(s.allocs[t].get() + 1);
    });
    let g = &GLOBAL[t];
    let live = g.live.fetch_add(size, Relaxed) + size;
    g.peak.fetch_max(live, Relaxed);
    g.allocs.fetch_add(1, Relaxed);
}

fn track_alloc(ptr: usize, size: usize) {
    let tag = cur_tag();
    side_insert(ptr, tag);
    bump_alloc(tag, size as i64);
}

fn track_free(ptr: usize, size: usize) {
    // Unknown pointer ⇒ allocated while disabled ⇒ never counted: skip, so
    // enable/disable transitions cannot drive live counts negative.
    let Some(tag) = side_remove(ptr) else { return };
    let t = tag as usize;
    let _ = TLS.try_with(|s| {
        s.live[t].set(s.live[t].get() - size as i64);
        s.frees[t].set(s.frees[t].get() + 1);
    });
    GLOBAL[t].live.fetch_sub(size as i64, Relaxed);
    GLOBAL[t].frees.fetch_add(1, Relaxed);
}

fn track_realloc(old: usize, new_ptr: usize, old_size: usize, new_size: usize) {
    match side_remove(old) {
        Some(tag) => {
            // Grown/shrunk in place or moved: the block keeps its owner.
            side_insert(new_ptr, tag);
            let t = tag as usize;
            let delta = new_size as i64 - old_size as i64;
            let _ = TLS.try_with(|s| {
                let live = s.live[t].get() + delta;
                s.live[t].set(live);
                if live > s.peak[t].get() {
                    s.peak[t].set(live);
                }
                s.reallocs[t].set(s.reallocs[t].get() + 1);
            });
            let g = &GLOBAL[t];
            let live = g.live.fetch_add(delta, Relaxed) + delta;
            g.peak.fetch_max(live, Relaxed);
            g.reallocs.fetch_add(1, Relaxed);
        }
        // Block from before enable(): start tracking it now, as an alloc
        // of the full new size under the current tag.
        None => track_alloc(new_ptr, new_size),
    }
}

// ---------------------------------------------------------------------------
// The GlobalAlloc wrapper
// ---------------------------------------------------------------------------

/// The tracking allocator. Install per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: desim::memprof::MemProf = desim::memprof::MemProf;
/// ```
///
/// Until [`enable`] runs, every operation forwards to [`System`] after one
/// relaxed atomic load.
pub struct MemProf;

unsafe impl GlobalAlloc for MemProf {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        // SAFETY: forwarded contract.
        let p = unsafe { System.alloc(l) };
        if enabled() && !p.is_null() {
            track_alloc(p as usize, l.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        // SAFETY: forwarded contract.
        let p = unsafe { System.alloc_zeroed(l) };
        if enabled() && !p.is_null() {
            track_alloc(p as usize, l.size());
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        if enabled() {
            track_free(p as usize, l.size());
        }
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwarded contract.
        let q = unsafe { System.realloc(p, l, new_size) };
        if enabled() && !q.is_null() {
            track_realloc(p as usize, q as usize, l.size(), new_size);
        }
        q
    }
}

// ---------------------------------------------------------------------------
// Marks, snapshots, JSON
// ---------------------------------------------------------------------------

/// A thread-local baseline taken by [`mark`]; feed it to [`since`] for
/// exact per-run deltas. Taking a mark also resets this thread's per-tag
/// peak watermarks to the current live level, so `since` reports the peak
/// *above the mark*. One active mark per thread at a time.
pub struct MemMark {
    live: [i64; MAX_TAGS],
    allocs: [u64; MAX_TAGS],
    frees: [u64; MAX_TAGS],
    reallocs: [u64; MAX_TAGS],
}

/// Record this thread's current per-tag counters as a delta baseline.
pub fn mark() -> MemMark {
    TLS.with(|s| {
        let mut m = MemMark {
            live: [0; MAX_TAGS],
            allocs: [0; MAX_TAGS],
            frees: [0; MAX_TAGS],
            reallocs: [0; MAX_TAGS],
        };
        for i in 0..MAX_TAGS {
            m.live[i] = s.live[i].get();
            s.peak[i].set(s.live[i].get());
            m.allocs[i] = s.allocs[i].get();
            m.frees[i] = s.frees[i].get();
            m.reallocs[i] = s.reallocs[i].get();
        }
        m
    })
}

/// Per-tag statistics in a [`MemSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TagStats {
    /// The scope-tag name (`"untagged"` for unattributed allocations).
    pub name: &'static str,
    /// Net live bytes (for [`since`]: the delta over the mark; may be
    /// negative when a run frees blocks allocated before its mark).
    pub live_bytes: i64,
    /// Peak live bytes (for [`since`]: peak *above* the mark baseline).
    pub peak_bytes: i64,
    /// Allocation count.
    pub allocs: u64,
    /// Free count.
    pub frees: u64,
    /// Reallocation count.
    pub reallocs: u64,
}

/// A fixed-order (sorted by tag name) snapshot of per-tag statistics;
/// serializes as `memprof-v1` JSON.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemSnapshot {
    /// Per-tag rows, sorted by name; tags with all-zero stats are omitted.
    pub tags: Vec<TagStats>,
}

impl MemSnapshot {
    /// Look up one tag's row.
    pub fn get(&self, name: &str) -> Option<&TagStats> {
        self.tags.iter().find(|t| t.name == name)
    }

    /// Sum of `allocs` over every tag.
    pub fn total_allocs(&self) -> u64 {
        self.tags.iter().map(|t| t.allocs).sum()
    }

    /// Serialize as a deterministic `memprof-v1` JSON document: tags in
    /// sorted name order, fixed field order.
    pub fn to_json(&self) -> String {
        use crate::json::push_str;
        let mut o = String::from("{\"schema\":\"memprof-v1\",\"tags\":{");
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            push_str(&mut o, t.name);
            o.push_str(&format!(
                ":{{\"live_bytes\":{},\"peak_bytes\":{},\"allocs\":{},\"frees\":{},\"reallocs\":{}}}",
                t.live_bytes, t.peak_bytes, t.allocs, t.frees, t.reallocs
            ));
        }
        o.push_str("}}");
        o
    }
}

fn build_snapshot(mut row: impl FnMut(usize) -> TagStats) -> MemSnapshot {
    let n = tag_count();
    let mut tags: Vec<TagStats> = (0..n)
        .map(&mut row)
        .filter(|t| {
            t.live_bytes != 0
                || t.peak_bytes != 0
                || t.allocs != 0
                || t.frees != 0
                || t.reallocs != 0
        })
        .collect();
    tags.sort_by(|a, b| a.name.cmp(b.name));
    MemSnapshot { tags }
}

/// Exact per-run deltas on this thread since `m` was [`mark`]ed.
pub fn since(m: &MemMark) -> MemSnapshot {
    TLS.with(|s| {
        build_snapshot(|i| TagStats {
            name: tag_name(i),
            live_bytes: s.live[i].get() - m.live[i],
            peak_bytes: (s.peak[i].get() - m.live[i]).max(0),
            allocs: s.allocs[i].get() - m.allocs[i],
            frees: s.frees[i].get() - m.frees[i],
            reallocs: s.reallocs[i].get() - m.reallocs[i],
        })
    })
}

/// Process-wide per-tag totals (all threads, since [`enable`]).
pub fn global_snapshot() -> MemSnapshot {
    build_snapshot(|i| {
        let g = &GLOBAL[i];
        TagStats {
            name: tag_name(i),
            live_bytes: g.live.load(Relaxed),
            peak_bytes: g.peak.load(Relaxed),
            allocs: g.allocs.load(Relaxed),
            frees: g.frees.load(Relaxed),
            reallocs: g.reallocs.load(Relaxed),
        }
    })
}

/// Total allocation calls (alloc + alloc_zeroed + realloc) recorded
/// process-wide — the counting-allocator primitive behind
/// `torus5d/tests/alloc_free.rs`'s zero-allocations-on-warm-path assertion.
pub fn total_allocs() -> u64 {
    let n = tag_count();
    (0..n)
        .map(|i| GLOBAL[i].allocs.load(Relaxed) + GLOBAL[i].reallocs.load(Relaxed))
        .sum()
}

// ---------------------------------------------------------------------------
// Timeline bridge: mem.live_bytes.<tag> gauges over virtual time
// ---------------------------------------------------------------------------

/// Record one `mem.live_bytes.<tag>` gauge sample per touched tag at
/// virtual time `at`, from this thread's live counters. `ids` caches the
/// interned series handles across calls (index = tag id). No-op unless both
/// the profiler and `tl` are enabled, so default timeline runs (and their
/// zero-tolerance goldens) never see these series.
pub fn record_live_gauges(tl: &Timeline, at: SimTime, ids: &mut Vec<Option<SeriesId>>) {
    if !enabled() || !tl.on() {
        return;
    }
    let n = tag_count();
    if ids.len() < n {
        let _g = MemScope::enter("desim.timeline");
        ids.resize(n, None);
    }
    TLS.with(|s| {
        for (i, id) in ids.iter_mut().enumerate().take(n) {
            if s.allocs[i].get() == 0 && s.live[i].get() == 0 {
                continue;
            }
            if id.is_none() {
                let _g = MemScope::enter("desim.timeline");
                let name = format!("mem.live_bytes.{}", tag_name(i));
                *id = Some(tl.series(&name, SeriesKind::Gauge));
            }
            tl.gauge(id.unwrap(), at, s.live[i].get());
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // The wrapper is not installed as this test binary's global allocator,
    // so these tests exercise the registry/scope/snapshot machinery and the
    // side table directly; end-to-end allocator tests live in the dedicated
    // integration-test binaries (they need #[global_allocator]).

    #[test]
    fn interning_is_stable_and_reserves_untagged() {
        let a = intern("test.alpha");
        let b = intern("test.beta");
        let a2 = intern("test.alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, UNTAGGED);
        assert_eq!(tag_name(UNTAGGED as usize), "untagged");
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = MemScope::enter("test.outer");
        let outer_id = cur_tag();
        {
            let _inner = MemScope::enter("test.inner");
            assert_ne!(cur_tag(), outer_id);
        }
        assert_eq!(cur_tag(), outer_id);
        drop(outer);
        assert_eq!(cur_tag(), UNTAGGED);
    }

    #[test]
    fn side_table_tracks_inserts_removes_and_reuse() {
        // Synthetic pointers: non-zero, 16-aligned, unique to this test.
        let base = 0xABCD_0000usize;
        for k in 0..3000usize {
            side_insert(base + k * 16, (k % 7) as u16);
        }
        for k in 0..3000usize {
            assert_eq!(side_remove(base + k * 16), Some((k % 7) as u16));
        }
        assert_eq!(side_remove(base), None, "double free is a skip");
        // Tombstone reuse: re-insert over the freed range.
        side_insert(base, 3);
        assert_eq!(side_remove(base), Some(3));
    }

    #[test]
    fn accounting_and_snapshot_deltas() {
        let tag = intern("test.acct");
        let m = mark();
        bump_alloc(tag, 1000);
        bump_alloc(tag, 500);
        // Simulate a free of the 500-byte block.
        let t = tag as usize;
        TLS.with(|s| {
            s.live[t].set(s.live[t].get() - 500);
            s.frees[t].set(s.frees[t].get() + 1);
        });
        let snap = since(&m);
        let row = snap.get("test.acct").expect("tag recorded");
        assert_eq!(row.live_bytes, 1000);
        assert_eq!(row.peak_bytes, 1500);
        assert_eq!(row.allocs, 2);
        assert_eq!(row.frees, 1);
        // A fresh mark resets the watermark.
        let m2 = mark();
        let snap2 = since(&m2);
        assert!(snap2.get("test.acct").is_none_or(|r| r.peak_bytes == 0));
    }

    #[test]
    fn json_is_fixed_order() {
        let snap = MemSnapshot {
            tags: vec![
                TagStats {
                    name: "a.x",
                    live_bytes: 5,
                    peak_bytes: 9,
                    allocs: 2,
                    frees: 1,
                    reallocs: 0,
                },
                TagStats {
                    name: "b.y",
                    live_bytes: -3,
                    peak_bytes: 0,
                    allocs: 0,
                    frees: 1,
                    reallocs: 0,
                },
            ],
        };
        let j = snap.to_json();
        assert_eq!(
            j,
            "{\"schema\":\"memprof-v1\",\"tags\":{\"a.x\":{\"live_bytes\":5,\
             \"peak_bytes\":9,\"allocs\":2,\"frees\":1,\"reallocs\":0},\
             \"b.y\":{\"live_bytes\":-3,\"peak_bytes\":0,\"allocs\":0,\
             \"frees\":1,\"reallocs\":0}}}"
        );
        assert!(crate::json::parse(&j).is_ok());
        assert_eq!(snap.total_allocs(), 2);
    }
}
