//! Hierarchical timer wheel with a far-future fallback heap.
//!
//! The kernel's timer queue was originally a single `BinaryHeap`; every
//! insert and pop paid `O(log n)` comparisons on the full timer population.
//! This wheel exploits the structure of simulation time instead: deadlines
//! overwhelmingly land close to *now* (nanosecond-scale link and DMA costs),
//! with a thin tail of far-future entries (compute grains, watchdogs).
//!
//! Three levels of 256 slots cover a geometrically growing horizon
//! (~16.8 µs, ~4.3 ms, ~1.1 s past the current window base); anything beyond
//! the top level falls back to a `BinaryHeap`. Inserting into a slot is an
//! `O(1)` `Vec` push. Popping activates one slot at a time: its entries move
//! into a small ordered `pending` heap, so extraction remains **exactly**
//! ordered by `(time, seq)` — the wheel is an internal reorganization, never
//! a semantic change. Late inserts that land at or below the activated
//! region (always `>= now`) go straight to `pending`, preserving order.
//!
//! All `Vec` slots and both heaps retain their capacity across clears and
//! window rebasing, so steady-state operation allocates only when a slot
//! outgrows every previous occupancy (slab-style recycling).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// log2 of the finest slot width in picoseconds (2^16 ps ≈ 65.5 ns).
const BASE_SHIFT: u32 = 16;
/// Wheel levels below the fallback heap.
const LEVELS: usize = 3;

#[inline]
fn shift(level: usize) -> u32 {
    BASE_SHIFT + SLOT_BITS * level as u32
}

/// One timer record: absolute picosecond deadline, global tie-break
/// sequence, payload.
pub(crate) struct Entry<T> {
    pub at: u64,
    pub seq: u64,
    pub payload: T,
}

/// Max-heap adapter popping the *smallest* `(at, seq)` first.
struct MinEntry<T>(Entry<T>);

impl<T> PartialEq for MinEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<T> Eq for MinEntry<T> {}
impl<T> PartialOrd for MinEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

struct Level<T> {
    /// `slots[i]` holds entries with `at` in `[base + i*W, base + (i+1)*W)`
    /// where `W = 1 << shift(level)`. Unordered within a slot.
    slots: Vec<Vec<Entry<T>>>,
    /// Next slot index to visit; slots before it have been drained.
    cursor: usize,
    /// Absolute time of `slots[0]`'s start.
    base: u64,
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            base: 0,
        }
    }

    #[inline]
    fn window_end(&self, level: usize) -> u64 {
        self.base.saturating_add((SLOTS as u64) << shift(level))
    }
}

/// The kernel's timer queue. Structurally a hierarchy of slot wheels plus a
/// far-future heap, semantically an exact `(at, seq)`-ordered priority queue.
pub(crate) struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    /// Ordered near-term entries: the activated slot's contents plus any
    /// late insert at `at < active_end`.
    pending: BinaryHeap<MinEntry<T>>,
    /// Deadlines beyond the top level's horizon.
    far: BinaryHeap<MinEntry<T>>,
    /// Entries strictly below this time must be routed through `pending`;
    /// equals `levels[0].base + cursor * W0` except right after a far-heap
    /// rebase jump (where it equals the new base).
    active_end: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> TimerWheel<T> {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            pending: BinaryHeap::new(),
            far: BinaryHeap::new(),
            active_end: 0,
            len: 0,
        }
    }

    /// Number of queued timers.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Queue `payload` to fire at absolute time `at` (picoseconds); `seq`
    /// breaks ties among equal deadlines. `at` must be `>= now` — the kernel
    /// asserts this before calling.
    pub(crate) fn insert(&mut self, at: u64, seq: u64, payload: T) {
        if self.len == 0 {
            // An empty wheel can be left exhausted: once `advance()` runs to
            // completion (sim went idle), every cursor sits at `SLOTS` while
            // the bases and `active_end` keep their stale values, so routing
            // below would file `e` behind a cursor that never revisits it.
            // Every container is empty here, so rebasing the whole hierarchy
            // to the new deadline is free and makes the routing exact again.
            for level in &mut self.levels {
                level.base = at;
                level.cursor = 0;
            }
            self.active_end = at;
        }
        self.len += 1;
        let e = Entry { at, seq, payload };
        if at < self.active_end {
            self.pending.push(MinEntry(e));
            return;
        }
        for (l, level) in self.levels.iter_mut().enumerate() {
            if at < level.window_end(l) {
                let idx = ((at - level.base) >> shift(l)) as usize;
                debug_assert!(idx >= level.cursor || l > 0);
                level.slots[idx].push(e);
                return;
            }
        }
        self.far.push(MinEntry(e));
    }

    /// Remove and return the earliest `(at, seq)` entry.
    pub(crate) fn pop(&mut self) -> Option<Entry<T>> {
        loop {
            if let Some(MinEntry(e)) = self.pending.pop() {
                self.len -= 1;
                return Some(e);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// The earliest `(at, seq)` without removing it.
    pub(crate) fn peek(&mut self) -> Option<(u64, u64)> {
        loop {
            if let Some(MinEntry(e)) = self.pending.peek() {
                return Some((e.at, e.seq));
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Drop every queued timer, retaining allocated capacity.
    pub(crate) fn clear(&mut self) {
        for level in &mut self.levels {
            for slot in &mut level.slots {
                slot.clear();
            }
            level.cursor = 0;
            level.base = 0;
        }
        self.pending.clear();
        self.far.clear();
        self.active_end = 0;
        self.len = 0;
    }

    /// Move the next non-empty batch into `pending`. Returns false when the
    /// wheel holds no timers at all.
    fn advance(&mut self) -> bool {
        loop {
            // Finest level: activate its next occupied slot.
            {
                let level = &mut self.levels[0];
                while level.cursor < SLOTS {
                    let c = level.cursor;
                    level.cursor += 1;
                    if !level.slots[c].is_empty() {
                        for e in level.slots[c].drain(..) {
                            self.pending.push(MinEntry(e));
                        }
                        self.active_end = level.base + ((c as u64 + 1) << shift(0));
                        return true;
                    }
                }
                // Window exhausted with nothing found: route future inserts
                // below the next window through `pending`.
                self.active_end = level.window_end(0);
            }
            // Cascade the next occupied slot of a coarser level downwards.
            if self.cascade() {
                continue;
            }
            // Every level exhausted: restart the hierarchy at the earliest
            // far-future deadline, if any.
            let Some(min_at) = self.far.peek().map(|e| e.0.at) else {
                return false;
            };
            for (l, level) in self.levels.iter_mut().enumerate() {
                debug_assert!(level.slots.iter().all(Vec::is_empty));
                level.base = min_at;
                level.cursor = 0;
                let _ = l;
            }
            self.active_end = min_at;
            let top = LEVELS - 1;
            let horizon = self.levels[top].window_end(top);
            while self.far.peek().is_some_and(|e| e.0.at < horizon) {
                let MinEntry(e) = self.far.pop().expect("peeked entry vanished");
                let idx = ((e.at - min_at) >> shift(top)) as usize;
                self.levels[top].slots[idx].push(e);
            }
        }
    }

    /// Find the lowest coarser level with an occupied slot and redistribute
    /// that slot into the level below, rebasing everything underneath it.
    /// Returns false when levels `1..` are exhausted.
    fn cascade(&mut self) -> bool {
        for l in 1..LEVELS {
            let found = {
                let level = &mut self.levels[l];
                let mut found = None;
                while level.cursor < SLOTS {
                    let c = level.cursor;
                    level.cursor += 1;
                    if !level.slots[c].is_empty() {
                        found = Some(c);
                        break;
                    }
                }
                found
            };
            let Some(c) = found else { continue };
            let slot_start = self.levels[l].base + ((c as u64) << shift(l));
            // Rebase every finer level at the slot being opened; their slots
            // are already empty (we only reach level `l` once they drain).
            for k in 0..l {
                let fine = &mut self.levels[k];
                fine.base = slot_start;
                fine.cursor = 0;
            }
            self.active_end = slot_start;
            let entries = std::mem::take(&mut self.levels[l].slots[c]);
            let dst = l - 1;
            let dst_shift = shift(dst);
            for e in entries.into_iter() {
                let idx = ((e.at - slot_start) >> dst_shift) as usize;
                self.levels[dst].slots[idx].push(e);
            }
            // Keep the drained slot's allocation for reuse.
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.at, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        let times = [
            7u64,
            7,
            0,
            1 << 20,       // level 0, late slot
            (1 << 26) + 3, // level 1
            (1 << 35) + 9, // level 2
            (1 << 45) + 1, // far heap
            (1 << 45) + 1, // far heap tie
            3,
        ];
        for (seq, &at) in times.iter().enumerate() {
            w.insert(at, seq as u64, 0);
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        expect.sort();
        assert_eq!(drain(&mut w), expect);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn interleaved_insert_pop_preserves_order() {
        // Mimic the kernel: after popping an entry at time t, new inserts
        // arrive with at >= t, possibly below the activated region.
        let mut w = TimerWheel::new();
        w.insert(100, 0, 0);
        w.insert(1 << 30, 1, 0);
        let first = w.pop().unwrap();
        assert_eq!((first.at, first.seq), (100, 0));
        // now = 100; insert near-term entries behind the already-activated
        // window and beyond it.
        w.insert(150, 2, 0);
        w.insert(120, 3, 0);
        w.insert((1 << 30) - 5, 4, 0);
        assert_eq!(
            drain(&mut w),
            vec![(120, 3), (150, 2), ((1 << 30) - 5, 4), (1 << 30, 1)]
        );
    }

    #[test]
    fn far_future_rebase_jumps_empty_time() {
        let mut w = TimerWheel::new();
        // Two clusters separated by ~100 simulated seconds.
        for s in 0..10u64 {
            w.insert(s * 7, s, 0);
        }
        let far = 100 * 1_000_000_000_000u64;
        for s in 0..10u64 {
            w.insert(far + s * 3, 100 + s, 0);
        }
        let got = drain(&mut w);
        assert_eq!(got.len(), 20);
        assert!(got.windows(2).all(|p| p[0] <= p[1]), "{got:?}");
        assert_eq!(got[10], (far, 100));
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut w = TimerWheel::new();
        for (seq, at) in [(0u64, 500u64), (1, 20), (2, 1 << 28)] {
            w.insert(at, seq, 0);
        }
        while let Some(peeked) = w.peek() {
            assert_eq!(w.peek(), Some(peeked), "peek must not disturb order");
            let e = w.pop().unwrap();
            assert_eq!((e.at, e.seq), peeked);
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn clear_resets_and_wheel_remains_usable() {
        let mut w = TimerWheel::new();
        for s in 0..100u64 {
            w.insert(s * 1_000_003, s, 0);
        }
        w.pop();
        w.clear();
        assert_eq!(w.len(), 0);
        assert_eq!(w.pop().map(|e| e.at), None);
        // Reuse after clear, at times far past the reset bases.
        w.insert(5_000_000_000_000, 0, 0);
        w.insert(4_999_999_999_999, 1, 0);
        assert_eq!(
            drain(&mut w),
            vec![(4_999_999_999_999, 1), (5_000_000_000_000, 0)]
        );
    }

    #[test]
    fn dense_same_time_burst() {
        let mut w = TimerWheel::new();
        for s in 0..1000u64 {
            w.insert(42, s, 0);
        }
        let got = drain(&mut w);
        assert_eq!(got, (0..1000u64).map(|s| (42, s)).collect::<Vec<_>>());
    }

    #[test]
    fn insert_after_exhaustion_is_not_lost() {
        // Regression: pop()/peek() on an emptied wheel runs advance() to
        // completion, pinning every cursor at SLOTS with stale bases. A
        // subsequent insert landing inside a stale window used to be filed
        // behind the exhausted cursor and silently dropped (pop() -> None
        // while len() > 0). Exercise a deadline in each level's range, and
        // the far heap, after every idle transition.
        let mut w = TimerWheel::new();
        let mut now = 0u64;
        for (seq, delta) in [
            100u64,  // level 0
            1 << 18, // level 0, deep slot
            1 << 27, // level 1
            1 << 36, // level 2
            1 << 46, // far heap
        ]
        .into_iter()
        .enumerate()
        {
            assert!(w.pop().is_none(), "wheel should start each round idle");
            let at = now + delta;
            w.insert(at, seq as u64, 0);
            assert_eq!(w.len(), 1);
            let e = w.pop().expect("timer inserted after idle was lost");
            assert_eq!((e.at, e.seq), (at, seq as u64));
            now = at;
        }
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn insert_burst_after_exhaustion_keeps_order() {
        // After the idle rebase, later inserts (len > 0) must still route
        // correctly relative to the rebased windows — including deadlines
        // *earlier* than the rebase point, which go through `pending`.
        let mut w = TimerWheel::new();
        w.insert(5, 0, 0);
        assert_eq!(w.pop().map(|e| e.at), Some(5));
        assert!(w.pop().is_none());
        let base = 1_000_000u64;
        w.insert(base, 1, 0); // triggers the rebase
        w.insert(base - 100, 2, 0); // behind the rebase point -> pending
        w.insert(base + (1 << 20), 3, 0);
        w.insert(base + (1 << 30), 4, 0);
        w.insert(base + (1 << 46), 5, 0);
        assert_eq!(
            drain(&mut w),
            vec![
                (base - 100, 2),
                (base, 1),
                (base + (1 << 20), 3),
                (base + (1 << 30), 4),
                (base + (1 << 46), 5),
            ]
        );
    }

    #[test]
    fn randomized_against_reference_heap() {
        // Deterministic pseudo-random interleaving of inserts and pops,
        // checked against a sorted reference.
        let mut w = TimerWheel::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut rng = crate::rng::SimRng::new(0xDEAD_BEEF);
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped = Vec::new();
        for round in 0..50 {
            for _ in 0..40 {
                // Mix of near, mid, far and same-tick deadlines.
                let delta = match rng.next_below(4) {
                    0 => rng.next_below(1 << 12),
                    1 => rng.next_below(1 << 22),
                    2 => rng.next_below(1 << 34),
                    _ => rng.next_below(1 << 44),
                };
                let at = now + delta;
                w.insert(at, seq, 0);
                reference.push((at, seq));
                seq += 1;
            }
            let pops = if round == 49 { usize::MAX } else { 25 };
            for _ in 0..pops {
                let Some(e) = w.pop() else { break };
                assert!(e.at >= now, "time went backwards");
                now = e.at;
                popped.push((e.at, e.seq));
            }
        }
        reference.sort();
        assert_eq!(popped, reference);
        assert_eq!(w.len(), 0);
    }
}
