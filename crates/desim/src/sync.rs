//! Synchronization primitives for simulated tasks.
//!
//! These consume no virtual time by themselves — they only order tasks. Time
//! costs (lock hold times, barrier network latency, …) are modelled by the
//! code running between acquisition and release, or by the layers above.
//!
//! * [`SimMutex`] — FIFO ticket lock with direct handoff (no barging), used to
//!   model the PAMI progress-engine lock shared by the main thread and the
//!   asynchronous progress thread.
//! * [`Barrier`] — reusable generation barrier.
//! * [`Notify`] — edge-triggered condition-variable-style wakeups.
//! * [`Semaphore`] — counting semaphore with FIFO waiters.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::waker_set::WakerSet;

// ---------------------------------------------------------------------------
// SimMutex: FIFO ticket lock with direct handoff
// ---------------------------------------------------------------------------

struct MutexState {
    next_ticket: u64,
    serving: u64,
    wakers: Vec<(u64, Waker)>,
    /// Tickets whose waiters were cancelled while queued; the release path
    /// skips them so the handoff chain cannot wedge.
    cancelled: std::collections::HashSet<u64>,
}

/// A fair (FIFO, direct-handoff) mutex for simulated tasks.
///
/// Fairness matters for fidelity: the paper's §III-D discusses starvation
/// between the main thread and the asynchronous progress thread competing for
/// the progress-engine lock; a barging lock would hide that effect.
pub struct SimMutex {
    state: Rc<RefCell<MutexState>>,
}

impl Clone for SimMutex {
    fn clone(&self) -> Self {
        SimMutex {
            state: Rc::clone(&self.state),
        }
    }
}

impl Default for SimMutex {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMutex {
    /// Create an unlocked mutex.
    pub fn new() -> SimMutex {
        SimMutex {
            state: Rc::new(RefCell::new(MutexState {
                next_ticket: 0,
                serving: 0,
                wakers: Vec::new(),
                cancelled: std::collections::HashSet::new(),
            })),
        }
    }

    /// Acquire the lock, waiting FIFO behind earlier requesters.
    pub fn lock(&self) -> MutexLock {
        MutexLock {
            state: Rc::clone(&self.state),
            ticket: None,
        }
    }

    /// Attempt to acquire without waiting.
    pub fn try_lock(&self) -> Option<MutexGuard> {
        let mut st = self.state.borrow_mut();
        if st.serving == st.next_ticket {
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            drop(st);
            Some(MutexGuard {
                state: Rc::clone(&self.state),
                _ticket: ticket,
            })
        } else {
            None
        }
    }

    /// True when some task currently holds the lock.
    pub fn is_locked(&self) -> bool {
        let st = self.state.borrow();
        st.serving < st.next_ticket
    }
}

/// Future returned by [`SimMutex::lock`].
pub struct MutexLock {
    state: Rc<RefCell<MutexState>>,
    ticket: Option<u64>,
}

impl Future for MutexLock {
    type Output = MutexGuard;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<MutexGuard> {
        let this = self.get_mut();
        let ticket = match this.ticket {
            Some(t) => t,
            None => {
                let t = {
                    let mut st = this.state.borrow_mut();
                    let t = st.next_ticket;
                    st.next_ticket += 1;
                    t
                };
                this.ticket = Some(t);
                t
            }
        };
        let mut st = this.state.borrow_mut();
        if st.serving == ticket {
            drop(st);
            // Hand responsibility for the release to the guard; the future's
            // Drop must no longer treat this ticket as a cancelled waiter.
            this.ticket = None;
            Poll::Ready(MutexGuard {
                state: Rc::clone(&this.state),
                _ticket: ticket,
            })
        } else {
            match st.wakers.iter_mut().find(|(t, _)| *t == ticket) {
                Some(slot) => slot.1 = cx.waker().clone(),
                None => st.wakers.push((ticket, cx.waker().clone())),
            }
            Poll::Pending
        }
    }
}

impl Drop for MutexLock {
    fn drop(&mut self) {
        // A cancelled waiter must give its turn away or the queue deadlocks.
        if let Some(ticket) = self.ticket {
            let mut st = self.state.borrow_mut();
            st.wakers.retain(|(t, _)| *t != ticket);
            if st.serving == ticket {
                // We were just granted the lock but never produced a guard.
                advance_serving(&mut st);
            } else {
                // Still queued: mark the ticket dead so the release path
                // skips it when its turn comes.
                st.cancelled.insert(ticket);
            }
        }
    }
}

/// RAII guard; releasing hands the lock to the next waiter in FIFO order.
pub struct MutexGuard {
    state: Rc<RefCell<MutexState>>,
    _ticket: u64,
}

impl Drop for MutexGuard {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        advance_serving(&mut st);
    }
}

fn advance_serving(st: &mut MutexState) {
    loop {
        st.serving += 1;
        let serving = st.serving;
        if serving >= st.next_ticket {
            break; // lock is free; the next lock() call acquires directly
        }
        if st.cancelled.remove(&serving) {
            continue; // dead ticket: skip to the next waiter
        }
        if let Some(pos) = st.wakers.iter().position(|(t, _)| *t == serving) {
            let (_, w) = st.wakers.swap_remove(pos);
            w.wake();
        }
        break;
    }
}

// ---------------------------------------------------------------------------
// Barrier: reusable generation barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    parties: usize,
    arrived: usize,
    generation: u64,
    wakers: WakerSet,
}

/// A reusable barrier for a fixed set of parties.
pub struct Barrier {
    state: Rc<RefCell<BarrierState>>,
}

impl Clone for Barrier {
    fn clone(&self) -> Self {
        Barrier {
            state: Rc::clone(&self.state),
        }
    }
}

impl Barrier {
    /// Create a barrier for `parties` tasks.
    pub fn new(parties: usize) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            state: Rc::new(RefCell::new(BarrierState {
                parties,
                arrived: 0,
                generation: 0,
                wakers: WakerSet::new(),
            })),
        }
    }

    /// Wait until all parties arrive. Resolves to `true` for the last
    /// arriving party (the "leader"), `false` otherwise.
    pub fn wait(&self) -> BarrierWait {
        BarrierWait {
            state: Rc::clone(&self.state),
            generation: None,
            slot: None,
        }
    }

    /// Number of parties the barrier was created with.
    pub fn parties(&self) -> usize {
        self.state.borrow().parties
    }
}

/// Future returned by [`Barrier::wait`].
pub struct BarrierWait {
    state: Rc<RefCell<BarrierState>>,
    generation: Option<(u64, bool)>,
    slot: Option<u64>,
}

impl Drop for BarrierWait {
    fn drop(&mut self) {
        self.state.borrow_mut().wakers.remove(&self.slot);
    }
}

impl Future for BarrierWait {
    type Output = bool;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<bool> {
        let this = self.get_mut();
        match this.generation {
            None => {
                let mut st = this.state.borrow_mut();
                let gen = st.generation;
                st.arrived += 1;
                if st.arrived == st.parties {
                    st.arrived = 0;
                    st.generation += 1;
                    let wakers = st.wakers.take_all();
                    drop(st);
                    for w in wakers {
                        w.wake();
                    }
                    this.generation = Some((gen, true));
                    Poll::Ready(true)
                } else {
                    this.generation = Some((gen, false));
                    st.wakers.register(&mut this.slot, cx.waker());
                    Poll::Pending
                }
            }
            Some((gen, leader)) => {
                let mut st = this.state.borrow_mut();
                if st.generation != gen {
                    st.wakers.remove(&this.slot);
                    Poll::Ready(leader)
                } else {
                    st.wakers.register(&mut this.slot, cx.waker());
                    Poll::Pending
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Notify: condition-variable-style wakeups
// ---------------------------------------------------------------------------

struct NotifyState {
    epoch: u64,
    wakers: WakerSet,
}

/// Edge-triggered notification: [`Notify::wait`] resolves after the *next*
/// [`Notify::notify_all`] (notifications issued after the future is created,
/// even before its first poll, count — so the check-then-wait pattern has no
/// lost-wakeup window in the single-threaded executor).
pub struct Notify {
    state: Rc<RefCell<NotifyState>>,
}

impl Clone for Notify {
    fn clone(&self) -> Self {
        Notify {
            state: Rc::clone(&self.state),
        }
    }
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Create a notifier.
    pub fn new() -> Notify {
        Notify {
            state: Rc::new(RefCell::new(NotifyState {
                epoch: 0,
                wakers: WakerSet::new(),
            })),
        }
    }

    /// Wake every current waiter (and satisfy `wait` futures already created).
    pub fn notify_all(&self) {
        let wakers = {
            let mut st = self.state.borrow_mut();
            st.epoch += 1;
            st.wakers.take_all()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Future resolving at the next notification.
    pub fn wait(&self) -> NotifyWait {
        NotifyWait {
            state: Rc::clone(&self.state),
            epoch: self.state.borrow().epoch,
            slot: None,
        }
    }
}

/// Future returned by [`Notify::wait`].
pub struct NotifyWait {
    state: Rc<RefCell<NotifyState>>,
    epoch: u64,
    slot: Option<u64>,
}

impl Future for NotifyWait {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut st = this.state.borrow_mut();
        if st.epoch != this.epoch {
            st.wakers.remove(&this.slot);
            Poll::Ready(())
        } else {
            st.wakers.register(&mut this.slot, cx.waker());
            Poll::Pending
        }
    }
}

impl Drop for NotifyWait {
    fn drop(&mut self) {
        self.state.borrow_mut().wakers.remove(&self.slot);
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    permits: usize,
    waiters: Vec<(u64, usize, Waker)>, // (ticket, wanted, waker) in FIFO order
    next_ticket: u64,
}

/// Counting semaphore with FIFO waiters (no overtaking), useful for modelling
/// bounded request windows and flow control.
pub struct Semaphore {
    state: Rc<RefCell<SemState>>,
}

impl Clone for Semaphore {
    fn clone(&self) -> Self {
        Semaphore {
            state: Rc::clone(&self.state),
        }
    }
}

impl Semaphore {
    /// Create a semaphore holding `permits` permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            state: Rc::new(RefCell::new(SemState {
                permits,
                waiters: Vec::new(),
                next_ticket: 0,
            })),
        }
    }

    /// Acquire `n` permits, waiting FIFO if necessary.
    pub fn acquire(&self, n: usize) -> SemAcquire {
        SemAcquire {
            state: Rc::clone(&self.state),
            n,
            ticket: None,
        }
    }

    /// Return `n` permits, waking eligible waiters in order.
    pub fn release(&self, n: usize) {
        let wakers = {
            let mut st = self.state.borrow_mut();
            st.permits += n;
            // Wake the longest-waiting requester whose demand now fits; it
            // will consume permits at poll time. Only the head may proceed
            // (FIFO, no overtaking).
            st.waiters
                .first()
                .filter(|(_, wanted, _)| *wanted <= st.permits)
                .map(|(_, _, w)| w.clone())
        };
        if let Some(w) = wakers {
            w.wake();
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.state.borrow().permits
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct SemAcquire {
    state: Rc<RefCell<SemState>>,
    n: usize,
    ticket: Option<u64>,
}

impl Future for SemAcquire {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut st = this.state.borrow_mut();
        let ticket = match this.ticket {
            Some(t) => t,
            None => {
                let t = st.next_ticket;
                st.next_ticket += 1;
                this.ticket = Some(t);
                t
            }
        };
        // FIFO: may only take permits if no earlier requester is still waiting.
        let earlier_waiting = st.waiters.iter().any(|(t, _, _)| *t < ticket);
        if !earlier_waiting && st.permits >= this.n {
            st.permits -= this.n;
            st.waiters.retain(|(t, _, _)| *t != ticket);
            // Chain: the new head may also be satisfiable now.
            let next = st
                .waiters
                .first()
                .filter(|(_, wanted, _)| *wanted <= st.permits)
                .map(|(_, _, w)| w.clone());
            drop(st);
            if let Some(w) = next {
                w.wake();
            }
            Poll::Ready(())
        } else {
            match st.waiters.iter_mut().find(|(t, _, _)| *t == ticket) {
                Some(slot) => slot.2 = cx.waker().clone(),
                None => {
                    st.waiters.push((ticket, this.n, cx.waker().clone()));
                    st.waiters.sort_by_key(|(t, _, _)| *t);
                }
            }
            Poll::Pending
        }
    }
}

impl Drop for SemAcquire {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket {
            let next = {
                let mut st = self.state.borrow_mut();
                let before = st.waiters.len();
                st.waiters.retain(|(t, _, _)| *t != ticket);
                if st.waiters.len() != before {
                    st.waiters
                        .first()
                        .filter(|(_, wanted, _)| *wanted <= st.permits)
                        .map(|(_, _, w)| w.clone())
                } else {
                    None
                }
            };
            if let Some(w) = next {
                w.wake();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn mutex_mutual_exclusion_and_fifo() {
        let sim = Sim::new();
        let m = SimMutex::new();
        let order: Rc<StdRefCell<Vec<u32>>> = Rc::new(StdRefCell::new(Vec::new()));
        for id in 0..4u32 {
            let m = m.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let _g = m.lock().await;
                order.borrow_mut().push(id);
                s.sleep(SimDuration::from_us(10)).await;
            });
        }
        let end = sim.run();
        assert_eq!(&*order.borrow(), &[0, 1, 2, 3]);
        // Serialized: 4 * 10us.
        assert_eq!(end.as_us(), 40.0);
    }

    #[test]
    fn mutex_try_lock() {
        let m = SimMutex::new();
        let g = m.try_lock().unwrap();
        assert!(m.is_locked());
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(!m.is_locked());
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_handoff_no_barging() {
        // A task that releases and immediately relocks must go behind a
        // waiting task.
        let sim = Sim::new();
        let m = SimMutex::new();
        let order: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        {
            let m = m.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                let g = m.lock().await;
                order.borrow_mut().push("a1");
                s.sleep(SimDuration::from_us(5)).await;
                drop(g);
                let _g2 = m.lock().await;
                order.borrow_mut().push("a2");
            });
        }
        {
            let m = m.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(1)).await; // arrive while held
                let _g = m.lock().await;
                order.borrow_mut().push("b");
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &["a1", "b", "a2"]);
    }

    #[test]
    fn barrier_releases_all_and_reports_leader() {
        let sim = Sim::new();
        let b = Barrier::new(3);
        let leaders: Rc<StdRefCell<Vec<bool>>> = Rc::new(StdRefCell::new(Vec::new()));
        for i in 0..3u64 {
            let b = b.clone();
            let s = sim.clone();
            let leaders = Rc::clone(&leaders);
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(i)).await;
                let leader = b.wait().await;
                leaders.borrow_mut().push(leader);
                assert_eq!(s.now().as_us(), 2.0); // all released at last arrival
            });
        }
        sim.run();
        assert_eq!(leaders.borrow().iter().filter(|&&l| l).count(), 1);
        assert_eq!(leaders.borrow().len(), 3);
    }

    #[test]
    fn barrier_is_reusable() {
        let sim = Sim::new();
        let b = Barrier::new(2);
        let mut handles = Vec::new();
        for i in 0..2u64 {
            let b = b.clone();
            let s = sim.clone();
            handles.push(sim.spawn(async move {
                for round in 0..3u64 {
                    s.sleep(SimDuration::from_us(i + 1)).await;
                    b.wait().await;
                    let _ = round;
                }
                s.now()
            }));
        }
        sim.run();
        // Each round gated by the slower party (2us): 3 rounds -> 6us.
        for h in handles {
            assert_eq!(h.try_result().unwrap().as_us(), 6.0);
        }
    }

    #[test]
    fn notify_wakes_waiters() {
        let sim = Sim::new();
        let n = Notify::new();
        let n2 = n.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            n2.wait().await;
            s.now()
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_us(3)).await;
            n.notify_all();
        });
        sim.run();
        assert_eq!(h.try_result().unwrap().as_us(), 3.0);
    }

    #[test]
    fn notify_created_before_signal_counts() {
        let sim = Sim::new();
        let n = Notify::new();
        let fut = n.wait(); // created before the notification
        n.notify_all();
        let h = sim.spawn(async move {
            fut.await;
            true
        });
        sim.run();
        assert_eq!(h.try_result(), Some(true));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let active: Rc<StdRefCell<(usize, usize)>> = Rc::new(StdRefCell::new((0, 0))); // (current, max)
        for _ in 0..6 {
            let sem = sem.clone();
            let s = sim.clone();
            let active = Rc::clone(&active);
            sim.spawn(async move {
                sem.acquire(1).await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                s.sleep(SimDuration::from_us(5)).await;
                active.borrow_mut().0 -= 1;
                sem.release(1);
            });
        }
        let end = sim.run();
        assert_eq!(active.borrow().1, 2);
        assert_eq!(end.as_us(), 15.0); // 6 tasks / 2 wide * 5us
    }

    #[test]
    fn semaphore_fifo_large_request_not_starved() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let order: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        {
            let sem = sem.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                sem.acquire(2).await;
                order.borrow_mut().push("big0");
                s.sleep(SimDuration::from_us(5)).await;
                sem.release(2);
            });
        }
        {
            let sem = sem.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(1)).await;
                sem.acquire(2).await; // queued first
                order.borrow_mut().push("big1");
                sem.release(2);
            });
        }
        {
            let sem = sem.clone();
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(2)).await;
                sem.acquire(1).await; // arrives later; must not overtake big1
                order.borrow_mut().push("small");
                sem.release(1);
            });
        }
        sim.run();
        assert_eq!(&*order.borrow(), &["big0", "big1", "small"]);
    }
}
