//! The discrete-event kernel: event queue, virtual clock and async executor.
//!
//! [`Sim`] is a cheaply cloneable handle to the kernel. Simulated entities are
//! spawned as futures with [`Sim::spawn`]; [`Sim::run`] then executes events
//! in deterministic `(time, sequence)` order until no work remains.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::event::Completion;
use crate::flight::FlightRecorder;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

/// Identifier of a spawned task within a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) usize);

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

enum TimerKind {
    Waker(Waker),
    Callback(Box<dyn FnOnce()>),
}

struct TimerEntry {
    at: SimTime,
    seq: u64,
    kind: TimerKind,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct TaskSlot {
    future: Option<BoxFuture>,
    waker: Waker,
}

/// Shared ready-queue fed by wakers. `Waker` must be `Send + Sync`, hence the
/// `Arc<Mutex<..>>` even though the executor itself is single-threaded; the
/// mutex is never contended.
struct ReadyQueue {
    queue: Mutex<VecDeque<usize>>,
}

struct TaskWaker {
    id: usize,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.queue.lock().unwrap().push_back(self.id);
    }
}

pub(crate) struct Kernel {
    now: Cell<SimTime>,
    next_seq: Cell<u64>,
    timers: RefCell<BinaryHeap<TimerEntry>>,
    ready: Arc<ReadyQueue>,
    tasks: RefCell<Vec<Option<TaskSlot>>>,
    free: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    events_processed: Cell<u64>,
    stats: Stats,
    tracer: Tracer,
    flight: FlightRecorder,
}

impl Kernel {
    fn new() -> Rc<Kernel> {
        Rc::new(Kernel {
            now: Cell::new(SimTime::ZERO),
            next_seq: Cell::new(0),
            timers: RefCell::new(BinaryHeap::new()),
            ready: Arc::new(ReadyQueue {
                queue: Mutex::new(VecDeque::new()),
            }),
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            live_tasks: Cell::new(0),
            events_processed: Cell::new(0),
            stats: Stats::new(),
            tracer: Tracer::new(),
            flight: FlightRecorder::new(),
        })
    }

    fn bump_seq(&self) -> u64 {
        let s = self.next_seq.get();
        self.next_seq.set(s + 1);
        s
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    pub(crate) fn add_timer_waker(&self, at: SimTime, waker: Waker) {
        debug_assert!(at >= self.now.get(), "timer scheduled in the past");
        self.timers.borrow_mut().push(TimerEntry {
            at,
            seq: self.bump_seq(),
            kind: TimerKind::Waker(waker),
        });
    }

    pub(crate) fn add_timer_callback(&self, at: SimTime, cb: Box<dyn FnOnce()>) {
        debug_assert!(at >= self.now.get(), "callback scheduled in the past");
        self.timers.borrow_mut().push(TimerEntry {
            at,
            seq: self.bump_seq(),
            kind: TimerKind::Callback(cb),
        });
    }

    fn alloc_task(&self, future: BoxFuture) -> usize {
        let id = match self.free.borrow_mut().pop() {
            Some(id) => id,
            None => {
                let mut tasks = self.tasks.borrow_mut();
                tasks.push(None);
                tasks.len() - 1
            }
        };
        let waker = Waker::from(Arc::new(TaskWaker {
            id,
            ready: Arc::clone(&self.ready),
        }));
        self.tasks.borrow_mut()[id] = Some(TaskSlot {
            future: Some(future),
            waker,
        });
        self.live_tasks.set(self.live_tasks.get() + 1);
        id
    }

    /// Poll one task. The future is removed from its slot for the duration of
    /// the poll so the task table is not borrowed while user code runs (user
    /// code may spawn tasks, create timers, wake other tasks, …).
    fn poll_task(&self, id: usize) {
        let (mut future, waker) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id).and_then(|s| s.as_mut()) else {
                return; // task already finished; spurious wake
            };
            let Some(future) = slot.future.take() else {
                return; // re-entrant wake during poll; the poll result governs
            };
            (future, slot.waker.clone())
        };
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                self.tasks.borrow_mut()[id] = None;
                self.free.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                let mut tasks = self.tasks.borrow_mut();
                if let Some(slot) = tasks.get_mut(id).and_then(|s| s.as_mut()) {
                    slot.future = Some(future);
                }
            }
        }
    }

    /// Drain the ready queue, polling tasks in FIFO order at the current time.
    fn drain_ready(&self) {
        let trace = std::env::var_os("DESIM_TRACE").is_some();
        loop {
            let id = self.ready.queue.lock().unwrap().pop_front();
            match id {
                Some(id) => {
                    let n = self.events_processed.get() + 1;
                    self.events_processed.set(n);
                    if trace && n & ((1 << 22) - 1) == 0 {
                        eprintln!(
                            "[desim] {} events, t={}, live_tasks={}, timers={}, ready={}",
                            n,
                            self.now.get(),
                            self.live_tasks.get(),
                            self.timers.borrow().len(),
                            self.ready.queue.lock().unwrap().len()
                        );
                    }
                    self.poll_task(id);
                }
                None => break,
            }
        }
    }

    /// Fire the earliest timer, advancing the clock. Returns false if no
    /// timers remain.
    fn fire_next_timer(&self) -> bool {
        let entry = self.timers.borrow_mut().pop();
        match entry {
            Some(entry) => {
                debug_assert!(entry.at >= self.now.get());
                self.now.set(entry.at);
                self.events_processed.set(self.events_processed.get() + 1);
                match entry.kind {
                    TimerKind::Waker(w) => w.wake(),
                    TimerKind::Callback(cb) => cb(),
                }
                true
            }
            None => false,
        }
    }
}

/// Handle to a running simulation. Clone freely; all clones share the kernel.
#[derive(Clone)]
pub struct Sim {
    k: Rc<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a fresh simulation at time zero.
    pub fn new() -> Sim {
        Sim { k: Kernel::new() }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.k.now()
    }

    /// Shared statistics registry for this simulation.
    pub fn stats(&self) -> Stats {
        self.k.stats.clone()
    }

    /// Shared event tracer for this simulation. Disabled (and free) unless
    /// [`Tracer::enable`] is called.
    pub fn tracer(&self) -> Tracer {
        self.k.tracer.clone()
    }

    /// Shared message-lifecycle flight recorder for this simulation. Disabled
    /// (and free) unless [`FlightRecorder::enable`] is called.
    pub fn flight(&self) -> FlightRecorder {
        self.k.flight.clone()
    }

    /// Number of events (task polls + timer firings) processed so far.
    pub fn events_processed(&self) -> u64 {
        self.k.events_processed.get()
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn pending_tasks(&self) -> usize {
        self.k.live_tasks.get()
    }

    /// Spawn a task. It is scheduled to run at the current virtual time.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let done = Completion::new();
        let done2 = done.clone();
        let id = self.k.alloc_task(Box::pin(async move {
            let out = future.await;
            done2.complete(out);
        }));
        self.k.ready.queue.lock().unwrap().push_back(id);
        JoinHandle {
            task: TaskId(id),
            done,
        }
    }

    /// Schedule `cb` to run at absolute time `at` (must not be in the past).
    pub fn schedule<F: FnOnce() + 'static>(&self, at: SimTime, cb: F) {
        self.k.add_timer_callback(at, Box::new(cb));
    }

    /// Schedule `cb` to run `after` from now.
    pub fn schedule_in<F: FnOnce() + 'static>(&self, after: SimDuration, cb: F) {
        self.schedule(self.now() + after, cb);
    }

    /// Future that completes once `d` of virtual time has elapsed.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Future that completes at absolute time `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            k: Rc::clone(&self.k),
            deadline,
            registered: false,
        }
    }

    /// Yield to other tasks runnable at the current virtual time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Run until no events remain. Returns the final virtual time.
    ///
    /// Tasks that are still pending (e.g. daemon-style progress loops blocked
    /// on a channel) are left in place; inspect [`Sim::pending_tasks`] and use
    /// [`Sim::shutdown`] to reclaim them.
    pub fn run(&self) -> SimTime {
        loop {
            self.k.drain_ready();
            if !self.k.fire_next_timer() {
                break;
            }
        }
        self.now()
    }

    /// Run until the virtual clock would pass `deadline`; events at exactly
    /// `deadline` are processed. Returns the current time afterwards.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        loop {
            self.k.drain_ready();
            let next = self.k.timers.borrow().peek().map(|e| e.at);
            match next {
                Some(at) if at <= deadline => {
                    self.k.fire_next_timer();
                }
                _ => break,
            }
        }
        self.now()
    }

    /// Drop all remaining tasks and timers, breaking `Rc` cycles between the
    /// kernel and futures that captured `Sim` handles. Call when a simulation
    /// with daemon tasks is finished.
    pub fn shutdown(&self) {
        self.k.timers.borrow_mut().clear();
        self.k.ready.queue.lock().unwrap().clear();
        // Futures may own JoinHandles/Completions; dropping them can run Drop
        // impls that call back into the kernel, so take them out first.
        let taken: Vec<Option<TaskSlot>> = {
            let mut tasks = self.k.tasks.borrow_mut();
            let len = tasks.len();
            std::mem::replace(&mut *tasks, Vec::with_capacity(len))
        };
        drop(taken);
        self.k.free.borrow_mut().clear();
        self.k.live_tasks.set(0);
    }
}

/// Handle returned by [`Sim::spawn`]; await the task's result with
/// [`JoinHandle::join`].
pub struct JoinHandle<T> {
    task: TaskId,
    done: Completion<T>,
}

impl<T: Clone + 'static> JoinHandle<T> {
    /// Wait for the task to finish and return (a clone of) its output.
    pub async fn join(&self) -> T {
        self.done.wait().await
    }

    /// The task's output if it has already finished.
    pub fn try_result(&self) -> Option<T> {
        self.done.peek()
    }
}

impl<T> JoinHandle<T> {
    /// True once the task has run to completion.
    pub fn is_done(&self) -> bool {
        self.done.is_complete()
    }

    /// Identifier of the underlying task.
    pub fn task_id(&self) -> TaskId {
        self.task
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    k: Rc<Kernel>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.k.now() >= this.deadline {
            Poll::Ready(())
        } else {
            // Register exactly once: the task waker is stable, and duplicate
            // timer entries from spurious re-polls would snowball.
            if !this.registered {
                this.k.add_timer_waker(this.deadline, cx.waker().clone());
                this.registered = true;
            }
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn empty_sim_runs_to_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
        assert_eq!(sim.pending_tasks(), 0);
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(7)).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_result().unwrap().as_us(), 7.0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::ZERO).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_result().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let order: Rc<StdRefCell<Vec<(u32, u64)>>> = Rc::new(StdRefCell::new(Vec::new()));
        let sim = Sim::new();
        for id in 0..3u32 {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                for step in 0..3u64 {
                    s.sleep(SimDuration::from_us(step + 1)).await;
                    order.borrow_mut().push((id, s.now().as_ps()));
                }
            });
        }
        sim.run();
        let got = order.borrow().clone();
        // All tasks share the same deadlines; ties must break by spawn order.
        let mut expect = Vec::new();
        for (step, t) in [(0u64, 1u64), (1, 3), (2, 6)] {
            let _ = step;
            for id in 0..3u32 {
                expect.push((id, t * 1_000_000));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn schedule_callbacks_fire_in_order() {
        let sim = Sim::new();
        let hits: Rc<StdRefCell<Vec<u64>>> = Rc::new(StdRefCell::new(Vec::new()));
        for us in [5u64, 1, 3] {
            let hits = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_us(us), move || {
                hits.borrow_mut().push(us);
            });
        }
        sim.run();
        assert_eq!(&*hits.borrow(), &[1, 3, 5]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(10)).await;
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(5));
        assert!(!h.is_done());
        assert_eq!(sim.pending_tasks(), 1);
        sim.run();
        assert!(h.is_done());
    }

    #[test]
    fn run_until_includes_exact_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(5)).await;
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(5));
        assert!(h.is_done());
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let inner = s.spawn(async move {
                s2.sleep(SimDuration::from_us(2)).await;
                42u32
            });
            inner.join().await
        });
        sim.run();
        assert_eq!(h.try_result(), Some(42));
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        let s = sim.clone();
        let l1 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            s.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(&*log.borrow(), &["a1", "b1", "a2"]);
    }

    #[test]
    fn shutdown_reclaims_daemon_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.sleep(SimDuration::from_us(1)).await;
                if s.now() > SimTime::ZERO + SimDuration::from_ms(1) {
                    // Never true within run_until below; this is a daemon.
                }
            }
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(10));
        assert_eq!(sim.pending_tasks(), 1);
        sim.shutdown();
        assert_eq!(sim.pending_tasks(), 0);
        // A fresh run after shutdown is a no-op, not a panic.
        let t = sim.run();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_us(10));
    }

    #[test]
    fn callbacks_and_tasks_interleave_by_schedule_order() {
        // A callback and a task wake at the same instant: the one scheduled
        // first (lower sequence) fires first.
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_us(5), move || {
                log.borrow_mut().push("callback");
            });
        }
        {
            let log = Rc::clone(&log);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(5)).await;
                log.borrow_mut().push("task");
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["callback", "task"]);
    }

    #[test]
    fn join_handle_try_result_before_completion() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            7u8
        });
        assert_eq!(h.try_result(), None);
        assert!(!h.is_done());
        sim.run();
        assert_eq!(h.try_result(), Some(7));
        assert!(h.is_done());
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move { s.sleep(SimDuration::from_us(3)).await });
        let t1 = sim.run();
        let t2 = sim.run();
        assert_eq!(t1, t2);
    }

    #[test]
    fn events_processed_counts_work() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
        });
        sim.run();
        assert!(sim.events_processed() >= 2);
    }
}
