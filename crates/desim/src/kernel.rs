//! The discrete-event kernel: event queue, virtual clock and async executor.
//!
//! [`Sim`] is a cheaply cloneable handle to the kernel. Simulated entities are
//! spawned as futures with [`Sim::spawn`]; [`Sim::run`] then executes events
//! in deterministic `(time, sequence)` order until no work remains.
//!
//! # Hot-path internals
//!
//! The kernel is single-threaded by construction (`Sim` is `!Send`), and its
//! hot paths are built around that fact:
//!
//! * Timers live in a hierarchical **timer wheel** (`wheel::TimerWheel`) with
//!   a far-future fallback heap — `O(1)` inserts for the dominant near-term
//!   deadlines while preserving exact `(time, seq)` pop order.
//! * The ready queue is a plain `RefCell<VecDeque>` behind a hand-rolled
//!   `RawWaker` over `Rc` — no atomics, no mutex, non-atomic refcounts. The
//!   single-thread invariant this relies on is *enforced*: a waker used from
//!   a foreign thread panics instead of racing (see `check_owner_thread`).
//! * Each task id has a persistent [`TaskHook`] carrying a `queued` flag:
//!   multiple wakes before the next poll collapse into **one** queue entry,
//!   so `events_processed` counts real polls, not wake multiplicity.
//! * Task slots and their hooks/wakers are recycled across spawns, and the
//!   `DESIM_TRACE` environment probe happens once at kernel construction,
//!   not per drain.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::event::Completion;
use crate::flight::FlightRecorder;
use crate::memprof::{self, MemTag};
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::timeline::{SeriesId, Timeline};
use crate::trace::Tracer;
use crate::wheel::TimerWheel;

/// Task futures, slots, hooks and wakers.
static KERNEL_TAG: MemTag = MemTag::new("desim.kernel");
/// Timer-wheel levels, far-future heap and boxed callbacks.
static WHEEL_TAG: MemTag = MemTag::new("desim.wheel");

/// Identifier of a spawned task within a [`Sim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskId(pub(crate) usize);

type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

enum TimerKind {
    Waker(Waker),
    Callback(Box<dyn FnOnce()>),
}

/// Ready-queue of task ids with a pending wake, in FIFO order. The executor
/// is single-threaded and `Sim` is `!Send`, so a `RefCell` suffices — the
/// previous `Arc<Mutex<..>>` existed only to satisfy `Waker: Send + Sync`,
/// which the custom `RawWaker` below sidesteps (see its safety argument).
struct ReadyQueue {
    q: RefCell<VecDeque<usize>>,
}

/// Per-task-slot waker state, shared between the task table and every
/// `Waker` clone handed out to futures. Hooks persist across task-slot
/// reuse, so spawning recycles the allocation and the `Waker`.
struct TaskHook {
    id: usize,
    /// True iff `id` currently sits in the ready queue. Set on the first
    /// wake, cleared when the entry is popped for polling; further wakes in
    /// between are coalesced instead of queueing duplicate polls.
    queued: Cell<bool>,
    ready: Rc<ReadyQueue>,
    /// Thread the owning kernel lives on; every vtable entry checks it so a
    /// `Waker` smuggled to another thread panics instead of racing the
    /// non-atomic `Rc` count / `RefCell` queue.
    owner: std::thread::ThreadId,
}

impl TaskHook {
    #[inline]
    fn enqueue(&self) {
        if !self.queued.replace(true) {
            self.ready.q.borrow_mut().push_back(self.id);
        }
    }
}

// SAFETY argument for the `Rc`-based waker: `Waker` is nominally
// `Send + Sync`, but every structure reachable from it here (`Rc<TaskHook>`,
// `RefCell` ready queue) belongs to a `Sim`, and `Sim` is `!Send`/`!Sync`
// (it is `Rc`-based itself). Futures, their wakers and all kernel state
// therefore live and die on the one thread that created the simulation —
// the parallel sweep harness parallelizes across whole simulations, never
// within one. Because `Waker` itself *is* `Send`, safe user code could still
// clone `cx.waker()` and ship it to another thread; the invariant is
// therefore enforced at runtime, not merely documented: every vtable entry
// first compares `TaskHook::owner` against the calling thread and panics on
// a mismatch, before any `Rc` count or `RefCell` is touched. (`owner` is
// written once, before any waker exists, so the cross-thread read used by
// the check itself is race-free.) Under that enforced invariant the vtable
// below upholds the `RawWaker` contract: clone/drop manage the `Rc` strong
// count, wake consumes (or borrows, for `wake_by_ref`) one reference.
const HOOK_VTABLE: RawWakerVTable =
    RawWakerVTable::new(hook_clone, hook_wake, hook_wake_by_ref, hook_drop);

/// Calling thread's id via a thread-local cache — cheaper than
/// `thread::current()` (which clones an `Arc`) on the wake hot path.
#[inline]
fn current_thread_id() -> std::thread::ThreadId {
    thread_local! {
        static TID: std::thread::ThreadId = std::thread::current().id();
    }
    TID.with(|t| *t)
}

/// Panic unless the hook is used on the thread that owns its kernel. Called
/// with the hook borrowed straight from the raw pointer, deliberately before
/// the non-atomic refcount or the `RefCell` queue could be touched.
#[inline]
fn check_owner_thread(hook: &TaskHook) {
    if hook.owner != current_thread_id() {
        panic!(
            "desim Waker used from a foreign thread: Sim and every waker it \
             hands out are single-threaded (parallelize across whole Sims, \
             never within one)"
        );
    }
}

fn hook_waker(hook: &Rc<TaskHook>) -> Waker {
    let raw = RawWaker::new(Rc::into_raw(Rc::clone(hook)) as *const (), &HOOK_VTABLE);
    // SAFETY: see the vtable comment above.
    unsafe { Waker::from_raw(raw) }
}

unsafe fn hook_clone(p: *const ()) -> RawWaker {
    // SAFETY: `p` came from `Rc::into_raw` and the allocation is kept alive
    // by the reference this handle holds; the shared borrow only reads the
    // write-once `owner` field.
    check_owner_thread(unsafe { &*(p as *const TaskHook) });
    // SAFETY: bump the count for the new handle (same thread, checked above).
    unsafe { Rc::increment_strong_count(p as *const TaskHook) };
    RawWaker::new(p, &HOOK_VTABLE)
}

unsafe fn hook_wake(p: *const ()) {
    // SAFETY: as in `hook_clone`. On a foreign thread this panics and leaks
    // the handle's reference — sound, since the count is never touched.
    check_owner_thread(unsafe { &*(p as *const TaskHook) });
    // SAFETY: by-value wake consumes the handle's reference.
    let hook = unsafe { Rc::from_raw(p as *const TaskHook) };
    hook.enqueue();
}

unsafe fn hook_wake_by_ref(p: *const ()) {
    // SAFETY: as in `hook_clone`.
    check_owner_thread(unsafe { &*(p as *const TaskHook) });
    // SAFETY: borrow the handle without consuming its reference.
    let hook = unsafe { ManuallyDrop::new(Rc::from_raw(p as *const TaskHook)) };
    hook.enqueue();
}

unsafe fn hook_drop(p: *const ()) {
    // SAFETY: as in `hook_clone`. Panicking here (from a foreign thread's
    // drop) beats corrupting the non-atomic count, and leaks one reference.
    check_owner_thread(unsafe { &*(p as *const TaskHook) });
    // SAFETY: consumes the handle's reference.
    drop(unsafe { Rc::from_raw(p as *const TaskHook) });
}

/// One entry of the task table. Slots are allocated once and recycled: when
/// a task completes, its id goes on the free list but the slot — hook and
/// prebuilt waker included — stays, so respawning costs no allocation.
struct TaskSlot {
    future: Option<BoxFuture>,
    /// False once the task completed or was shut down; guards against a
    /// poll-in-flight future being written back into a reaped slot.
    live: bool,
    hook: Rc<TaskHook>,
    waker: Waker,
}

pub(crate) struct Kernel {
    now: Cell<SimTime>,
    next_seq: Cell<u64>,
    timers: RefCell<TimerWheel<TimerKind>>,
    ready: Rc<ReadyQueue>,
    tasks: RefCell<Vec<TaskSlot>>,
    free: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    events_processed: Cell<u64>,
    /// `DESIM_TRACE` heartbeat, probed once here rather than per drain.
    trace_beat: bool,
    stats: Stats,
    tracer: Tracer,
    flight: FlightRecorder,
    timeline: Timeline,
    /// Next virtual time (ps) at which live-bytes gauges should be sampled
    /// into the timeline. Only consulted when the memory profiler is on.
    mem_next: Cell<u64>,
    /// Cached `mem.live_bytes.<tag>` series ids, indexed by tag id.
    mem_ids: RefCell<Vec<Option<SeriesId>>>,
}

impl Kernel {
    fn new() -> Rc<Kernel> {
        Rc::new(Kernel {
            now: Cell::new(SimTime::ZERO),
            next_seq: Cell::new(0),
            timers: RefCell::new(TimerWheel::new()),
            ready: Rc::new(ReadyQueue {
                q: RefCell::new(VecDeque::new()),
            }),
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            live_tasks: Cell::new(0),
            events_processed: Cell::new(0),
            trace_beat: std::env::var_os("DESIM_TRACE").is_some(),
            stats: Stats::new(),
            tracer: Tracer::new(),
            flight: FlightRecorder::new(),
            timeline: Timeline::new(),
            mem_next: Cell::new(0),
            mem_ids: RefCell::new(Vec::new()),
        })
    }

    fn bump_seq(&self) -> u64 {
        let s = self.next_seq.get();
        self.next_seq.set(s + 1);
        s
    }

    pub(crate) fn now(&self) -> SimTime {
        self.now.get()
    }

    pub(crate) fn add_timer_waker(&self, at: SimTime, waker: Waker) {
        debug_assert!(at >= self.now.get(), "timer scheduled in the past");
        let _mem = memprof::scope(&WHEEL_TAG);
        self.timers
            .borrow_mut()
            .insert(at.as_ps(), self.bump_seq(), TimerKind::Waker(waker));
    }

    pub(crate) fn add_timer_callback(&self, at: SimTime, cb: Box<dyn FnOnce()>) {
        debug_assert!(at >= self.now.get(), "callback scheduled in the past");
        let _mem = memprof::scope(&WHEEL_TAG);
        self.timers
            .borrow_mut()
            .insert(at.as_ps(), self.bump_seq(), TimerKind::Callback(cb));
    }

    fn alloc_task(&self, future: BoxFuture) -> usize {
        let reused = self.free.borrow_mut().pop();
        let id = match reused {
            Some(id) => {
                let mut tasks = self.tasks.borrow_mut();
                let slot = &mut tasks[id];
                debug_assert!(slot.future.is_none() && !slot.live);
                // Note: `hook.queued` is deliberately left alone — it tracks
                // ready-queue membership, which survives slot reuse.
                slot.future = Some(future);
                slot.live = true;
                id
            }
            None => {
                let mut tasks = self.tasks.borrow_mut();
                let id = tasks.len();
                let hook = Rc::new(TaskHook {
                    id,
                    queued: Cell::new(false),
                    ready: Rc::clone(&self.ready),
                    owner: current_thread_id(),
                });
                let waker = hook_waker(&hook);
                tasks.push(TaskSlot {
                    future: Some(future),
                    live: true,
                    hook,
                    waker,
                });
                id
            }
        };
        self.live_tasks.set(self.live_tasks.get() + 1);
        id
    }

    fn enqueue_task(&self, id: usize) {
        self.tasks.borrow()[id].hook.enqueue();
    }

    /// Poll one task. The future is removed from its slot for the duration of
    /// the poll so the task table is not borrowed while user code runs (user
    /// code may spawn tasks, create timers, wake other tasks, …).
    fn poll_task(&self, id: usize) {
        let (mut future, waker) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id) else {
                return;
            };
            // The queue entry is consumed: clear before polling, so a wake
            // *during* the poll re-queues the task as it must.
            slot.hook.queued.set(false);
            let Some(future) = slot.future.take() else {
                return; // finished task (stale wake) or re-entrant poll
            };
            (future, slot.waker.clone())
        };
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                {
                    let mut tasks = self.tasks.borrow_mut();
                    tasks[id].live = false;
                }
                self.free.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
                // `future` drops here, outside the task-table borrow.
            }
            Poll::Pending => {
                let mut tasks = self.tasks.borrow_mut();
                let slot = &mut tasks[id];
                if slot.live {
                    slot.future = Some(future);
                }
                // else: the task was shut down mid-poll; drop the future.
            }
        }
    }

    /// Drain the ready queue, polling tasks in FIFO order at the current time.
    fn drain_ready(&self) {
        loop {
            let id = self.ready.q.borrow_mut().pop_front();
            let Some(id) = id else { break };
            let n = self.events_processed.get() + 1;
            self.events_processed.set(n);
            if self.trace_beat && n & ((1 << 22) - 1) == 0 {
                eprintln!(
                    "[desim] {} events, t={}, live_tasks={}, timers={}, ready={}",
                    n,
                    self.now.get(),
                    self.live_tasks.get(),
                    self.timers.borrow().len(),
                    self.ready.q.borrow().len()
                );
            }
            self.poll_task(id);
        }
    }

    /// Fire the earliest timer, advancing the clock. Returns false if no
    /// timers remain.
    fn fire_next_timer(&self) -> bool {
        let entry = self.timers.borrow_mut().pop();
        match entry {
            Some(entry) => {
                debug_assert!(entry.at >= self.now.get().as_ps());
                self.now.set(SimTime(entry.at));
                self.maybe_sample_mem();
                self.events_processed.set(self.events_processed.get() + 1);
                match entry.payload {
                    TimerKind::Waker(w) => w.wake(),
                    TimerKind::Callback(cb) => cb(),
                }
                true
            }
            None => false,
        }
    }

    /// Record `mem.live_bytes.<tag>` gauges into the timeline at most once
    /// per timeline window. The disabled-path cost on the timer hot path is
    /// the single relaxed load inside `memprof::enabled()`.
    fn maybe_sample_mem(&self) {
        if !memprof::enabled() || !self.timeline.on() {
            return;
        }
        let now_ps = self.now.get().as_ps();
        if now_ps < self.mem_next.get() {
            return;
        }
        let w = self.timeline.window_ps().max(1);
        self.mem_next.set((now_ps / w + 1) * w);
        memprof::record_live_gauges(
            &self.timeline,
            self.now.get(),
            &mut self.mem_ids.borrow_mut(),
        );
    }
}

/// Handle to a running simulation. Clone freely; all clones share the kernel.
#[derive(Clone)]
pub struct Sim {
    k: Rc<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create a fresh simulation at time zero.
    pub fn new() -> Sim {
        Sim { k: Kernel::new() }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.k.now()
    }

    /// Shared statistics registry for this simulation.
    pub fn stats(&self) -> Stats {
        self.k.stats.clone()
    }

    /// Shared event tracer for this simulation. Disabled (and free) unless
    /// [`Tracer::enable`] is called.
    pub fn tracer(&self) -> Tracer {
        self.k.tracer.clone()
    }

    /// Shared message-lifecycle flight recorder for this simulation. Disabled
    /// (and free) unless [`FlightRecorder::enable`] is called.
    pub fn flight(&self) -> FlightRecorder {
        self.k.flight.clone()
    }

    /// Shared windowed telemetry timeline for this simulation. Disabled (and
    /// free) unless [`Timeline::enable`] is called.
    pub fn timeline(&self) -> Timeline {
        self.k.timeline.clone()
    }

    /// Number of events (task polls + timer firings) processed so far.
    pub fn events_processed(&self) -> u64 {
        self.k.events_processed.get()
    }

    /// Number of tasks that have been spawned but not yet completed.
    pub fn pending_tasks(&self) -> usize {
        self.k.live_tasks.get()
    }

    /// Size of the task table (live slots plus recycled free slots). Slots
    /// are never reclaimed individually, so this is the high-water mark of
    /// *concurrently* live tasks — mass spawn/retire churn must not grow it
    /// past the widest wave (see `tests/task_churn.rs`).
    pub fn task_slots(&self) -> usize {
        self.k.tasks.borrow().len()
    }

    /// Spawn a task. It is scheduled to run at the current virtual time.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let done = Completion::new();
        let done2 = done.clone();
        let _mem = memprof::scope_default(&KERNEL_TAG);
        let id = self.k.alloc_task(Box::pin(async move {
            let out = future.await;
            done2.complete(out);
        }));
        self.k.enqueue_task(id);
        JoinHandle {
            task: TaskId(id),
            done,
        }
    }

    /// Schedule `cb` to run at absolute time `at` (must not be in the past).
    pub fn schedule<F: FnOnce() + 'static>(&self, at: SimTime, cb: F) {
        let _mem = memprof::scope_default(&KERNEL_TAG);
        self.k.add_timer_callback(at, Box::new(cb));
    }

    /// Schedule `cb` to run `after` from now.
    pub fn schedule_in<F: FnOnce() + 'static>(&self, after: SimDuration, cb: F) {
        self.schedule(self.now() + after, cb);
    }

    /// Future that completes once `d` of virtual time has elapsed.
    pub fn sleep(&self, d: SimDuration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// Future that completes at absolute time `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            k: Rc::clone(&self.k),
            deadline,
            registered: false,
        }
    }

    /// Yield to other tasks runnable at the current virtual time.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { yielded: false }
    }

    /// Earliest pending work: `now()` if tasks are ready to poll, otherwise
    /// the earliest timer deadline, otherwise `None` (kernel idle).
    ///
    /// This is the per-shard bound the conservative parallel driver
    /// ([`crate::par::ParSim`]) feeds into its global-virtual-time minimum;
    /// it never mutates kernel state beyond the wheel's internal cursor.
    pub fn next_event_time(&self) -> Option<SimTime> {
        if !self.k.ready.q.borrow().is_empty() {
            return Some(self.now());
        }
        self.k.timers.borrow_mut().peek().map(|(at, _)| SimTime(at))
    }

    /// Reserve a `(time, seq)` tie-break ticket at the current instant, for a
    /// callback handed to [`Sim::schedule_reserved`] later. Deferred
    /// scheduling (e.g. a window-boundary mailbox flush) can thereby fire its
    /// callbacks in exactly the tie-break position direct [`Sim::schedule`]
    /// at reservation time would have given them.
    pub fn reserve_seq(&self) -> u64 {
        self.k.bump_seq()
    }

    /// Schedule `cb` at absolute time `at` under a ticket from
    /// [`Sim::reserve_seq`]. `at` must not be in the past, and the ticket
    /// must have been reserved before any same-time event that should fire
    /// after `cb` was scheduled — the wheel orders strictly by `(time, seq)`.
    pub fn schedule_reserved<F: FnOnce() + 'static>(&self, at: SimTime, seq: u64, cb: F) {
        debug_assert!(at >= self.now(), "reserved callback scheduled in the past");
        let _mem = memprof::scope_default(&KERNEL_TAG);
        let _wheel = memprof::scope(&WHEEL_TAG);
        self.k
            .timers
            .borrow_mut()
            .insert(at.as_ps(), seq, TimerKind::Callback(Box::new(cb)));
    }

    /// Run until no events remain. Returns the final virtual time.
    ///
    /// Tasks that are still pending (e.g. daemon-style progress loops blocked
    /// on a channel) are left in place; inspect [`Sim::pending_tasks`] and use
    /// [`Sim::shutdown`] to reclaim them.
    pub fn run(&self) -> SimTime {
        loop {
            self.k.drain_ready();
            if !self.k.fire_next_timer() {
                break;
            }
        }
        self.now()
    }

    /// Run until the virtual clock would pass `deadline`; events at exactly
    /// `deadline` are processed. Returns the current time afterwards.
    pub fn run_until(&self, deadline: SimTime) -> SimTime {
        loop {
            self.k.drain_ready();
            let next = self.k.timers.borrow_mut().peek().map(|(at, _)| at);
            match next {
                Some(at) if at <= deadline.as_ps() => {
                    self.k.fire_next_timer();
                }
                _ => break,
            }
        }
        self.now()
    }

    /// Drop all remaining tasks and timers, breaking `Rc` cycles between the
    /// kernel and futures that captured `Sim` handles. Call when a simulation
    /// with daemon tasks is finished.
    pub fn shutdown(&self) {
        self.k.timers.borrow_mut().clear();
        self.k.ready.q.borrow_mut().clear();
        // Futures may own JoinHandles/Completions; dropping them can run Drop
        // impls that call back into the kernel, so take them out first.
        let futures: Vec<Option<BoxFuture>> = {
            let mut tasks = self.k.tasks.borrow_mut();
            tasks
                .iter_mut()
                .map(|slot| {
                    slot.live = false;
                    slot.hook.queued.set(false);
                    slot.future.take()
                })
                .collect()
        };
        drop(futures);
        // Those Drop impls may have woken tasks, re-queueing ids after the
        // clear above; reset queue state again as the final word so nothing
        // stale survives into the next run (a stale entry would cost one
        // no-op poll and could skew a respawned task's initial poll order).
        self.k.ready.q.borrow_mut().clear();
        for slot in self.k.tasks.borrow().iter() {
            slot.hook.queued.set(false);
        }
        let len = self.k.tasks.borrow().len();
        let mut free = self.k.free.borrow_mut();
        free.clear();
        // Reversed so the next allocations hand out ids 0, 1, 2, … exactly
        // like a fresh kernel would.
        free.extend((0..len).rev());
        self.k.live_tasks.set(0);
    }
}

/// Handle returned by [`Sim::spawn`]; await the task's result with
/// [`JoinHandle::join`].
pub struct JoinHandle<T> {
    task: TaskId,
    done: Completion<T>,
}

impl<T: Clone + 'static> JoinHandle<T> {
    /// Wait for the task to finish and return (a clone of) its output.
    pub async fn join(&self) -> T {
        self.done.wait().await
    }

    /// The task's output if it has already finished.
    pub fn try_result(&self) -> Option<T> {
        self.done.peek()
    }
}

impl<T> JoinHandle<T> {
    /// True once the task has run to completion.
    pub fn is_done(&self) -> bool {
        self.done.is_complete()
    }

    /// Identifier of the underlying task.
    pub fn task_id(&self) -> TaskId {
        self.task
    }
}

/// Future returned by [`Sim::sleep`] / [`Sim::sleep_until`].
pub struct Sleep {
    k: Rc<Kernel>,
    deadline: SimTime,
    registered: bool,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if this.k.now() >= this.deadline {
            Poll::Ready(())
        } else {
            // Register exactly once: the task waker is stable, and duplicate
            // timer entries from spurious re-polls would snowball.
            if !this.registered {
                this.k.add_timer_waker(this.deadline, cx.waker().clone());
                this.registered = true;
            }
            Poll::Pending
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    #[test]
    fn empty_sim_runs_to_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
        assert_eq!(sim.pending_tasks(), 0);
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(7)).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_result().unwrap().as_us(), 7.0);
    }

    #[test]
    fn zero_sleep_completes_immediately() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::ZERO).await;
            s.now()
        });
        sim.run();
        assert_eq!(h.try_result().unwrap(), SimTime::ZERO);
    }

    #[test]
    fn tasks_interleave_deterministically() {
        let order: Rc<StdRefCell<Vec<(u32, u64)>>> = Rc::new(StdRefCell::new(Vec::new()));
        let sim = Sim::new();
        for id in 0..3u32 {
            let s = sim.clone();
            let order = Rc::clone(&order);
            sim.spawn(async move {
                for step in 0..3u64 {
                    s.sleep(SimDuration::from_us(step + 1)).await;
                    order.borrow_mut().push((id, s.now().as_ps()));
                }
            });
        }
        sim.run();
        let got = order.borrow().clone();
        // All tasks share the same deadlines; ties must break by spawn order.
        let mut expect = Vec::new();
        for (step, t) in [(0u64, 1u64), (1, 3), (2, 6)] {
            let _ = step;
            for id in 0..3u32 {
                expect.push((id, t * 1_000_000));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn schedule_callbacks_fire_in_order() {
        let sim = Sim::new();
        let hits: Rc<StdRefCell<Vec<u64>>> = Rc::new(StdRefCell::new(Vec::new()));
        for us in [5u64, 1, 3] {
            let hits = Rc::clone(&hits);
            sim.schedule_in(SimDuration::from_us(us), move || {
                hits.borrow_mut().push(us);
            });
        }
        sim.run();
        assert_eq!(&*hits.borrow(), &[1, 3, 5]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(10)).await;
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(5));
        assert!(!h.is_done());
        assert_eq!(sim.pending_tasks(), 1);
        sim.run();
        assert!(h.is_done());
    }

    #[test]
    fn run_until_includes_exact_deadline() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(5)).await;
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(5));
        assert!(h.is_done());
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let s2 = s.clone();
            let inner = s.spawn(async move {
                s2.sleep(SimDuration::from_us(2)).await;
                42u32
            });
            inner.join().await
        });
        sim.run();
        assert_eq!(h.try_result(), Some(42));
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        let s = sim.clone();
        let l1 = Rc::clone(&log);
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            s.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = Rc::clone(&log);
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(&*log.borrow(), &["a1", "b1", "a2"]);
    }

    #[test]
    fn shutdown_reclaims_daemon_tasks() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            loop {
                s.sleep(SimDuration::from_us(1)).await;
                if s.now() > SimTime::ZERO + SimDuration::from_ms(1) {
                    // Never true within run_until below; this is a daemon.
                }
            }
        });
        sim.run_until(SimTime::ZERO + SimDuration::from_us(10));
        assert_eq!(sim.pending_tasks(), 1);
        sim.shutdown();
        assert_eq!(sim.pending_tasks(), 0);
        // A fresh run after shutdown is a no-op, not a panic.
        let t = sim.run();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_us(10));
    }

    #[test]
    fn callbacks_and_tasks_interleave_by_schedule_order() {
        // A callback and a task wake at the same instant: the one scheduled
        // first (lower sequence) fires first.
        let sim = Sim::new();
        let log: Rc<StdRefCell<Vec<&'static str>>> = Rc::new(StdRefCell::new(Vec::new()));
        {
            let log = Rc::clone(&log);
            sim.schedule_in(SimDuration::from_us(5), move || {
                log.borrow_mut().push("callback");
            });
        }
        {
            let log = Rc::clone(&log);
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(SimDuration::from_us(5)).await;
                log.borrow_mut().push("task");
            });
        }
        sim.run();
        assert_eq!(&*log.borrow(), &["callback", "task"]);
    }

    #[test]
    fn join_handle_try_result_before_completion() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
            7u8
        });
        assert_eq!(h.try_result(), None);
        assert!(!h.is_done());
        sim.run();
        assert_eq!(h.try_result(), Some(7));
        assert!(h.is_done());
    }

    #[test]
    fn run_is_idempotent_after_completion() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move { s.sleep(SimDuration::from_us(3)).await });
        let t1 = sim.run();
        let t2 = sim.run();
        assert_eq!(t1, t2);
    }

    #[test]
    fn events_processed_counts_work() {
        let sim = Sim::new();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(SimDuration::from_us(1)).await;
        });
        sim.run();
        assert!(sim.events_processed() >= 2);
    }

    /// A future that parks until an external callback flips `ready`, exposing
    /// its waker so tests can wake it an arbitrary number of times.
    struct ManualGate {
        ready: Rc<Cell<bool>>,
        waker_out: Rc<StdRefCell<Option<Waker>>>,
    }

    impl Future for ManualGate {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.ready.get() {
                Poll::Ready(())
            } else {
                *self.waker_out.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    fn run_gate(wakes: usize) -> u64 {
        let sim = Sim::new();
        let ready = Rc::new(Cell::new(false));
        let waker_out: Rc<StdRefCell<Option<Waker>>> = Rc::new(StdRefCell::new(None));
        sim.spawn(ManualGate {
            ready: Rc::clone(&ready),
            waker_out: Rc::clone(&waker_out),
        });
        {
            let ready = Rc::clone(&ready);
            let waker_out = Rc::clone(&waker_out);
            sim.schedule_in(SimDuration::from_us(1), move || {
                ready.set(true);
                if let Some(w) = waker_out.borrow().as_ref() {
                    for _ in 0..wakes {
                        w.wake_by_ref();
                    }
                }
            });
        }
        sim.run();
        sim.events_processed()
    }

    #[test]
    fn duplicate_wakes_coalesce_into_one_poll() {
        // Regression test for double-poll inflation: N wakes of one task
        // before its next poll must queue exactly one poll, so the event
        // count cannot depend on wake multiplicity.
        let once = run_gate(1);
        let thrice = run_gate(3);
        assert_eq!(thrice, once);
    }

    #[test]
    fn sleeps_across_all_wheel_levels() {
        // Deadlines landing in the finest wheel level, the coarser levels,
        // and past the whole hierarchy (far-future heap + rebase).
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let mut hits = Vec::new();
            for d in [
                SimDuration::from_ns(1),
                SimDuration::from_us(100),
                SimDuration::from_ms(50),
                SimDuration::from_secs(2),
                SimDuration::from_ns(3),
            ] {
                s.sleep(d).await;
                hits.push(s.now().as_ps());
            }
            hits
        });
        sim.run();
        assert_eq!(
            h.try_result().unwrap(),
            vec![
                1_000,
                100_001_000,
                50_100_001_000,
                2_050_100_001_000,
                2_050_100_004_000,
            ]
        );
    }

    #[test]
    fn schedule_after_idle_run_fires() {
        // Regression: once run() drained everything, the timer wheel was
        // left exhausted and a later schedule_in() at various horizons was
        // silently dropped — run() returned immediately without firing it.
        let sim = Sim::new();
        sim.run(); // drive the (empty) wheel to full exhaustion
        let hits = Rc::new(Cell::new(0u32));
        for d in [
            SimDuration::from_ns(10),
            SimDuration::from_us(100),
            SimDuration::from_ms(100),
            SimDuration::from_secs(5),
        ] {
            let hits = Rc::clone(&hits);
            let before = sim.now();
            sim.schedule_in(d, move || hits.set(hits.get() + 1));
            assert_eq!(sim.run(), before + d, "timer lost after idle run");
        }
        assert_eq!(hits.get(), 4);
    }

    #[test]
    fn sleep_after_run_until_phase_fires() {
        // Multi-phase use: run_until() to idle, then schedule more work.
        let sim = Sim::new();
        sim.run_until(SimTime::ZERO + SimDuration::from_ms(1));
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(SimDuration::from_ms(50)).await;
            s.now()
        });
        sim.run();
        assert_eq!(
            h.try_result(),
            Some(SimTime::ZERO + SimDuration::from_ms(50))
        );
    }

    #[test]
    fn waker_panics_on_foreign_thread() {
        // A Waker clone is Send by type, but using it off the owning thread
        // must panic (enforced invariant) rather than race the Rc/RefCell.
        let sim = Sim::new();
        let ready = Rc::new(Cell::new(false));
        let waker_out: Rc<StdRefCell<Option<Waker>>> = Rc::new(StdRefCell::new(None));
        sim.spawn(ManualGate {
            ready: Rc::clone(&ready),
            waker_out: Rc::clone(&waker_out),
        });
        sim.run_until(SimTime::ZERO); // poll once so the waker is captured
        let waker = waker_out.borrow_mut().take().unwrap();
        let joined = std::thread::spawn(move || waker.wake()).join();
        assert!(joined.is_err(), "cross-thread wake must panic");
        sim.shutdown();
    }

    #[test]
    fn shutdown_survives_drop_impls_that_wake() {
        // A future's Drop impl may call back into the kernel and wake a
        // task; shutdown() must not let that re-queued id leak into the
        // next run (it would inflate events_processed by a no-op poll and
        // skew a respawned task's initial poll order).
        struct WakeOnDrop {
            waker: Rc<StdRefCell<Option<Waker>>>,
        }
        impl Drop for WakeOnDrop {
            fn drop(&mut self) {
                if let Some(w) = self.waker.borrow().as_ref() {
                    w.wake_by_ref();
                }
            }
        }
        let sim = Sim::new();
        let ready = Rc::new(Cell::new(false));
        let waker_out: Rc<StdRefCell<Option<Waker>>> = Rc::new(StdRefCell::new(None));
        let guard = WakeOnDrop {
            waker: Rc::clone(&waker_out),
        };
        let gate = ManualGate {
            ready: Rc::clone(&ready),
            waker_out: Rc::clone(&waker_out),
        };
        sim.spawn(async move {
            let _guard = guard;
            gate.await;
        });
        sim.run_until(SimTime::ZERO); // park the task, capturing its waker
        sim.shutdown();
        assert!(
            sim.k.ready.q.borrow().is_empty(),
            "stale ready entry survived shutdown"
        );
        let before = sim.events_processed();
        sim.run();
        assert_eq!(
            sim.events_processed(),
            before,
            "shutdown left a no-op poll behind"
        );
        // A respawn on the recycled slot behaves like a fresh kernel's.
        let h = sim.spawn(async {});
        sim.run();
        assert!(h.is_done());
    }

    #[test]
    fn task_slots_are_recycled() {
        // Sequentially spawn-and-finish many tasks: ids (and thus slots,
        // hooks, wakers) must be reused rather than growing the table.
        let sim = Sim::new();
        let first = sim.spawn(async {}).task_id();
        sim.run();
        for _ in 0..100 {
            let h = sim.spawn(async {});
            sim.run();
            assert_eq!(h.task_id(), first, "slot not recycled");
        }
    }
}
