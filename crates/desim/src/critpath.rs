//! Critical-path analysis over [`crate::flight`] recordings.
//!
//! [`analyze`] replays a [`FlightRecorder`]'s segment log and answers "where
//! did the time of this run actually go": it finds the *terminal rank* (the
//! rank whose operation completed last — the end of the run's critical path),
//! lays that rank's attributed segments on the `[0, total)` timeline, and
//! decomposes the whole interval into the six [`SegCategory`] buckets.
//!
//! When several segments cover the same instant (an initiator's completion
//! wait overlaps the wire flight and the target-side starvation of the same
//! operation), the instant is charged to the most *actionable* cause: retry
//! over starvation over contention over queueing over wire; anything
//! uncovered is compute. The decomposition therefore always sums **exactly** (in integer
//! picoseconds) to the total, and — because the recorder's content is a pure
//! function of the deterministic simulation — serializes to byte-identical
//! JSON across same-seed runs.
//!
//! The per-link contention heatmap aggregates the recorder's
//! [`crate::flight::LinkUse`] intervals: a message whose request interval
//! overlaps another message's occupancy of the same link waited, and that
//! wait is the link's contention.

use crate::flight::{FlightRecorder, SegCategory};
use crate::json;
use crate::time::{SimDuration, SimTime};

/// Per-category time totals of one critical-path decomposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// CPU work plus any time not covered by an attributed segment.
    pub compute: SimDuration,
    /// FIFO waits (injection FIFO, pair ordering, active service batches).
    pub queueing: SimDuration,
    /// Header flight and payload serialization.
    pub wire: SimDuration,
    /// Waits on busy shared resources (links, context locks).
    pub contention: SimDuration,
    /// Unserviced time at the target with nobody driving progress.
    pub starvation: SimDuration,
    /// Timeout + backoff waits before retransmitting fault-dropped messages.
    pub retry: SimDuration,
}

impl Breakdown {
    /// The total for one category.
    pub fn get(&self, cat: SegCategory) -> SimDuration {
        match cat {
            SegCategory::Compute => self.compute,
            SegCategory::Queueing => self.queueing,
            SegCategory::Wire => self.wire,
            SegCategory::Contention => self.contention,
            SegCategory::Starvation => self.starvation,
            SegCategory::Retry => self.retry,
        }
    }

    fn add(&mut self, cat: SegCategory, d: SimDuration) {
        match cat {
            SegCategory::Compute => self.compute += d,
            SegCategory::Queueing => self.queueing += d,
            SegCategory::Wire => self.wire += d,
            SegCategory::Contention => self.contention += d,
            SegCategory::Starvation => self.starvation += d,
            SegCategory::Retry => self.retry += d,
        }
    }

    /// Sum across all categories; equals the analyzed total by construction.
    pub fn total(&self) -> SimDuration {
        self.compute + self.queueing + self.wire + self.contention + self.starvation + self.retry
    }

    /// Category with the largest share (ties resolve in [`SegCategory::ALL`]
    /// order).
    pub fn dominant(&self) -> SegCategory {
        let mut best = SegCategory::Compute;
        for cat in SegCategory::ALL {
            if self.get(cat) > self.get(best) {
                best = cat;
            }
        }
        best
    }
}

/// Aggregated traffic through one directed link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStat {
    /// Link name (source coordinate, dimension, direction).
    pub name: String,
    /// Total occupancy (grant → release).
    pub busy: SimDuration,
    /// Total contention wait (request → grant) of messages that found the
    /// link busy — i.e. whose request overlapped another occupancy interval.
    pub wait: SimDuration,
    /// Messages that crossed the link.
    pub messages: u64,
}

/// Result of [`analyze`]: the run's critical-path decomposition.
#[derive(Debug, Clone)]
pub struct CritPath {
    /// Length of the analyzed timeline `[0, total)`.
    pub total: SimDuration,
    /// Rank whose last operation completed latest.
    pub terminal_rank: u32,
    /// Operations issued by the terminal rank.
    pub ops_on_path: u64,
    /// Per-category decomposition; sums exactly to `total`.
    pub breakdown: Breakdown,
    /// Per-link contention heatmap, sorted by link name.
    pub links: Vec<LinkStat>,
}

/// Priority when several categories cover the same instant: charge the most
/// actionable cause first. Retry outranks everything: an instant spent
/// waiting out a retransmit backoff is pure fault-induced loss, regardless
/// of what else the operation overlapped.
const BLAME_ORDER: [SegCategory; 5] = [
    SegCategory::Retry,
    SegCategory::Starvation,
    SegCategory::Contention,
    SegCategory::Queueing,
    SegCategory::Wire,
];

/// Decompose the timeline `[0, end)` of the run recorded in `fr`.
pub fn analyze(fr: &FlightRecorder, end: SimTime) -> CritPath {
    let ops = fr.ops();
    let total = end.since(SimTime::ZERO);

    // Terminal rank: owner of the operation that completed last. Ties break
    // toward the later op id (the later issue), which is deterministic.
    let terminal_rank = ops
        .iter()
        .max_by_key(|o| (o.end, o.op))
        .map(|o| o.rank)
        .unwrap_or(0);
    let ops_on_path = ops.iter().filter(|o| o.rank == terminal_rank).count() as u64;

    // Sweep the terminal rank's segments. Each boundary toggles a per-category
    // active count; between boundaries the interval is charged to the highest
    // priority active category, or compute when uncovered.
    let mut events: Vec<(u64, usize, i64)> = Vec::new();
    for seg in fr.segments() {
        let owner = ops.get(seg.op.0 as usize).map(|o| o.rank);
        if owner != Some(terminal_rank) {
            continue;
        }
        let s = seg.start.min(end);
        let e = seg.end.min(end);
        if e <= s {
            continue;
        }
        events.push((s.as_ps(), seg.cat.index(), 1));
        events.push((e.as_ps(), seg.cat.index(), -1));
    }
    events.sort_unstable();

    let mut breakdown = Breakdown::default();
    let mut active = [0i64; 6];
    let mut prev: u64 = 0;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        if t > prev {
            breakdown.add(pick(&active), SimDuration::from_ps(t - prev));
            prev = t;
        }
        while i < events.len() && events[i].0 == t {
            active[events[i].1] += events[i].2;
            i += 1;
        }
    }
    if end.as_ps() > prev {
        breakdown.add(
            SegCategory::Compute,
            SimDuration::from_ps(end.as_ps() - prev),
        );
    }
    debug_assert_eq!(breakdown.total(), total, "decomposition must tile [0, end)");

    // Per-link heatmap: aggregate every message's wait and occupancy.
    let mut by_link: Vec<(u32, LinkStat)> = Vec::new();
    for u in fr.link_uses() {
        let idx = match by_link.iter().position(|(id, _)| *id == u.link) {
            Some(i) => i,
            None => {
                by_link.push((
                    u.link,
                    LinkStat {
                        name: fr.link_name(u.link),
                        busy: SimDuration::ZERO,
                        wait: SimDuration::ZERO,
                        messages: 0,
                    },
                ));
                by_link.len() - 1
            }
        };
        let stat = &mut by_link[idx].1;
        stat.busy += u.release.since(u.grant);
        stat.wait += u.grant.since(u.request);
        stat.messages += 1;
    }
    let mut links: Vec<LinkStat> = by_link.into_iter().map(|(_, s)| s).collect();
    links.sort_by(|a, b| a.name.cmp(&b.name));

    CritPath {
        total,
        terminal_rank,
        ops_on_path,
        breakdown,
        links,
    }
}

fn pick(active: &[i64; 6]) -> SegCategory {
    for cat in BLAME_ORDER {
        if active[cat.index()] > 0 {
            return cat;
        }
    }
    SegCategory::Compute
}

impl CritPath {
    /// Deterministic JSON rendering (integer picoseconds throughout).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"total_ps\":");
        json::push_u64(&mut out, self.total.as_ps());
        out.push_str(",\"terminal_rank\":");
        json::push_u64(&mut out, self.terminal_rank as u64);
        out.push_str(",\"ops_on_path\":");
        json::push_u64(&mut out, self.ops_on_path);
        out.push_str(",\"breakdown_ps\":{");
        for (i, cat) in SegCategory::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(&mut out, cat.name());
            out.push(':');
            json::push_u64(&mut out, self.breakdown.get(*cat).as_ps());
        }
        out.push_str("},\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"link\":");
            json::push_str(&mut out, &l.name);
            out.push_str(",\"busy_ps\":");
            json::push_u64(&mut out, l.busy.as_ps());
            out.push_str(",\"wait_ps\":");
            json::push_u64(&mut out, l.wait.as_ps());
            out.push_str(",\"messages\":");
            json::push_u64(&mut out, l.messages);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Small human-readable table of the decomposition.
    pub fn report(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "critical path: total {} on rank {} ({} ops), dominated by {}\n",
            self.total,
            self.terminal_rank,
            self.ops_on_path,
            self.breakdown.dominant().name()
        ));
        for cat in SegCategory::ALL {
            let d = self.breakdown.get(cat);
            let pct = if self.total.as_ps() == 0 {
                0.0
            } else {
                100.0 * d.as_ps() as f64 / self.total.as_ps() as f64
            };
            s.push_str(&format!(
                "  {:<11} {:>12}  {:5.1}%\n",
                cat.name(),
                format!("{d}"),
                pct
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_us(us)
    }

    #[test]
    fn empty_recorder_is_all_compute() {
        let fr = FlightRecorder::new();
        fr.enable(8);
        let cp = analyze(&fr, t(10));
        assert_eq!(cp.breakdown.compute, SimDuration::from_us(10));
        assert_eq!(cp.breakdown.total(), cp.total);
        assert!(cp.links.is_empty());
    }

    #[test]
    fn segments_tile_and_gaps_are_compute() {
        let fr = FlightRecorder::new();
        fr.enable(32);
        let op = fr.begin_op(t(0), 2, "armci.rmw").unwrap();
        fr.segment(op, SegCategory::Wire, "net.header", t(1), t(3));
        fr.segment(op, SegCategory::Starvation, "pami.starved", t(4), t(9));
        fr.end_op(op, t(9));
        let cp = analyze(&fr, t(10));
        assert_eq!(cp.terminal_rank, 2);
        assert_eq!(cp.ops_on_path, 1);
        assert_eq!(cp.breakdown.wire, SimDuration::from_us(2));
        assert_eq!(cp.breakdown.starvation, SimDuration::from_us(5));
        assert_eq!(cp.breakdown.compute, SimDuration::from_us(3));
        assert_eq!(cp.breakdown.total(), cp.total);
        assert_eq!(cp.breakdown.dominant(), SegCategory::Starvation);
    }

    #[test]
    fn overlaps_charge_the_higher_priority_cause() {
        let fr = FlightRecorder::new();
        fr.enable(32);
        let op = fr.begin_op(t(0), 0, "armci.get").unwrap();
        // Wire covers [0,8); starvation covers [2,5): the overlap goes to
        // starvation, the rest of the wire interval stays wire.
        fr.segment(op, SegCategory::Wire, "w", t(0), t(8));
        fr.segment(op, SegCategory::Starvation, "s", t(2), t(5));
        fr.end_op(op, t(8));
        let cp = analyze(&fr, t(8));
        assert_eq!(cp.breakdown.starvation, SimDuration::from_us(3));
        assert_eq!(cp.breakdown.wire, SimDuration::from_us(5));
        assert_eq!(cp.breakdown.total(), cp.total);
    }

    #[test]
    fn retry_outranks_every_other_category() {
        let fr = FlightRecorder::new();
        fr.enable(32);
        let op = fr.begin_op(t(0), 0, "armci.put").unwrap();
        // Retry [1,6) overlaps starvation [2,4) and wire [0,8): the whole
        // retry window is blamed on retry.
        fr.segment(op, SegCategory::Wire, "w", t(0), t(8));
        fr.segment(op, SegCategory::Starvation, "s", t(2), t(4));
        fr.segment(op, SegCategory::Retry, "pami.retry", t(1), t(6));
        fr.end_op(op, t(8));
        let cp = analyze(&fr, t(8));
        assert_eq!(cp.breakdown.retry, SimDuration::from_us(5));
        assert_eq!(cp.breakdown.starvation, SimDuration::ZERO);
        assert_eq!(cp.breakdown.wire, SimDuration::from_us(3));
        assert_eq!(cp.breakdown.total(), cp.total);
        assert!(cp.to_json().contains("\"retry\":5000000"));
    }

    #[test]
    fn only_terminal_rank_segments_count() {
        let fr = FlightRecorder::new();
        fr.enable(32);
        let a = fr.begin_op(t(0), 0, "armci.get").unwrap();
        let b = fr.begin_op(t(0), 1, "armci.get").unwrap();
        fr.segment(a, SegCategory::Wire, "w", t(0), t(2));
        fr.segment(b, SegCategory::Contention, "c", t(0), t(4));
        fr.end_op(a, t(2));
        fr.end_op(b, t(6)); // rank 1 finishes last -> terminal
        let cp = analyze(&fr, t(6));
        assert_eq!(cp.terminal_rank, 1);
        assert_eq!(cp.breakdown.wire, SimDuration::ZERO);
        assert_eq!(cp.breakdown.contention, SimDuration::from_us(4));
        assert_eq!(cp.breakdown.compute, SimDuration::from_us(2));
    }

    #[test]
    fn segments_clip_to_the_analyzed_end() {
        let fr = FlightRecorder::new();
        fr.enable(8);
        let op = fr.begin_op(t(0), 0, "x").unwrap();
        fr.segment(op, SegCategory::Wire, "w", t(2), t(20));
        let cp = analyze(&fr, t(5));
        assert_eq!(cp.breakdown.wire, SimDuration::from_us(3));
        assert_eq!(cp.breakdown.total(), SimDuration::from_us(5));
    }

    #[test]
    fn link_heatmap_aggregates_and_sorts() {
        let fr = FlightRecorder::new();
        fr.enable(16);
        let b = fr.link_id("b-link");
        let a = fr.link_id("a-link");
        fr.link_use(b, t(0), t(0), t(2), None);
        fr.link_use(b, t(1), t(2), t(4), None); // waited 1us behind the first
        fr.link_use(a, t(0), t(0), t(1), None);
        let cp = analyze(&fr, t(4));
        assert_eq!(cp.links.len(), 2);
        assert_eq!(cp.links[0].name, "a-link");
        assert_eq!(cp.links[1].name, "b-link");
        assert_eq!(cp.links[1].messages, 2);
        assert_eq!(cp.links[1].busy, SimDuration::from_us(4));
        assert_eq!(cp.links[1].wait, SimDuration::from_us(1));
    }

    #[test]
    fn json_is_deterministic_and_sums() {
        let build = || {
            let fr = FlightRecorder::new();
            fr.enable(16);
            let op = fr.begin_op(t(0), 0, "armci.put").unwrap();
            fr.segment(op, SegCategory::Queueing, "q", t(0), t(1));
            fr.segment(op, SegCategory::Wire, "w", t(1), t(3));
            fr.end_op(op, t(3));
            analyze(&fr, t(4)).to_json()
        };
        let j = build();
        assert_eq!(j, build());
        assert!(j.contains("\"total_ps\":4000000"));
        assert!(j.contains("\"queueing\":1000000"));
        assert!(j.contains("\"compute\":1000000"));
    }
}
