//! Virtual time types: [`SimTime`] (absolute instant) and [`SimDuration`].
//!
//! Both are thin wrappers over a `u64` count of **picoseconds**. Picosecond
//! resolution keeps per-byte bandwidth costs (fractions of a nanosecond)
//! exactly representable while still covering hundreds of simulated days.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An absolute instant of virtual time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (lossy).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in milliseconds (lossy).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Later of the two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
    /// Earlier of the two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> SimDuration {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> SimDuration {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> SimDuration {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> SimDuration {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * PS_PER_S)
    }
    /// Construct from fractional nanoseconds, rounding to the nearest picosecond.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> SimDuration {
        SimDuration((ns * PS_PER_NS as f64).round().max(0.0) as u64)
    }
    /// Construct from fractional microseconds, rounding to the nearest picosecond.
    #[inline]
    pub fn from_us_f64(us: f64) -> SimDuration {
        SimDuration((us * PS_PER_US as f64).round().max(0.0) as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub fn as_ps(self) -> u64 {
        self.0
    }
    /// Value in nanoseconds (lossy).
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Value in milliseconds (lossy).
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }
    /// True when the span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    /// Larger of the two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
    /// Smaller of the two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.as_secs())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_ms())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_us())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", self.as_ns())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_ns(35).as_ps(), 35_000);
        assert_eq!(SimDuration::from_us(3).as_ns(), 3_000.0);
        assert_eq!(SimDuration::from_ms(2).as_us(), 2_000.0);
        assert_eq!(SimDuration::from_secs(1).as_ms(), 1_000.0);
    }

    #[test]
    fn fractional_construction_rounds() {
        // 0.5556 ns -> 556 ps (rounded)
        assert_eq!(SimDuration::from_ns_f64(0.5556).as_ps(), 556);
        assert_eq!(SimDuration::from_us_f64(2.89).as_ns(), 2890.0);
        // negative clamps to zero
        assert_eq!(SimDuration::from_ns_f64(-1.0).as_ps(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_us(10);
        let u = t + SimDuration::from_us(5);
        assert_eq!((u - t).as_us(), 5.0);
        assert_eq!(u.since(t).as_us(), 5.0);
        assert_eq!(t.since(u), SimDuration::ZERO); // saturating
        assert_eq!((SimDuration::from_us(4) * 3).as_us(), 12.0);
        assert_eq!((SimDuration::from_us(12) / 4).as_us(), 3.0);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime(5);
        let b = SimTime(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimDuration(7).max(SimDuration(3)), SimDuration(7));
        assert_eq!(SimDuration(7).min(SimDuration(3)), SimDuration(3));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_ns(35)), "35.000ns");
        assert_eq!(format!("{}", SimDuration::from_us_f64(2.89)), "2.890us");
        assert_eq!(format!("{}", SimDuration(500)), "500ps");
        assert_eq!(format!("{}", SimDuration::from_ms(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total.as_us(), 10.0);
    }
}
