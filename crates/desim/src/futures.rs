//! Small future combinators used by the simulation layers.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Which branch of a [`race`] finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future completed first.
    Left(A),
    /// The second future completed first.
    Right(B),
}

/// Future returned by [`race`].
pub struct Race2<A, B> {
    a: A,
    b: B,
}

/// Run two futures concurrently; resolve with whichever completes first
/// (ties go to the left). The loser is dropped.
///
/// Both futures must be cancel-safe, which all desim primitives are.
pub fn race<A: Future, B: Future>(a: A, b: B) -> Race2<A, B> {
    Race2 { a, b }
}

impl<A: Future, B: Future> Future for Race2<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: we never move `a`/`b` out of the pinned struct.
        let this = unsafe { self.get_unchecked_mut() };
        let a = unsafe { Pin::new_unchecked(&mut this.a) };
        if let Poll::Ready(v) = a.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        let b = unsafe { Pin::new_unchecked(&mut this.b) };
        if let Poll::Ready(v) = b.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Sim, SimDuration};

    #[test]
    fn race_picks_earlier() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let r = race(
                s.sleep(SimDuration::from_us(5)),
                s.sleep(SimDuration::from_us(2)),
            )
            .await;
            (matches!(r, Either::Right(())), s.now())
        });
        sim.run();
        let (right, t) = h.try_result().unwrap();
        assert!(right);
        assert_eq!(t.as_us(), 2.0);
    }

    #[test]
    fn race_tie_goes_left() {
        let sim = Sim::new();
        let s = sim.clone();
        let h = sim.spawn(async move {
            let r = race(
                s.sleep(SimDuration::from_us(3)),
                s.sleep(SimDuration::from_us(3)),
            )
            .await;
            matches!(r, Either::Left(()))
        });
        sim.run();
        assert_eq!(h.try_result(), Some(true));
    }

    #[test]
    fn race_with_completion() {
        use crate::Completion;
        let sim = Sim::new();
        let c: Completion<u32> = Completion::new();
        let c2 = c.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            match race(c2.wait(), s.sleep(SimDuration::from_us(10))).await {
                Either::Left(v) => v,
                Either::Right(()) => 0,
            }
        });
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_us(1)).await;
            c.complete(99);
        });
        sim.run();
        assert_eq!(h.try_result(), Some(99));
    }
}
