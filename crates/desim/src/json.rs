//! Minimal deterministic JSON writer and reader.
//!
//! The workspace builds offline with no external crates, so the trace
//! exporter and [`crate::stats::MetricsSnapshot`] serialize through this
//! hand-rolled helper instead of serde. Output is deterministic: map keys are
//! emitted in the order the caller supplies them (callers sort), floats use
//! Rust's shortest-roundtrip `Display`, and no whitespace depends on
//! ambient state.
//!
//! [`parse`] is the matching reader: a small recursive-descent parser used by
//! the `perfdiff` regression gate to load snapshot/breakdown files back.
//! Object keys keep their document order, so round-tripping is stable.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which JSON cannot
/// represent) are written as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `Display` prints integral floats without a decimal point; keep the
        // value typed as a float for strict JSON consumers.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Append `v` to `out` as a JSON integer.
pub fn push_u64(out: &mut String, v: u64) {
    out.push_str(&format!("{v}"));
}

/// A parsed JSON document. Numbers are kept as `f64` (sufficient for the
/// metric snapshots this reader exists for); object keys keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key of an object; `None` for other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let b = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    s.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number '{s}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad utf8".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed for our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut kv = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(kv));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        kv.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(kv));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(s(|o| push_str(o, "a\"b\\c\nd")), r#""a\"b\\c\nd""#);
        assert_eq!(s(|o| push_str(o, "\u{1}")), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(s(|o| push_f64(o, 2.89)), "2.89");
        assert_eq!(s(|o| push_f64(o, 3.0)), "3.0");
        assert_eq!(s(|o| push_f64(o, f64::NAN)), "null");
    }

    #[test]
    fn integers_are_plain() {
        assert_eq!(s(|o| push_u64(o, u64::MAX)), "18446744073709551615");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("2.89").unwrap(), JsonValue::Num(2.89));
        assert_eq!(parse("-17").unwrap(), JsonValue::Num(-17.0));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parse_structures_keep_key_order() {
        let v = parse(r#"{"b": 1, "a": [2, {"x": null}], "c": "s"}"#).unwrap();
        let JsonValue::Obj(kv) = &v else { panic!() };
        let keys: Vec<&str> = kv.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a", "c"]);
        assert_eq!(v.get("b").and_then(JsonValue::as_f64), Some(1.0));
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("s"));
        let JsonValue::Arr(items) = v.get("a").unwrap() else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_round_trips_writer_escapes() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(
            parse(&out).unwrap(),
            JsonValue::Str("a\"b\\c\nd\te\u{1}".into())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(parse("{ }").unwrap(), JsonValue::Obj(vec![]));
    }
}
