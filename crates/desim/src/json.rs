//! Minimal deterministic JSON writer.
//!
//! The workspace builds offline with no external crates, so the trace
//! exporter and [`crate::stats::MetricsSnapshot`] serialize through this
//! hand-rolled helper instead of serde. Output is deterministic: map keys are
//! emitted in the order the caller supplies them (callers sort), floats use
//! Rust's shortest-roundtrip `Display`, and no whitespace depends on
//! ambient state.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number. Non-finite values (which JSON cannot
/// represent) are written as `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `Display` prints integral floats without a decimal point; keep the
        // value typed as a float for strict JSON consumers.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Append `v` to `out` as a JSON integer.
pub fn push_u64(out: &mut String, v: u64) {
    out.push_str(&format!("{v}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(s(|o| push_str(o, "a\"b\\c\nd")), r#""a\"b\\c\nd""#);
        assert_eq!(s(|o| push_str(o, "\u{1}")), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(s(|o| push_f64(o, 2.89)), "2.89");
        assert_eq!(s(|o| push_f64(o, 3.0)), "3.0");
        assert_eq!(s(|o| push_f64(o, f64::NAN)), "null");
    }

    #[test]
    fn integers_are_plain() {
        assert_eq!(s(|o| push_u64(o, u64::MAX)), "18446744073709551615");
    }
}
