//! Deterministic FxHash hasher for simulation-state hash maps.
//!
//! `std::collections::HashMap`'s default hasher is randomly seeded per
//! process, which is fine for lookup but poisons determinism the moment
//! iteration order leaks into behavior. Simulation state therefore uses
//! this fixed-seed Fx-style hasher (the same multiply-xor scheme as
//! `torus5d`'s open-addressed `FxMap64`): byte-identical across runs,
//! processes and hosts, and much cheaper than SipHash for the small
//! integer keys (rank ids, handler ids) that dominate here.
//!
//! Iteration order of a `HashMap` with this hasher is still
//! *capacity-dependent*, so deterministic consumers must sort keys before
//! iterating — the hasher only guarantees the order is reproducible, not
//! meaningful.

use std::hash::{BuildHasher, Hasher};

/// The Firefox hash constant (64-bit golden-ratio multiplier).
const FX_SEED: u64 = 0x517c_c1b7_2722_0a95;

/// A fixed-seed Fx-style 64-bit hasher: multiply-rotate-xor per word.
#[derive(Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // Spread the high bits down: HashMap keys off the low bits.
        let h = self.hash;
        h ^ (h >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf) | ((rest.len() as u64 + 1) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// [`BuildHasher`] for [`FxHasher64`]; plug into `HashMap::with_hasher`.
#[derive(Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher64;

    #[inline]
    fn build_hasher(&self) -> FxHasher64 {
        FxHasher64::default()
    }
}

/// A `HashMap` keyed deterministically with [`FxBuildHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher64::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_one(42usize), hash_one(42usize));
        assert_eq!(hash_one("rank"), hash_one("rank"));
        assert_ne!(hash_one(1u64), hash_one(2u64));
    }

    #[test]
    fn unaligned_tails_differ_by_length() {
        // A 3-byte and a 4-byte key sharing a prefix must not collide via
        // zero padding: the tail word carries the remainder length.
        assert_ne!(hash_one(&b"abc"[..]), hash_one(&b"abc\0"[..]));
    }

    #[test]
    fn map_works_and_is_reproducible() {
        let mut m: FxHashMap<usize, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, (i * 3) as u32);
        }
        assert_eq!(m.get(&999), Some(&2997));
        let mut keys: Vec<_> = m.keys().copied().collect();
        keys.sort_unstable();
        assert_eq!(keys.len(), 1000);
    }
}
