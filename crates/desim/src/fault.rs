//! Deterministic fault injection: seeded link/node failure schedules.
//!
//! A [`FaultPlan`] describes *what goes wrong and when* on a simulated
//! machine: links that go down and come back up, nodes that hang (stop
//! driving their progress engines) for a window, and per-link packet
//! corruption probabilities. The plan is pure data — it does not know about
//! any particular network model — and everything about it is deterministic:
//!
//! * A plan built by explicit builder calls ([`FaultPlan::link_down`],
//!   [`FaultPlan::node_hang`], …) contains exactly what was written.
//! * A plan sampled from a [`FaultSpec`] via [`FaultPlan::generate`] draws
//!   every window from a [`SimRng`] seeded by the caller, using integer
//!   arithmetic only, so the same `(seed, spec)` pair yields a byte-identical
//!   schedule on every host.
//! * [`FaultPlan::compiled`] flattens the plan into a single time-sorted
//!   event list with a total (time, kind, resource) order, so consumers that
//!   replay it advance through exactly the same sequence every run.
//!
//! The network model distinguishes two views of a dead link. The **physical**
//! view ([`FaultEvent::LinkDown`]/[`FaultEvent::LinkUp`]) flips the instant
//! the window starts: packets crossing the link after that are lost. The
//! **routing** view ([`FaultEvent::RouteLost`]/[`FaultEvent::RouteRestored`])
//! flips [`FaultPlan::route_update_delay`] later, modelling the detection
//! latency before routes detour around the failure. During the gap, senders
//! keep using the stale route, lose packets, and must retry — which is what
//! produces the timeout/retry traffic the resilience layer exists to absorb.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A deterministic schedule of injected faults. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    route_update_delay: SimDuration,
    /// `(link, down_from, up_at)` windows; `up_at` may be past the horizon.
    link_windows: Vec<(u32, SimTime, SimTime)>,
    /// `(node, hang_from, resume_at)` windows.
    hang_windows: Vec<(u32, SimTime, SimTime)>,
    /// Default per-traversal corruption probability for every link.
    corrupt_default: f64,
    /// Per-link overrides of the corruption probability.
    corrupt_overrides: Vec<(u32, f64)>,
}

/// Parameters for sampling a random [`FaultPlan`] with
/// [`FaultPlan::generate`].
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Exclusive upper bound of the dense link-id space to draw from.
    pub links: u32,
    /// Exclusive upper bound of the node-index space to draw from.
    pub nodes: u32,
    /// Number of link-down windows to sample.
    pub link_down_windows: u32,
    /// Mean downtime per window; actual downtimes are drawn uniformly from
    /// `[mean/2, 3*mean/2)` in whole picoseconds (integer math only).
    pub mean_downtime: SimDuration,
    /// Number of node-hang windows to sample.
    pub node_hangs: u32,
    /// Mean hang duration (same uniform integer sampling as downtimes).
    pub mean_hang: SimDuration,
    /// Window start times are drawn uniformly from `[0, horizon)`.
    pub horizon: SimDuration,
    /// Default per-traversal corruption probability for every link.
    pub corruption: f64,
}

/// One entry of a compiled fault schedule (see [`FaultPlan::compiled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// The link physically stops delivering packets.
    LinkDown(u32),
    /// The link physically delivers packets again.
    LinkUp(u32),
    /// The routing layer notices the link is dead and detours around it.
    RouteLost(u32),
    /// The routing layer notices the link is back and may use it again.
    RouteRestored(u32),
    /// The node stops driving progress until `until`.
    NodeHang {
        /// Node index that hangs.
        node: u32,
        /// Virtual time at which the node resumes.
        until: SimTime,
    },
}

impl FaultEvent {
    /// Tie-break tag for same-instant events: downs before ups before route
    /// changes before hangs, then by resource id. Any fixed total order
    /// works; this one is part of the determinism contract.
    fn sort_key(&self) -> (u8, u32) {
        match *self {
            FaultEvent::LinkDown(l) => (0, l),
            FaultEvent::LinkUp(l) => (1, l),
            FaultEvent::RouteLost(l) => (2, l),
            FaultEvent::RouteRestored(l) => (3, l),
            FaultEvent::NodeHang { node, .. } => (4, node),
        }
    }
}

impl FaultPlan {
    /// An empty plan (no faults) carrying `seed` for the corruption RNG.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            route_update_delay: SimDuration::from_us(10),
            link_windows: Vec::new(),
            hang_windows: Vec::new(),
            corrupt_default: 0.0,
            corrupt_overrides: Vec::new(),
        }
    }

    /// Set the delay between a link state flip and the routing layer
    /// noticing it (default 10 µs).
    pub fn route_update_delay(mut self, d: SimDuration) -> FaultPlan {
        self.route_update_delay = d;
        self
    }

    /// Add a link-down window: `link` is dead from `from` until `until`.
    pub fn link_down(mut self, link: u32, from: SimTime, until: SimTime) -> FaultPlan {
        assert!(from < until, "link-down window must be non-empty");
        self.link_windows.push((link, from, until));
        self
    }

    /// Add a node-hang window: `node` drives no progress from `from` until
    /// `until`.
    pub fn node_hang(mut self, node: u32, from: SimTime, until: SimTime) -> FaultPlan {
        assert!(from < until, "node-hang window must be non-empty");
        self.hang_windows.push((node, from, until));
        self
    }

    /// Set the default per-traversal corruption probability for every link.
    pub fn corruption(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_default = p;
        self
    }

    /// Override the corruption probability of one link.
    pub fn link_corruption(mut self, link: u32, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.corrupt_overrides.push((link, p));
        self
    }

    /// Sample a random plan from `spec`, fully determined by `seed`.
    pub fn generate(seed: u64, spec: &FaultSpec) -> FaultPlan {
        let mut rng = SimRng::new(seed).derive(0xFA01);
        let horizon = spec.horizon.as_ps().max(1);
        let mut plan = FaultPlan::new(seed).corruption(spec.corruption);
        let uniform_around = |rng: &mut SimRng, mean: SimDuration| -> u64 {
            let mean_ps = mean.as_ps().max(2);
            mean_ps / 2 + rng.next_below(mean_ps)
        };
        for _ in 0..spec.link_down_windows {
            let link = rng.next_below(u64::from(spec.links.max(1))) as u32;
            let from = SimTime::ZERO + SimDuration::from_ps(rng.next_below(horizon));
            let dur = uniform_around(&mut rng, spec.mean_downtime);
            plan = plan.link_down(link, from, from + SimDuration::from_ps(dur.max(1)));
        }
        for _ in 0..spec.node_hangs {
            let node = rng.next_below(u64::from(spec.nodes.max(1))) as u32;
            let from = SimTime::ZERO + SimDuration::from_ps(rng.next_below(horizon));
            let dur = uniform_around(&mut rng, spec.mean_hang);
            plan = plan.node_hang(node, from, from + SimDuration::from_ps(dur.max(1)));
        }
        plan
    }

    /// Seed used for the runtime corruption RNG.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured routing-detection delay.
    pub fn detection_delay(&self) -> SimDuration {
        self.route_update_delay
    }

    /// True when the plan injects nothing: no windows and zero corruption
    /// everywhere. Consumers may treat an empty plan exactly like no plan.
    pub fn is_empty(&self) -> bool {
        self.link_windows.is_empty()
            && self.hang_windows.is_empty()
            && self.corrupt_default == 0.0
            && self.corrupt_overrides.iter().all(|&(_, p)| p == 0.0)
    }

    /// Effective corruption probability of `link`.
    pub fn corruption_for(&self, link: u32) -> f64 {
        // Later overrides win, matching builder-call order.
        self.corrupt_overrides
            .iter()
            .rev()
            .find(|&&(l, _)| l == link)
            .map(|&(_, p)| p)
            .unwrap_or(self.corrupt_default)
    }

    /// True when any link has a nonzero corruption probability.
    pub fn any_corruption(&self) -> bool {
        self.corrupt_default > 0.0 || self.corrupt_overrides.iter().any(|&(_, p)| p > 0.0)
    }

    /// Compile the plan into a time-sorted event list. Each link window
    /// expands into four events (physical down/up plus the delayed routing
    /// reactions); each hang window into one. The sort is total — ties at
    /// one instant break on `(kind, resource)` — so the schedule is
    /// byte-identical for identical plans.
    pub fn compiled(&self) -> Vec<(SimTime, FaultEvent)> {
        let mut ev = Vec::with_capacity(self.link_windows.len() * 4 + self.hang_windows.len());
        for &(link, from, until) in &self.link_windows {
            ev.push((from, FaultEvent::LinkDown(link)));
            ev.push((from + self.route_update_delay, FaultEvent::RouteLost(link)));
            ev.push((until, FaultEvent::LinkUp(link)));
            ev.push((
                until + self.route_update_delay,
                FaultEvent::RouteRestored(link),
            ));
        }
        for &(node, from, until) in &self.hang_windows {
            ev.push((from, FaultEvent::NodeHang { node, until }));
        }
        ev.sort_by_key(|&(at, e)| (at, e.sort_key()));
        ev
    }

    /// Human/diffable rendering of the compiled schedule, one event per
    /// line — what the determinism tests compare byte-for-byte.
    pub fn schedule_digest(&self) -> String {
        let mut out = String::new();
        for (at, e) in self.compiled() {
            let line = match e {
                FaultEvent::LinkDown(l) => format!("{} link_down {}\n", at.as_ps(), l),
                FaultEvent::LinkUp(l) => format!("{} link_up {}\n", at.as_ps(), l),
                FaultEvent::RouteLost(l) => format!("{} route_lost {}\n", at.as_ps(), l),
                FaultEvent::RouteRestored(l) => {
                    format!("{} route_restored {}\n", at.as_ps(), l)
                }
                FaultEvent::NodeHang { node, until } => {
                    format!(
                        "{} node_hang {} until {}\n",
                        at.as_ps(),
                        node,
                        until.as_ps()
                    )
                }
            };
            out.push_str(&line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            links: 640,
            nodes: 64,
            link_down_windows: 8,
            mean_downtime: SimDuration::from_us(500),
            node_hangs: 3,
            mean_hang: SimDuration::from_us(200),
            horizon: SimDuration::from_ms(5),
            corruption: 1e-3,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::generate(42, &spec());
        let b = FaultPlan::generate(42, &spec());
        assert_eq!(a.schedule_digest(), b.schedule_digest());
        assert!(!a.schedule_digest().is_empty());
        let c = FaultPlan::generate(43, &spec());
        assert_ne!(a.schedule_digest(), c.schedule_digest());
    }

    #[test]
    fn compiled_is_sorted_and_complete() {
        let plan = FaultPlan::generate(7, &spec());
        let ev = plan.compiled();
        assert_eq!(ev.len(), 8 * 4 + 3);
        for w in ev.windows(2) {
            assert!(
                (w[0].0, w[0].1.sort_key()) <= (w[1].0, w[1].1.sort_key()),
                "schedule must be totally ordered"
            );
        }
        // Every down has a matching routing reaction exactly delay later.
        let delay = plan.detection_delay();
        for (at, e) in &ev {
            if let FaultEvent::LinkDown(l) = e {
                assert!(ev.contains(&(*at + delay, FaultEvent::RouteLost(*l))));
            }
        }
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new(1).is_empty());
        assert!(FaultPlan::new(1)
            .route_update_delay(SimDuration::from_us(1))
            .is_empty());
        assert!(!FaultPlan::new(1)
            .link_down(3, SimTime::ZERO, SimTime::ZERO + SimDuration::from_us(1))
            .is_empty());
        assert!(!FaultPlan::new(1).corruption(0.5).is_empty());
        // A zero-probability override still counts as empty.
        assert!(FaultPlan::new(1).link_corruption(9, 0.0).is_empty());
    }

    #[test]
    fn corruption_override_beats_default() {
        let p = FaultPlan::new(1).corruption(0.1).link_corruption(5, 0.9);
        assert_eq!(p.corruption_for(4), 0.1);
        assert_eq!(p.corruption_for(5), 0.9);
        assert!(p.any_corruption());
    }
}
