//! Deterministic pseudo-random number generation for workloads.
//!
//! A self-contained xoshiro256** implementation seeded via splitmix64, so
//! simulated workloads are reproducible bit-for-bit across runs and platforms
//! without pulling entropy from the host.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a seed; distinct seeds give independent streams.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent stream for a sub-entity (e.g. a rank).
    pub fn derive(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for simulation workloads and determinism is what matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Sample an exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = SimRng::new(7);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Deriving again reproduces the same stream.
        let mut a2 = root.derive(0);
        let mut a3 = SimRng::new(7).derive(0);
        a3.next_u64();
        let _ = a2.next_u64();
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} suspicious");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>()); // overwhelmingly likely
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exp(300.0)).sum::<f64>() / n as f64;
        assert!((270.0..330.0).contains(&mean), "mean {mean}");
    }
}
